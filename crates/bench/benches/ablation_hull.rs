//! Ablation: the convex-hull optimization (Lemma 4.3).
//!
//! Optimized vs exhaustive slide filter at precisions that stretch the
//! filtering intervals — the isolated version of Figure 13's headline
//! contrast. Also benches the raw incremental-hull push cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, sea_surface, FilterKind};
use pla_geom::{IncrementalHull, Point2};

fn hull_modes(c: &mut Criterion) {
    let signal = sea_surface();
    let mut group = c.benchmark_group("ablation_hull/filter");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10)
        .throughput(Throughput::Elements(signal.len() as u64));
    for pct in [1.0, 10.0, 100.0] {
        let eps = signal.epsilons_from_range_percent(pct);
        for kind in [FilterKind::Slide, FilterKind::SlideExhaustive] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{pct}%")),
                &eps,
                |b, eps| b.iter(|| black_box(run_filter_once(kind, eps, &signal))),
            );
        }
    }
    group.finish();
}

fn hull_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hull/push");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let points: Vec<Point2> = (0..n)
            .map(|i| {
                let t = i as f64;
                Point2::new(t, (t * 0.37).sin() * 3.0 + (t * 0.011).cos())
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("incremental", n), &points, |b, pts| {
            b.iter(|| {
                let mut h = IncrementalHull::with_capacity(64);
                for &p in pts {
                    h.push(p);
                }
                black_box(h.num_vertices())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, hull_modes, hull_push);
criterion_main!(benches);
