//! Ablation: the MSE-optimal recording (paper §3.2, eq. 5–6) versus the
//! "straightforward" clamped-last-point recording, on the swing filter.
//! Measures the processing cost of maintaining the regression sums; the
//! error impact is covered by `pla-core`'s tests.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{sea_surface, walk_signal};
use pla_core::filters::{RecordingStrategy, StreamFilter, SwingFilter};
use pla_core::metrics::CountingSink;
use pla_core::Signal;

fn run_swing(strategy: RecordingStrategy, eps: &[f64], signal: &Signal) -> u64 {
    let mut f = SwingFilter::builder(eps).recording(strategy).build().unwrap();
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        f.push(t, x, &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink.recordings
}

fn recording_strategies(c: &mut Criterion) {
    let workloads: Vec<(&str, Signal, f64)> = vec![
        ("sea_1pct", sea_surface(), {
            let s = sea_surface();
            s.epsilons_from_range_percent(1.0)[0]
        }),
        ("walk", walk_signal(10_000, 0.5, 4.0, 0xD1), 1.0),
    ];
    let mut group = c.benchmark_group("ablation_recording");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10);
    for (name, signal, eps) in &workloads {
        group.throughput(Throughput::Elements(signal.len() as u64));
        for (label, strategy) in [
            ("mse_optimal", RecordingStrategy::MseOptimal),
            ("clamped_last", RecordingStrategy::ClampedLastPoint),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), signal, |b, s| {
                b.iter(|| black_box(run_swing(strategy, &[*eps], s)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, recording_strategies);
criterion_main!(benches);
