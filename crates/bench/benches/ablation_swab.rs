//! Ablation: SWAB cost by lookahead choice (paper §6 complementarity).
//!
//! Measures the end-to-end cost of SWAB with the linear, swing, and slide
//! lookaheads against the plain slide filter on the sea-surface signal.
//! A better lookahead yields fewer bottom-up re-segmentations, so the
//! throughput differences mirror the segment-count differences the
//! `repro swab` experiment reports.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, sea_surface, FilterKind};
use pla_core::filters::StreamFilter;
use pla_core::metrics::CountingSink;
use pla_swab::{Lookahead, Swab};

fn run_swab(kind: Lookahead, eps: &[f64], signal: &pla_core::Signal) -> u64 {
    let mut swab = Swab::new(eps, 256, kind).expect("valid config");
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        swab.push(t, x, &mut sink).expect("valid signal");
    }
    swab.finish(&mut sink).expect("flush");
    sink.recordings
}

fn swab_lookaheads(c: &mut Criterion) {
    let signal = sea_surface();
    let mut group = c.benchmark_group("ablation_swab");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10)
        .throughput(Throughput::Elements(signal.len() as u64));
    for pct in [1.0, 10.0] {
        let eps = signal.epsilons_from_range_percent(pct);
        for kind in [Lookahead::Linear, Lookahead::Swing, Lookahead::Slide] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{pct}%")),
                &eps,
                |b, eps| b.iter(|| black_box(run_swab(kind, eps, &signal))),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("plain slide", format!("{pct}%")),
            &eps,
            |b, eps| b.iter(|| black_box(run_filter_once(FilterKind::Slide, eps, &signal))),
        );
    }
    group.finish();
}

criterion_group!(benches, swab_lookaheads);
criterion_main!(benches);
