//! Collector fan-in throughput: segments/second from N multiplexed
//! connections into one shared `SegmentStore` (per-connection
//! `NetReceiver`s, batched acks, store publication), sweeping the
//! connection count over a fixed 64-stream population.
//!
//! Each iteration is one complete end-to-end fan-in of every stream's
//! full segment log — the unit a base station pays per collection
//! round. `connections=1` is the PR 4 single-uplink shape; more
//! connections split the same streams across more links.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_core::filters::run_filter;
use pla_core::Segment;
use pla_eval::experiments::{collector_transfer, stream_workload};
use pla_eval::FilterKind;

/// Samples per cell, split evenly across the population.
const TOTAL_SAMPLES: usize = 64_000;
const STREAMS: usize = 64;

fn segment_logs() -> Vec<Vec<Segment>> {
    stream_workload(STREAMS, TOTAL_SAMPLES / STREAMS, 0xC011)
        .iter()
        .map(|signal| {
            let mut filter = FilterKind::Swing.build(&[0.5]).expect("valid eps");
            run_filter(filter.as_mut(), signal).expect("valid signal")
        })
        .collect()
}

fn collector_fanin(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_fanin");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    let logs = segment_logs();
    let total: u64 = logs.iter().map(|l| l.len() as u64).sum();
    group.throughput(Throughput::Elements(total));
    for &conns in &[1usize, 4, 16] {
        group.bench_function(BenchmarkId::new("streams=64", format!("conns={conns}")), |b| {
            b.iter(|| black_box(collector_transfer(&logs, conns, 16 * 1024)))
        });
    }
    group.finish();
}

criterion_group!(benches, collector_fanin);
criterion_main!(benches);
