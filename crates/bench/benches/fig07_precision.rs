//! Figure 7 operating points: filter processing cost on the sea-surface
//! signal across the paper's precision-width grid (the compression ratios
//! themselves are produced by `repro fig7`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, sea_surface, FilterKind};

const PRECISIONS: [f64; 6] = [0.0316, 0.1, 0.316, 1.0, 3.16, 10.0];

fn fig07(c: &mut Criterion) {
    let signal = sea_surface();
    let mut group = c.benchmark_group("fig07_precision");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10)
        .throughput(Throughput::Elements(signal.len() as u64));
    for kind in FilterKind::PAPER_SET {
        for pct in PRECISIONS {
            let eps = signal.epsilons_from_range_percent(pct);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{pct}%")),
                &eps,
                |b, eps| b.iter(|| black_box(run_filter_once(kind, eps, &signal))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig07);
criterion_main!(benches);
