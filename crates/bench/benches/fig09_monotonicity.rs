//! Figure 9 operating points: filter cost across the monotonicity sweep
//! (p = probability of a decreasing step), x = 400% of ε.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, walk_signal, FilterKind};

const N: usize = 10_000;

fn fig09(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_monotonicity");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10)
        .throughput(Throughput::Elements(N as u64));
    for p in [0.0, 0.25, 0.5] {
        let signal = walk_signal(N, p, 4.0, 0x91 ^ p.to_bits());
        for kind in FilterKind::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("p={p}")),
                &signal,
                |b, s| b.iter(|| black_box(run_filter_once(kind, &[1.0], s))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig09);
criterion_main!(benches);
