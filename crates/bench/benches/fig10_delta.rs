//! Figure 10 operating points: filter cost across the step-magnitude
//! sweep (x as % of ε), p = 0.5. Larger steps mean shorter intervals and
//! more recording work per point.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, walk_signal, FilterKind};

const N: usize = 10_000;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_delta");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10)
        .throughput(Throughput::Elements(N as u64));
    for pct in [10.0, 316.0, 10_000.0] {
        let signal = walk_signal(N, 0.5, pct / 100.0, 0xA1 ^ pct.to_bits());
        for kind in FilterKind::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("x={pct}%")),
                &signal,
                |b, s| b.iter(|| black_box(run_filter_once(kind, &[1.0], s))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
