//! Figure 11 operating points: filter cost vs dimensionality (independent
//! dimensions). Per-point work is O(d) for cache/linear/swing and
//! O(d·m_H) for slide.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{multi_walk, run_filter_once, FilterKind, WalkParams};

const N: usize = 5_000;

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_dims");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10)
        .throughput(Throughput::Elements(N as u64));
    for d in [1usize, 5, 10] {
        let signal = multi_walk(
            d,
            WalkParams { n: N, p_decrease: 0.5, max_delta: 4.0, seed: 0xB1 + d as u64 },
        );
        let eps = vec![1.0; d];
        for kind in FilterKind::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("d={d}")),
                &signal,
                |b, s| b.iter(|| black_box(run_filter_once(kind, &eps, s))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
