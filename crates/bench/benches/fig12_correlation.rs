//! Figure 12 operating points: filter cost vs dimension correlation
//! (d = 5). Higher correlation means longer shared intervals and fewer
//! recordings per point.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, FilterKind};
use pla_signal::{correlated_walk, WalkParams};

const N: usize = 5_000;
const D: usize = 5;

fn fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_correlation");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
        .sample_size(10)
        .throughput(Throughput::Elements(N as u64));
    let eps = vec![1.0; D];
    for rho in [0.1, 0.5, 1.0] {
        let signal = correlated_walk(
            D,
            rho,
            WalkParams { n: N, p_decrease: 0.5, max_delta: 4.0, seed: 0xC1 ^ rho.to_bits() },
        );
        for kind in FilterKind::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("rho={rho}")),
                &signal,
                |b, s| b.iter(|| black_box(run_filter_once(kind, &eps, s))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
