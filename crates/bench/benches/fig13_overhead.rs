//! Figure 13: per-point processing time vs precision width, all five
//! filter configurations, on the sea-surface signal.
//!
//! Paper shape to reproduce: cache/linear/swing/optimized-slide stay flat
//! as the precision width (and hence the interval length) grows; the
//! non-optimized slide filter blows up; absolute costs are microseconds
//! or below per point.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{run_filter_once, sea_surface, FilterKind};

const PRECISIONS: [f64; 8] = [0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0];

fn fig13(c: &mut Criterion) {
    let signal = sea_surface();
    let mut group = c.benchmark_group("fig13_overhead");
    group
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(10)
        .throughput(Throughput::Elements(signal.len() as u64));
    for kind in FilterKind::OVERHEAD_SET {
        for pct in PRECISIONS {
            let eps = signal.epsilons_from_range_percent(pct);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{pct}%")),
                &eps,
                |b, eps| b.iter(|| black_box(run_filter_once(kind, eps, &signal))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
