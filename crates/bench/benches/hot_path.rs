//! Steady-state hot-path cost of every filter: ns/point on a pre-built,
//! warm filter, and — with the `alloc-counter` feature — heap
//! allocations per point.
//!
//! Unlike `throughput.rs` (which rebuilds the filter each iteration,
//! the cold-start number), this bench reuses one filter instance across
//! iterations so the recycled scratch buffers are warm: the measured
//! quantity is the per-point cost the ingest engine pays in steady
//! state, and allocs/point is expected to be exactly 0 for `d = 1`
//! (asserted by `tests/alloc_regression.rs`).
//!
//! Run with allocation counting:
//!
//! ```sh
//! cargo bench --bench hot_path --features alloc-counter
//! ```

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{multi_walk, run_filter_steady, walk_signal, FilterKind, WalkParams};
use pla_core::Signal;

const N_1D: usize = 100_000;
const N_MULTI: usize = 20_000;

/// Dimension counts under measurement: the `d == 1` scalar dispatch, the
/// `d ∈ {2, 4}` inline-lane (SIMD kernel) dispatch at both ends of its
/// range, and the `d = 8` generic spill regime.
const DIMS: [usize; 4] = [1, 2, 4, 8];

fn signal_for(dims: usize) -> Signal {
    if dims == 1 {
        walk_signal(N_1D, 0.5, 2.0, 0x407)
    } else {
        multi_walk(dims, WalkParams { n: N_MULTI, p_decrease: 0.5, max_delta: 2.0, seed: 0x408 })
    }
}

fn bench_dims(c: &mut Criterion, dims: usize) {
    let signal = signal_for(dims);
    let eps = vec![1.0; dims];
    let mut group = c.benchmark_group(format!("hot_path/{dims}d"));
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
        .throughput(Throughput::Elements(signal.len() as u64));
    for kind in FilterKind::OVERHEAD_SET {
        let mut filter = kind.build(&eps).expect("valid epsilons");
        // One untimed pass warms the recycled scratch buffers.
        run_filter_steady(filter.as_mut(), &signal);
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| black_box(run_filter_steady(filter.as_mut(), &signal)))
        });
    }
    group.finish();
}

fn hot_path_dims(c: &mut Criterion) {
    for dims in DIMS {
        bench_dims(c, dims);
    }
}

/// Reports heap allocations per point for every filter at each measured
/// dimension count, over one warm steady-state pass. Printed alongside
/// the timing lines (the `allocs/point` unit keeps these out of
/// `BENCH_BASELINE.json`, which only parses `ns/iter` lines).
#[cfg(feature = "alloc-counter")]
fn report_allocs(_c: &mut Criterion) {
    use pla_bench::alloc_counter;
    for dims in DIMS {
        let signal = signal_for(dims);
        let eps = vec![1.0; dims];
        for kind in FilterKind::OVERHEAD_SET {
            let mut filter = kind.build(&eps).expect("valid epsilons");
            run_filter_steady(filter.as_mut(), &signal);
            let (_, allocs) = alloc_counter::count(|| {
                black_box(run_filter_steady(filter.as_mut(), &signal));
            });
            let per_point = allocs as f64 / signal.len() as f64;
            let label = format!("hot_path/allocs/{}d/{}", dims, kind.label());
            eprintln!("{label:60} {allocs:>10} allocs {per_point:14.6} allocs/point");
        }
    }
    eprintln!();
}

#[cfg(not(feature = "alloc-counter"))]
fn report_allocs(_c: &mut Criterion) {
    eprintln!("hot_path: allocs/point not measured (enable --features alloc-counter)\n");
}

criterion_group!(benches, hot_path_dims, report_allocs);
criterion_main!(benches);
