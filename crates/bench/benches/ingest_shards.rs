//! Shard scaling of the multi-stream ingest engine: aggregate
//! samples/second through `pla-ingest`, sweeping shard count × stream
//! count.
//!
//! Each iteration is one complete engine lifecycle — spawn shards,
//! register every stream, feed all samples in round-robin batches, drain
//! at shutdown — because that is the unit a deployment pays for. The
//! total sample count is fixed across cells, so ns/iter is directly
//! comparable along both axes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_eval::experiments::{ingest_run, stream_workload};

/// Samples per cell, split evenly across the cell's streams.
const TOTAL_SAMPLES: usize = 64_000;

fn ingest_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_shards");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
        .throughput(Throughput::Elements(TOTAL_SAMPLES as u64));
    for &streams in &[16usize, 64, 256] {
        let signals = stream_workload(streams, TOTAL_SAMPLES / streams, 0x1A7E57);
        for &shards in &[1usize, 2, 4, 8] {
            group.bench_function(
                BenchmarkId::new(format!("streams={streams}"), format!("shards={shards}")),
                |b| b.iter(|| black_box(ingest_run(shards, &signals))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, ingest_shards);
criterion_main!(benches);
