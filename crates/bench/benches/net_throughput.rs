//! Multiplexed transport throughput: segments/second through one
//! `pla-net` connection (framing, per-stream sequencing, credit flow
//! control, acks, and `StreamDemux` reconstruction), sweeping stream
//! count × credit window.
//!
//! Each iteration is one complete end-to-end transfer of every
//! stream's full segment log — the unit a deployment pays per
//! collection round. The segment population is fixed per stream-count
//! cell, so ns/iter is comparable along the window axis directly.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_core::filters::run_filter;
use pla_core::Segment;
use pla_eval::experiments::{netstream_transfer, stream_workload};
use pla_eval::FilterKind;

/// Samples per cell, split evenly across the cell's streams.
const TOTAL_SAMPLES: usize = 64_000;

fn segment_logs(streams: usize) -> Vec<Vec<Segment>> {
    stream_workload(streams, TOTAL_SAMPLES / streams, 0x7E72)
        .iter()
        .map(|signal| {
            let mut filter = FilterKind::Swing.build(&[0.5]).expect("valid eps");
            run_filter(filter.as_mut(), signal).expect("valid signal")
        })
        .collect()
}

fn net_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_throughput");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    for &streams in &[16usize, 64, 256] {
        let logs = segment_logs(streams);
        let total: u64 = logs.iter().map(|l| l.len() as u64).sum();
        group.throughput(Throughput::Elements(total));
        for &(window, label) in &[(2 * 1024u64, "2KiB"), (64 * 1024, "64KiB")] {
            group.bench_function(
                BenchmarkId::new(format!("streams={streams}"), format!("window={label}")),
                |b| b.iter(|| black_box(netstream_transfer(&logs, window))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, net_throughput);
criterion_main!(benches);
