//! Remote query wire cost: round-trip latency and bytes per query for
//! the `pla-query` serving tier (`QueryClient` ↔ `QueryServer` over a
//! memory link).
//!
//! Each iteration is one complete serving round — dial, version-2
//! handshake, a pipelined burst of requests, and every response
//! decoded — the unit a remote reader pays per refresh. `Elements`
//! cells report queries/second (ns/iter ÷ burst = per-query latency);
//! the `wire_bytes` cell reports bytes/second over the same burst, so
//! bytes/query is its throughput divided by the burst size.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_core::Segment;
use pla_ingest::{SegmentStore, StoreConfig, StreamId};
use pla_net::listen::MemoryAcceptor;
use pla_net::{MemoryRedial, NetConfig};
use pla_query::{Query, QueryClient, QueryClientConfig, QueryServer};

const STREAMS: u64 = 32;
const SEGMENTS_PER_STREAM: usize = 256;
const LINK_CAPACITY: usize = 64 * 1024;

fn populated_store() -> Arc<SegmentStore> {
    let store = Arc::new(SegmentStore::with_config(StoreConfig { shards: 4, seal_threshold: 64 }));
    for stream in 0..STREAMS {
        for i in 0..SEGMENTS_PER_STREAM {
            let (t0, t1) = (i as f64, i as f64 + 1.0);
            let seg = Segment {
                t_start: t0,
                t_end: t1,
                x_start: [t0 * 0.5].into(),
                x_end: [t1 * 0.5].into(),
                connected: i > 0,
                n_points: 2,
                new_recordings: 2,
            };
            store.append(1, StreamId(stream), seg);
        }
    }
    store
}

/// A pipelined burst: point lookups spread across streams and times,
/// plus a range aggregate per fourth query to keep the response sizes
/// honest.
fn burst(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let stream = i as u64 % STREAMS;
            let t = (i % (SEGMENTS_PER_STREAM - 1)) as f64 + 0.5;
            if i % 4 == 3 {
                Query::Range { stream, a: t, b: t + 16.0, dim: 0 }
            } else {
                Query::Point { stream, t, dim: 0 }
            }
        })
        .collect()
}

/// One full serving round; returns wire bytes moved in both directions.
fn serve_round(store: &Arc<SegmentStore>, queries: &[Query]) -> u64 {
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, Arc::clone(store), NetConfig::default());
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, LINK_CAPACITY), QueryClientConfig::default());

    let t0 = Instant::now();
    let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();
    let mut now = t0;
    let mut answered = 0usize;
    while answered < ids.len() {
        now += Duration::from_millis(1);
        client.pump_at(now);
        server.pump();
        let completed = client.take_completed();
        for (_, outcome) in &completed {
            outcome.as_ref().expect("healthy link answers every query");
        }
        answered += completed.len();
    }
    let stats = server.stats();
    stats.bytes_in + stats.bytes_out
}

fn query_wire(c: &mut Criterion) {
    let store = populated_store();
    let mut group = c.benchmark_group("query_wire");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);

    for &pipelined in &[1usize, 16, 128] {
        let queries = burst(pipelined);
        group.throughput(Throughput::Elements(pipelined as u64));
        group
            .bench_function(BenchmarkId::new("roundtrip", format!("pipelined={pipelined}")), |b| {
                b.iter(|| black_box(serve_round(&store, &queries)))
            });
    }

    // Same burst measured in bytes: throughput ÷ 128 = bytes/query.
    let queries = burst(128);
    let wire_bytes = serve_round(&store, &queries);
    group.throughput(Throughput::Bytes(wire_bytes));
    group.bench_function(BenchmarkId::new("wire_bytes", "pipelined=128"), |b| {
        b.iter(|| black_box(serve_round(&store, &queries)))
    });

    group.finish();
}

criterion_group!(benches, query_wire);
criterion_main!(benches);
