//! Serving-tier store benchmarks: the O(streams) shared snapshot
//! against the deep-copy baseline it replaced, point-query latency on a
//! live snapshot, and snapshot throughput while a collector-style
//! writer fans segments in.
//!
//! The `snapshot` A/B pair is the PR's headline number: at 128 streams
//! × 10k segments each, `snapshot()` clones run pointers and short
//! tails while `snapshot_deep()` copies every segment — the shared path
//! must be at least an order of magnitude cheaper.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_core::Segment;
use pla_ingest::{SegmentStore, StoreConfig, StreamId};
use pla_query::StoreQueryEngine;

const STREAMS: usize = 128;
const SEGMENTS_PER_STREAM: usize = 10_000;

fn seg(stream: u64, k: usize) -> Segment {
    let t0 = k as f64;
    let v = (stream as f64) + (k % 11) as f64;
    Segment {
        t_start: t0,
        x_start: [v].into(),
        t_end: t0 + 1.0,
        x_end: [v + 0.5].into(),
        connected: false,
        n_points: 4,
        new_recordings: 4,
    }
}

fn preloaded_store() -> SegmentStore {
    let store = SegmentStore::with_config(StoreConfig::default());
    let mut batch = Vec::with_capacity(SEGMENTS_PER_STREAM);
    for s in 0..STREAMS as u64 {
        batch.clear();
        batch.extend((0..SEGMENTS_PER_STREAM).map(|k| seg(s, k)));
        store.append_batch(s % 4, StreamId(s), &batch);
    }
    store
}

/// `snapshot()` vs `snapshot_deep()` on the same populated store.
fn snapshot_ab(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_concurrent");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    let store = preloaded_store();
    let total = store.total_segments();
    group.throughput(Throughput::Elements(total));
    let label = format!("streams={STREAMS}x{SEGMENTS_PER_STREAM}");
    group.bench_function(BenchmarkId::new("snapshot_shared", &label), |b| {
        b.iter(|| black_box(store.snapshot()))
    });
    group.bench_function(BenchmarkId::new("snapshot_deep", &label), |b| {
        b.iter(|| black_box(store.snapshot_deep()))
    });

    // Point queries against a live snapshot: two-level binary search
    // over sealed runs, no polyline materialized.
    const LOOKUPS: u64 = 1024;
    let engine = StoreQueryEngine::new(store.snapshot());
    group.throughput(Throughput::Elements(LOOKUPS));
    group.bench_function(BenchmarkId::new("point_query", format!("lookups={LOOKUPS}")), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..LOOKUPS {
                let s = i % STREAMS as u64;
                let t = ((i.wrapping_mul(2654435761)) % SEGMENTS_PER_STREAM as u64) as f64 + 0.5;
                acc += engine.point(StreamId(s), t, 0).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Snapshot throughput under live write load: a collector-style writer
/// fans one sealed run per stream into a fresh store while the reader
/// snapshots in a loop. One iteration is the full burst; throughput is
/// segments fanned in.
fn snapshot_contended(c: &mut Criterion) {
    const HOT_STREAMS: u64 = 64;
    const RUN: usize = 64; // one sealed run per stream per burst
    let mut group = c.benchmark_group("store_concurrent");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    group.throughput(Throughput::Elements(HOT_STREAMS * RUN as u64));
    group.bench_function(
        BenchmarkId::new("contended_fanin", format!("streams={HOT_STREAMS}")),
        |b| {
            b.iter(|| {
                let store = SegmentStore::with_config(StoreConfig::default());
                let mut snapshots = 0usize;
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        let mut batch = Vec::with_capacity(RUN);
                        for s in 0..HOT_STREAMS {
                            batch.clear();
                            batch.extend((0..RUN).map(|k| seg(s, k)));
                            store.append_batch(0, StreamId(s), &batch);
                        }
                    });
                    while store.total_segments() < HOT_STREAMS * RUN as u64 {
                        snapshots += black_box(store.snapshot()).streams.len().min(1);
                    }
                });
                black_box((store.snapshot(), snapshots))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, snapshot_ab, snapshot_contended);
criterion_main!(benches);
