//! Raw streaming throughput (points/second) of every filter on long
//! 1-D and 8-D random walks — the number a prospective user asks first.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pla_bench::{multi_walk, run_filter_once, walk_signal, FilterKind, WalkParams};

fn throughput_1d(c: &mut Criterion) {
    const N: usize = 100_000;
    let signal = walk_signal(N, 0.5, 2.0, 0xE1);
    let mut group = c.benchmark_group("throughput/1d");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
        .throughput(Throughput::Elements(N as u64));
    for kind in FilterKind::PAPER_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| black_box(run_filter_once(kind, &[1.0], &signal)))
        });
    }
    group.finish();
}

fn throughput_8d(c: &mut Criterion) {
    const N: usize = 20_000;
    const D: usize = 8;
    let signal = multi_walk(D, WalkParams { n: N, p_decrease: 0.5, max_delta: 2.0, seed: 0xE2 });
    let eps = vec![1.0; D];
    let mut group = c.benchmark_group("throughput/8d");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10)
        .throughput(Throughput::Elements(N as u64));
    for kind in FilterKind::PAPER_SET {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| black_box(run_filter_once(kind, &eps, &signal)))
        });
    }
    group.finish();
}

criterion_group!(benches, throughput_1d, throughput_8d);
criterion_main!(benches);
