//! Shared workload setup for the Criterion benchmarks.
//!
//! One bench target per paper figure (see `benches/`): the benchmarks
//! measure *filter processing cost* at each figure's operating points —
//! the quantity Figure 13 reports — while the `pla-eval` crate's `repro`
//! binary reports the compression-ratio/error numbers the other figures
//! plot (compression ratios are deterministic, so timing them adds
//! nothing).

use pla_core::metrics::CountingSink;
use pla_core::Signal;
pub use pla_eval::FilterKind;
pub use pla_signal::{multi_walk, random_walk, sea_surface, WalkParams};

/// Counting global allocator, enabled by the `alloc-counter` feature.
///
/// Every binary linking `pla-bench` with the feature on (the `hot_path`
/// bench, the alloc-regression tests) routes allocations through a
/// [`std::alloc::System`] wrapper that bumps relaxed atomic counters, so
/// a measurement can ask "how many heap allocations did this closure
/// perform?" — the number that pins the filters' allocation-free
/// hot-path invariant.
#[cfg(feature = "alloc-counter")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// [`System`] wrapper counting allocation events and bytes.
    /// Deallocations are intentionally not tracked: the invariant under
    /// test is "no new heap memory requested on the hot path".
    pub struct CountingAllocator;

    // SAFETY: delegates verbatim to `System`; the counters carry no
    // allocator state.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A growth is a fresh allocation request from the hot path's
            // point of view.
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Allocation events observed so far (process-wide, monotonic).
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::SeqCst)
    }

    /// Bytes requested so far (process-wide, monotonic).
    pub fn bytes() -> u64 {
        BYTES.load(Ordering::SeqCst)
    }

    /// Runs `f`, returning its result plus the number of allocation
    /// events it performed. Only meaningful single-threaded (counters
    /// are process-wide).
    pub fn count<R>(f: impl FnOnce() -> R) -> (R, u64) {
        let before = allocations();
        let result = f();
        (result, allocations() - before)
    }
}

/// Runs one filter over a signal, returning the recording count (consumed
/// by `black_box` in benches so the work cannot be elided).
pub fn run_filter_once(kind: FilterKind, eps: &[f64], signal: &Signal) -> u64 {
    let mut filter = kind.build(eps).expect("valid epsilons");
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink).expect("valid signal");
    }
    filter.finish(&mut sink).expect("flush");
    sink.recordings
}

/// Runs a *pre-built* filter over a signal (push every sample, then
/// `finish`, which resets the filter for the next pass), returning the
/// recording count. This is the steady-state measurement: after the
/// first pass the filter's recycled scratch (hulls, raw-point buffers,
/// regression sums) is warm, so subsequent passes exercise the
/// allocation-free hot path the `hot_path` bench and the `alloc-counter`
/// tests measure.
pub fn run_filter_steady(filter: &mut dyn pla_core::filters::StreamFilter, signal: &Signal) -> u64 {
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink).expect("valid signal");
    }
    filter.finish(&mut sink).expect("flush");
    sink.recordings
}

/// The paper's Figure 9/10 random-walk workload at given parameters.
pub fn walk_signal(n: usize, p_decrease: f64, max_delta: f64, seed: u64) -> Signal {
    random_walk(WalkParams { n, p_decrease, max_delta, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_every_kind() {
        let signal = walk_signal(200, 0.5, 2.0, 1);
        for kind in FilterKind::OVERHEAD_SET {
            let recs = run_filter_once(kind, &[0.5], &signal);
            assert!(recs >= 2, "{}", kind.label());
        }
    }
}
