//! Shared workload setup for the Criterion benchmarks.
//!
//! One bench target per paper figure (see `benches/`): the benchmarks
//! measure *filter processing cost* at each figure's operating points —
//! the quantity Figure 13 reports — while the `pla-eval` crate's `repro`
//! binary reports the compression-ratio/error numbers the other figures
//! plot (compression ratios are deterministic, so timing them adds
//! nothing).

use pla_core::metrics::CountingSink;
use pla_core::Signal;
pub use pla_eval::FilterKind;
pub use pla_signal::{multi_walk, random_walk, sea_surface, WalkParams};

/// Runs one filter over a signal, returning the recording count (consumed
/// by `black_box` in benches so the work cannot be elided).
pub fn run_filter_once(kind: FilterKind, eps: &[f64], signal: &Signal) -> u64 {
    let mut filter = kind.build(eps).expect("valid epsilons");
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink).expect("valid signal");
    }
    filter.finish(&mut sink).expect("flush");
    sink.recordings
}

/// The paper's Figure 9/10 random-walk workload at given parameters.
pub fn walk_signal(n: usize, p_decrease: f64, max_delta: f64, seed: u64) -> Signal {
    random_walk(WalkParams { n, p_decrease, max_delta, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_every_kind() {
        let signal = walk_signal(200, 0.5, 2.0, 1);
        for kind in FilterKind::OVERHEAD_SET {
            let recs = run_filter_once(kind, &[0.5], &signal);
            assert!(recs >= 2, "{}", kind.label());
        }
    }
}
