//! The allocation-free hot-path invariant, asserted.
//!
//! After one warm-up pass (which sizes the recycled hull / raw-point /
//! regression scratch), pushing a 1-D stream through any filter —
//! including every interval close and segment emission along the way —
//! must perform **zero** heap allocations. This is the PR-3 acceptance
//! criterion for the swing and slide filters; the other families are
//! held to the same bar because their state migrated to the same
//! inline-dimension storage.
//!
//! Requires the counting global allocator:
//!
//! ```sh
//! cargo test -p pla-bench --features alloc-counter
//! ```
#![cfg(feature = "alloc-counter")]

use std::sync::Mutex;

use pla_bench::{alloc_counter, multi_walk, walk_signal, FilterKind, WalkParams};
use pla_core::filters::StreamFilter;
use pla_core::metrics::CountingSink;
use pla_core::INLINE_DIMS;

/// The allocation counter is process-wide, but libtest runs `#[test]`s on
/// parallel threads — another test's setup allocations would land inside
/// this test's counting window. Serialize every counting test on one
/// lock (a poisoned lock just means an earlier test failed; counting is
/// still safe).
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn steady_state_push_is_allocation_free_at_d1() {
    let _guard = serial();
    let signal = walk_signal(20_000, 0.5, 2.0, 0xA110C);
    for kind in FilterKind::OVERHEAD_SET {
        let mut filter = kind.build(&[0.8]).expect("valid epsilons");
        let mut sink = CountingSink::default();
        // Warm-up pass: grows hull buffers to their steady capacity and
        // exercises many interval closes; `finish` resets the filter.
        for (t, x) in signal.iter() {
            filter.push(t, x, &mut sink).unwrap();
        }
        filter.finish(&mut sink).unwrap();
        // Steady state: an identical pass must not touch the heap.
        let (_, allocs) = alloc_counter::count(|| {
            for (t, x) in signal.iter() {
                filter.push(t, x, &mut sink).unwrap();
            }
            filter.finish(&mut sink).unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations on the steady-state d=1 push path",
            kind.label()
        );
        assert!(sink.segments > 0, "{}: sanity — segments were emitted", kind.label());
    }
}

#[test]
fn batch_push_is_allocation_free_at_d1() {
    let _guard = serial();
    let signal = walk_signal(20_000, 0.5, 2.0, 0xBA7C);
    let samples: Vec<(f64, &[f64])> = signal.iter().collect();
    for kind in [FilterKind::Swing, FilterKind::Slide] {
        let mut filter = kind.build(&[0.8]).expect("valid epsilons");
        let mut sink = CountingSink::default();
        filter.push_batch(&samples, &mut sink).unwrap();
        filter.finish(&mut sink).unwrap();
        let (_, allocs) = alloc_counter::count(|| {
            filter.push_batch(&samples, &mut sink).unwrap();
            filter.finish(&mut sink).unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations on the steady-state d=1 batch path",
            kind.label()
        );
    }
}

#[test]
fn spill_regime_allocations_are_bounded_per_interval_close() {
    let _guard = serial();
    // Above INLINE_DIMS the per-dimension payloads spill to the heap.
    // PR 3 documented this regime's alloc headroom; the filter now
    // recycles every interval-close buffer — the Pending/Cone arena, the
    // filter-owned SoA envelopes, the one-point-state sample buffer, and
    // the connection probe's candidate lines — so the only steady-state
    // allocations left per close are the payloads that leave the filter
    // inside the emitted Segment (its x_start/x_end DimVecs).
    let d = 2 * INLINE_DIMS;
    let signal = multi_walk(d, WalkParams { n: 8_000, p_decrease: 0.5, max_delta: 2.0, seed: 11 });
    let eps = vec![0.8; d];
    let mut filter = pla_core::filters::SlideFilter::new(&eps).expect("valid epsilons");
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink).unwrap();
    }
    filter.finish(&mut sink).unwrap();
    let before = sink.segments;
    let (_, allocs) = alloc_counter::count(|| {
        for (t, x) in signal.iter() {
            filter.push(t, x, &mut sink).unwrap();
        }
        filter.finish(&mut sink).unwrap();
    });
    let closes = sink.segments - before;
    assert!(closes > 20, "workload sanity: got {closes} closes");
    let per_close = allocs as f64 / closes as f64;
    eprintln!("slide d={d}: {allocs} allocs / {closes} closes = {per_close:.2} per close");
    assert!(
        per_close <= 4.0,
        "slide d={d}: {allocs} allocations over {closes} interval closes \
         ({per_close:.1}/close) — spill-regime recycling has regressed"
    );
}

#[test]
fn metric_increments_are_allocation_free() {
    let _guard = serial();
    // The ops tier's invariant (crates/ops README): once a handle is
    // registered, every increment on the hot path — counter add, gauge
    // set, histogram observe — must stay off the heap, so instrumented
    // collector/ingest loops keep their own alloc-free guarantees.
    let mut reg = pla_ops::Registry::new();
    let counter = reg.counter("pla_bench_frames_total", "Alloc-regression counter.");
    let labeled = reg.counter_with(
        "pla_bench_conn_total",
        "Alloc-regression labeled counter.",
        &[("conn", "1")],
    );
    let gauge = reg.gauge("pla_bench_attached", "Alloc-regression gauge.");
    let hist =
        reg.histogram("pla_bench_latency", "Alloc-regression histogram.", &[0.5, 2.0, 8.0, 32.0]);
    // Warm-up: first touches, in case any primitive defers work.
    counter.inc();
    labeled.add(3);
    gauge.set(1.0);
    gauge.add(0.5);
    hist.observe(1.0);
    let (_, allocs) = alloc_counter::count(|| {
        for i in 0..10_000u64 {
            counter.inc();
            labeled.add(i & 7);
            gauge.set(i as f64);
            gauge.add(0.25);
            hist.observe((i % 64) as f64);
        }
    });
    assert_eq!(allocs, 0, "{allocs} heap allocations across 50k metric increments");
}

#[test]
fn inline_dims_stream_is_allocation_free() {
    let _guard = serial();
    // The inline threshold itself (d == INLINE_DIMS) must stay heap-free;
    // one past it is allowed to allocate (spilled DimVecs).
    let d = INLINE_DIMS;
    let signal = multi_walk(d, WalkParams { n: 5_000, p_decrease: 0.5, max_delta: 2.0, seed: 7 });
    let eps = vec![0.8; d];
    for kind in [FilterKind::Swing, FilterKind::Slide] {
        let mut filter = kind.build(&eps).expect("valid epsilons");
        let mut sink = CountingSink::default();
        for (t, x) in signal.iter() {
            filter.push(t, x, &mut sink).unwrap();
        }
        filter.finish(&mut sink).unwrap();
        let (_, allocs) = alloc_counter::count(|| {
            for (t, x) in signal.iter() {
                filter.push(t, x, &mut sink).unwrap();
            }
            filter.finish(&mut sink).unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations at d = INLINE_DIMS = {d}",
            kind.label()
        );
    }
}
