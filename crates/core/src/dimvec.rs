//! Inline small-vector for per-dimension filter state.
//!
//! Every filter keeps O(d) state per stream — envelopes, slopes, anchors,
//! epsilon widths, segment payloads — and the overwhelmingly common
//! configurations are tiny (`d = 1` for scalar sensors, `d ≤ 4` for the
//! paper's multi-dimensional experiments). Storing that state in `Vec`s
//! or `Box<[f64]>`s puts a heap allocation on every interval close and a
//! pointer chase on every access. [`DimVec`] stores up to
//! [`INLINE_DIMS`] elements inline (no heap, no indirection) and spills
//! to a heap `Vec` only above that, so the steady-state push/close path
//! of every filter is allocation-free for `d ≤ 4` (the *allocation-free
//! hot path* invariant, asserted by the `alloc-counter` tests in
//! `pla-bench`).
//!
//! The element bound `T: Copy + Default` keeps the implementation free of
//! `unsafe`: the inline array is always fully initialized, with
//! `T::default()` filling the unused tail.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Number of dimensions stored inline before [`DimVec`] spills to the
/// heap. Chosen to cover the paper's experimental range (`d ≤ 4` in §5's
/// multi-dimensional runs) while keeping the inline footprint at 32 bytes
/// for `f64` payloads.
pub const INLINE_DIMS: usize = 4;

/// A fixed-small vector: inline storage for up to [`INLINE_DIMS`]
/// elements, heap spill above.
///
/// Semantically a `Vec<T>` restricted to `Copy + Default` elements; it
/// dereferences to a slice, so all slice APIs (indexing, iteration,
/// `copy_from_slice`, …) apply.
///
/// ```
/// use pla_core::DimVec;
///
/// let eps: DimVec<f64> = [0.5, 1.5].as_slice().into();
/// assert_eq!(eps.len(), 2);
/// assert_eq!(eps[1], 1.5);
/// let doubled: DimVec<f64> = eps.iter().map(|e| e * 2.0).collect();
/// assert_eq!(&doubled[..], &[1.0, 3.0]);
/// ```
#[derive(Clone)]
pub struct DimVec<T: Copy + Default> {
    /// Element count. Elements live in `inline[..len]` when
    /// `len <= INLINE_DIMS`, in `spill` (all of them) otherwise.
    len: u32,
    inline: [T; INLINE_DIMS],
    spill: Vec<T>,
}

impl<T: Copy + Default> DimVec<T> {
    /// An empty vector (no heap allocation).
    #[inline]
    pub fn new() -> Self {
        Self { len: 0, inline: [T::default(); INLINE_DIMS], spill: Vec::new() }
    }

    /// An empty vector with room for `d` elements: no-op for `d ≤`
    /// [`INLINE_DIMS`], a single exact-size heap reservation above.
    #[inline]
    pub fn with_capacity(d: usize) -> Self {
        let spill = if d > INLINE_DIMS { Vec::with_capacity(d) } else { Vec::new() };
        Self { len: 0, inline: [T::default(); INLINE_DIMS], spill }
    }

    /// A vector of `d` elements produced by `f(0..d)`.
    #[inline]
    pub fn from_fn(d: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let mut v = Self::with_capacity(d);
        for i in 0..d {
            v.push(f(i));
        }
        v
    }

    /// A vector of `d` copies of `value`.
    #[inline]
    pub fn splat(d: usize, value: T) -> Self {
        Self::from_fn(d, |_| value)
    }

    /// A vector holding a copy of `slice`.
    #[inline]
    pub fn from_slice(slice: &[T]) -> Self {
        let mut inline = [T::default(); INLINE_DIMS];
        if slice.len() <= INLINE_DIMS {
            inline[..slice.len()].copy_from_slice(slice);
            Self { len: slice.len() as u32, inline, spill: Vec::new() }
        } else {
            // One exact-size allocation plus a memcpy — matches what
            // `slice.to_vec()` used to cost before DimVec existed.
            Self { len: slice.len() as u32, inline, spill: slice.to_vec() }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the vector holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the elements live inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        self.len as usize <= INLINE_DIMS
    }

    /// Appends an element, spilling to the heap when crossing
    /// [`INLINE_DIMS`].
    pub fn push(&mut self, value: T) {
        let len = self.len as usize;
        if len < INLINE_DIMS {
            self.inline[len] = value;
        } else {
            if len == INLINE_DIMS {
                // Crossing the boundary: move the inline prefix over,
                // reserving enough that incremental dimension-by-
                // dimension fills don't re-grow immediately.
                self.spill.clear();
                self.spill.reserve(2 * INLINE_DIMS);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Appends every element of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[T]) {
        for &v in slice {
            self.push(v);
        }
    }

    /// Removes all elements. Spill capacity is retained for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.is_inline() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len as usize <= INLINE_DIMS {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }

    /// Overwrites the contents with a copy of `slice`, reusing existing
    /// storage when the lengths match (the common refill case).
    pub fn assign(&mut self, slice: &[T]) {
        if self.len() == slice.len() {
            self.as_mut_slice().copy_from_slice(slice);
        } else {
            self.clear();
            self.extend_from_slice(slice);
        }
    }
}

impl DimVec<f64> {
    /// Fixed-width view of the inline block for the lane kernels
    /// (`crate::kern`): all [`INLINE_DIMS`] lanes — the live `len()`
    /// prefix plus the `0.0` padding tail the kernels rely on being
    /// neutral.
    ///
    /// Callers must hold the *zero-tail invariant*: every lane past
    /// `len()` is exactly `0.0`. All construction paths a fixed-length
    /// vector uses (`new` + `push`, `from_fn`, `from_slice`, same-length
    /// `assign`/`copy_from_slice`) preserve it, and every mutating
    /// kernel writes `0.0` back to padding lanes. The shrinking `assign`
    /// path does *not* (it leaves stale tail values) — fixed-`d` filter
    /// state never shrinks, and the debug assertion below catches any
    /// violation in tests.
    #[inline]
    pub(crate) fn lanes(&self) -> &[f64; INLINE_DIMS] {
        debug_assert!(self.is_inline(), "lanes() on a spilled DimVec");
        debug_assert!(
            self.inline[self.len()..].iter().all(|&v| v == 0.0),
            "lanes(): non-zero padding tail {:?}",
            &self.inline[self.len()..]
        );
        &self.inline
    }

    /// Mutable fixed-width view of the inline block; same contract as
    /// [`Self::lanes`] — kernels must keep padding lanes at `0.0`.
    #[inline]
    pub(crate) fn lanes_mut(&mut self) -> &mut [f64; INLINE_DIMS] {
        debug_assert!(self.is_inline(), "lanes_mut() on a spilled DimVec");
        debug_assert!(
            self.inline[self.len()..].iter().all(|&v| v == 0.0),
            "lanes_mut(): non-zero padding tail {:?}",
            &self.inline[self.len()..]
        );
        &mut self.inline
    }
}

impl<T: Copy + Default> Default for DimVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> Deref for DimVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default> DerefMut for DimVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default> From<&[T]> for DimVec<T> {
    fn from(slice: &[T]) -> Self {
        Self::from_slice(slice)
    }
}

impl<T: Copy + Default, const N: usize> From<[T; N]> for DimVec<T> {
    fn from(arr: [T; N]) -> Self {
        Self::from_slice(&arr)
    }
}

impl<T: Copy + Default> From<Vec<T>> for DimVec<T> {
    fn from(vec: Vec<T>) -> Self {
        if vec.len() > INLINE_DIMS {
            // Take the allocation as the spill storage — no copy.
            Self { len: vec.len() as u32, inline: [T::default(); INLINE_DIMS], spill: vec }
        } else {
            Self::from_slice(&vec)
        }
    }
}

impl<T: Copy + Default> From<Box<[T]>> for DimVec<T> {
    fn from(boxed: Box<[T]>) -> Self {
        Self::from_slice(&boxed)
    }
}

impl<T: Copy + Default> FromIterator<T> for DimVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = Self::with_capacity(iter.size_hint().0);
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default> Extend<T> for DimVec<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<'a, T: Copy + Default> IntoIterator for &'a DimVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for DimVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq> PartialEq<[T]> for DimVec<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<[T; N]> for DimVec<T> {
    fn eq(&self, other: &[T; N]) -> bool {
        self.as_slice() == other
    }
}

impl<T: Copy + Default + fmt::Debug> fmt::Debug for DimVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(feature = "serde")]
impl<T: Copy + Default + serde::Serialize> serde::Serialize for DimVec<T> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.as_slice())
    }
}

#[cfg(feature = "serde")]
impl<'de, T: Copy + Default + serde::Deserialize<'de>> serde::Deserialize<'de> for DimVec<T> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(deserializer)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_inline_basics() {
        let mut v: DimVec<f64> = DimVec::new();
        assert!(v.is_empty());
        assert!(v.is_inline());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        v.push(1.0);
        v.push(2.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert!(v.is_inline());
    }

    #[test]
    fn spills_beyond_inline_dims_and_preserves_order() {
        let n = INLINE_DIMS + 3;
        let v = DimVec::from_fn(n, |i| i as f64);
        assert_eq!(v.len(), n);
        assert!(!v.is_inline());
        for i in 0..n {
            assert_eq!(v[i], i as f64);
        }
    }

    #[test]
    fn exactly_inline_dims_stays_inline() {
        let v = DimVec::from_fn(INLINE_DIMS, |i| i as f64);
        assert!(v.is_inline());
        assert_eq!(v.len(), INLINE_DIMS);
        assert_eq!(v[INLINE_DIMS - 1], (INLINE_DIMS - 1) as f64);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v = DimVec::from_slice(&[1.0, 2.0, 3.0]);
        v[1] = 9.0;
        v.as_mut_slice().copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(v, [4.0, 5.0, 6.0]);
        let mut big = DimVec::from_fn(INLINE_DIMS + 2, |i| i as f64);
        big[INLINE_DIMS + 1] = -1.0;
        assert_eq!(big[INLINE_DIMS + 1], -1.0);
    }

    #[test]
    fn assign_reuses_and_resizes() {
        let mut v = DimVec::from_slice(&[1.0, 2.0]);
        v.assign(&[3.0, 4.0]);
        assert_eq!(v, [3.0, 4.0]);
        v.assign(&[5.0]);
        assert_eq!(v, [5.0]);
        let long: Vec<f64> = (0..INLINE_DIMS + 4).map(|i| i as f64).collect();
        v.assign(&long);
        assert_eq!(v.as_slice(), &long[..]);
        v.assign(&[0.5, 0.25]);
        assert_eq!(v, [0.5, 0.25]);
        assert!(v.is_inline());
    }

    #[test]
    fn clear_then_refill_crosses_boundary_correctly() {
        let mut v = DimVec::from_fn(INLINE_DIMS + 1, |i| i as f64);
        v.clear();
        assert!(v.is_empty());
        v.push(42.0);
        assert!(v.is_inline());
        assert_eq!(v, [42.0]);
    }

    #[test]
    fn conversions_and_collect() {
        let from_vec: DimVec<f64> = vec![1.0, 2.0].into();
        let from_arr: DimVec<f64> = [1.0, 2.0].into();
        let from_boxed: DimVec<f64> = vec![1.0, 2.0].into_boxed_slice().into();
        let collected: DimVec<f64> = [1.0, 2.0].iter().copied().collect();
        assert_eq!(from_vec, from_arr);
        assert_eq!(from_vec, from_boxed);
        assert_eq!(from_vec, collected);
    }

    #[test]
    fn equality_compares_logical_contents_only() {
        // Same contents, different histories (one spilled and shrank).
        let a = DimVec::from_slice(&[1.0, 2.0]);
        let mut b = DimVec::from_fn(INLINE_DIMS + 2, |i| i as f64);
        b.assign(&[1.0, 2.0]);
        assert_eq!(a, b);
        assert_ne!(a, DimVec::from_slice(&[1.0]));
        assert_ne!(a, DimVec::from_slice(&[1.0, 2.5]));
    }

    #[test]
    fn splat_and_debug() {
        let v: DimVec<f64> = DimVec::splat(3, 0.5);
        assert_eq!(v, [0.5, 0.5, 0.5]);
        assert_eq!(format!("{v:?}"), "[0.5, 0.5, 0.5]");
    }

    #[test]
    fn works_with_non_float_payloads() {
        use pla_geom::{Line, Point2};
        let lines = DimVec::from_fn(2, |i| Line::new(Point2::new(0.0, i as f64), 1.0));
        assert_eq!(lines[1].x0, 1.0);
        let opts: DimVec<Option<Point2>> = DimVec::splat(3, None);
        assert!(opts.iter().all(|o| o.is_none()));
    }

    #[test]
    fn slice_apis_through_deref() {
        let v = DimVec::from_slice(&[3.0, 1.0, 2.0]);
        assert_eq!(v.iter().copied().fold(f64::MIN, f64::max), 3.0);
        assert_eq!(v.to_vec(), vec![3.0, 1.0, 2.0]);
        assert!(v.contains(&1.0));
    }
}
