//! Error types for filter construction and streaming.

use std::fmt;

/// Errors reported by filter constructors and the streaming API.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// A precision width `εᵢ` was zero, negative, NaN or infinite.
    ///
    /// The paper's guarantee is stated for strictly positive precision
    /// widths; `ε = 0` would force a recording for every point that is not
    /// exactly collinear, which callers should express by not filtering.
    InvalidEpsilon {
        /// Index of the offending dimension.
        dim: usize,
        /// The rejected value.
        value: f64,
    },
    /// The filter was constructed with zero dimensions.
    ZeroDimensions,
    /// `m_max_lag` must allow at least two points per filtering interval;
    /// smaller values cannot even hold the two points that define the
    /// initial envelopes.
    InvalidMaxLag {
        /// The rejected value.
        value: usize,
    },
    /// A pushed sample had a different dimensionality than the filter.
    DimensionMismatch {
        /// Dimensions the filter was built with.
        expected: usize,
        /// Dimensions of the offending sample.
        got: usize,
    },
    /// Timestamps must be strictly increasing and finite.
    NonMonotonicTime {
        /// Timestamp of the previously accepted sample.
        previous: f64,
        /// The offending timestamp.
        offending: f64,
    },
    /// A pushed value was NaN or infinite.
    NonFiniteValue {
        /// Dimension of the offending value.
        dim: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidEpsilon { dim, value } => {
                write!(f, "precision width for dimension {dim} must be finite and > 0, got {value}")
            }
            Self::ZeroDimensions => write!(f, "filters need at least one dimension"),
            Self::InvalidMaxLag { value } => {
                write!(f, "m_max_lag must be at least 2, got {value}")
            }
            Self::DimensionMismatch { expected, got } => {
                write!(f, "sample has {got} dimensions, filter expects {expected}")
            }
            Self::NonMonotonicTime { previous, offending } => {
                write!(
                    f,
                    "timestamps must be finite and strictly increasing: got {offending} after {previous}"
                )
            }
            Self::NonFiniteValue { dim, value } => {
                write!(f, "value for dimension {dim} must be finite, got {value}")
            }
        }
    }
}

impl std::error::Error for FilterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FilterError::InvalidEpsilon { dim: 2, value: -1.0 };
        let s = e.to_string();
        assert!(s.contains("dimension 2"));
        assert!(s.contains("-1"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FilterError::ZeroDimensions, FilterError::ZeroDimensions);
        assert_ne!(FilterError::ZeroDimensions, FilterError::InvalidMaxLag { value: 1 });
    }
}
