//! Error types for filter construction and streaming.

use std::fmt;

/// Errors reported by filter constructors and the streaming API.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// A precision width `εᵢ` was zero, negative, NaN or infinite.
    ///
    /// The paper's guarantee is stated for strictly positive precision
    /// widths; `ε = 0` would force a recording for every point that is not
    /// exactly collinear, which callers should express by not filtering.
    InvalidEpsilon {
        /// Index of the offending dimension.
        dim: usize,
        /// The rejected value.
        value: f64,
    },
    /// The filter was constructed with zero dimensions.
    ZeroDimensions,
    /// `m_max_lag` must allow at least two points per filtering interval;
    /// smaller values cannot even hold the two points that define the
    /// initial envelopes.
    InvalidMaxLag {
        /// The rejected value.
        value: usize,
    },
    /// A pushed sample had a different dimensionality than the filter.
    DimensionMismatch {
        /// Dimensions the filter was built with.
        expected: usize,
        /// Dimensions of the offending sample.
        got: usize,
    },
    /// A timestamp was NaN or infinite.
    ///
    /// Reported separately from [`FilterError::NonMonotonicTime`] so a NaN
    /// `t` on the very first sample does not log a misleading
    /// `previous: -inf` comparison.
    NonFiniteTime {
        /// The offending timestamp.
        offending: f64,
    },
    /// Timestamps must be strictly increasing.
    NonMonotonicTime {
        /// Timestamp of the previously accepted sample.
        previous: f64,
        /// The offending timestamp.
        offending: f64,
    },
    /// A pushed value was NaN or infinite.
    NonFiniteValue {
        /// Dimension of the offending value.
        dim: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidEpsilon { dim, value } => {
                write!(f, "precision width for dimension {dim} must be finite and > 0, got {value}")
            }
            Self::ZeroDimensions => write!(f, "filters need at least one dimension"),
            Self::InvalidMaxLag { value } => {
                write!(f, "m_max_lag must be at least 2, got {value}")
            }
            Self::DimensionMismatch { expected, got } => {
                write!(f, "sample has {got} dimensions, filter expects {expected}")
            }
            Self::NonFiniteTime { offending } => {
                write!(f, "timestamps must be finite, got {offending}")
            }
            Self::NonMonotonicTime { previous, offending } => {
                write!(
                    f,
                    "timestamps must be strictly increasing: got {offending} after {previous}"
                )
            }
            Self::NonFiniteValue { dim, value } => {
                write!(f, "value for dimension {dim} must be finite, got {value}")
            }
        }
    }
}

impl std::error::Error for FilterError {}

/// A batch push failed part-way through.
///
/// [`StreamFilter::push_batch`](crate::filters::StreamFilter::push_batch)
/// absorbs the longest valid prefix of a batch before reporting the first
/// invalid sample; this error carries that prefix length so callers can
/// account for every sample (the `pla-ingest` stream table relies on it
/// for exact quarantine bookkeeping).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// Samples absorbed before the failure — the filter's state reflects
    /// exactly these, as if they had been `push`ed one by one.
    pub absorbed: usize,
    /// The verdict on sample `absorbed` (the first invalid one).
    pub error: FilterError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "batch rejected at sample {}: {}", self.absorbed, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FilterError::InvalidEpsilon { dim: 2, value: -1.0 };
        let s = e.to_string();
        assert!(s.contains("dimension 2"));
        assert!(s.contains("-1"));
    }

    #[test]
    fn non_finite_time_names_no_previous_sample() {
        let s = FilterError::NonFiniteTime { offending: f64::NAN }.to_string();
        assert!(s.contains("finite"));
        assert!(!s.contains("after"), "must not reference a previous timestamp: {s}");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FilterError::ZeroDimensions, FilterError::ZeroDimensions);
        assert_ne!(FilterError::ZeroDimensions, FilterError::InvalidMaxLag { value: 1 });
    }
}
