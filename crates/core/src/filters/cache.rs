//! The cache filter: piece-wise constant approximation (paper §2.2).
//!
//! The cache filter predicts that the next data point equals a cached
//! value; points within `εᵢ` of the cache in every dimension are filtered
//! out. Three variants choose the cached/recorded value:
//!
//! * [`CacheVariant::FirstValue`] — the value of the first point of the
//!   run (Olston et al., the paper's default comparison baseline);
//! * [`CacheVariant::Midrange`] — `(min+max)/2` of the run, the
//!   L∞-optimal representative (Lazaridis & Mehrotra's PMC-MR); a run
//!   continues while `max − min ≤ 2εᵢ` holds in every dimension;
//! * [`CacheVariant::Mean`] — the run mean, clamped into
//!   `[max−εᵢ, min+εᵢ]` so the precision guarantee still holds (the
//!   unclamped mean of a run can stray more than `ε` from an extreme
//!   point; Lazaridis & Mehrotra's PMC-MEAN has the same issue, which we
//!   fix by clamping — see DESIGN.md).
//!
//! For the `FirstValue` variant the recording is available the moment the
//! run starts, so the receiver lag is zero; the other two variants lag by
//! the current run length, like the paper's swing/slide filters.

use crate::dimvec::DimVec;
use crate::error::FilterError;
use crate::kern::{self, Dispatch};
use crate::segment::{validate_epsilons, Segment, SegmentSink};

use super::common::{point_segment, violates};
use super::{validate_push, StreamFilter};

/// Strategy for choosing a run's recorded value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheVariant {
    /// Record the first value of the run (Olston et al.).
    #[default]
    FirstValue,
    /// Record the midrange of the run (L∞-optimal, Lazaridis & Mehrotra).
    Midrange,
    /// Record the clamped mean of the run (Lazaridis & Mehrotra, clamped for safety).
    Mean,
}

#[derive(Debug, Clone)]
struct Run {
    t_first: f64,
    t_last: f64,
    /// Cached value per dimension (`FirstValue`) — also min/max/mean
    /// accumulators for the other variants.
    first: DimVec<f64>,
    min: DimVec<f64>,
    max: DimVec<f64>,
    sum: DimVec<f64>,
    n: u32,
}

/// Piece-wise constant filter. See the module docs.
///
/// ```
/// use pla_core::filters::{CacheFilter, StreamFilter};
/// use pla_core::Segment;
///
/// let mut filter = CacheFilter::new(&[0.25]).unwrap();
/// let mut out: Vec<Segment> = Vec::new();
/// for (j, x) in [1.0, 1.1, 0.9, 1.2, 5.0, 5.1].iter().enumerate() {
///     filter.push(j as f64, &[*x], &mut out).unwrap();
/// }
/// filter.finish(&mut out).unwrap();
/// // Two constant runs, one recording each.
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].new_recordings, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheFilter {
    eps: DimVec<f64>,
    variant: CacheVariant,
    run: Option<Run>,
    /// Per-dimension iteration strategy (`d ≤ 4` lane kernels, generic
    /// loop otherwise), decided at construction.
    dispatch: Dispatch,
}

impl CacheFilter {
    /// Creates a cache filter with the default [`CacheVariant::FirstValue`]
    /// behaviour.
    pub fn new(eps: &[f64]) -> Result<Self, FilterError> {
        Self::with_variant(eps, CacheVariant::default())
    }

    /// Creates a cache filter with an explicit variant.
    pub fn with_variant(eps: &[f64], variant: CacheVariant) -> Result<Self, FilterError> {
        validate_epsilons(eps)?;
        let dispatch = Dispatch::auto(eps.len(), false);
        Ok(Self { eps: eps.into(), variant, run: None, dispatch })
    }

    /// The configured variant.
    pub fn variant(&self) -> CacheVariant {
        self.variant
    }

    /// Forces a specific [`Dispatch`] (sanitized against the dimension
    /// count). Test hook for the byte-identity proptests.
    #[doc(hidden)]
    pub fn force_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch.sanitized(self.eps.len(), false);
        self
    }

    /// The per-dimension dispatch decided at construction.
    #[doc(hidden)]
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Fused acceptance test + run update: absorbs `(t, x)` into the run
    /// and returns `true`, or leaves the run untouched and returns
    /// `false`. Every dispatch branch evaluates the same expression tree
    /// — min/max use compare-and-select (`a < b ? a : b`) semantics to
    /// match the SIMD instructions bit-for-bit — so the output stream is
    /// byte-identical across dispatches (pinned by the proptests).
    ///
    /// Associated (not `&self`) so the push hot path can run while
    /// holding a disjoint mutable borrow of the live run.
    fn step(
        dispatch: Dispatch,
        variant: CacheVariant,
        eps: &DimVec<f64>,
        run: &mut Run,
        t: f64,
        x: &[f64],
    ) -> bool {
        let accepted = match variant {
            CacheVariant::FirstValue => {
                let fit = match dispatch {
                    Dispatch::Lanes(k) => kern::fits_const(k, run.first.lanes(), eps.lanes(), x),
                    _ => {
                        let first = run.first.as_slice();
                        !violates(eps.as_slice(), x, |d| first[d])
                    }
                };
                if fit {
                    match dispatch {
                        Dispatch::Lanes(k) => kern::minmax_sum(
                            k,
                            run.min.lanes_mut(),
                            run.max.lanes_mut(),
                            run.sum.lanes_mut(),
                            x,
                        ),
                        _ => {
                            let min = run.min.as_mut_slice();
                            let max = run.max.as_mut_slice();
                            let sum = run.sum.as_mut_slice();
                            for (d, &v) in x.iter().enumerate() {
                                min[d] = if min[d] < v { min[d] } else { v };
                                max[d] = if max[d] > v { max[d] } else { v };
                                sum[d] += v;
                            }
                        }
                    }
                }
                fit
            }
            // Run stays representable while every dimension's range,
            // including the candidate, spans at most 2ε.
            CacheVariant::Midrange | CacheVariant::Mean => match dispatch {
                Dispatch::Lanes(k) => kern::range_step(
                    k,
                    run.min.lanes_mut(),
                    run.max.lanes_mut(),
                    run.sum.lanes_mut(),
                    eps.lanes(),
                    x,
                ),
                _ => {
                    let fit = {
                        let (min, max) = (run.min.as_slice(), run.max.as_slice());
                        x.iter().enumerate().all(|(d, &v)| {
                            let lo = if min[d] < v { min[d] } else { v };
                            let hi = if max[d] > v { max[d] } else { v };
                            hi - lo <= 2.0 * eps[d]
                        })
                    };
                    if fit {
                        let min = run.min.as_mut_slice();
                        let max = run.max.as_mut_slice();
                        let sum = run.sum.as_mut_slice();
                        for (d, &v) in x.iter().enumerate() {
                            min[d] = if min[d] < v { min[d] } else { v };
                            max[d] = if max[d] > v { max[d] } else { v };
                            sum[d] += v;
                        }
                    }
                    fit
                }
            },
        };
        if accepted {
            run.t_last = t;
            run.n += 1;
        }
        accepted
    }

    fn start_run(t: f64, x: &[f64]) -> Run {
        Run {
            t_first: t,
            t_last: t,
            first: x.into(),
            min: x.into(),
            max: x.into(),
            sum: x.into(),
            n: 1,
        }
    }

    fn representative(&self, run: &Run, dim: usize) -> f64 {
        match self.variant {
            CacheVariant::FirstValue => run.first[dim],
            CacheVariant::Midrange => 0.5 * (run.min[dim] + run.max[dim]),
            CacheVariant::Mean => {
                let mean = run.sum[dim] / run.n as f64;
                // Clamp into the feasible band so |mean − x| ≤ ε for every
                // point of the run. Non-empty because max − min ≤ 2ε.
                mean.clamp(run.max[dim] - self.eps[dim], run.min[dim] + self.eps[dim])
            }
        }
    }

    fn emit(&self, run: &Run, sink: &mut dyn SegmentSink) {
        let value = DimVec::from_fn(self.eps.len(), |d| self.representative(run, d));
        sink.segment(Segment {
            t_start: run.t_first,
            x_start: value.clone(),
            t_end: run.t_last,
            x_end: value,
            connected: false,
            n_points: run.n,
            // One recording per constant segment: the receiver holds the
            // value until the next message arrives (§2.2).
            new_recordings: 1,
        });
    }
}

impl StreamFilter for CacheFilter {
    fn dims(&self) -> usize {
        self.eps.len()
    }

    fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        validate_push(self.dims(), self.run.as_ref().map(|r| r.t_last), t, x)?;
        // The live run is mutated in place — moving it out of the Option
        // and back costs a struct copy per point, which dominates this
        // filter's tiny per-point work.
        match &mut self.run {
            None => self.run = Some(Self::start_run(t, x)),
            Some(run) => {
                if !Self::step(self.dispatch, self.variant, &self.eps, run, t, x) {
                    let done = std::mem::replace(run, Self::start_run(t, x));
                    self.emit(&done, sink);
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        if let Some(run) = self.run.take() {
            if run.n == 1 {
                sink.segment(point_segment(run.t_first, &run.first, false));
            } else {
                self.emit(&run, sink);
            }
        }
        Ok(())
    }

    fn pending_points(&self) -> usize {
        match (&self.run, self.variant) {
            // FirstValue: the receiver could have been told the value when
            // the run began, so nothing is pending beyond that message.
            (Some(_), CacheVariant::FirstValue) => 0,
            (Some(run), _) => run.n as usize,
            (None, _) => 0,
        }
    }

    fn name(&self) -> &'static str {
        "cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::run_filter;
    use crate::sample::Signal;

    fn compress(values: &[f64], eps: f64, variant: CacheVariant) -> Vec<Segment> {
        let mut f = CacheFilter::with_variant(&[eps], variant).unwrap();
        run_filter(&mut f, &Signal::from_values(values)).unwrap()
    }

    #[test]
    fn constant_signal_is_one_segment() {
        let segs = compress(&[5.0; 20], 0.1, CacheVariant::FirstValue);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 20);
        assert_eq!(segs[0].new_recordings, 1);
    }

    #[test]
    fn jump_starts_new_segment() {
        let segs = compress(&[0.0, 0.05, 10.0, 10.05], 0.1, CacheVariant::FirstValue);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].x_start[0], 0.0);
        assert_eq!(segs[1].x_start[0], 10.0);
    }

    #[test]
    fn first_value_variant_records_first_point() {
        let segs = compress(&[1.0, 1.09, 0.95], 0.1, CacheVariant::FirstValue);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].x_start[0], 1.0);
    }

    #[test]
    fn midrange_variant_covers_wider_runs() {
        // Oscillation of amplitude 1.5ε: first-value splits, midrange does
        // not (range 1.5ε ≤ 2ε).
        let values = [0.0, 0.15, 0.0, 0.15, 0.0];
        let fv = compress(&values, 0.1, CacheVariant::FirstValue);
        let mr = compress(&values, 0.1, CacheVariant::Midrange);
        assert!(fv.len() > 1);
        assert_eq!(mr.len(), 1);
        assert!((mr[0].x_start[0] - 0.075).abs() < 1e-12);
    }

    #[test]
    fn mean_variant_clamps_into_feasible_band() {
        // Run 0,0,0,0.2 with ε=0.1: mean 0.05 is 0.15 away from 0.2 →
        // must clamp up to max−ε = 0.1.
        let segs = compress(&[0.0, 0.0, 0.0, 0.2], 0.1, CacheVariant::Mean);
        assert_eq!(segs.len(), 1);
        let v = segs[0].x_start[0];
        for x in [0.0, 0.0, 0.0, 0.2] {
            assert!((x - v).abs() <= 0.1 + 1e-12, "value {v} misses point {x}");
        }
    }

    #[test]
    fn multi_dim_violation_in_any_dimension_splits() {
        let mut f = CacheFilter::new(&[1.0, 0.1]).unwrap();
        let mut s = Signal::new(2);
        s.push(0.0, &[0.0, 0.0]).unwrap();
        s.push(1.0, &[0.5, 0.05]).unwrap(); // fine in both
        s.push(2.0, &[0.5, 0.5]).unwrap(); // dim 1 violates
        let segs = run_filter(&mut f, &s).unwrap();
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn single_point_stream_yields_point_segment() {
        let segs = compress(&[7.0], 0.1, CacheVariant::FirstValue);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].t_start, segs[0].t_end);
        assert_eq!(segs[0].n_points, 1);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let mut f = CacheFilter::new(&[0.1]).unwrap();
        let mut out: Vec<Segment> = Vec::new();
        f.finish(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn filter_is_reusable_after_finish() {
        let mut f = CacheFilter::new(&[0.1]).unwrap();
        let s = Signal::from_values(&[1.0, 1.0, 9.0]);
        let a = run_filter(&mut f, &s).unwrap();
        let b = run_filter(&mut f, &s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn precision_guarantee_holds_for_all_variants() {
        let values: Vec<f64> =
            (0..200).map(|i| ((i as f64) * 0.37).sin() * 3.0 + (i % 7) as f64 * 0.1).collect();
        let signal = Signal::from_values(&values);
        for variant in [CacheVariant::FirstValue, CacheVariant::Midrange, CacheVariant::Mean] {
            let mut f = CacheFilter::with_variant(&[0.5], variant).unwrap();
            let segs = run_filter(&mut f, &signal).unwrap();
            for (t, x) in signal.iter() {
                let seg = segs.iter().find(|s| s.covers(t)).expect("every sample covered");
                assert!(
                    (seg.eval(t, 0) - x[0]).abs() <= 0.5 + 1e-9,
                    "{variant:?} broke the guarantee at t={t}"
                );
            }
        }
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(CacheFilter::new(&[]).is_err());
        assert!(CacheFilter::new(&[-1.0]).is_err());
    }
}
