//! Helpers shared by the filter implementations.

use crate::error::FilterError;
use crate::sample::Signal;
use crate::segment::Segment;

use super::StreamFilter;

/// Compresses a whole in-memory [`Signal`] through `filter`, returning the
/// emitted segments. Convenience wrapper over the streaming API used by
/// tests, examples, and the experiment harness.
pub fn run_filter<F: StreamFilter + ?Sized>(
    filter: &mut F,
    signal: &Signal,
) -> Result<Vec<Segment>, FilterError> {
    let mut out: Vec<Segment> = Vec::new();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut out)?;
    }
    filter.finish(&mut out)?;
    Ok(out)
}

/// Builds a degenerate single-point segment (used when a stream ends with
/// an interval holding one lone sample).
pub(crate) fn point_segment(t: f64, x: &[f64], connected: bool) -> Segment {
    Segment {
        t_start: t,
        x_start: x.into(),
        t_end: t,
        x_end: x.into(),
        connected,
        n_points: 1,
        new_recordings: 1,
    }
}

/// True when any dimension of `x` deviates from `pred` by more than its
/// `ε` (the shared violation test of cache and linear filters).
#[inline]
pub(crate) fn violates(eps: &[f64], x: &[f64], pred: impl Fn(usize) -> f64) -> bool {
    x.iter().enumerate().any(|(dim, &v)| (v - pred(dim)).abs() > eps[dim])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violates_checks_every_dimension() {
        let eps = [1.0, 0.1];
        let pred = |_dim: usize| 0.0;
        assert!(!violates(&eps, &[0.5, 0.05], pred));
        assert!(violates(&eps, &[0.5, 0.2], pred));
        assert!(violates(&eps, &[1.5, 0.0], pred));
        // exactly ε is acceptable (closed bound)
        assert!(!violates(&eps, &[1.0, 0.1], pred));
    }

    #[test]
    fn point_segment_is_degenerate() {
        let s = point_segment(2.0, &[1.0, -1.0], false);
        assert_eq!(s.t_start, s.t_end);
        assert_eq!(s.n_points, 1);
        assert_eq!(s.new_recordings, 1);
        assert_eq!(s.eval(2.0, 1), -1.0);
    }
}
