//! Kalman-filter baseline (paper §6, Jain et al., SIGMOD 2004).
//!
//! Jain et al. compress streams by running a Kalman filter on both ends:
//! the transmitter stays silent while the receiver's (identical) Kalman
//! prediction is within ε of the truth, and sends a correction otherwise.
//! The paper positions this as the adaptive baseline that can *model*
//! cache and linear filters but — maintaining a single hypothesis —
//! cannot simulate swing/slide's candidate sets.
//!
//! To make the comparison live inside this library's segment model, the
//! baseline here is a **Kalman-slope linear filter**: a connected linear
//! filter whose segment slope is the constant-velocity Kalman estimate at
//! segment start, rather than the slope through the first two points.
//! Acceptance is the plain `|x − line(t)| ≤ εᵢ` test, so the precision
//! guarantee is unconditional; the Kalman state only chooses *better
//! slopes* — which is exactly where the smoothing helps on noisy
//! signals. Process/measurement noise are configurable per filter.

use crate::dimvec::DimVec;
use crate::error::FilterError;
use crate::kern::{self, Dispatch};
use crate::segment::{validate_epsilons, Segment, SegmentSink};

use super::common::point_segment;
use super::{validate_push, StreamFilter};

/// One-dimensional constant-velocity Kalman state.
///
/// State vector `(x, v)`; transition `x ← x + v·dt`; position-only
/// measurements. Exposed publicly because the transport layer's receiver
/// documentation refers to it and because it is a useful building block
/// on its own.
#[derive(Debug, Clone, Copy)]
pub struct Kalman1D {
    /// Estimated position.
    pub x: f64,
    /// Estimated velocity.
    pub v: f64,
    // Covariance matrix entries (symmetric 2×2).
    p00: f64,
    p01: f64,
    p11: f64,
    /// Process-noise intensity (white-noise acceleration model).
    q: f64,
    /// Measurement-noise variance.
    r: f64,
}

impl Default for Kalman1D {
    /// A zeroed tracker at the origin with unit measurement noise —
    /// carries no estimation meaning; exists so trackers can live in
    /// fixed-capacity inline storage ([`DimVec`]).
    fn default() -> Self {
        Self::new(0.0, 0.0, 1.0)
    }
}

impl Kalman1D {
    /// Creates a tracker at the given position with unknown velocity.
    pub fn new(x0: f64, process_noise: f64, measurement_noise: f64) -> Self {
        Self {
            x: x0,
            v: 0.0,
            p00: measurement_noise.max(1e-9),
            p01: 0.0,
            p11: 1.0,
            q: process_noise.max(0.0),
            r: measurement_noise.max(1e-12),
        }
    }

    /// Advances the state by `dt` (prediction step).
    pub fn predict(&mut self, dt: f64) {
        self.x += self.v * dt;
        // P ← F P Fᵀ + Q, with white-noise-acceleration Q.
        let p00 = self.p00 + dt * (2.0 * self.p01 + dt * self.p11);
        let p01 = self.p01 + dt * self.p11;
        let dt2 = dt * dt;
        self.p00 = p00 + self.q * dt2 * dt2 / 4.0;
        self.p01 = p01 + self.q * dt2 * dt / 2.0;
        self.p11 += self.q * dt2;
    }

    /// Folds in a position measurement (update step).
    pub fn update(&mut self, z: f64) {
        let s = self.p00 + self.r;
        let k0 = self.p00 / s;
        let k1 = self.p01 / s;
        let innovation = z - self.x;
        self.x += k0 * innovation;
        self.v += k1 * innovation;
        let p00 = (1.0 - k0) * self.p00;
        let p01 = (1.0 - k0) * self.p01;
        let p11 = self.p11 - k1 * self.p01;
        self.p00 = p00;
        self.p01 = p01;
        self.p11 = p11;
    }
}

#[derive(Debug, Clone)]
struct Interval {
    anchor_t: f64,
    anchor_x: DimVec<f64>,
    slopes: DimVec<f64>,
    start_connected: bool,
    last_t: f64,
    n_pts: u32,
}

#[derive(Debug, Clone)]
enum State {
    Empty,
    One { t: f64, x: DimVec<f64> },
    Active(Interval),
}

/// Kalman-slope linear filter. See the module docs.
///
/// ```
/// use pla_core::filters::{KalmanFilter, StreamFilter};
/// use pla_core::Segment;
///
/// // Low process noise: the tracker assumes a steady trend.
/// let mut filter = KalmanFilter::with_noise(&[0.5], 1e-4, 0.2).unwrap();
/// let mut out: Vec<Segment> = Vec::new();
/// for j in 0..100 {
///     let noise = if j % 2 == 0 { 0.2 } else { -0.2 };
///     filter.push(j as f64, &[0.5 * j as f64 + noise], &mut out).unwrap();
/// }
/// filter.finish(&mut out).unwrap();
/// // Once the velocity estimate warms up, the smoothed slope shrugs off
/// // the alternating noise: few segments, long tail segments.
/// assert!(out.len() <= 8);
/// assert!(out.last().unwrap().n_points > 20);
/// ```
#[derive(Debug, Clone)]
pub struct KalmanFilter {
    eps: DimVec<f64>,
    process_noise: f64,
    measurement_noise: f64,
    trackers: DimVec<Kalman1D>,
    last_tracked_t: f64,
    state: State,
    /// Per-dimension iteration strategy for the acceptance test (`d ≤ 4`
    /// lane kernels, generic loop otherwise), decided at construction.
    /// The tracker update itself is identical scalar code under every
    /// dispatch.
    dispatch: Dispatch,
}

impl KalmanFilter {
    /// Creates a Kalman-slope filter with default noise parameters
    /// (process 0.01, measurement 0.1 — mild smoothing).
    pub fn new(eps: &[f64]) -> Result<Self, FilterError> {
        Self::with_noise(eps, 0.01, 0.1)
    }

    /// Creates a Kalman-slope filter with explicit noise intensities.
    pub fn with_noise(
        eps: &[f64],
        process_noise: f64,
        measurement_noise: f64,
    ) -> Result<Self, FilterError> {
        validate_epsilons(eps)?;
        if !(process_noise.is_finite()
            && process_noise >= 0.0
            && measurement_noise.is_finite()
            && measurement_noise > 0.0)
        {
            return Err(FilterError::InvalidEpsilon { dim: 0, value: process_noise });
        }
        Ok(Self {
            eps: eps.into(),
            process_noise,
            measurement_noise,
            trackers: DimVec::new(),
            last_tracked_t: 0.0,
            state: State::Empty,
            dispatch: Dispatch::auto(eps.len(), false),
        })
    }

    /// Forces a specific [`Dispatch`] (sanitized against the dimension
    /// count). Test hook for the byte-identity proptests.
    #[doc(hidden)]
    pub fn force_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch.sanitized(self.eps.len(), false);
        self
    }

    /// The per-dimension dispatch decided at construction.
    #[doc(hidden)]
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    fn track(&mut self, t: f64, x: &[f64]) {
        if self.trackers.is_empty() {
            for &v in x {
                self.trackers.push(Kalman1D::new(v, self.process_noise, self.measurement_noise));
            }
        } else {
            let dt = t - self.last_tracked_t;
            for (tr, &z) in self.trackers.iter_mut().zip(x.iter()) {
                tr.predict(dt);
                tr.update(z);
            }
        }
        self.last_tracked_t = t;
    }

    fn open_interval(&self, t0: f64, x0: DimVec<f64>, connected: bool, n_pts: u32) -> Interval {
        Interval {
            anchor_t: t0,
            anchor_x: x0,
            slopes: self.trackers.iter().map(|tr| tr.v).collect(),
            start_connected: connected,
            last_t: t0,
            n_pts,
        }
    }

    /// Associated (not `&self`) so the push hot path can test acceptance
    /// while holding a disjoint mutable borrow of the live interval.
    /// Both dispatch branches evaluate the same expression tree (byte-
    /// identical output, pinned by the proptests).
    fn fits(dispatch: Dispatch, eps: &DimVec<f64>, iv: &Interval, t: f64, x: &[f64]) -> bool {
        let dt = t - iv.anchor_t;
        match dispatch {
            Dispatch::Lanes(k) => {
                kern::fits_affine(k, iv.anchor_x.lanes(), iv.slopes.lanes(), eps.lanes(), dt, x)
            }
            _ => {
                let (anchor_x, slopes) = (iv.anchor_x.as_slice(), iv.slopes.as_slice());
                x.iter()
                    .enumerate()
                    .all(|(d, &v)| (v - (anchor_x[d] + slopes[d] * dt)).abs() <= eps[d])
            }
        }
    }

    fn close(&self, iv: &Interval, sink: &mut dyn SegmentSink) -> (f64, DimVec<f64>) {
        let t_end = iv.last_t;
        let x_end = DimVec::from_fn(self.eps.len(), |d| {
            iv.anchor_x[d] + iv.slopes[d] * (t_end - iv.anchor_t)
        });
        sink.segment(Segment {
            t_start: iv.anchor_t,
            x_start: iv.anchor_x.clone(),
            t_end,
            x_end: x_end.clone(),
            connected: iv.start_connected,
            n_points: iv.n_pts,
            new_recordings: if iv.start_connected { 1 } else { 2 },
        });
        (t_end, x_end)
    }

    fn last_t(&self) -> Option<f64> {
        match &self.state {
            State::Empty => None,
            State::One { t, .. } => Some(*t),
            State::Active(iv) => Some(iv.last_t),
        }
    }
}

impl StreamFilter for KalmanFilter {
    fn dims(&self) -> usize {
        self.eps.len()
    }

    fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        validate_push(self.dims(), self.last_t(), t, x)?;
        self.track(t, x);
        // Hot path: an accepted sample extends the live interval in place
        // — no state-enum move per point.
        if let State::Active(iv) = &mut self.state {
            if Self::fits(self.dispatch, &self.eps, iv, t, x) {
                iv.last_t = t;
                iv.n_pts += 1;
                return Ok(());
            }
        }
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {
                self.state = State::One { t, x: x.into() };
            }
            State::One { t: t0, x: x0 } => {
                // Open the first segment at the first point; slope from
                // the tracker after two measurements.
                let mut iv = self.open_interval(t0, x0, false, 1);
                if Self::fits(self.dispatch, &self.eps, &iv, t, x) {
                    iv.last_t = t;
                    iv.n_pts += 1;
                    self.state = State::Active(iv);
                } else {
                    // Velocity estimate still cold; fall back to the
                    // two-point slope like a plain linear filter.
                    let dt = t - iv.anchor_t;
                    for (d, &v) in x.iter().enumerate() {
                        iv.slopes[d] = (v - iv.anchor_x[d]) / dt;
                    }
                    iv.last_t = t;
                    iv.n_pts += 1;
                    self.state = State::Active(iv);
                }
            }
            State::Active(iv) => {
                // Violation (the in-place accept above didn't take it).
                let (t_end, x_end) = self.close(&iv, sink);
                let mut next = self.open_interval(t_end, x_end, true, 1);
                if !Self::fits(self.dispatch, &self.eps, &next, t, x) {
                    // Ensure the violator itself is representable.
                    let dt = t - next.anchor_t;
                    for (d, &v) in x.iter().enumerate() {
                        next.slopes[d] = (v - next.anchor_x[d]) / dt;
                    }
                }
                next.last_t = t;
                self.state = State::Active(next);
            }
        }
        Ok(())
    }

    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {}
            State::One { t, x } => sink.segment(point_segment(t, &x, false)),
            State::Active(iv) => {
                self.close(&iv, sink);
            }
        }
        self.trackers.clear();
        Ok(())
    }

    fn pending_points(&self) -> usize {
        match &self.state {
            State::Empty => 0,
            State::One { .. } => 1,
            State::Active(iv) => iv.n_pts as usize,
        }
    }

    fn name(&self) -> &'static str {
        "kalman"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{run_filter, LinearFilter};
    use crate::sample::Signal;

    #[test]
    fn tracker_locks_onto_constant_velocity() {
        let mut k = Kalman1D::new(0.0, 0.01, 0.1);
        for j in 1..100 {
            k.predict(1.0);
            k.update(2.0 * j as f64);
        }
        assert!((k.v - 2.0).abs() < 0.05, "velocity {}", k.v);
        assert!((k.x - 198.0).abs() < 0.5, "position {}", k.x);
    }

    #[test]
    fn tracker_smooths_noise() {
        let mut k = Kalman1D::new(0.0, 0.001, 1.0);
        let mut seed = 5u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 32) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for j in 1..500 {
            k.predict(1.0);
            k.update(j as f64 + rnd() * 0.5);
        }
        assert!((k.v - 1.0).abs() < 0.05, "velocity {}", k.v);
    }

    #[test]
    fn guarantee_holds() {
        let mut seed = 77u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 32) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        let values: Vec<f64> = (0..2000)
            .map(|_| {
                x += rnd() * 2.0;
                x
            })
            .collect();
        let signal = Signal::from_values(&values);
        for eps in [0.2, 1.0, 5.0] {
            let mut f = KalmanFilter::new(&[eps]).unwrap();
            let segs = run_filter(&mut f, &signal).unwrap();
            for (t, xv) in signal.iter() {
                let seg = segs.iter().find(|s| s.covers(t)).expect("covered");
                assert!(
                    (seg.eval(t, 0) - xv[0]).abs() <= eps * (1.0 + 1e-9),
                    "ε={eps}: broke at t={t}"
                );
            }
            let total: u32 = segs.iter().map(|s| s.n_points).sum();
            assert_eq!(total as usize, signal.len());
        }
    }

    #[test]
    fn beats_linear_on_noisy_trend() {
        // Noisy ramp: the two-point slope of the linear filter is noise-
        // dominated; the Kalman velocity estimate smooths it out.
        let mut seed = 99u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 32) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let values: Vec<f64> = (0..3000).map(|j| 0.5 * j as f64 + rnd() * 0.45).collect();
        let signal = Signal::from_values(&values);
        let eps = 0.5;
        let mut kalman = KalmanFilter::with_noise(&[eps], 1e-4, 0.2).unwrap();
        let mut linear = LinearFilter::new(&[eps]).unwrap();
        let k_segs = run_filter(&mut kalman, &signal).unwrap();
        let l_segs = run_filter(&mut linear, &signal).unwrap();
        let k_recs: u64 = k_segs.iter().map(|s| s.new_recordings as u64).sum();
        let l_recs: u64 = l_segs.iter().map(|s| s.new_recordings as u64).sum();
        assert!(k_recs < l_recs, "kalman {k_recs} recordings should beat linear {l_recs}");
    }

    #[test]
    fn connected_chain_structure() {
        let values: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.3).sin() * 5.0).collect();
        let signal = Signal::from_values(&values);
        let mut f = KalmanFilter::new(&[0.4]).unwrap();
        let segs = run_filter(&mut f, &signal).unwrap();
        for pair in segs.windows(2) {
            assert_eq!(pair[0].t_end, pair[1].t_start);
            assert!(pair[1].connected);
        }
    }

    #[test]
    fn degenerate_streams() {
        let mut f = KalmanFilter::new(&[1.0]).unwrap();
        let mut out: Vec<Segment> = Vec::new();
        f.finish(&mut out).unwrap();
        assert!(out.is_empty());
        f.push(0.0, &[1.0], &mut out).unwrap();
        f.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn reusable_after_finish() {
        let signal = Signal::from_values(&[0.0, 1.0, 9.0, 2.0]);
        let mut f = KalmanFilter::new(&[0.5]).unwrap();
        let a = run_filter(&mut f, &signal).unwrap();
        let b = run_filter(&mut f, &signal).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_noise() {
        assert!(KalmanFilter::with_noise(&[1.0], -1.0, 0.1).is_err());
        assert!(KalmanFilter::with_noise(&[1.0], 0.1, 0.0).is_err());
    }
}
