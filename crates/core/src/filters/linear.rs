//! The linear filter: fixed-slope piece-wise linear baseline (paper §2.2).
//!
//! A linear filter predicts that points fall near a line whose slope is
//! fixed by the *first two* points it represents. When a point lands more
//! than `εᵢ` from the predicted line in any dimension, the segment is
//! terminated at the prediction for the last accepted point, and a new
//! line starts:
//!
//! * [`LinearMode::Connected`] — the new line runs from the terminated
//!   segment's endpoint to the violating point (one recording per
//!   segment);
//! * [`LinearMode::Disconnected`] — the new line is defined by the
//!   violating point and the point after it (two recordings per segment).
//!
//! The linear filter is the natural "single-hypothesis" strawman the swing
//! and slide filters improve on: it commits to one line immediately
//! instead of maintaining the whole feasible set.

use pla_geom::{Line, Point2};

use crate::dimvec::DimVec;
use crate::error::FilterError;
use crate::kern::{self, Dispatch};
use crate::segment::{validate_epsilons, Segment, SegmentSink};

use super::common::point_segment;
use super::{validate_push, StreamFilter};

/// Whether consecutive segments share endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinearMode {
    /// Segments share endpoints; one recording each (paper's comparison
    /// baseline).
    #[default]
    Connected,
    /// Segments are independent; two recordings each.
    Disconnected,
}

/// Per-interval bookkeeping. The approximating lines live on the filter
/// (`LinearFilter::lines`) and are recycled across intervals, so this
/// struct stays a few words and opening an interval allocates nothing.
#[derive(Debug, Clone)]
struct Interval {
    t_start: f64,
    start_connected: bool,
    last_t: f64,
    n_pts: u32,
}

#[derive(Debug, Clone)]
enum State {
    Empty,
    /// One pending point that will anchor the next interval.
    One {
        t: f64,
        x: DimVec<f64>,
        connected: bool,
    },
    Active(Interval),
}

/// The live interval's approximating lines in structure-of-arrays form.
/// Every dimension's line is anchored at the same time (the segment
/// start), so one anchor time serves all lanes: `xᵢ(t) = x0ᵢ + slopeᵢ ·
/// (t − t0)` — the same expression tree as [`Line::eval`]. Buffers are
/// sized once at construction and overwritten per interval.
#[derive(Debug, Clone)]
struct SharedLines {
    t0: f64,
    x0: DimVec<f64>,
    slope: DimVec<f64>,
}

impl SharedLines {
    fn new(dims: usize) -> Self {
        Self { t0: 0.0, x0: DimVec::splat(dims, 0.0), slope: DimVec::splat(dims, 0.0) }
    }

    /// Refits every dimension's line through `(t0, x0[d])` and
    /// `(t1, x1[d])` — the same construction as [`Line::through`].
    fn refit(&mut self, t0: f64, x0: &[f64], t1: f64, x1: &[f64]) {
        self.t0 = t0;
        let xs = self.x0.as_mut_slice();
        let slopes = self.slope.as_mut_slice();
        for d in 0..x0.len() {
            let line = Line::through(Point2::new(t0, x0[d]), Point2::new(t1, x1[d]));
            xs[d] = line.x0;
            slopes[d] = line.slope;
        }
    }

    #[inline]
    fn eval(&self, d: usize, t: f64) -> f64 {
        self.x0[d] + self.slope[d] * (t - self.t0)
    }
}

/// Piece-wise linear baseline filter. See the module docs.
///
/// ```
/// use pla_core::filters::{LinearFilter, LinearMode, StreamFilter};
/// use pla_core::Segment;
///
/// let mut filter = LinearFilter::with_mode(&[0.5], LinearMode::Connected).unwrap();
/// let mut out: Vec<Segment> = Vec::new();
/// // Slope is fixed by the first two points; the jump breaks the line.
/// for (t, x) in [(0.0, 0.0), (1.0, 1.0), (2.0, 2.1), (3.0, 9.0), (4.0, 15.0)] {
///     filter.push(t, &[x], &mut out).unwrap();
/// }
/// filter.finish(&mut out).unwrap();
/// assert!(out.len() >= 2);
/// assert!(out[1].connected); // connected mode chains endpoints
/// ```
#[derive(Debug, Clone)]
pub struct LinearFilter {
    eps: DimVec<f64>,
    mode: LinearMode,
    state: State,
    /// Approximating lines of the live interval, anchored at the segment
    /// start. Recycled across intervals (buffers retained).
    lines: SharedLines,
    emitted_any: bool,
    /// Per-dimension iteration strategy (`d ≤ 4` lane kernels, generic
    /// loop otherwise), decided at construction.
    dispatch: Dispatch,
}

impl LinearFilter {
    /// Creates a connected-mode linear filter.
    pub fn new(eps: &[f64]) -> Result<Self, FilterError> {
        Self::with_mode(eps, LinearMode::default())
    }

    /// Creates a linear filter with an explicit segment mode.
    pub fn with_mode(eps: &[f64], mode: LinearMode) -> Result<Self, FilterError> {
        validate_epsilons(eps)?;
        Ok(Self {
            eps: eps.into(),
            mode,
            state: State::Empty,
            lines: SharedLines::new(eps.len()),
            emitted_any: false,
            dispatch: Dispatch::auto(eps.len(), false),
        })
    }

    /// The configured mode.
    pub fn mode(&self) -> LinearMode {
        self.mode
    }

    /// Forces a specific [`Dispatch`] (sanitized against the dimension
    /// count). Test hook for the byte-identity proptests.
    #[doc(hidden)]
    pub fn force_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch.sanitized(self.eps.len(), false);
        self
    }

    /// The per-dimension dispatch decided at construction.
    #[doc(hidden)]
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// Opens an interval, refilling the filter's recycled line buffers.
    fn start_interval(
        &mut self,
        t0: f64,
        x0: &[f64],
        t1: f64,
        x1: &[f64],
        connected: bool,
    ) -> Interval {
        self.lines.refit(t0, x0, t1, x1);
        Interval { t_start: t0, start_connected: connected, last_t: t1, n_pts: 2 }
    }

    /// Associated (not `&self`) so the push hot path can test acceptance
    /// while holding a disjoint mutable borrow of the live interval.
    /// Both dispatch branches evaluate the same expression tree (byte-
    /// identical output, pinned by the proptests).
    #[inline]
    fn fits(dispatch: Dispatch, eps: &DimVec<f64>, lines: &SharedLines, t: f64, x: &[f64]) -> bool {
        let dt = t - lines.t0;
        match dispatch {
            Dispatch::Lanes(k) => {
                kern::fits_affine(k, lines.x0.lanes(), lines.slope.lanes(), eps.lanes(), dt, x)
            }
            _ => {
                let (x0, slope) = (lines.x0.as_slice(), lines.slope.as_slice());
                x.iter()
                    .zip(eps.as_slice())
                    .enumerate()
                    .all(|(d, (&v, &e))| (v - (x0[d] + slope[d] * dt)).abs() <= e)
            }
        }
    }

    /// Ends `iv` at its last accepted time, emitting the segment and
    /// returning the predicted endpoint.
    fn close_interval(&mut self, iv: &Interval, sink: &mut dyn SegmentSink) -> (f64, DimVec<f64>) {
        let t_end = iv.last_t;
        let x_end = DimVec::from_fn(self.eps.len(), |d| self.lines.eval(d, t_end));
        let x_start = DimVec::from_fn(self.eps.len(), |d| self.lines.eval(d, iv.t_start));
        let new_recordings = if iv.start_connected { 1 } else { 2 };
        sink.segment(Segment {
            t_start: iv.t_start,
            x_start,
            t_end,
            x_end: x_end.clone(),
            connected: iv.start_connected,
            n_points: iv.n_pts,
            new_recordings,
        });
        self.emitted_any = true;
        (t_end, x_end)
    }

    fn last_t(&self) -> Option<f64> {
        match &self.state {
            State::Empty => None,
            State::One { t, .. } => Some(*t),
            State::Active(iv) => Some(iv.last_t),
        }
    }
}

impl StreamFilter for LinearFilter {
    fn dims(&self) -> usize {
        self.eps.len()
    }

    fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        validate_push(self.dims(), self.last_t(), t, x)?;
        // Hot path: an accepted sample extends the live interval in place
        // — no state-enum move per point.
        if let State::Active(iv) = &mut self.state {
            if Self::fits(self.dispatch, &self.eps, &self.lines, t, x) {
                iv.last_t = t;
                iv.n_pts += 1;
                return Ok(());
            }
        }
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {
                self.state = State::One { t, x: x.into(), connected: false };
            }
            State::One { t: t0, x: x0, connected } => {
                self.state = State::Active(self.start_interval(t0, &x0, t, x, connected));
            }
            State::Active(iv) => {
                // Violation (the in-place accept above didn't take it):
                // close and restart.
                let (t_end, x_end) = self.close_interval(&iv, sink);
                match self.mode {
                    LinearMode::Connected => {
                        // Slope fixed by the terminated endpoint and
                        // the violating point; the violator is the
                        // interval's first represented sample.
                        let mut next = self.start_interval(t_end, &x_end, t, x, true);
                        next.n_pts = 1;
                        self.state = State::Active(next);
                    }
                    LinearMode::Disconnected => {
                        self.state = State::One { t, x: x.into(), connected: false };
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {}
            State::One { t, x, connected } => {
                sink.segment(point_segment(t, &x, connected));
            }
            State::Active(iv) => {
                self.close_interval(&iv, sink);
            }
        }
        self.emitted_any = false;
        Ok(())
    }

    fn pending_points(&self) -> usize {
        match &self.state {
            State::Empty => 0,
            State::One { .. } => 1,
            State::Active(iv) => iv.n_pts as usize,
        }
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::run_filter;
    use crate::sample::Signal;

    fn compress(values: &[f64], eps: f64, mode: LinearMode) -> Vec<Segment> {
        let mut f = LinearFilter::with_mode(&[eps], mode).unwrap();
        run_filter(&mut f, &Signal::from_values(values)).unwrap()
    }

    #[test]
    fn straight_ramp_is_one_segment() {
        let values: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        for mode in [LinearMode::Connected, LinearMode::Disconnected] {
            let segs = compress(&values, 0.1, mode);
            assert_eq!(segs.len(), 1, "{mode:?}");
            assert_eq!(segs[0].n_points, 50);
            assert!((segs[0].slope(0) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_example_breaks_at_fourth_point() {
        // Figure 2: slope set by points 1–2; point 3 fits, point 4 exceeds
        // ε from the fixed line.
        let signal = Signal::from_pairs(&[
            (1.0, 0.0),
            (2.0, 1.0), // slope fixed at 1
            (3.0, 2.3), // |2.3 − 2| ≤ 0.5 → ok
            (4.0, 4.2), // |4.2 − 3| > 0.5 → violation
            (5.0, 6.2), // fits the new line (3,2)→(4,4.2): predicts 6.4
        ]);
        let mut f = LinearFilter::new(&[0.5]).unwrap();
        let segs = run_filter(&mut f, &signal).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].t_end, 3.0);
        // connected: second segment starts at first segment's end
        assert_eq!(segs[1].t_start, 3.0);
        assert!(segs[1].connected);
        assert_eq!(segs[1].new_recordings, 1);
    }

    #[test]
    fn disconnected_mode_restarts_from_data_points() {
        let signal = Signal::from_pairs(&[
            (1.0, 0.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 10.0), // violation
            (5.0, 11.0),
            (6.0, 12.0),
        ]);
        let mut f = LinearFilter::with_mode(&[0.5], LinearMode::Disconnected).unwrap();
        let segs = run_filter(&mut f, &signal).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].t_end, 3.0);
        assert_eq!(segs[1].t_start, 4.0);
        assert_eq!(segs[1].x_start[0], 10.0); // anchored at the data point
        assert!(!segs[1].connected);
        assert_eq!(segs[1].new_recordings, 2);
    }

    #[test]
    fn connected_endpoints_chain() {
        let values: Vec<f64> = (0..60)
            .map(|i| {
                if i < 20 {
                    i as f64
                } else if i < 40 {
                    40.0 - i as f64
                } else {
                    i as f64 - 40.0
                }
            })
            .collect();
        let segs = compress(&values, 0.25, LinearMode::Connected);
        assert!(segs.len() >= 3);
        for pair in segs.windows(2) {
            assert_eq!(pair[0].t_end, pair[1].t_start);
            assert!((pair[0].x_end[0] - pair[1].x_start[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn precision_guarantee_holds() {
        let values: Vec<f64> = (0..300)
            .map(|i| ((i as f64) * 0.21).sin() * 5.0 + ((i as f64) * 0.043).cos() * 2.0)
            .collect();
        let signal = Signal::from_values(&values);
        for mode in [LinearMode::Connected, LinearMode::Disconnected] {
            let mut f = LinearFilter::with_mode(&[0.3], mode).unwrap();
            let segs = run_filter(&mut f, &signal).unwrap();
            for (t, x) in signal.iter() {
                let seg = segs.iter().find(|s| s.covers(t)).expect("sample covered");
                assert!(
                    (seg.eval(t, 0) - x[0]).abs() <= 0.3 + 1e-9,
                    "{mode:?} broke the guarantee at t={t}"
                );
            }
        }
    }

    #[test]
    fn two_point_stream() {
        let segs = compress(&[1.0, 2.0], 0.1, LinearMode::Connected);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 2);
        assert_eq!(segs[0].new_recordings, 2);
    }

    #[test]
    fn single_point_stream() {
        let segs = compress(&[1.0], 0.1, LinearMode::Disconnected);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 1);
    }

    #[test]
    fn trailing_violator_becomes_point_segment() {
        let segs = compress(&[0.0, 1.0, 2.0, 50.0], 0.1, LinearMode::Disconnected);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].t_start, segs[1].t_end);
        assert_eq!(segs[1].x_start[0], 50.0);
    }

    #[test]
    fn multi_dim_violation_any_dimension() {
        let mut s = Signal::new(2);
        for j in 0..6 {
            let t = j as f64;
            // dim 0 perfectly linear; dim 1 jumps at j=4
            let x1 = if j < 4 { 0.0 } else { 5.0 };
            s.push(t, &[t, x1]).unwrap();
        }
        let mut f = LinearFilter::new(&[0.5, 0.5]).unwrap();
        let segs = run_filter(&mut f, &s).unwrap();
        // The jump in dim 1 forces a break at t=3; the steep recovery line
        // breaks again right after, so at least two segments result.
        assert!(segs.len() >= 2);
        assert_eq!(segs[0].t_end, 3.0);
    }

    #[test]
    fn reusable_after_finish() {
        let mut f = LinearFilter::new(&[0.2]).unwrap();
        let s = Signal::from_values(&[0.0, 1.0, 0.0, 1.0, 8.0]);
        let a = run_filter(&mut f, &s).unwrap();
        let b = run_filter(&mut f, &s).unwrap();
        assert_eq!(a, b);
    }
}
