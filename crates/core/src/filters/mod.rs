//! The four filter families of the paper.
//!
//! | Filter | Paper § | Output | Per-point cost |
//! |---|---|---|---|
//! | [`CacheFilter`] | 2.2 | piece-wise constant | O(d) |
//! | [`LinearFilter`] | 2.2 | connected or disconnected lines | O(d) |
//! | [`SwingFilter`] | 3 | connected lines | O(d) |
//! | [`SlideFilter`] | 4 | mixed, mostly disconnected lines | O(d·m_H) |
//!
//! All four implement [`StreamFilter`]: push samples, receive [`Segment`](crate::Segment)s
//! through a [`SegmentSink`], call [`finish`](StreamFilter::finish) to
//! flush. All four guarantee the paper's L∞ precision bound: every pushed
//! sample is within `εᵢ` of the emitted approximation in every dimension
//! (Theorems 3.1 and 4.1 for swing/slide; immediate from the acceptance
//! tests for cache/linear).

mod cache;
mod common;
mod kalman;
mod linear;
mod slide;
mod swing;

pub use cache::{CacheFilter, CacheVariant};
pub use common::run_filter;
pub use kalman::{Kalman1D, KalmanFilter};
pub use linear::{LinearFilter, LinearMode};
pub use slide::{HullMode, SlideBuilder, SlideFilter};
pub use swing::{RecordingStrategy, SwingBuilder, SwingFilter};

use crate::error::FilterError;
use crate::segment::SegmentSink;

/// Streaming interface shared by every filter.
///
/// The stream protocol is: any number of [`push`](Self::push) calls with
/// strictly increasing timestamps, then one [`finish`](Self::finish).
/// `finish` flushes all pending output and resets the filter, so the same
/// instance can compress another stream afterwards.
pub trait StreamFilter {
    /// Number of dimensions `d` this filter was built for.
    fn dims(&self) -> usize;

    /// Per-dimension precision widths `εᵢ`.
    fn epsilons(&self) -> &[f64];

    /// Offers one sample to the filter. Finalized segments, if any, are
    /// handed to `sink` before the call returns.
    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError>;

    /// Ends the stream: flushes every pending segment and resets the
    /// filter for reuse.
    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError>;

    /// Number of samples already pushed that are not yet covered by any
    /// emitted segment or provisional update — the receiver lag the paper
    /// bounds with `m_max_lag`.
    fn pending_points(&self) -> usize;

    /// Short human-readable name ("cache", "linear", "swing", "slide").
    fn name(&self) -> &'static str;
}

/// Validates one incoming sample against filter state; shared by all
/// filter implementations.
pub(crate) fn validate_push(
    dims: usize,
    last_t: Option<f64>,
    t: f64,
    x: &[f64],
) -> Result<(), FilterError> {
    if x.len() != dims {
        return Err(FilterError::DimensionMismatch { expected: dims, got: x.len() });
    }
    if !t.is_finite() || last_t.is_some_and(|p| t <= p) {
        return Err(FilterError::NonMonotonicTime {
            previous: last_t.unwrap_or(f64::NEG_INFINITY),
            offending: t,
        });
    }
    for (dim, &v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(FilterError::NonFiniteValue { dim, value: v });
        }
    }
    Ok(())
}
