//! The four filter families of the paper.
//!
//! | Filter | Paper § | Output | Per-point cost |
//! |---|---|---|---|
//! | [`CacheFilter`] | 2.2 | piece-wise constant | O(d) |
//! | [`LinearFilter`] | 2.2 | connected or disconnected lines | O(d) |
//! | [`SwingFilter`] | 3 | connected lines | O(d) |
//! | [`SlideFilter`] | 4 | mixed, mostly disconnected lines | O(d·m_H) |
//!
//! All four implement [`StreamFilter`]: push samples, receive [`Segment`](crate::Segment)s
//! through a [`SegmentSink`], call [`finish`](StreamFilter::finish) to
//! flush. All four guarantee the paper's L∞ precision bound: every pushed
//! sample is within `εᵢ` of the emitted approximation in every dimension
//! (Theorems 3.1 and 4.1 for swing/slide; immediate from the acceptance
//! tests for cache/linear).

mod cache;
mod common;
mod kalman;
mod linear;
mod slide;
mod spec;
mod swing;

pub use cache::{CacheFilter, CacheVariant};
pub use common::run_filter;
pub use kalman::{Kalman1D, KalmanFilter};
pub use linear::{LinearFilter, LinearMode};
pub use slide::{HullMode, SlideBuilder, SlideFilter};
pub use spec::{FilterKind, FilterSpec};
pub use swing::{RecordingStrategy, SwingBuilder, SwingFilter};

use crate::error::{BatchError, FilterError};
use crate::segment::SegmentSink;

/// Streaming interface shared by every filter.
///
/// The stream protocol is: any number of [`push`](Self::push) calls with
/// strictly increasing timestamps, then one [`finish`](Self::finish).
/// `finish` flushes all pending output and resets the filter, so the same
/// instance can compress another stream afterwards.
pub trait StreamFilter {
    /// Number of dimensions `d` this filter was built for.
    fn dims(&self) -> usize;

    /// Per-dimension precision widths `εᵢ`.
    fn epsilons(&self) -> &[f64];

    /// Offers one sample to the filter. Finalized segments, if any, are
    /// handed to `sink` before the call returns.
    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError>;

    /// Offers a batch of samples, equivalent to pushing them one by one:
    /// the emitted segment sequence is identical, segment for segment.
    ///
    /// Returns the number of samples absorbed, which equals
    /// `samples.len()` on success. The first invalid sample aborts the
    /// batch with a [`BatchError`] reporting both the verdict and the
    /// absorbed-prefix length; samples before it are already absorbed
    /// (the same state an equivalent sequence of [`push`](Self::push)
    /// calls would leave behind), and samples after it are untouched.
    ///
    /// The default implementation loops over `push`; filters with batch
    /// fast paths (swing, slide) override it to validate the batch in one
    /// scan and keep their interval state in registers across the batch.
    fn push_batch(
        &mut self,
        samples: &[(f64, &[f64])],
        sink: &mut dyn SegmentSink,
    ) -> Result<usize, BatchError> {
        for (i, &(t, x)) in samples.iter().enumerate() {
            self.push(t, x, sink).map_err(|error| BatchError { absorbed: i, error })?;
        }
        Ok(samples.len())
    }

    /// Ends the stream: flushes every pending segment and resets the
    /// filter for reuse.
    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError>;

    /// Number of samples already pushed that are not yet covered by any
    /// emitted segment or provisional update — the receiver lag the paper
    /// bounds with `m_max_lag`.
    fn pending_points(&self) -> usize;

    /// Short human-readable name ("cache", "linear", "swing", "slide").
    fn name(&self) -> &'static str;
}

/// Boxed filters (what [`FilterSpec::build`] returns) are filters too,
/// so they slot directly into generic consumers like
/// `pla_transport::Transmitter`.
impl<F: StreamFilter + ?Sized> StreamFilter for Box<F> {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn epsilons(&self) -> &[f64] {
        (**self).epsilons()
    }
    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        (**self).push(t, x, sink)
    }
    fn push_batch(
        &mut self,
        samples: &[(f64, &[f64])],
        sink: &mut dyn SegmentSink,
    ) -> Result<usize, BatchError> {
        (**self).push_batch(samples, sink)
    }
    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        (**self).finish(sink)
    }
    fn pending_points(&self) -> usize {
        (**self).pending_points()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Validates one incoming sample against filter state; shared by all
/// filter implementations.
pub(crate) fn validate_push(
    dims: usize,
    last_t: Option<f64>,
    t: f64,
    x: &[f64],
) -> Result<(), FilterError> {
    if x.len() != dims {
        return Err(FilterError::DimensionMismatch { expected: dims, got: x.len() });
    }
    if !t.is_finite() {
        return Err(FilterError::NonFiniteTime { offending: t });
    }
    if last_t.is_some_and(|p| t <= p) {
        return Err(FilterError::NonMonotonicTime {
            previous: last_t.unwrap_or(f64::NEG_INFINITY),
            offending: t,
        });
    }
    for (dim, &v) in x.iter().enumerate() {
        if !v.is_finite() {
            return Err(FilterError::NonFiniteValue { dim, value: v });
        }
    }
    Ok(())
}

/// Validates a whole batch in one scan, returning the length of the valid
/// prefix together with the first error (if any). Shared by the filters'
/// specialized [`StreamFilter::push_batch`] implementations.
pub(crate) fn validate_batch(
    dims: usize,
    mut last_t: Option<f64>,
    samples: &[(f64, &[f64])],
) -> (usize, Option<FilterError>) {
    for (i, &(t, x)) in samples.iter().enumerate() {
        if let Err(e) = validate_push(dims, last_t, t, x) {
            return (i, Some(e));
        }
        last_t = Some(t);
    }
    (samples.len(), None)
}
