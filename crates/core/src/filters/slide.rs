//! The slide filter (paper §4): mostly disconnected segments from sliding
//! extrapolation envelopes.
//!
//! Per filtering interval and dimension the filter maintains two envelope
//! lines over the points seen so far (Lemma 4.1):
//!
//! * `uᵢᵏ` — the *highest* feasible extrapolation line beyond the data:
//!   the minimum-slope line through some `(t_h, x_h − εᵢ)` and a later
//!   `(t_l, x_l + εᵢ)`;
//! * `lᵢᵏ` — the *lowest*: the maximum-slope line through some
//!   `(t_h, x_h + εᵢ)` and a later `(t_l, x_l − εᵢ)`.
//!
//! Every line within `εᵢ` of all observed points runs between `lᵢᵏ` and
//! `uᵢᵏ` after the data, so a new point is representable iff it lies
//! within `εᵢ` of that band (Lemma 4.2). Unlike the swing filter the
//! envelopes do not pivot around a fixed origin — they *slide*. Rebuilding
//! an envelope only needs the convex hull of the interval's points
//! (Lemma 4.3), maintained incrementally; the candidate recomputation is a
//! tangent query answered in O(log m_H) ([`pla_geom`]). The hulls are
//! built *lazily*: intervals below [`LAZY_HULL_THRESHOLD`] points answer
//! rebuilds by a linear scan of their raw-point buffer (cheaper than two
//! hull-chain updates per dimension per point at that size, and the
//! common case on noisy streams), and an interval that outgrows the
//! threshold replays the buffer into the hulls once and switches.
//!
//! When an interval ends, the feasible lines are exactly those through the
//! envelope intersection `zᵢ` with slope between the envelopes' (each such
//! line is a pointwise convex combination of `uᵢᵏ` and `lᵢᵏ`, hence within
//! `εᵢ` of every point). The filter picks the MSE-optimal slope (eq. 5–6)
//! and, per Lemma 4.4, tries to *connect* the new segment to the previous
//! one — sharing a recording — by intersecting them inside an admissible
//! time window `[α, β]`; otherwise the two segments stay disconnected and
//! cost two recordings.
//!
//! # Deviations from the paper's pseudo-code (see DESIGN.md §4)
//!
//! * The `[αᵢ, βᵢ]` window is computed from the same crossing times the
//!   paper defines (`c`, `d`, `e`, `f` of Lemma 4.4) but located by a
//!   predicate probe instead of the paper's below/above case analysis,
//!   which is insensitive to the PDF's garbled sub/superscripts and
//!   handles both orientations uniformly.
//! * Every accepted connection is re-verified against the stored envelope
//!   lines (new-interval cone membership + old-interval envelope sandwich
//!   at up to three times); any numerical doubt falls back to the always
//!   safe disconnected recording, so Theorem 4.1 holds unconditionally.
//! * For `d > 1` the connection time minimizes an ε-normalized sum of the
//!   per-dimension MSE surrogates, because the paper's per-dimension slope
//!   choice does not pin down a single intersection time in more than one
//!   dimension.

use pla_geom::{
    max_slope_to_chain, min_slope_to_chain, scan, Chain, IncrementalHull, Line, Point2,
};

use crate::dimvec::DimVec;
use crate::error::FilterError;
use crate::kern::{self, Dispatch};
use crate::mse::RegressionSums;
use crate::segment::{validate_epsilons, ProvisionalUpdate, Segment, SegmentSink};

use super::common::point_segment;
use super::{validate_batch, validate_push, StreamFilter};
use crate::error::BatchError;

/// Envelope-update strategy for the slide filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HullMode {
    /// Maintain per-dimension convex hulls and answer envelope rebuilds
    /// with tangent queries (Lemma 4.3) — the paper's optimized filter.
    #[default]
    Optimized,
    /// Keep every point of the interval and scan them all on each rebuild
    /// — the paper's "non-optimized slide filter" of Figure 13, kept for
    /// the overhead ablation.
    Exhaustive,
}

/// Statistics about hull sizes, backing the paper's observation that the
/// number of hull vertices stays small regardless of interval length
/// (§4.3, Figure 13 discussion).
#[derive(Debug, Clone, Copy, Default)]
pub struct HullStats {
    /// Largest number of hull vertices observed in any dimension at any
    /// interval close. Intervals that closed before building their hulls
    /// (fewer than [`LAZY_HULL_THRESHOLD`] points) report their raw point
    /// count — an upper bound on the vertex count.
    pub max_vertices: usize,
    /// Sum over interval closes of the per-close max vertex count.
    pub total_vertices: u64,
    /// Number of interval closes observed.
    pub intervals: u64,
    /// Largest number of raw points held by any interval.
    pub max_interval_points: u32,
}

impl HullStats {
    /// Mean hull vertex count per closed interval.
    pub fn mean_vertices(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.total_vertices as f64 / self.intervals as f64
        }
    }
}

/// Fallback vertex capacity reserved per hull chain before any interval
/// statistics exist.
const MIN_HULL_CAPACITY: usize = 16;

/// Interval size at which the optimized mode switches from scanning the
/// raw point buffer to maintaining convex hulls. Most intervals on noisy
/// streams close within a handful of points, where a linear scan over the
/// buffer beats paying two hull-chain updates per dimension per point;
/// the one-time hull build on crossing the threshold keeps long intervals
/// on the paper's O(log n) tangent queries.
const LAZY_HULL_THRESHOLD: usize = 8;

/// Committed line state once the lag bound freezes an interval.
#[derive(Debug, Clone)]
struct Frozen {
    g: DimVec<Line>,
    start_t: f64,
    start_x: DimVec<f64>,
    connected: bool,
}

/// Structure-of-arrays envelope: one line per dimension, stored as
/// parallel `t0` / `x0` / `slope` columns so the `d ≤ 4` inline regime
/// can hand the lane kernels ([`crate::kern`]) contiguous blocks.
/// `eval` reproduces [`Line::eval`]'s expression tree bit for bit.
#[derive(Debug, Clone, Default)]
struct EnvLines {
    t0: DimVec<f64>,
    x0: DimVec<f64>,
    slope: DimVec<f64>,
}

impl EnvLines {
    fn clear(&mut self) {
        self.t0.clear();
        self.x0.clear();
        self.slope.clear();
    }

    fn push(&mut self, line: Line) {
        self.t0.push(line.t0);
        self.x0.push(line.x0);
        self.slope.push(line.slope);
    }

    #[inline]
    fn set(&mut self, i: usize, line: Line) {
        self.t0[i] = line.t0;
        self.x0[i] = line.x0;
        self.slope[i] = line.slope;
    }

    #[inline]
    fn line(&self, i: usize) -> Line {
        Line { t0: self.t0[i], x0: self.x0[i], slope: self.slope[i] }
    }

    /// Same expression as [`Line::eval`]: `x0 + slope · (t − t0)`.
    #[inline]
    fn eval(&self, i: usize, t: f64) -> f64 {
        self.x0[i] + self.slope[i] * (t - self.t0[i])
    }

    fn assign(&mut self, other: &EnvLines) {
        self.t0.assign(other.t0.as_slice());
        self.x0.assign(other.x0.as_slice());
        self.slope.assign(other.slope.as_slice());
    }

    /// Lane view for the kernels (`d ≤ 4` only; padding lanes are `0.0`
    /// and neutral for every op).
    #[inline]
    fn view(&self) -> kern::EnvView<'_> {
        kern::EnvView { t0: self.t0.lanes(), x0: self.x0.lanes(), slope: self.slope.lanes() }
    }
}

/// Both envelopes of the live interval. Owned by the filter (not the
/// [`Interval`]) and recycled across intervals like the hulls, so the
/// `d > 4` spill regime re-uses the same six spill buffers forever
/// instead of re-buying them at every interval open.
#[derive(Debug, Clone, Default)]
struct Envelopes {
    u: EnvLines,
    l: EnvLines,
}

/// Per-interval state. The heap-backed companions — envelopes, hulls,
/// raw-point buffers, regression sums — live on the filter itself and
/// are recycled across intervals, so opening or closing an interval
/// allocates nothing.
#[derive(Debug, Clone)]
struct Interval {
    first_t: f64,
    last_t: f64,
    n_pts: u32,
    frozen: Option<Frozen>,
    /// Optimized mode only: whether this interval has outgrown the raw
    /// point buffer and built its per-dimension hulls
    /// ([`LAZY_HULL_THRESHOLD`]).
    hull_built: bool,
}

/// A closed interval's segment waiting for its end point, which is only
/// decided when the *next* interval closes (possibly as a connection).
///
/// For `d >` [`INLINE_DIMS`](crate::INLINE_DIMS) the [`DimVec`] payloads
/// spill to the heap; retired `Pending`s are therefore pooled on the
/// filter ([`SlideFilter::retired`]) and their spill buffers recycled at
/// the next interval close, so the spill regime allocates O(1) small
/// per close instead of re-buying every payload.
#[derive(Debug, Clone, Default)]
struct Pending {
    g: DimVec<Line>,
    start_t: f64,
    start_x: DimVec<f64>,
    connected: bool,
    /// Last data-point time of the closed interval (`t_{j(k−1)}`).
    end_data_t: f64,
    /// Final envelopes of the closed interval, for Lemma 4.4's
    /// tail-coverage constraint.
    u_env: EnvLines,
    l_env: EnvLines,
    n_pts: u32,
}

// One `State` lives per filter (never in collections), so the size gap
// between `Empty` and `Active` costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum State {
    Empty,
    One { t: f64, x: DimVec<f64> },
    Active(Interval),
}

/// Per-dimension cone of feasible lines at interval close. Inline
/// ([`DimVec`]) for `d ≤ 4`; the spilled buffers above that are recycled
/// across closes via [`SlideFilter::cone_scratch`].
#[derive(Debug, Clone, Default)]
struct Cone {
    /// Envelope intersection per dimension; `None` when the envelopes are
    /// (near-)parallel.
    z: DimVec<Option<Point2>>,
    lo: DimVec<f64>,
    hi: DimVec<f64>,
}

struct Connection {
    t_c: f64,
    x_c: DimVec<f64>,
    g: DimVec<Line>,
}

/// Builder for [`SlideFilter`].
#[derive(Debug, Clone)]
pub struct SlideBuilder {
    eps: Vec<f64>,
    max_lag: Option<usize>,
    hull_mode: HullMode,
    force_generic: bool,
    dispatch_override: Option<Dispatch>,
}

impl SlideBuilder {
    /// Bounds the transmitter→receiver lag to `m_max_lag` data points
    /// (must be ≥ 2). Unset by default, matching the paper's experiments.
    pub fn max_lag(mut self, m: usize) -> Self {
        self.max_lag = Some(m);
        self
    }

    /// Selects the envelope-update strategy (default:
    /// [`HullMode::Optimized`]).
    pub fn hull_mode(mut self, mode: HullMode) -> Self {
        self.hull_mode = mode;
        self
    }

    /// Disables the `d == 1` scalar fast path, forcing the generic
    /// per-dimension envelope update. The two paths are byte-identical in
    /// output (pinned by property tests); this switch exists so the tests
    /// can prove it.
    #[doc(hidden)]
    pub fn force_generic(mut self, on: bool) -> Self {
        self.force_generic = on;
        self
    }

    /// Pins the kernel dispatch (invalid choices are snapped to the
    /// automatic one). Every dispatch produces byte-identical output
    /// (pinned by property tests); this switch exists so the tests can
    /// prove it.
    #[doc(hidden)]
    pub fn force_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch_override = Some(dispatch);
        self
    }

    /// Validates the configuration and builds the filter.
    pub fn build(self) -> Result<SlideFilter, FilterError> {
        validate_epsilons(&self.eps)?;
        if let Some(m) = self.max_lag {
            if m < 2 {
                return Err(FilterError::InvalidMaxLag { value: m });
            }
        }
        let d = self.eps.len();
        let hulls = match self.hull_mode {
            HullMode::Optimized => {
                (0..d).map(|_| IncrementalHull::with_capacity(MIN_HULL_CAPACITY)).collect()
            }
            HullMode::Exhaustive => Vec::new(),
        };
        // Both modes buffer raw points: exhaustive scans them forever,
        // optimized scans them until the interval outgrows
        // [`LAZY_HULL_THRESHOLD`] and hulls take over.
        let raw = (0..d).map(|_| Vec::with_capacity(MIN_HULL_CAPACITY)).collect();
        let dispatch = match self.dispatch_override {
            Some(want) => want.sanitized(d, true),
            None if self.force_generic => Dispatch::Generic,
            None => Dispatch::auto(d, true),
        };
        Ok(SlideFilter {
            sums: RegressionSums::new(0.0, &vec![0.0; d]),
            eps: self.eps.as_slice().into(),
            max_lag: self.max_lag,
            hull_mode: self.hull_mode,
            state: State::Empty,
            pending: None,
            stats: HullStats::default(),
            hulls,
            raw,
            env: Envelopes::default(),
            dispatch,
            retired: Vec::new(),
            cone_scratch: None,
            x_pool: None,
            line_pool: None,
        })
    }
}

/// The slide filter. See the module docs.
///
/// ```
/// use pla_core::filters::{SlideFilter, StreamFilter};
/// use pla_core::Segment;
///
/// let mut filter = SlideFilter::new(&[1.0]).unwrap();
/// let mut out: Vec<Segment> = Vec::new();
/// // The paper's Example 4.1 pattern: all five points fit one segment
/// // because the envelopes slide instead of pivoting.
/// for (t, x) in [(1.0, 0.0), (2.0, 1.0), (3.0, 2.5), (4.0, 4.5), (5.0, 3.6)] {
///     filter.push(t, &[x], &mut out).unwrap();
/// }
/// filter.finish(&mut out).unwrap();
/// assert_eq!(out.len(), 1);
/// // Every input is within ε = 1 of the emitted line (Theorem 4.1).
/// assert!((out[0].eval(3.0, 0) - 2.5).abs() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlideFilter {
    eps: DimVec<f64>,
    max_lag: Option<usize>,
    hull_mode: HullMode,
    state: State,
    pending: Option<Pending>,
    stats: HullStats,
    /// Per-dimension hulls of the live interval's raw points (Optimized
    /// mode), recycled across intervals via `clear()` so their buffers
    /// are allocated once and kept warm.
    hulls: Vec<IncrementalHull>,
    /// Per-dimension raw points of the live interval (Exhaustive mode),
    /// recycled the same way.
    raw: Vec<Vec<Point2>>,
    /// Regression moments of the live interval, recycled via `reset()`.
    sums: RegressionSums,
    /// Envelopes of the live interval, recycled via `clear()`.
    env: Envelopes,
    /// Kernel dispatch for the envelope hot path, decided once at
    /// construction ([`Dispatch::auto`] unless overridden for tests).
    dispatch: Dispatch,
    /// Arena of retired [`Pending`]s (at most 2): their spilled `DimVec`
    /// payloads are reused at the next interval close, covering the
    /// `d > 4` spill regime's alloc headroom documented in PR 3.
    retired: Vec<Pending>,
    /// Recycled [`Cone`] scratch, same purpose.
    cone_scratch: Option<Cone>,
    /// Recycled buffer for the one-point state's sample, so reopening
    /// after a violation stays allocation-free in the spill regime.
    x_pool: Option<DimVec<f64>>,
    /// Recycled line buffer for [`Self::try_connect`]'s candidate `g`.
    line_pool: Option<DimVec<Line>>,
}

impl SlideFilter {
    /// Creates a hull-optimized slide filter with unbounded lag.
    pub fn new(eps: &[f64]) -> Result<Self, FilterError> {
        Self::builder(eps).build()
    }

    /// Starts configuring a slide filter.
    pub fn builder(eps: &[f64]) -> SlideBuilder {
        SlideBuilder {
            eps: eps.to_vec(),
            max_lag: None,
            hull_mode: HullMode::default(),
            force_generic: false,
            dispatch_override: None,
        }
    }

    /// The kernel dispatch decided at construction.
    #[doc(hidden)]
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// The configured lag bound, if any.
    pub fn max_lag(&self) -> Option<usize> {
        self.max_lag
    }

    /// The configured envelope-update strategy.
    pub fn hull_mode(&self) -> HullMode {
        self.hull_mode
    }

    /// Hull-size statistics accumulated since construction.
    pub fn hull_stats(&self) -> HullStats {
        self.stats
    }

    fn dims_(&self) -> usize {
        self.eps.len()
    }

    // ----- interval lifecycle -------------------------------------------------

    /// Algorithm 2 lines 2 / 29: two points open an interval, recycling
    /// the filter's hull / raw-point / regression storage. The hull
    /// capacity floor follows the observed worst case
    /// ([`HullStats::max_vertices`]), so skewed streams stop re-growing
    /// hulls on every interval.
    fn start_interval(&mut self, t0: f64, x0: &[f64], t1: f64, x1: &[f64]) -> Interval {
        let d = self.dims_();
        self.env.u.clear();
        self.env.l.clear();
        for i in 0..d {
            let e = self.eps[i];
            self.env.u.push(Line::through(Point2::new(t0, x0[i] - e), Point2::new(t1, x1[i] + e)));
            self.env.l.push(Line::through(Point2::new(t0, x0[i] + e), Point2::new(t1, x1[i] - e)));
        }
        // Every interval starts in the raw buffer; optimized mode builds
        // hulls lazily once the interval outgrows the scan threshold.
        for (i, r) in self.raw.iter_mut().enumerate() {
            r.clear();
            r.push(Point2::new(t0, x0[i]));
            r.push(Point2::new(t1, x1[i]));
        }
        self.sums.reset(t0, x0);
        self.sums.push(t0, x0);
        self.sums.push(t1, x1);
        Interval { first_t: t0, last_t: t1, n_pts: 2, frozen: None, hull_built: false }
    }

    /// Acceptance test against a frozen interval's committed lines.
    /// Identical scalar code under every dispatch (the lines are AoS and
    /// this path is off the envelope hot loop).
    fn fits_frozen(eps: &DimVec<f64>, f: &Frozen, t: f64, x: &[f64]) -> bool {
        let g = f.g.as_slice();
        x.iter().enumerate().all(|(i, &v)| (v - g[i].eval(t)).abs() <= eps[i])
    }

    /// Fused Lemma 4.2 acceptance test plus Algorithm 2 lines 32–39
    /// (hull update and envelope rebuilds through tangent queries) for a
    /// live (unfrozen) interval. Returns whether the point fit; nothing
    /// is mutated on a miss.
    ///
    /// Associated, over explicit field borrows, so the push hot path can
    /// run it on the live interval in place. Every [`Dispatch`] arm
    /// evaluates the same expression tree — the output streams are
    /// byte-identical (pinned by property tests).
    #[allow(clippy::too_many_arguments)]
    fn step(
        dispatch: Dispatch,
        hull_mode: HullMode,
        eps: &DimVec<f64>,
        env: &mut Envelopes,
        hulls: &mut [IncrementalHull],
        raw: &mut [Vec<Point2>],
        sums: &mut RegressionSums,
        iv: &mut Interval,
        t: f64,
        x: &[f64],
    ) -> bool {
        let use_hull = hull_mode == HullMode::Optimized && iv.hull_built;
        match dispatch {
            Dispatch::Scalar1 => {
                let e = eps[0];
                let v = x[0];
                let ue = env.u.eval(0, t);
                let le = env.l.eval(0, t);
                if !(v <= ue + e && v >= le - e) {
                    return false;
                }
                if v > le + e {
                    Self::rebuild_lower(
                        use_hull,
                        &mut env.l,
                        hulls,
                        raw,
                        0,
                        e,
                        Point2::new(t, v - e),
                    );
                }
                if v < ue - e {
                    Self::rebuild_upper(
                        use_hull,
                        &mut env.u,
                        hulls,
                        raw,
                        0,
                        e,
                        Point2::new(t, v + e),
                    );
                }
                Self::note_point(use_hull, env, hulls, raw, 0, t, v);
                sums.push(t, std::slice::from_ref(&v));
            }
            Dispatch::Lanes(k) => {
                // Fused acceptance test + regression-sums update: one
                // kernel call instead of two (`#[target_feature]` keeps
                // each call from inlining here, so call count matters).
                let s = sums.slide_step_lanes(k, env.u.view(), env.l.view(), eps, t, x);
                if !s.fits {
                    return false;
                }
                let eps = eps.as_slice();
                for (i, &v) in x.iter().enumerate() {
                    let e = eps[i];
                    if s.needs_l & (1 << i) != 0 {
                        Self::rebuild_lower(
                            use_hull,
                            &mut env.l,
                            hulls,
                            raw,
                            i,
                            e,
                            Point2::new(t, v - e),
                        );
                    }
                    if s.needs_u & (1 << i) != 0 {
                        Self::rebuild_upper(
                            use_hull,
                            &mut env.u,
                            hulls,
                            raw,
                            i,
                            e,
                            Point2::new(t, v + e),
                        );
                    }
                    Self::note_point(use_hull, env, hulls, raw, i, t, v);
                }
            }
            Dispatch::Generic => {
                let eps = eps.as_slice();
                let fit = x.iter().enumerate().all(|(i, &v)| {
                    v <= env.u.eval(i, t) + eps[i] && v >= env.l.eval(i, t) - eps[i]
                });
                if !fit {
                    return false;
                }
                for (i, &v) in x.iter().enumerate() {
                    let e = eps[i];
                    // Max-slope line through an up-shifted earlier point
                    // and the down-shifted new point; earlier touch on
                    // the lower chain (and symmetrically for the upper).
                    if v > env.l.eval(i, t) + e {
                        Self::rebuild_lower(
                            use_hull,
                            &mut env.l,
                            hulls,
                            raw,
                            i,
                            e,
                            Point2::new(t, v - e),
                        );
                    }
                    if v < env.u.eval(i, t) - e {
                        Self::rebuild_upper(
                            use_hull,
                            &mut env.u,
                            hulls,
                            raw,
                            i,
                            e,
                            Point2::new(t, v + e),
                        );
                    }
                    Self::note_point(use_hull, env, hulls, raw, i, t, v);
                }
                sums.push(t, x);
            }
        }
        Self::maybe_build_hulls(hull_mode, iv, hulls, raw);
        iv.last_t = t;
        iv.n_pts += 1;
        true
    }

    /// Rebuilds the lower envelope of dimension `i` from a hull tangent
    /// through the shifted new point `q = (t, v − ε)`.
    fn rebuild_lower(
        use_hull: bool,
        env_l: &mut EnvLines,
        hulls: &mut [IncrementalHull],
        raw: &mut [Vec<Point2>],
        i: usize,
        e: f64,
        q: Point2,
    ) {
        let hit = if use_hull {
            max_slope_to_chain(hulls[i].chain(Chain::Lower), e, q)
        } else {
            // Interval points always precede the query point in time.
            scan::max_slope_before(&raw[i], e, q)
        }
        .expect("interval always holds at least one prior point");
        // Same bits as `Line::through(hit.vertex, q)` — the query already
        // paid for that division.
        env_l.set(i, Line::new(hit.vertex, hit.slope));
    }

    /// Rebuilds the upper envelope of dimension `i` from a hull tangent
    /// through the shifted new point `q = (t, v + ε)`.
    fn rebuild_upper(
        use_hull: bool,
        env_u: &mut EnvLines,
        hulls: &mut [IncrementalHull],
        raw: &mut [Vec<Point2>],
        i: usize,
        e: f64,
        q: Point2,
    ) {
        let hit = if use_hull {
            min_slope_to_chain(hulls[i].chain(Chain::Upper), -e, q)
        } else {
            scan::min_slope_before(&raw[i], -e, q)
        }
        .expect("interval always holds at least one prior point");
        env_u.set(i, Line::new(hit.vertex, hit.slope));
    }

    /// Per-dimension tail of an accepted step: cone sanity check plus
    /// adding the raw point to the hull (or point list).
    #[inline]
    fn note_point(
        use_hull: bool,
        env: &Envelopes,
        hulls: &mut [IncrementalHull],
        raw: &mut [Vec<Point2>],
        i: usize,
        t: f64,
        v: f64,
    ) {
        debug_assert!(
            env.l.slope[i] <= env.u.slope[i] + 1e-9 * env.u.slope[i].abs().max(1.0),
            "slide cone emptied in dim {i}"
        );
        if use_hull {
            hulls[i].push(Point2::new(t, v));
        } else {
            raw[i].push(Point2::new(t, v));
        }
    }

    /// Lazy hull activation: once an optimized-mode interval outgrows
    /// [`LAZY_HULL_THRESHOLD`], replay its raw buffer into the hulls and
    /// route subsequent points and tangent queries there. Scans over the
    /// raw buffer and tangent queries on the hull of the same points pick
    /// the same extreme slope (the extreme vertex is a hull vertex), so
    /// the switch is behaviour-preserving.
    #[inline]
    fn maybe_build_hulls(
        hull_mode: HullMode,
        iv: &mut Interval,
        hulls: &mut [IncrementalHull],
        raw: &[Vec<Point2>],
    ) {
        if hull_mode != HullMode::Optimized || iv.hull_built || raw[0].len() < LAZY_HULL_THRESHOLD {
            return;
        }
        for (h, r) in hulls.iter_mut().zip(raw) {
            h.clear();
            for &p in r {
                h.push(p);
            }
        }
        iv.hull_built = true;
    }

    /// The feasible cone at interval close: per-dimension envelope
    /// intersection and slope bounds, filled into recycled scratch.
    fn fill_cone(&self, cone: &mut Cone) {
        cone.z.clear();
        cone.lo.clear();
        cone.hi.clear();
        for i in 0..self.dims_() {
            let u = self.env.u.line(i);
            let l = self.env.l.line(i);
            cone.lo.push(l.slope);
            cone.hi.push(u.slope);
            cone.z.push(u.intersection(&l));
        }
    }

    /// Chooses the MSE-optimal feasible line per dimension, ignoring any
    /// connection opportunity (Algorithm 2 line 17 for the disconnected
    /// case), filling recycled storage.
    fn mse_lines_into(&self, iv: &Interval, cone: &Cone, out: &mut DimVec<Line>) {
        out.clear();
        for i in 0..self.dims_() {
            out.push(match cone.z[i] {
                Some(z) => {
                    let a = self.sums.clamped_slope(z.t, z.x, i, cone.lo[i], cone.hi[i]);
                    Line::new(z, a).anchored_at(iv.first_t)
                }
                None => {
                    // (Near-)parallel envelopes: the midline is a pointwise
                    // convex combination of two feasible lines, hence
                    // feasible.
                    let mid = 0.5 * (self.env.u.eval(i, iv.last_t) + self.env.l.eval(i, iv.last_t));
                    Line::new(Point2::new(iv.last_t, mid), self.env.l.slope[i])
                        .anchored_at(iv.first_t)
                }
            });
        }
    }

    /// Emits the resolved pending segment. `p` is consumed: its start
    /// payload moves straight into the [`Segment`] (no clone, no heap)
    /// and its remaining `DimVec` payloads retire into the arena for
    /// the next interval close to reuse.
    fn emit_pending(
        &mut self,
        p: Pending,
        t_end: f64,
        x_end: DimVec<f64>,
        sink: &mut dyn SegmentSink,
    ) {
        let Pending { g, start_t, start_x, connected, end_data_t: _, u_env, l_env, n_pts } = p;
        sink.segment(Segment {
            t_start: start_t,
            x_start: start_x,
            t_end,
            x_end,
            connected,
            n_points: n_pts,
            new_recordings: if connected { 1 } else { 2 },
        });
        if self.retired.len() < 2 {
            self.retired.push(Pending { g, u_env, l_env, ..Pending::default() });
        }
    }

    /// A pooled [`Pending`] whose payload buffers (if any retired) carry
    /// their spill capacity; fields still hold stale retired values and
    /// must all be overwritten by the caller.
    fn take_retired(&mut self) -> Pending {
        self.retired.pop().unwrap_or_default()
    }

    /// A copy of `x` in the pooled one-point-state buffer (fresh only on
    /// the very first use), so re-opening after a violation allocates
    /// nothing even when the dimensions spill.
    fn one_x(&mut self, x: &[f64]) -> DimVec<f64> {
        let mut buf = self.x_pool.take().unwrap_or_default();
        buf.assign(x);
        buf
    }

    fn note_stats(&mut self, iv: &Interval) {
        // Intervals that never outgrew the raw buffer report its point
        // count — an upper bound on (and for tiny intervals a good proxy
        // of) the hull vertex count.
        let verts = if self.hull_mode == HullMode::Optimized && iv.hull_built {
            self.hulls.iter().map(|h| h.num_vertices()).max().unwrap_or(0)
        } else {
            self.raw.iter().map(|r| r.len()).max().unwrap_or(0)
        };
        self.stats.max_vertices = self.stats.max_vertices.max(verts);
        self.stats.total_vertices += verts as u64;
        self.stats.intervals += 1;
        self.stats.max_interval_points = self.stats.max_interval_points.max(iv.n_pts);
    }

    /// Closes `iv`: resolves the pending segment (connecting when Lemma
    /// 4.4 admits it), emits it, and returns the new pending segment for
    /// `iv` itself.
    fn close_interval(&mut self, iv: &Interval, sink: &mut dyn SegmentSink) -> Pending {
        self.note_stats(iv);
        let mut cone = self.cone_scratch.take().unwrap_or_default();
        self.fill_cone(&mut cone);
        let next = 'next: {
            if let Some(p) = self.pending.take() {
                if let Some(conn) = self.try_connect(&p, &cone) {
                    self.emit_pending(p, conn.t_c, conn.x_c.clone(), sink);
                    let mut np = self.take_retired();
                    // Swap the candidate line buffer in and recycle the
                    // retired one for the next connection attempt.
                    self.line_pool = Some(std::mem::replace(&mut np.g, conn.g));
                    np.start_t = conn.t_c;
                    np.start_x = conn.x_c;
                    np.connected = true;
                    np.end_data_t = iv.last_t;
                    np.u_env.assign(&self.env.u);
                    np.l_env.assign(&self.env.l);
                    np.n_pts = iv.n_pts;
                    break 'next np;
                }
                // Disconnected: the previous segment ends at its own last
                // data point (Algorithm 2 line 21).
                let e = p.end_data_t;
                let x_e: DimVec<f64> = p.g.iter().map(|g| g.eval(e)).collect();
                self.emit_pending(p, e, x_e, sink);
            }
            let mut np = self.take_retired();
            self.mse_lines_into(iv, &cone, &mut np.g);
            np.start_t = iv.first_t;
            np.start_x = np.g.iter().map(|gl| gl.eval(iv.first_t)).collect();
            np.connected = false;
            np.end_data_t = iv.last_t;
            np.u_env.assign(&self.env.u);
            np.l_env.assign(&self.env.l);
            np.n_pts = iv.n_pts;
            np
        };
        self.cone_scratch = Some(cone);
        next
    }

    // ----- Lemma 4.4: connection ----------------------------------------------

    /// Attempts to intersect the pending segment's line with a feasible
    /// line of the just-closed interval (whose final envelopes are still
    /// live in [`Self::env`]).
    fn try_connect(&mut self, p: &Pending, cone: &Cone) -> Option<Connection> {
        if p.n_pts == 0 {
            return None;
        }
        let e = p.end_data_t;
        let d = self.dims_();
        // Connection must give the previous segment positive extent.
        let span = (e - p.start_t).abs().max(1.0);
        let mut alpha = p.start_t + 1e-9 * span;
        let mut beta = e;
        for i in 0..d {
            let z = cone.z[i]?;
            // Guard degenerate geometry: the envelope intersection must lie
            // beyond the previous interval's data.
            if z.t <= e + 1e-12 * span {
                return None;
            }
            let u_line = self.env.u.line(i);
            let l_line = self.env.l.line(i);
            let g_prev = &p.g[i];
            let eps = self.eps[i];
            // T1: times where g^{k−1} runs between the new envelopes, so a
            // line through z and that point has a feasible slope.
            let (t1_lo, t1_hi) = bounded_true_interval(
                g_prev.intersection_t(&u_line),
                g_prev.intersection_t(&l_line),
                |t| {
                    let v = g_prev.eval(t);
                    let a = u_line.eval(t);
                    let b = l_line.eval(t);
                    v >= a.min(b) - 1e-9 * eps && v <= a.max(b) + 1e-9 * eps
                },
                e,
            )?;
            // T2: times where the connecting line still lies between the
            // previous interval's envelopes at t = e (Lemma 4.4's s/q
            // constraint), so the old interval's tail stays covered.
            let le = p.l_env.eval(i, e);
            let ue = p.u_env.eval(i, e);
            let s_line = Line::through(z, Point2::new(e, le));
            let q_line = Line::through(z, Point2::new(e, ue));
            let (t2_lo, t2_hi) = bounded_true_interval(
                g_prev.intersection_t(&s_line),
                g_prev.intersection_t(&q_line),
                |t| {
                    if (z.t - t).abs() < 1e-12 * span {
                        return false;
                    }
                    let a = (z.x - g_prev.eval(t)) / (z.t - t);
                    let at_e = z.x + a * (e - z.t);
                    at_e >= le.min(ue) - 1e-9 * eps && at_e <= le.max(ue) + 1e-9 * eps
                },
                e,
            )?;
            alpha = alpha.max(t1_lo).max(t2_lo);
            beta = beta.min(t1_hi).min(t2_hi);
            if alpha > beta {
                return None;
            }
        }
        let t_c = self.pick_connection_time(p, cone, alpha, beta)?;
        // Force the per-dimension slopes through z and the connection
        // point, then verify everything before committing. The candidate
        // line buffer is pooled; it returns to the pool on every bail-out
        // so failed attempts stay allocation-free too.
        let mut g = self.line_pool.take().unwrap_or_default();
        g.clear();
        let mut x_c = DimVec::with_capacity(d);
        for i in 0..d {
            let z = cone.z[i].expect("checked above");
            let gx = p.g[i].eval(t_c);
            if (z.t - t_c).abs() < 1e-12 * span.max(z.t.abs()) {
                self.line_pool = Some(g);
                return None;
            }
            let a = (z.x - gx) / (z.t - t_c);
            let slack = 1e-9 * (cone.hi[i] - cone.lo[i]).abs().max(1e-9);
            if !(a >= cone.lo[i] - slack && a <= cone.hi[i] + slack) {
                self.line_pool = Some(g);
                return None;
            }
            let line = Line::new(Point2::new(t_c, gx), a);
            let (pl, pu) = (p.l_env.line(i), p.u_env.line(i));
            if !sandwich_ok(&pl, &pu, &line, t_c, e, self.eps[i]) {
                self.line_pool = Some(g);
                return None;
            }
            g.push(line);
            x_c.push(gx);
        }
        Some(Connection { t_c, x_c, g })
    }

    /// Chooses the connection time inside `[alpha, beta]`.
    ///
    /// For one dimension this follows the paper exactly: clamp the
    /// MSE-optimal slope into the narrowed cone and intersect. For `d > 1`
    /// the slopes are functions of the single connection time, so we
    /// minimize the ε-normalized quadratic MSE surrogate over the window.
    fn pick_connection_time(&self, p: &Pending, cone: &Cone, alpha: f64, beta: f64) -> Option<f64> {
        if !(alpha.is_finite() && beta.is_finite() && alpha <= beta) {
            return None;
        }
        let d = self.dims_();
        if d == 1 {
            let z = cone.z[0]?;
            let g_prev = &p.g[0];
            let slope_at = |t: f64| (z.x - g_prev.eval(t)) / (z.t - t);
            let (sa, sb) = (slope_at(alpha), slope_at(beta));
            let (lo_s, hi_s) = (sa.min(sb), sa.max(sb));
            let want = self.sums.clamped_slope(z.t, z.x, 0, cone.lo[0], cone.hi[0]);
            let a = want.clamp(lo_s, hi_s);
            let t_c = Line::new(z, a).intersection_t(g_prev)?;
            return Some(t_c.clamp(alpha, beta));
        }
        // Multi-dimensional: weighted quadratic surrogate, coarse scan +
        // ternary refinement.
        let mut weights = DimVec::new();
        let mut targets = DimVec::new();
        for i in 0..d {
            let z = cone.z[i]?;
            let w = self.sums.slope_curvature(z.t) / (self.eps[i] * self.eps[i]);
            let a = self
                .sums
                .optimal_slope(z.t, z.x, i)
                .map(|s| s.clamp(cone.lo[i], cone.hi[i]))
                .unwrap_or(0.5 * (cone.lo[i] + cone.hi[i]));
            weights.push(w.max(0.0));
            targets.push(a);
        }
        let cost = |t: f64| -> f64 {
            (0..d)
                .map(|i| {
                    let z = cone.z[i].expect("checked above");
                    let a = (z.x - p.g[i].eval(t)) / (z.t - t);
                    weights[i] * (a - targets[i]) * (a - targets[i])
                })
                .sum()
        };
        const COARSE: usize = 17;
        let mut best_t = alpha;
        let mut best_c = f64::INFINITY;
        for k in 0..=COARSE {
            let t = alpha + (beta - alpha) * k as f64 / COARSE as f64;
            let c = cost(t);
            if c < best_c {
                best_c = c;
                best_t = t;
            }
        }
        // Ternary refinement with a width-based convergence cut: stop as
        // soon as the bracket is tight relative to the window's time
        // scale instead of always burning the full iteration budget (two
        // `cost` evaluations each) on already-converged brackets. The
        // iteration cap bounds the worst case.
        let span = beta.abs().max(alpha.abs()).max(1.0);
        let step = (beta - alpha) / COARSE as f64;
        let mut lo = (best_t - step).max(alpha);
        let mut hi = (best_t + step).min(beta);
        for _ in 0..48 {
            if hi - lo <= 1e-12 * span {
                break;
            }
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if cost(m1) <= cost(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        Some(0.5 * (lo + hi))
    }

    // ----- lag bound -----------------------------------------------------------

    fn unshipped(&self, iv: &Interval) -> usize {
        let pend = self.pending.as_ref().map_or(0, |p| p.n_pts as usize);
        let live = if iv.frozen.is_some() { 0 } else { iv.n_pts as usize };
        pend + live
    }

    /// Paper §4.3 note: when the receiver is `m_max_lag` points behind,
    /// resolve the pending segment, commit the current interval to one
    /// line, ship it, and degrade to a linear filter.
    fn maybe_freeze(&mut self, iv: &mut Interval, sink: &mut dyn SegmentSink) {
        let Some(m) = self.max_lag else { return };
        if iv.frozen.is_some() || self.unshipped(iv) < m {
            return;
        }
        let next = self.close_interval(iv, sink);
        sink.provisional(ProvisionalUpdate {
            t_anchor: next.start_t,
            x_anchor: next.start_x.clone(),
            slopes: next.g.iter().map(|g| g.slope).collect(),
            covers_through: iv.last_t,
        });
        iv.frozen = Some(Frozen {
            g: next.g,
            start_t: next.start_t,
            start_x: next.start_x,
            connected: next.connected,
        });
        // The frozen line was shipped; its end recording is sent when the
        // interval ends, so nothing becomes pending.
        self.pending = None;
    }

    /// Emits a frozen interval's segment (its line is already at the
    /// receiver; only the end recording is new).
    fn emit_frozen(iv: &Interval, sink: &mut dyn SegmentSink) {
        let f = iv.frozen.as_ref().expect("caller checked");
        let x_end: DimVec<f64> = f.g.iter().map(|g| g.eval(iv.last_t)).collect();
        sink.segment(Segment {
            t_start: f.start_t,
            x_start: f.start_x.clone(),
            t_end: iv.last_t,
            x_end,
            connected: f.connected,
            n_points: iv.n_pts,
            new_recordings: if f.connected { 1 } else { 2 },
        });
    }

    /// After a violation leaves a fresh one-point state, flush the pending
    /// segment if it alone exceeds the lag bound.
    fn enforce_lag_on_pending(&mut self, extra: usize, sink: &mut dyn SegmentSink) {
        let Some(m) = self.max_lag else { return };
        let pend = self.pending.as_ref().map_or(0, |p| p.n_pts as usize);
        if pend + extra >= m {
            if let Some(p) = self.pending.take() {
                let e = p.end_data_t;
                let x_e: DimVec<f64> = p.g.iter().map(|g| g.eval(e)).collect();
                self.emit_pending(p, e, x_e, sink);
            }
        }
    }

    fn last_t(&self) -> Option<f64> {
        match &self.state {
            State::Empty => None,
            State::One { t, .. } => Some(*t),
            State::Active(iv) => Some(iv.last_t),
        }
    }
}

/// Locates the (clipped) interval where `pred` holds, delimited by up to
/// two crossing times. `probe` is a time inside the caller's domain used
/// when both crossings are absent (constant predicate).
///
/// Returns `None` when the true-region is empty or is not a single
/// interval (the paper's connection conditions fail in those
/// orientations).
fn bounded_true_interval(
    c1: Option<f64>,
    c2: Option<f64>,
    pred: impl Fn(f64) -> bool,
    probe: f64,
) -> Option<(f64, f64)> {
    match (c1, c2) {
        (Some(a), Some(b)) => {
            let (lo, hi) = (a.min(b), a.max(b));
            if hi - lo > 0.0 && pred(0.5 * (lo + hi)) {
                Some((lo, hi))
            } else {
                None
            }
        }
        (Some(c), None) | (None, Some(c)) => {
            // Half-line: find which side is true.
            let w = c.abs().max(probe.abs()).max(1.0);
            if pred(c - w) {
                Some((f64::NEG_INFINITY, c))
            } else if pred(c + w) {
                Some((c, f64::INFINITY))
            } else {
                None
            }
        }
        (None, None) => pred(probe).then_some((f64::NEG_INFINITY, f64::INFINITY)),
    }
}

/// Airtight tail-coverage check: `line` must run between the previous
/// interval's envelopes `l_env`/`u_env` (each within ε of every old point)
/// on `[t_c, e]`. Both bounds are lines, so checking the ends — plus the
/// envelope crossing if it falls inside — is exact up to the slack.
fn sandwich_ok(l_env: &Line, u_env: &Line, line: &Line, t_c: f64, e: f64, eps: f64) -> bool {
    let slack = 1e-9 * eps.max(1.0);
    let inside = |t: f64| {
        let a = l_env.eval(t);
        let b = u_env.eval(t);
        let v = line.eval(t);
        v >= a.min(b) - slack && v <= a.max(b) + slack
    };
    if !inside(t_c) || !inside(e) {
        return false;
    }
    if let Some(t_cross) = l_env.intersection_t(u_env) {
        if t_cross > t_c && t_cross < e && !inside(t_cross) {
            return false;
        }
    }
    true
}

impl StreamFilter for SlideFilter {
    fn dims(&self) -> usize {
        self.eps.len()
    }

    fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        validate_push(self.dims_(), self.last_t(), t, x)?;
        // Hot path: an accepted sample updates the live interval's
        // envelopes/hulls in place — no state-enum move per point.
        // Lag-bounded filters take the general path below (they may need
        // to freeze via the sink).
        if self.max_lag.is_none() {
            if let State::Active(iv) = &mut self.state {
                if iv.frozen.is_none()
                    && Self::step(
                        self.dispatch,
                        self.hull_mode,
                        &self.eps,
                        &mut self.env,
                        &mut self.hulls,
                        &mut self.raw,
                        &mut self.sums,
                        iv,
                        t,
                        x,
                    )
                {
                    return Ok(());
                }
            }
        }
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {
                let x = self.one_x(x);
                self.state = State::One { t, x };
            }
            State::One { t: t0, x: x0 } => {
                let mut iv = self.start_interval(t0, &x0, t, x);
                self.x_pool = Some(x0);
                self.maybe_freeze(&mut iv, sink);
                self.state = State::Active(iv);
            }
            State::Active(mut iv) => {
                let ok = if let Some(f) = &iv.frozen {
                    Self::fits_frozen(&self.eps, f, t, x)
                } else {
                    Self::step(
                        self.dispatch,
                        self.hull_mode,
                        &self.eps,
                        &mut self.env,
                        &mut self.hulls,
                        &mut self.raw,
                        &mut self.sums,
                        &mut iv,
                        t,
                        x,
                    )
                };
                if ok {
                    if iv.frozen.is_some() {
                        iv.last_t = t;
                        iv.n_pts += 1;
                    }
                    self.maybe_freeze(&mut iv, sink);
                    self.state = State::Active(iv);
                } else {
                    // Algorithm 2 lines 6–30: close, remember the segment
                    // as pending, reopen with the violator.
                    if iv.frozen.is_some() {
                        Self::emit_frozen(&iv, sink);
                    } else {
                        let next = self.close_interval(&iv, sink);
                        self.pending = Some(next);
                    }
                    self.enforce_lag_on_pending(1, sink);
                    let x = self.one_x(x);
                    self.state = State::One { t, x };
                }
            }
        }
        Ok(())
    }

    /// Batch fast path: one validation scan for the whole batch, then an
    /// inner accept loop that keeps the live interval (hulls, envelopes,
    /// sums) out of the state enum instead of moving it through
    /// `mem::replace` on every point.
    fn push_batch(
        &mut self,
        samples: &[(f64, &[f64])],
        sink: &mut dyn SegmentSink,
    ) -> Result<usize, BatchError> {
        let (upto, err) = validate_batch(self.dims_(), self.last_t(), samples);
        let mut state = std::mem::replace(&mut self.state, State::Empty);
        let mut i = 0;
        while i < upto {
            let (t, x) = samples[i];
            state = match state {
                State::Empty => {
                    i += 1;
                    let x = self.one_x(x);
                    State::One { t, x }
                }
                State::One { t: t0, x: x0 } => {
                    i += 1;
                    let mut iv = self.start_interval(t0, &x0, t, x);
                    self.x_pool = Some(x0);
                    self.maybe_freeze(&mut iv, sink);
                    State::Active(iv)
                }
                State::Active(mut iv) => {
                    // Absorb the longest run of accepted samples.
                    while i < upto {
                        let (t, x) = samples[i];
                        let ok = if let Some(f) = &iv.frozen {
                            let ok = Self::fits_frozen(&self.eps, f, t, x);
                            if ok {
                                iv.last_t = t;
                                iv.n_pts += 1;
                            }
                            ok
                        } else {
                            Self::step(
                                self.dispatch,
                                self.hull_mode,
                                &self.eps,
                                &mut self.env,
                                &mut self.hulls,
                                &mut self.raw,
                                &mut self.sums,
                                &mut iv,
                                t,
                                x,
                            )
                        };
                        if !ok {
                            break;
                        }
                        self.maybe_freeze(&mut iv, sink);
                        i += 1;
                    }
                    if i < upto {
                        // The violator closes the interval and reopens.
                        let (t, x) = samples[i];
                        i += 1;
                        if iv.frozen.is_some() {
                            Self::emit_frozen(&iv, sink);
                        } else {
                            let next = self.close_interval(&iv, sink);
                            self.pending = Some(next);
                        }
                        self.enforce_lag_on_pending(1, sink);
                        let x = self.one_x(x);
                        State::One { t, x }
                    } else {
                        State::Active(iv)
                    }
                }
            };
        }
        self.state = state;
        match err {
            Some(error) => Err(BatchError { absorbed: upto, error }),
            None => Ok(upto),
        }
    }

    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {
                debug_assert!(self.pending.is_none(), "pending without samples");
            }
            State::One { t, x } => {
                if let Some(p) = self.pending.take() {
                    let e = p.end_data_t;
                    let x_e: DimVec<f64> = p.g.iter().map(|g| g.eval(e)).collect();
                    self.emit_pending(p, e, x_e, sink);
                }
                sink.segment(point_segment(t, &x, false));
                self.x_pool = Some(x);
            }
            State::Active(iv) => {
                if iv.frozen.is_some() {
                    Self::emit_frozen(&iv, sink);
                } else {
                    // Algorithm 2 lines 24–25: the last interval's segment
                    // ends at the final data point; the connection attempt
                    // with the previous segment still applies.
                    let p = self.close_interval(&iv, sink);
                    let x_e: DimVec<f64> = p.g.iter().map(|g| g.eval(iv.last_t)).collect();
                    self.emit_pending(p, iv.last_t, x_e, sink);
                }
            }
        }
        self.pending = None;
        Ok(())
    }

    fn pending_points(&self) -> usize {
        let state_points = match &self.state {
            State::Empty => 0,
            State::One { .. } => 1,
            State::Active(iv) => {
                if iv.frozen.is_some() {
                    0
                } else {
                    iv.n_pts as usize
                }
            }
        };
        self.pending.as_ref().map_or(0, |p| p.n_pts as usize) + state_points
    }

    fn name(&self) -> &'static str {
        "slide"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{run_filter, SwingFilter};
    use crate::sample::Signal;
    use crate::segment::CollectingSink;

    fn compress(signal: &Signal, eps: f64) -> Vec<Segment> {
        let mut f = SlideFilter::new(&vec![eps; signal.dims()]).unwrap();
        run_filter(&mut f, signal).unwrap()
    }

    fn check_guarantee(signal: &Signal, segs: &[Segment], eps: &[f64]) {
        for (t, x) in signal.iter() {
            let seg = segs
                .iter()
                .find(|s| s.covers(t))
                .unwrap_or_else(|| panic!("no segment covers t={t}"));
            for d in 0..signal.dims() {
                let err = (seg.eval(t, d) - x[d]).abs();
                assert!(
                    err <= eps[d] * (1.0 + 1e-6),
                    "dim {d}: error {err} > ε={} at t={t}",
                    eps[d]
                );
            }
        }
    }

    #[test]
    fn straight_line_is_one_segment() {
        let values: Vec<f64> = (0..100).map(|i| 0.25 * i as f64).collect();
        let signal = Signal::from_values(&values);
        let segs = compress(&signal, 0.05);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 100);
        assert!((segs[0].slope(0) - 0.25).abs() < 1e-9);
    }

    /// The paper's Example 4.1 follow-through: the pattern that defeats
    /// the swing filter at the 5th point survives in the slide filter
    /// because envelopes slide instead of pivoting around the origin.
    #[test]
    fn slide_outlives_swing_on_paper_pattern() {
        let signal =
            Signal::from_pairs(&[(1.0, 0.0), (2.0, 1.0), (3.0, 2.5), (4.0, 4.5), (5.0, 3.6)]);
        let mut swing = SwingFilter::new(&[1.0]).unwrap();
        let swing_segs = run_filter(&mut swing, &signal).unwrap();
        let slide_segs = compress(&signal, 1.0);
        assert!(
            slide_segs.len() < swing_segs.len(),
            "slide ({}) must beat swing ({}) here",
            slide_segs.len(),
            swing_segs.len()
        );
        assert_eq!(slide_segs.len(), 1);
        check_guarantee(&signal, &slide_segs, &[1.0]);
    }

    #[test]
    fn precision_guarantee_theorem_4_1_random_walk() {
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        let values: Vec<f64> = (0..3000)
            .map(|_| {
                x += rnd() * 2.0;
                x
            })
            .collect();
        let signal = Signal::from_values(&values);
        for eps in [0.05, 0.3, 1.0, 5.0] {
            let segs = compress(&signal, eps);
            check_guarantee(&signal, &segs, &[eps]);
        }
    }

    #[test]
    fn exhaustive_mode_matches_guarantee_and_compression() {
        let mut seed = 99u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        let values: Vec<f64> = (0..800)
            .map(|_| {
                x += rnd();
                x
            })
            .collect();
        let signal = Signal::from_values(&values);
        let mut opt = SlideFilter::builder(&[0.7]).build().unwrap();
        let mut exh = SlideFilter::builder(&[0.7]).hull_mode(HullMode::Exhaustive).build().unwrap();
        let so = run_filter(&mut opt, &signal).unwrap();
        let se = run_filter(&mut exh, &signal).unwrap();
        check_guarantee(&signal, &so, &[0.7]);
        check_guarantee(&signal, &se, &[0.7]);
        // Lemma 4.3: the hull-optimized filter finds the same envelopes,
        // hence the same segmentation.
        assert_eq!(so.len(), se.len());
        for (a, b) in so.iter().zip(se.iter()) {
            assert!((a.t_start - b.t_start).abs() < 1e-9);
            assert!((a.t_end - b.t_end).abs() < 1e-9);
            assert_eq!(a.connected, b.connected);
        }
    }

    #[test]
    fn connections_share_endpoints_and_cost_one_recording() {
        // A noisy zig-zag provokes many segments, some connectable.
        let values: Vec<f64> = (0..400)
            .map(|i| {
                let t = i as f64;
                (t * 0.5).sin() * 5.0 + (t * 0.077).cos() * 2.0
            })
            .collect();
        let signal = Signal::from_values(&values);
        let segs = compress(&signal, 0.4);
        check_guarantee(&signal, &segs, &[0.4]);
        let mut any_connected = false;
        for pair in segs.windows(2) {
            if pair[1].connected {
                any_connected = true;
                assert!((pair[0].t_end - pair[1].t_start).abs() < 1e-9);
                assert!((pair[0].x_end[0] - pair[1].x_start[0]).abs() < 1e-9);
                assert_eq!(pair[1].new_recordings, 1);
            } else if pair[1].t_start < pair[1].t_end {
                assert_eq!(pair[1].new_recordings, 2);
                assert!(pair[1].t_start >= pair[0].t_end - 1e-9);
            } else {
                // degenerate trailing point segment: one recording
                assert_eq!(pair[1].new_recordings, 1);
            }
        }
        assert!(any_connected, "expected at least one connection on this workload");
    }

    #[test]
    fn slide_compresses_at_least_as_well_as_swing_on_oscillation() {
        // Figure 10 discussion: sharp oscillation favours the slide filter.
        let values: Vec<f64> = (0..500).map(|i| if i % 2 == 0 { 0.0 } else { 4.0 }).collect();
        let signal = Signal::from_values(&values);
        let slide = compress(&signal, 0.5);
        let mut swing = SwingFilter::new(&[0.5]).unwrap();
        let swing_segs = run_filter(&mut swing, &signal).unwrap();
        let slide_recs: u32 = slide.iter().map(|s| s.new_recordings as u32).sum();
        let swing_recs: u32 = swing_segs.iter().map(|s| s.new_recordings as u32).sum();
        assert!(slide_recs <= swing_recs, "slide {slide_recs} recordings vs swing {swing_recs}");
        check_guarantee(&signal, &slide, &[0.5]);
    }

    #[test]
    fn multi_dim_guarantee_and_joint_segmentation() {
        let mut s = Signal::new(2);
        let mut seed = 123u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let (mut a, mut b) = (0.0f64, 0.0f64);
        for j in 0..1000 {
            a += rnd();
            b += rnd() * 3.0;
            s.push(j as f64, &[a, b]).unwrap();
        }
        let eps = [0.5, 1.5];
        let mut f = SlideFilter::new(&eps).unwrap();
        let segs = run_filter(&mut f, &s).unwrap();
        check_guarantee(&s, &segs, &eps);
        let total: u32 = segs.iter().map(|sg| sg.n_points).sum();
        assert_eq!(total as usize, s.len());
    }

    #[test]
    fn multi_dim_connections_happen_and_hold() {
        // Exercise the d > 1 connection path (shared connection time via
        // the ternary-search surrogate). Perfectly correlated dimensions
        // keep the per-dimension windows aligned, so the 2-D run must
        // reproduce the 1-D connection structure; independent dimensions
        // rarely have intersecting windows (checked by the guarantee
        // tests instead).
        let mut s1 = Signal::new(1);
        let mut s2 = Signal::new(2);
        for j in 0..800 {
            let t = j as f64;
            let a = (t * 0.4).sin() * 5.0;
            s1.push(t, &[a]).unwrap();
            s2.push(t, &[a, a]).unwrap();
        }
        let eps2 = [0.5, 0.5];
        let mut f1 = SlideFilter::new(&[0.5]).unwrap();
        let mut f2 = SlideFilter::new(&eps2).unwrap();
        let segs1 = run_filter(&mut f1, &s1).unwrap();
        let segs2 = run_filter(&mut f2, &s2).unwrap();
        check_guarantee(&s2, &segs2, &eps2);
        let c1 = segs1.iter().filter(|sg| sg.connected).count();
        let c2 = segs2.iter().filter(|sg| sg.connected).count();
        assert!(c1 > 0, "1-D workload must produce connections");
        assert_eq!(segs1.len(), segs2.len(), "identical dims: same segmentation");
        assert_eq!(c1, c2, "identical dims: same connection structure");
        for pair in segs2.windows(2) {
            if pair[1].connected {
                for d in 0..2 {
                    assert!((pair[0].x_end[d] - pair[1].x_start[d]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn hull_stays_small_on_long_noisy_intervals() {
        // The paper observes m_H stays tiny regardless of interval length
        // (§4.3) — for noisy signals, where the expected hull size of n
        // points is O(log n). (A purely convex signal is the adversarial
        // exception: every point is a hull vertex.)
        let mut seed = 4242u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let values: Vec<f64> = (0..5000).map(|_| rnd() * 0.3).collect();
        let signal = Signal::from_values(&values);
        let mut f = SlideFilter::new(&[0.5]).unwrap();
        let _ = run_filter(&mut f, &signal).unwrap();
        let stats = f.hull_stats();
        assert!(stats.max_interval_points > 500, "interval should grow long");
        assert!(
            stats.max_vertices <= 64,
            "hull exploded: {} vertices for intervals of up to {} points",
            stats.max_vertices,
            stats.max_interval_points
        );
    }

    #[test]
    fn max_lag_bounds_pending_points() {
        let values: Vec<f64> = (0..300).map(|i| (i as f64 * 0.05).sin() * 2.0).collect();
        let signal = Signal::from_values(&values);
        let mut f = SlideFilter::builder(&[0.8]).max_lag(10).build().unwrap();
        let mut sink = CollectingSink::default();
        for (t, x) in signal.iter() {
            f.push(t, x, &mut sink).unwrap();
            assert!(f.pending_points() <= 10, "lag {} exceeded bound at t={t}", f.pending_points());
        }
        f.finish(&mut sink).unwrap();
        assert!(!sink.provisionals.is_empty());
        check_guarantee(&signal, &sink.segments, &[0.8]);
    }

    #[test]
    fn single_point_and_empty_streams() {
        let mut f = SlideFilter::new(&[1.0]).unwrap();
        let mut out: Vec<Segment> = Vec::new();
        f.finish(&mut out).unwrap();
        assert!(out.is_empty());
        f.push(0.0, &[2.0], &mut out).unwrap();
        f.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].n_points, 1);
    }

    #[test]
    fn two_point_stream_is_one_segment() {
        let signal = Signal::from_pairs(&[(0.0, 1.0), (1.0, 5.0)]);
        let segs = compress(&signal, 0.5);
        assert_eq!(segs.len(), 1);
        check_guarantee(&signal, &segs, &[0.5]);
    }

    #[test]
    fn trailing_violator_is_recorded() {
        let signal = Signal::from_pairs(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 50.0)]);
        let segs = compress(&signal, 0.5);
        check_guarantee(&signal, &segs, &[0.5]);
        assert_eq!(segs.last().unwrap().n_points, 1);
    }

    #[test]
    fn reusable_after_finish() {
        let signal = Signal::from_values(&[0.0, 2.0, -1.0, 3.0, 0.5, 9.0, 9.1]);
        let mut f = SlideFilter::new(&[0.5]).unwrap();
        let a = run_filter(&mut f, &signal).unwrap();
        let b = run_filter(&mut f, &signal).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(SlideFilter::new(&[]).is_err());
        assert!(SlideFilter::new(&[0.0]).is_err());
        assert!(SlideFilter::builder(&[1.0]).max_lag(1).build().is_err());
    }

    #[test]
    fn n_points_total_matches_stream() {
        let values: Vec<f64> = (0..987)
            .map(|i| ((i as f64) * 0.31).sin() * 3.0 + ((i * i % 17) as f64) * 0.05)
            .collect();
        let signal = Signal::from_values(&values);
        let segs = compress(&signal, 0.3);
        let total: u32 = segs.iter().map(|s| s.n_points).sum();
        assert_eq!(total as usize, signal.len());
        check_guarantee(&signal, &segs, &[0.3]);
    }

    #[test]
    fn bounded_true_interval_cases() {
        // Both crossings present, predicate true inside.
        let got = bounded_true_interval(Some(2.0), Some(5.0), |t| t > 2.0 && t < 5.0, 3.0);
        assert_eq!(got, Some((2.0, 5.0)));
        // Crossings present but true-region is outside → rejected.
        let got = bounded_true_interval(Some(2.0), Some(5.0), |t| !(2.0..=5.0).contains(&t), 3.0);
        assert_eq!(got, None);
        // Single crossing, true side below.
        let got = bounded_true_interval(Some(4.0), None, |t| t <= 4.0, 0.0);
        assert_eq!(got, Some((f64::NEG_INFINITY, 4.0)));
        // Single crossing, true side above.
        let got = bounded_true_interval(None, Some(4.0), |t| t >= 4.0, 0.0);
        assert_eq!(got, Some((4.0, f64::INFINITY)));
        // No crossings: predicate constant.
        let got = bounded_true_interval(None, None, |_| true, 7.0);
        assert_eq!(got, Some((f64::NEG_INFINITY, f64::INFINITY)));
        assert_eq!(bounded_true_interval(None, None, |_| false, 7.0), None);
        // Degenerate zero-width interval.
        assert_eq!(bounded_true_interval(Some(3.0), Some(3.0), |_| true, 3.0), None);
    }

    #[test]
    fn sandwich_ok_detects_mid_range_escape() {
        use pla_geom::{Line, Point2};
        // Envelopes crossing inside (t_c, e): a line inside at both ends
        // but outside at the crossing must be rejected.
        let l_env = Line::new(Point2::new(0.0, 0.0), 1.0); // x = t
                                                           // x = 4 − t, crossing the lower envelope at t = 2.
        let u_env = Line::new(Point2::new(0.0, 4.0), -1.0);
        // Constant line at 2.2: at t=0 inside [0,4]; at t=4 inside [4,0];
        // at the crossing t=2 the band is the single value 2.0 → outside.
        let line = Line::new(Point2::new(0.0, 2.2), 0.0);
        assert!(!sandwich_ok(&l_env, &u_env, &line, 0.0, 4.0, 1.0));
        // The exact crossing value passes.
        let line = Line::new(Point2::new(0.0, 2.0), 0.0);
        assert!(sandwich_ok(&l_env, &u_env, &line, 0.0, 4.0, 1.0));
        // Non-crossing envelopes: endpoint checks suffice.
        let l_env = Line::new(Point2::new(0.0, 0.0), 0.0);
        let u_env = Line::new(Point2::new(0.0, 1.0), 0.0);
        let inside = Line::new(Point2::new(0.0, 0.5), 0.0);
        let outside = Line::new(Point2::new(0.0, 1.5), 0.0);
        assert!(sandwich_ok(&l_env, &u_env, &inside, 0.0, 4.0, 1.0));
        assert!(!sandwich_ok(&l_env, &u_env, &outside, 0.0, 4.0, 1.0));
    }

    #[test]
    fn segments_are_time_ordered_and_non_overlapping() {
        let values: Vec<f64> = (0..600).map(|i| ((i as f64) * 0.9).sin() * 4.0).collect();
        let signal = Signal::from_values(&values);
        let segs = compress(&signal, 0.6);
        for pair in segs.windows(2) {
            assert!(
                pair[1].t_start >= pair[0].t_end - 1e-9,
                "overlap: {} then {}",
                pair[0].t_end,
                pair[1].t_start
            );
        }
    }
}
