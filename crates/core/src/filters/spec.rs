//! Config-driven filter construction.
//!
//! A multi-stream deployment (see the `pla-ingest` crate) holds thousands
//! of filters chosen per stream from configuration, not from code. This
//! module names each filter family with a [`FilterKind`] and bundles the
//! per-stream parameters into a [`FilterSpec`] that builds a boxed
//! [`StreamFilter`].

use crate::error::FilterError;
use crate::segment::validate_epsilons;

use super::{
    CacheFilter, CacheVariant, HullMode, LinearFilter, LinearMode, SlideFilter, StreamFilter,
    SwingFilter,
};

/// The filter families of the paper's §5 comparison, plus the
/// non-optimized slide configuration of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FilterKind {
    /// Piece-wise constant baseline (§2.2, first-value variant).
    Cache,
    /// Connected linear baseline (§2.2).
    Linear,
    /// Swing filter (§3).
    Swing,
    /// Slide filter (§4), hull-optimized.
    Slide,
    /// Slide filter without the convex-hull optimization (Figure 13's
    /// "non-optimized slide").
    SlideExhaustive,
}

impl FilterKind {
    /// The four filters every compression figure compares.
    pub const PAPER_SET: [FilterKind; 4] =
        [FilterKind::Cache, FilterKind::Linear, FilterKind::Swing, FilterKind::Slide];

    /// The five configurations of the overhead figure.
    pub const OVERHEAD_SET: [FilterKind; 5] = [
        FilterKind::Cache,
        FilterKind::Linear,
        FilterKind::Swing,
        FilterKind::Slide,
        FilterKind::SlideExhaustive,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Self::Cache => "cache",
            Self::Linear => "linear",
            Self::Swing => "swing",
            Self::Slide => "slide",
            Self::SlideExhaustive => "slide (non-optimized)",
        }
    }

    /// Builds a fresh boxed filter for the given precision widths, with
    /// the family's default configuration.
    pub fn build(self, eps: &[f64]) -> Result<Box<dyn StreamFilter>, FilterError> {
        FilterSpec::new(self, eps).build()
    }
}

/// Everything needed to construct one stream's filter.
///
/// ```
/// use pla_core::filters::{FilterKind, FilterSpec};
///
/// let spec = FilterSpec::new(FilterKind::Slide, &[0.5]).with_max_lag(64);
/// let mut filter = spec.build().unwrap();
/// assert_eq!(filter.name(), "slide");
/// assert_eq!(filter.dims(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FilterSpec {
    /// Filter family.
    pub kind: FilterKind,
    /// Per-dimension precision widths `εᵢ`.
    pub epsilons: Vec<f64>,
    /// Receiver-lag bound `m_max_lag` (swing and slide only; the cache
    /// and linear baselines have no lag-bounded mode and ignore it).
    pub max_lag: Option<usize>,
}

impl FilterSpec {
    /// A spec with the family's default configuration.
    pub fn new(kind: FilterKind, epsilons: &[f64]) -> Self {
        Self { kind, epsilons: epsilons.to_vec(), max_lag: None }
    }

    /// Bounds the transmitter→receiver lag to `m` data points.
    pub fn with_max_lag(mut self, m: usize) -> Self {
        self.max_lag = Some(m);
        self
    }

    /// Number of dimensions this spec's filter will expect.
    pub fn dims(&self) -> usize {
        self.epsilons.len()
    }

    /// Validates the spec without building a filter.
    pub fn validate(&self) -> Result<(), FilterError> {
        validate_epsilons(&self.epsilons)?;
        if let Some(m) = self.max_lag {
            if m < 2 {
                return Err(FilterError::InvalidMaxLag { value: m });
            }
        }
        Ok(())
    }

    /// Builds the filter this spec describes.
    pub fn build(&self) -> Result<Box<dyn StreamFilter>, FilterError> {
        self.validate()?;
        let eps = &self.epsilons;
        Ok(match self.kind {
            FilterKind::Cache => {
                Box::new(CacheFilter::with_variant(eps, CacheVariant::FirstValue)?)
            }
            FilterKind::Linear => Box::new(LinearFilter::with_mode(eps, LinearMode::Connected)?),
            FilterKind::Swing => {
                let mut b = SwingFilter::builder(eps);
                if let Some(m) = self.max_lag {
                    b = b.max_lag(m);
                }
                Box::new(b.build()?)
            }
            FilterKind::Slide | FilterKind::SlideExhaustive => {
                let mut b = SlideFilter::builder(eps);
                if let Some(m) = self.max_lag {
                    b = b.max_lag(m);
                }
                if self.kind == FilterKind::SlideExhaustive {
                    b = b.hull_mode(HullMode::Exhaustive);
                }
                Box::new(b.build()?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = FilterKind::OVERHEAD_SET.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn build_produces_working_filters() {
        for kind in FilterKind::OVERHEAD_SET {
            let mut f = kind.build(&[0.5]).unwrap();
            let mut out: Vec<crate::Segment> = Vec::new();
            f.push(0.0, &[1.0], &mut out).unwrap();
            f.push(1.0, &[1.1], &mut out).unwrap();
            f.finish(&mut out).unwrap();
            assert!(!out.is_empty(), "{}", kind.label());
        }
    }

    #[test]
    fn spec_carries_max_lag_into_the_filter() {
        let spec = FilterSpec::new(FilterKind::Swing, &[1.0]).with_max_lag(8);
        let f = spec.build().unwrap();
        assert_eq!(f.name(), "swing");
        // Smooth signal: the lag bound must keep pending points ≤ 8.
        let mut f = spec.build().unwrap();
        let mut sink: Vec<crate::Segment> = Vec::new();
        for j in 0..100 {
            f.push(j as f64, &[(j as f64 * 0.01).sin()], &mut sink).unwrap();
            assert!(f.pending_points() <= 8);
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(FilterSpec::new(FilterKind::Swing, &[]).build().is_err());
        assert!(FilterSpec::new(FilterKind::Slide, &[0.0]).build().is_err());
        assert!(matches!(
            FilterSpec::new(FilterKind::Slide, &[1.0]).with_max_lag(1).build(),
            Err(FilterError::InvalidMaxLag { value: 1 })
        ));
        // The lag bound is ignored (not rejected) for lag-free baselines…
        // except that validate() still applies the shared sanity check.
        assert!(FilterSpec::new(FilterKind::Cache, &[1.0]).with_max_lag(4).build().is_ok());
    }

    #[test]
    fn exhaustive_spec_selects_hull_mode() {
        let f = FilterKind::SlideExhaustive.build(&[0.5]).unwrap();
        assert_eq!(f.name(), "slide");
        let spec = FilterSpec::new(FilterKind::SlideExhaustive, &[0.5]);
        assert_eq!(spec.dims(), 1);
    }
}
