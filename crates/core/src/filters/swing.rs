//! The swing filter (paper §3): connected segments from a maintained set
//! of candidate lines.
//!
//! For each filtering interval `k` the filter keeps, per dimension, the
//! cone of lines through the previous recording `(t_{k−1}, X_{k−1})` that
//! are within `εᵢ` of every point observed so far, represented by its two
//! extreme slopes (`uᵢᵏ` and `lᵢᵏ`). A new point is accepted iff its value
//! lies within `εᵢ` of the band `[lᵢᵏ, uᵢᵏ]`; accepting may *swing* `lᵢᵏ`
//! up or `uᵢᵏ` down (Algorithm 1 lines 14–18), which preserves the
//! invariant that every line in the cone represents every point
//! (Theorem 3.1). On violation the filter records the endpoint of the
//! mean-square-error-optimal line of the cone (eq. 5–6) and starts the
//! next interval at that recording — hence connected segments, one
//! recording each.
//!
//! Time and space are O(d) per point: the cone is two slopes per
//! dimension and the MSE solution is computed from running sums.
//!
//! # Lag bound
//!
//! With [`SwingBuilder::max_lag`], an interval that accumulates
//! `m_max_lag` points commits to its MSE-optimal line, ships it to the
//! receiver as a [`ProvisionalUpdate`](crate::segment::ProvisionalUpdate),
//! and degrades to a plain linear filter until the interval ends (paper
//! §3.3), keeping the receiver at most `m_max_lag` points behind.

use crate::dimvec::DimVec;
use crate::error::FilterError;
use crate::kern::{self, Dispatch};
use crate::mse::RegressionSums;
use crate::segment::{validate_epsilons, ProvisionalUpdate, Segment, SegmentSink};

use super::common::point_segment;
use super::{validate_batch, validate_push, StreamFilter};
use crate::error::BatchError;

/// How the swing filter picks the recording that ends an interval
/// (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordingStrategy {
    /// Minimize the interval's mean square error among feasible lines
    /// (eq. 5–6) — the paper's choice.
    #[default]
    MseOptimal,
    /// The "straightforward approach" the paper rejects: head toward the
    /// last observed data point, clamped into the feasible cone so the
    /// precision guarantee still holds. Cheaper (no running sums) but
    /// yields higher average error; kept for the ablation benchmarks.
    ClampedLastPoint,
}

/// Per-interval state, all inline ([`DimVec`]) for `d ≤ 4`; the running
/// regression sums live on the filter and are recycled across intervals.
#[derive(Debug, Clone)]
struct Interval {
    /// Previous recording — all candidate lines pass through it.
    origin_t: f64,
    origin_x: DimVec<f64>,
    /// True only for the first interval of a stream, whose origin is the
    /// first data point and costs an extra recording.
    origin_is_first: bool,
    /// Extreme slopes of the candidate cone, per dimension.
    u_slope: DimVec<f64>,
    l_slope: DimVec<f64>,
    /// Last accepted sample.
    last_t: f64,
    last_x: DimVec<f64>,
    /// Points represented by this interval (the paper's `mₖ`).
    n_pts: u32,
    /// Committed slopes once the lag bound froze the interval.
    frozen: Option<DimVec<f64>>,
}

// One `State` lives per filter (never in collections), so the size gap
// between `Empty` and `Active` costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum State {
    Empty,
    One { t: f64, x: DimVec<f64> },
    Active(Interval),
}

/// Builder for [`SwingFilter`].
#[derive(Debug, Clone)]
pub struct SwingBuilder {
    eps: Vec<f64>,
    max_lag: Option<usize>,
    recording: RecordingStrategy,
    force_generic: bool,
    dispatch_override: Option<Dispatch>,
}

impl SwingBuilder {
    /// Bounds the transmitter→receiver lag to `m_max_lag` data points
    /// (must be ≥ 2). Unset by default: unbounded lag, maximum
    /// compression, matching the paper's experimental setup.
    pub fn max_lag(mut self, m: usize) -> Self {
        self.max_lag = Some(m);
        self
    }

    /// Selects the recording strategy (default:
    /// [`RecordingStrategy::MseOptimal`]).
    pub fn recording(mut self, strategy: RecordingStrategy) -> Self {
        self.recording = strategy;
        self
    }

    /// Disables the `d == 1` scalar fast path and the `d ≤ 4` lane
    /// kernels, forcing the generic per-dimension cone update. All
    /// dispatches are byte-identical in output (pinned by property
    /// tests); this switch exists so the tests can prove it.
    #[doc(hidden)]
    pub fn force_generic(mut self, on: bool) -> Self {
        self.force_generic = on;
        self
    }

    /// Forces a specific [`Dispatch`] (sanitized against the dimension
    /// count at build time). Test hook for the byte-identity proptests.
    #[doc(hidden)]
    pub fn force_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch_override = Some(dispatch);
        self
    }

    /// Validates the configuration and builds the filter.
    pub fn build(self) -> Result<SwingFilter, FilterError> {
        validate_epsilons(&self.eps)?;
        if let Some(m) = self.max_lag {
            if m < 2 {
                return Err(FilterError::InvalidMaxLag { value: m });
            }
        }
        let d = self.eps.len();
        let dispatch = match self.dispatch_override {
            Some(want) => want.sanitized(d, true),
            None if self.force_generic => Dispatch::Generic,
            None => Dispatch::auto(d, true),
        };
        Ok(SwingFilter {
            sums: RegressionSums::new(0.0, &vec![0.0; d]),
            eps: self.eps.as_slice().into(),
            max_lag: self.max_lag,
            recording: self.recording,
            state: State::Empty,
            dispatch,
        })
    }
}

/// The swing filter. See the module docs.
///
/// ```
/// use pla_core::filters::{StreamFilter, SwingFilter};
/// use pla_core::Segment;
///
/// // ε = 0.5, lag bounded to 100 samples.
/// let mut filter = SwingFilter::builder(&[0.5]).max_lag(100).build().unwrap();
/// let mut out: Vec<Segment> = Vec::new();
/// for j in 0..50 {
///     // A clean ramp: one connected segment suffices.
///     filter.push(j as f64, &[2.0 * j as f64], &mut out).unwrap();
/// }
/// filter.finish(&mut out).unwrap();
/// assert_eq!(out.len(), 1);
/// assert!((out[0].slope(0) - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SwingFilter {
    eps: DimVec<f64>,
    max_lag: Option<usize>,
    recording: RecordingStrategy,
    state: State,
    /// Regression moments of the live interval, recycled via `reset()`
    /// so opening an interval never allocates.
    sums: RegressionSums,
    /// Per-dimension iteration strategy (`d == 1` scalar, `d ≤ 4` lane
    /// kernels, generic loop), decided once at construction.
    dispatch: Dispatch,
}

impl SwingFilter {
    /// Creates a swing filter with unbounded lag.
    pub fn new(eps: &[f64]) -> Result<Self, FilterError> {
        Self::builder(eps).build()
    }

    /// Starts configuring a swing filter.
    pub fn builder(eps: &[f64]) -> SwingBuilder {
        SwingBuilder {
            eps: eps.to_vec(),
            max_lag: None,
            recording: RecordingStrategy::default(),
            force_generic: false,
            dispatch_override: None,
        }
    }

    /// The configured lag bound, if any.
    pub fn max_lag(&self) -> Option<usize> {
        self.max_lag
    }

    /// The per-dimension dispatch decided at construction.
    #[doc(hidden)]
    pub fn dispatch(&self) -> Dispatch {
        self.dispatch
    }

    /// The configured recording strategy.
    pub fn recording_strategy(&self) -> RecordingStrategy {
        self.recording
    }

    fn start_interval(
        &mut self,
        origin_t: f64,
        origin_x: DimVec<f64>,
        origin_is_first: bool,
        t: f64,
        x: &[f64],
        n_pts: u32,
    ) -> Interval {
        let dt = t - origin_t;
        let u_slope = DimVec::from_fn(self.dims(), |d| (x[d] + self.eps[d] - origin_x[d]) / dt);
        let l_slope = DimVec::from_fn(self.dims(), |d| (x[d] - self.eps[d] - origin_x[d]) / dt);
        self.sums.reset(origin_t, &origin_x);
        if self.recording == RecordingStrategy::MseOptimal {
            Self::accumulate(self.dispatch, &mut self.sums, t, x);
        }
        Interval {
            origin_t,
            origin_x,
            origin_is_first,
            u_slope,
            l_slope,
            last_t: t,
            last_x: x.into(),
            n_pts,
            frozen: None,
        }
    }

    /// Fused acceptance test + cone update (Algorithm 1 lines 7 and
    /// 14–18): returns whether `(t, x)` can still be represented by the
    /// interval's candidate set, swinging `lᵢᵏ` / `uᵢᵏ` in place when it
    /// can. Frozen intervals are only checked against the committed line,
    /// never mutated. Every [`Dispatch`] branch evaluates the same
    /// expression tree, so the output stream is byte-identical across
    /// them (pinned by the proptests in `tests/batch_proptests.rs`).
    ///
    /// Associated (not `&self`) so the push hot path can run while
    /// holding a disjoint mutable borrow of the live interval.
    fn step(dispatch: Dispatch, eps: &DimVec<f64>, iv: &mut Interval, t: f64, x: &[f64]) -> bool {
        let dt = t - iv.origin_t;
        if let Some(slopes) = &iv.frozen {
            return match dispatch {
                Dispatch::Scalar1 => (x[0] - (iv.origin_x[0] + slopes[0] * dt)).abs() <= eps[0],
                Dispatch::Lanes(k) => {
                    kern::fits_affine(k, iv.origin_x.lanes(), slopes.lanes(), eps.lanes(), dt, x)
                }
                Dispatch::Generic => {
                    let origin_x = iv.origin_x.as_slice();
                    let slopes = slopes.as_slice();
                    x.iter()
                        .enumerate()
                        .all(|(d, &v)| (v - (origin_x[d] + slopes[d] * dt)).abs() <= eps[d])
                }
            };
        }
        let fit = match dispatch {
            Dispatch::Scalar1 => {
                let eps = eps.as_slice();
                let fit = Self::fits1(eps, iv, t, x[0]);
                if fit {
                    Self::swing1(eps, iv, t, x[0]);
                }
                fit
            }
            Dispatch::Lanes(k) => kern::swing_step(
                k,
                iv.origin_x.lanes(),
                eps.lanes(),
                dt,
                x,
                iv.l_slope.lanes_mut(),
                iv.u_slope.lanes_mut(),
            ),
            Dispatch::Generic => {
                let origin_x = iv.origin_x.as_slice();
                let fit = {
                    let (u_slope, l_slope) = (iv.u_slope.as_slice(), iv.l_slope.as_slice());
                    x.iter().enumerate().all(|(d, &v)| {
                        let hi = origin_x[d] + u_slope[d] * dt + eps[d];
                        let lo = origin_x[d] + l_slope[d] * dt - eps[d];
                        v >= lo && v <= hi
                    })
                };
                if fit {
                    let l_slope = iv.l_slope.as_mut_slice();
                    let u_slope = iv.u_slope.as_mut_slice();
                    for (d, &v) in x.iter().enumerate() {
                        let lo_val = origin_x[d] + l_slope[d] * dt;
                        if v - eps[d] > lo_val {
                            l_slope[d] = (v - eps[d] - origin_x[d]) / dt;
                        }
                        let hi_val = origin_x[d] + u_slope[d] * dt;
                        if v + eps[d] < hi_val {
                            u_slope[d] = (v + eps[d] - origin_x[d]) / dt;
                        }
                    }
                }
                fit
            }
        };
        #[cfg(debug_assertions)]
        if fit {
            for d in 0..x.len() {
                debug_assert!(
                    iv.l_slope[d] <= iv.u_slope[d] + 1e-12 * iv.u_slope[d].abs().max(1.0),
                    "swing cone emptied: dim {d}"
                );
            }
        }
        fit
    }

    /// Accumulates one sample into `sums` using the same backend as the
    /// cone update (the lane kernel is byte-identical to
    /// [`RegressionSums::push`]). Associated for the same borrow reason
    /// as [`step`](Self::step).
    #[inline]
    fn accumulate(dispatch: Dispatch, sums: &mut RegressionSums, t: f64, x: &[f64]) {
        match dispatch {
            Dispatch::Lanes(k) => sums.push_lanes(k, t, x),
            _ => sums.push(t, x),
        }
    }

    /// [`step`](Self::step) fused with the MSE accumulation for
    /// non-frozen intervals: on the lane dispatch both run in a single
    /// kernel call (one pad, one dispatch), halving the per-sample call
    /// overhead of the dominant `MseOptimal` accept path. Byte-identical
    /// to `step` followed by [`accumulate`](Self::accumulate).
    #[inline]
    fn step_mse(
        dispatch: Dispatch,
        eps: &DimVec<f64>,
        sums: &mut RegressionSums,
        iv: &mut Interval,
        t: f64,
        x: &[f64],
    ) -> bool {
        debug_assert!(iv.frozen.is_none());
        match dispatch {
            Dispatch::Lanes(k) => sums.swing_step_lanes(
                k,
                &iv.origin_x,
                eps,
                t - iv.origin_t,
                t,
                x,
                &mut iv.l_slope,
                &mut iv.u_slope,
            ),
            other => {
                let fit = Self::step(other, eps, iv, t, x);
                if fit {
                    Self::accumulate(other, sums, t, x);
                }
                fit
            }
        }
    }

    /// Scalar (`d == 1`) acceptance test — same arithmetic as the
    /// generic [`step`](Self::step) branch, with the per-dimension loop
    /// machinery compiled out.
    #[inline]
    fn fits1(eps: &[f64], iv: &Interval, t: f64, v: f64) -> bool {
        let dt = t - iv.origin_t;
        let e = eps[0];
        let hi = iv.origin_x[0] + iv.u_slope[0] * dt + e;
        let lo = iv.origin_x[0] + iv.l_slope[0] * dt - e;
        v >= lo && v <= hi
    }

    /// Scalar (`d == 1`) cone update — same arithmetic and update order
    /// as the generic [`step`](Self::step) loop body for `d = 0`.
    #[inline]
    fn swing1(eps: &[f64], iv: &mut Interval, t: f64, v: f64) {
        let dt = t - iv.origin_t;
        let e = eps[0];
        let lo_val = iv.origin_x[0] + iv.l_slope[0] * dt;
        if v - e > lo_val {
            iv.l_slope[0] = (v - e - iv.origin_x[0]) / dt;
        }
        let hi_val = iv.origin_x[0] + iv.u_slope[0] * dt;
        if v + e < hi_val {
            iv.u_slope[0] = (v + e - iv.origin_x[0]) / dt;
        }
    }

    /// The recording slopes: MSE-optimal (eq. 5), clamped-last-point, or
    /// the frozen ones.
    fn final_slopes(&self, iv: &Interval) -> DimVec<f64> {
        if let Some(slopes) = &iv.frozen {
            return slopes.clone();
        }
        match self.recording {
            RecordingStrategy::MseOptimal => DimVec::from_fn(self.dims(), |d| {
                self.sums.clamped_slope(
                    iv.origin_t,
                    iv.origin_x[d],
                    d,
                    iv.l_slope[d],
                    iv.u_slope[d],
                )
            }),
            RecordingStrategy::ClampedLastPoint => {
                let dt = iv.last_t - iv.origin_t;
                DimVec::from_fn(self.dims(), |d| {
                    let toward_last =
                        if dt > 0.0 { (iv.last_x[d] - iv.origin_x[d]) / dt } else { 0.0 };
                    toward_last.clamp(iv.l_slope[d], iv.u_slope[d])
                })
            }
        }
    }

    /// Ends the interval at its last accepted sample, emitting the
    /// connected segment, and returns the new recording.
    fn close_interval(&self, iv: &Interval, sink: &mut dyn SegmentSink) -> (f64, DimVec<f64>) {
        let slopes = self.final_slopes(iv);
        let t_k = iv.last_t;
        let x_k =
            DimVec::from_fn(self.dims(), |d| iv.origin_x[d] + slopes[d] * (t_k - iv.origin_t));
        sink.segment(Segment {
            t_start: iv.origin_t,
            x_start: iv.origin_x.clone(),
            t_end: t_k,
            x_end: x_k.clone(),
            connected: !iv.origin_is_first,
            n_points: iv.n_pts,
            new_recordings: if iv.origin_is_first { 2 } else { 1 },
        });
        (t_k, x_k)
    }

    fn maybe_freeze(&self, iv: &mut Interval, sink: &mut dyn SegmentSink) {
        let Some(m) = self.max_lag else { return };
        if iv.frozen.is_some() || (iv.n_pts as usize) < m {
            return;
        }
        let slopes = self.final_slopes(iv);
        sink.provisional(ProvisionalUpdate {
            t_anchor: iv.origin_t,
            x_anchor: iv.origin_x.clone(),
            slopes: slopes.clone(),
            covers_through: iv.last_t,
        });
        iv.frozen = Some(slopes);
    }

    fn last_t(&self) -> Option<f64> {
        match &self.state {
            State::Empty => None,
            State::One { t, .. } => Some(*t),
            State::Active(iv) => Some(iv.last_t),
        }
    }
}

impl StreamFilter for SwingFilter {
    fn dims(&self) -> usize {
        self.eps.len()
    }

    fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        validate_push(self.dims(), self.last_t(), t, x)?;
        // Hot path: an accepted sample swings the live interval's cone in
        // place — no state-enum move per point. Lag-bounded filters take
        // the general path below (they may need to freeze via the sink).
        if self.max_lag.is_none() {
            if let State::Active(iv) = &mut self.state {
                if iv.frozen.is_none() {
                    let fit = if self.recording == RecordingStrategy::MseOptimal {
                        Self::step_mse(self.dispatch, &self.eps, &mut self.sums, iv, t, x)
                    } else {
                        Self::step(self.dispatch, &self.eps, iv, t, x)
                    };
                    if fit {
                        iv.last_t = t;
                        iv.last_x.copy_from_slice(x);
                        iv.n_pts += 1;
                        return Ok(());
                    }
                }
            }
        }
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {
                self.state = State::One { t, x: x.into() };
            }
            State::One { t: t1, x: x1 } => {
                // Algorithm 1 lines 1–4: the first point is recorded as
                // (t₀′, X₀′); the first interval covers both points.
                let mut iv = self.start_interval(t1, x1, true, t, x, 2);
                self.maybe_freeze(&mut iv, sink);
                self.state = State::Active(iv);
            }
            State::Active(mut iv) => {
                let fit = if iv.frozen.is_none() && self.recording == RecordingStrategy::MseOptimal
                {
                    Self::step_mse(self.dispatch, &self.eps, &mut self.sums, &mut iv, t, x)
                } else {
                    Self::step(self.dispatch, &self.eps, &mut iv, t, x)
                };
                if fit {
                    iv.last_t = t;
                    iv.last_x.copy_from_slice(x);
                    iv.n_pts += 1;
                    self.maybe_freeze(&mut iv, sink);
                    self.state = State::Active(iv);
                } else {
                    // Algorithm 1 lines 8–10: record and start the next
                    // interval at the recording, seeded by the violator.
                    let (t_k, x_k) = self.close_interval(&iv, sink);
                    let mut next = self.start_interval(t_k, x_k, false, t, x, 1);
                    self.maybe_freeze(&mut next, sink);
                    self.state = State::Active(next);
                }
            }
        }
        Ok(())
    }

    /// Batch fast path: one validation scan for the whole batch, then an
    /// inner accept loop that keeps the live interval out of the state
    /// enum (no per-point `mem::replace` of the interval struct).
    fn push_batch(
        &mut self,
        samples: &[(f64, &[f64])],
        sink: &mut dyn SegmentSink,
    ) -> Result<usize, BatchError> {
        let (upto, err) = validate_batch(self.dims(), self.last_t(), samples);
        let mut state = std::mem::replace(&mut self.state, State::Empty);
        let mut i = 0;
        while i < upto {
            let (t, x) = samples[i];
            state = match state {
                State::Empty => {
                    i += 1;
                    State::One { t, x: x.into() }
                }
                State::One { t: t1, x: x1 } => {
                    i += 1;
                    let mut iv = self.start_interval(t1, x1, true, t, x, 2);
                    self.maybe_freeze(&mut iv, sink);
                    State::Active(iv)
                }
                State::Active(mut iv) => {
                    // Absorb the longest run of accepted samples.
                    while i < upto {
                        let (t, x) = samples[i];
                        let fit = if iv.frozen.is_none()
                            && self.recording == RecordingStrategy::MseOptimal
                        {
                            Self::step_mse(self.dispatch, &self.eps, &mut self.sums, &mut iv, t, x)
                        } else {
                            Self::step(self.dispatch, &self.eps, &mut iv, t, x)
                        };
                        if !fit {
                            break;
                        }
                        iv.last_t = t;
                        iv.last_x.copy_from_slice(x);
                        iv.n_pts += 1;
                        self.maybe_freeze(&mut iv, sink);
                        i += 1;
                    }
                    if i < upto {
                        // The violator closes the interval and seeds the next.
                        let (t, x) = samples[i];
                        i += 1;
                        let (t_k, x_k) = self.close_interval(&iv, sink);
                        let mut next = self.start_interval(t_k, x_k, false, t, x, 1);
                        self.maybe_freeze(&mut next, sink);
                        State::Active(next)
                    } else {
                        State::Active(iv)
                    }
                }
            };
        }
        self.state = state;
        match err {
            Some(error) => Err(BatchError { absorbed: upto, error }),
            None => Ok(upto),
        }
    }

    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        match std::mem::replace(&mut self.state, State::Empty) {
            State::Empty => {}
            State::One { t, x } => sink.segment(point_segment(t, &x, false)),
            State::Active(iv) => {
                self.close_interval(&iv, sink);
            }
        }
        Ok(())
    }

    fn pending_points(&self) -> usize {
        match &self.state {
            State::Empty => 0,
            State::One { .. } => 1,
            // Once frozen, the receiver holds a line that represents every
            // accepted point of the interval, so nothing is pending.
            State::Active(iv) => {
                if iv.frozen.is_some() {
                    0
                } else {
                    iv.n_pts as usize
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "swing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{run_filter, LinearFilter};
    use crate::sample::Signal;
    use crate::segment::CollectingSink;

    fn compress(signal: &Signal, eps: f64) -> Vec<Segment> {
        let mut f = SwingFilter::new(&vec![eps; signal.dims()]).unwrap();
        run_filter(&mut f, signal).unwrap()
    }

    /// The Figure 2/3 scenario: the linear filter (slope fixed by the
    /// first two points) rejects the fourth point, the swing filter keeps
    /// swinging and accepts it.
    #[test]
    fn swing_outlives_linear_on_paper_pattern() {
        let signal =
            Signal::from_pairs(&[(1.0, 0.0), (2.0, 1.0), (3.0, 2.5), (4.0, 4.5), (5.0, 8.1)]);
        let mut linear = LinearFilter::new(&[1.0]).unwrap();
        let linear_segs = run_filter(&mut linear, &signal).unwrap();
        assert!(linear_segs.len() >= 2, "linear must split at the 4th point");
        assert_eq!(linear_segs[0].t_end, 3.0);

        let swing_segs = compress(&signal, 1.0);
        assert_eq!(swing_segs.len(), 2, "swing splits only at the 5th point");
        assert_eq!(swing_segs[0].t_end, 4.0);
    }

    #[test]
    fn straight_line_is_one_segment() {
        let values: Vec<f64> = (0..100).map(|i| 0.5 * i as f64 + 3.0).collect();
        let segs = compress(&Signal::from_values(&values), 0.01);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 100);
        assert!((segs[0].slope(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn segments_are_connected() {
        let values: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.25).sin() * 4.0).collect();
        let segs = compress(&Signal::from_values(&values), 0.2);
        assert!(segs.len() > 2);
        assert!(!segs[0].connected);
        assert_eq!(segs[0].new_recordings, 2);
        for pair in segs.windows(2) {
            assert_eq!(pair[0].t_end, pair[1].t_start);
            for d in 0..1 {
                assert!((pair[0].x_end[d] - pair[1].x_start[d]).abs() < 1e-12);
            }
            assert!(pair[1].connected);
            assert_eq!(pair[1].new_recordings, 1);
        }
    }

    #[test]
    fn precision_guarantee_theorem_3_1() {
        // Deterministic pseudo-random walk.
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        let values: Vec<f64> = (0..2000)
            .map(|_| {
                x += rnd() * 2.0;
                x
            })
            .collect();
        let signal = Signal::from_values(&values);
        for eps in [0.1, 0.5, 2.0, 10.0] {
            let segs = compress(&signal, eps);
            for (t, x) in signal.iter() {
                let seg = segs.iter().find(|s| s.covers(t)).expect("sample covered");
                let err = (seg.eval(t, 0) - x[0]).abs();
                assert!(err <= eps * (1.0 + 1e-9), "ε={eps}: error {err} at t={t}");
            }
        }
    }

    #[test]
    fn recording_is_mse_optimal_within_cone() {
        // Symmetric oscillation around a trend: the optimal slope is the
        // trend slope, strictly inside the cone.
        let values: Vec<f64> =
            (0..20).map(|i| i as f64 + if i % 2 == 0 { 0.3 } else { -0.3 }).collect();
        let signal = Signal::from_values(&values);
        let segs = compress(&signal, 1.0);
        assert_eq!(segs.len(), 1);
        // Least-squares through (0, 0.3): slope ≈ 1 − small correction;
        // verify against brute force.
        let mut best = (f64::INFINITY, 0.0);
        let mut a = 0.5;
        while a < 1.5 {
            let e: f64 = signal
                .iter()
                .map(|(t, x)| {
                    let v = 0.3 + a * t;
                    (v - x[0]) * (v - x[0])
                })
                .sum();
            if e < best.0 {
                best = (e, a);
            }
            a += 1e-4;
        }
        assert!(
            (segs[0].slope(0) - best.1).abs() < 1e-3,
            "slope {} vs brute-force {}",
            segs[0].slope(0),
            best.1
        );
    }

    #[test]
    fn multi_dim_interval_breaks_when_any_dim_breaks() {
        let mut s = Signal::new(2);
        for j in 0..10 {
            let t = j as f64;
            let jump = if j >= 5 { 4.0 } else { 0.0 };
            s.push(t, &[t * 0.1, jump]).unwrap();
        }
        let mut f = SwingFilter::new(&[1.0, 1.0]).unwrap();
        let segs = run_filter(&mut f, &s).unwrap();
        // The jump in dim 1 must break the first interval at t=4; the
        // connected-segment constraint may force further breaks after it.
        assert!(segs.len() >= 2);
        assert_eq!(segs[0].t_end, 4.0);
    }

    #[test]
    fn multi_dim_guarantee() {
        let mut s = Signal::new(3);
        let mut seed = 7u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut vals = [0.0f64; 3];
        for j in 0..500 {
            for v in vals.iter_mut() {
                *v += rnd();
            }
            s.push(j as f64, &vals).unwrap();
        }
        let eps = [0.3, 0.7, 1.5];
        let mut f = SwingFilter::new(&eps).unwrap();
        let segs = run_filter(&mut f, &s).unwrap();
        for (t, x) in s.iter() {
            let seg = segs.iter().find(|sg| sg.covers(t)).unwrap();
            for d in 0..3 {
                let err = (seg.eval(t, d) - x[d]).abs();
                assert!(err <= eps[d] * (1.0 + 1e-9), "dim {d} err {err} at t={t}");
            }
        }
    }

    #[test]
    fn max_lag_freezes_interval_and_bounds_pending() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.01).sin()).collect();
        let signal = Signal::from_values(&values);
        let mut f = SwingFilter::builder(&[10.0]).max_lag(8).build().unwrap();
        let mut sink = CollectingSink::default();
        for (t, x) in signal.iter() {
            f.push(t, x, &mut sink).unwrap();
            assert!(f.pending_points() <= 8, "lag exceeded at t={t}");
        }
        f.finish(&mut sink).unwrap();
        assert!(!sink.provisionals.is_empty(), "smooth signal must have frozen");
        // Guarantee still holds.
        for (t, x) in signal.iter() {
            let seg = sink.segments.iter().find(|s| s.covers(t)).unwrap();
            assert!((seg.eval(t, 0) - x[0]).abs() <= 10.0 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn provisional_line_matches_final_segment() {
        // With a perfectly linear signal the frozen line and the final
        // segment coincide.
        let values: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        let signal = Signal::from_values(&values);
        let mut f = SwingFilter::builder(&[0.5]).max_lag(10).build().unwrap();
        let mut sink = CollectingSink::default();
        for (t, x) in signal.iter() {
            f.push(t, x, &mut sink).unwrap();
        }
        f.finish(&mut sink).unwrap();
        assert_eq!(sink.segments.len(), 1);
        assert_eq!(sink.provisionals.len(), 1);
        let p = &sink.provisionals[0];
        let s = &sink.segments[0];
        assert!((p.eval(s.t_end, 0) - s.x_end[0]).abs() < 1e-9);
    }

    #[test]
    fn clamped_last_point_keeps_guarantee_with_higher_error() {
        let mut seed = 31u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        let values: Vec<f64> = (0..1500)
            .map(|_| {
                x += rnd();
                x
            })
            .collect();
        let signal = Signal::from_values(&values);
        let eps = 0.8;
        let mut mse = SwingFilter::new(&[eps]).unwrap();
        let mut last = SwingFilter::builder(&[eps])
            .recording(RecordingStrategy::ClampedLastPoint)
            .build()
            .unwrap();
        let report_mse = crate::metrics::evaluate(&mut mse, &signal).unwrap();
        let report_last = crate::metrics::evaluate(&mut last, &signal).unwrap();
        // Both honour the guarantee.
        assert!(report_mse.error.max_abs_overall() <= eps * (1.0 + 1e-6));
        assert!(report_last.error.max_abs_overall() <= eps * (1.0 + 1e-6));
        // The MSE-optimal recording should not have *higher* average error
        // (the paper's secondary objective).
        assert!(
            report_mse.error.mean_abs_overall() <= report_last.error.mean_abs_overall() * 1.05,
            "mse {} vs last-point {}",
            report_mse.error.mean_abs_overall(),
            report_last.error.mean_abs_overall()
        );
    }

    #[test]
    fn invalid_max_lag_is_rejected() {
        assert!(matches!(
            SwingFilter::builder(&[1.0]).max_lag(1).build(),
            Err(FilterError::InvalidMaxLag { value: 1 })
        ));
    }

    #[test]
    fn single_and_empty_streams() {
        let mut f = SwingFilter::new(&[1.0]).unwrap();
        let mut out: Vec<Segment> = Vec::new();
        f.finish(&mut out).unwrap();
        assert!(out.is_empty());
        f.push(0.0, &[3.0], &mut out).unwrap();
        f.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].n_points, 1);
    }

    #[test]
    fn rejects_time_regression() {
        let mut f = SwingFilter::new(&[1.0]).unwrap();
        let mut out: Vec<Segment> = Vec::new();
        f.push(1.0, &[0.0], &mut out).unwrap();
        assert!(matches!(f.push(1.0, &[0.0], &mut out), Err(FilterError::NonMonotonicTime { .. })));
    }

    #[test]
    fn reusable_after_finish() {
        let signal = Signal::from_values(&[0.0, 1.0, 5.0, 2.0, 8.0]);
        let mut f = SwingFilter::new(&[0.5]).unwrap();
        let a = run_filter(&mut f, &signal).unwrap();
        let b = run_filter(&mut f, &signal).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn n_points_accounting_totals_stream_length() {
        let values: Vec<f64> = (0..777).map(|i| ((i as f64) * 0.37).sin() * 5.0).collect();
        let signal = Signal::from_values(&values);
        let segs = compress(&signal, 0.4);
        let total: u32 = segs.iter().map(|s| s.n_points).sum();
        assert_eq!(total as usize, signal.len());
    }
}
