//! Fixed-width f64 lane kernels for the filter hot path.
//!
//! Every filter spends its per-point budget in a handful of tiny
//! per-dimension loops: the fused fits-check + cone clamp of the swing
//! filter, the envelope evaluation of the slide filter, the min/max
//! range update of the cache filter, the affine residual tests of the
//! linear and Kalman filters, and the regression-sum accumulation they
//! share. For `2 ≤ d ≤ INLINE_DIMS` those loops run over [`DimVec`]'s
//! inline block — a fixed `[f64; 4]` — so they map 1:1 onto 4-lane SIMD.
//!
//! This module provides each of those loops as a *lane operation* with
//! three interchangeable backends:
//!
//! | backend  | selected when |
//! |----------|---------------|
//! | `Scalar` | portable fallback: plain loop over all 4 lanes |
//! | `Sse2`   | x86_64 (SSE2 is baseline), two `__m128d` halves |
//! | `Avx2`   | x86_64 with AVX2 detected at runtime, one `__m256d` |
//!
//! The backend is chosen **once** per process ([`Kernel::detect`],
//! overridable via the `PLA_KERNEL` env var) and baked into each
//! filter's [`Dispatch`] at construction time — there is no per-point
//! branching beyond a single enum match.
//!
//! ## Byte-identity contract
//!
//! Every backend of every lane op evaluates the *same expression tree*
//! in the same order as the generic per-dimension loop it replaces:
//! same associativity, no FMA contraction, conditional updates expressed
//! as compute-candidate + mask-blend (which preserves the untouched
//! value bit-for-bit). Inputs are pre-validated finite (`validate_push`
//! rejects NaN/±inf before any kernel runs), so IEEE-754 guarantees the
//! per-lane results are bit-equal across backends. The proptests in
//! `batch_proptests.rs` pin this: `Segment`/`ProvisionalUpdate` streams
//! must be identical under every dispatch.
//!
//! ## Padding lanes
//!
//! Lane ops always process all `INLINE_DIMS` lanes. For `d < 4` the
//! tail lanes hold `0.0` (the `DimVec` inline block is always fully
//! `Default`-initialized, and every mutating kernel writes `0.0` back).
//! All-zero lanes are constructed to be neutral: they pass every fits
//! test (`0 ∈ [0, 0]`) and absorb every update as a no-op, so no
//! masking by `d` is needed.

use std::sync::OnceLock;

use crate::dimvec::INLINE_DIMS;

/// Number of f64 lanes each kernel processes — [`INLINE_DIMS`].
pub const LANES: usize = INLINE_DIMS;

/// The SIMD backend a filter's lane dispatch uses.
///
/// Selected once per process by [`Kernel::detect`]; every backend is
/// byte-identical to every other (see the module docs), so the choice
/// affects speed only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar loop over all lanes — the fallback on non-x86_64
    /// targets and under `PLA_KERNEL=scalar`.
    Scalar,
    /// x86_64 SSE2: two 128-bit halves. Baseline on x86_64.
    Sse2,
    /// x86_64 AVX2: one 256-bit vector. Requires runtime detection.
    Avx2,
}

impl Kernel {
    /// The best backend this CPU supports, probed once per process.
    ///
    /// Feature detection alone is not enough to pick a winner: on some
    /// server parts, 256-bit AVX2 triggers license-based frequency
    /// scaling that slows the *surrounding scalar code* (hull updates,
    /// validation, sinks) by more than the 4-lane f64 kernels gain. So
    /// among the backends the CPU supports, detection times each on a
    /// short synthetic push loop (the swing-step + regression-sums mix)
    /// and keeps the fastest — a one-time cost of a few milliseconds,
    /// cached for the process lifetime. Every backend is byte-identical,
    /// so a "wrong" pick under timing noise only costs speed.
    ///
    /// The `PLA_KERNEL` environment variable (read at first call only)
    /// overrides everything: `scalar`, `sse2`, or `avx2`. Requesting a
    /// backend the CPU lacks, or any unknown value, falls back to the
    /// probed best — the variable can force kernels *off* everywhere
    /// but never selects an unsupported path.
    pub fn detect() -> Self {
        static ACTIVE: OnceLock<Kernel> = OnceLock::new();
        *ACTIVE.get_or_init(Self::probe)
    }

    fn probe() -> Self {
        let want = std::env::var("PLA_KERNEL").ok();
        if want.as_deref() == Some("scalar") {
            return Kernel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let avx2 = is_x86_feature_detected!("avx2");
            match want.as_deref() {
                Some("sse2") => return Kernel::Sse2,
                Some("avx2") if avx2 => return Kernel::Avx2,
                _ => {}
            }
            let mut best = (Kernel::Sse2, Self::time_backend(Kernel::Sse2));
            if avx2 {
                let t = Self::time_backend(Kernel::Avx2);
                // The probe only times the kernel ops themselves; on parts
                // with license-based downclocking, 256-bit use also slows
                // the *surrounding* scalar code for a while, which the
                // probe cannot see. Require a clear margin before leaving
                // the 128-bit path so measurement jitter never flips an
                // essentially tied comparison toward that hidden cost.
                if t.as_nanos() * 10 < best.1.as_nanos() * 9 {
                    best = (Kernel::Avx2, t);
                }
            }
            best.0
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Kernel::Scalar
        }
    }

    /// Times one backend on a synthetic accept-path loop: `swing_step`
    /// plus `sums_push` per iteration, the per-sample kernel mix of the
    /// swing filter's hot path. One warm-up round lets frequency-license
    /// effects (which persist for milliseconds after 256-bit use) settle
    /// into the measured rounds; the best measured round is the score.
    #[cfg(target_arch = "x86_64")]
    fn time_backend(k: Kernel) -> std::time::Duration {
        use std::hint::black_box;
        const ITERS: u64 = 20_000;
        let origin = [0.0, 1.0, -1.0, 0.5];
        let eps = [0.75; LANES];
        let fresh_l = [-10.0, -10.5, -12.0, -11.5];
        let fresh_u = [10.0, 10.5, 12.0, 11.5];
        let mut best = std::time::Duration::MAX;
        let mut seed = 0x9E3779B97F4A7C15u64;
        // Round 0 is warm-up and is not scored.
        for round in 0..4 {
            let (mut l, mut u) = (fresh_l, fresh_u);
            let mut sv = [0.0; LANES];
            let mut suv = [0.0; LANES];
            let start = std::time::Instant::now();
            for i in 0..ITERS {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let jitter = ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                let dt = (i + 1) as f64;
                let x = [jitter, 1.0 - jitter, -1.0 + jitter, 0.5 + jitter];
                if !swing_step(k, &origin, &eps, dt, &x, &mut l, &mut u) {
                    l = fresh_l;
                    u = fresh_u;
                }
                sums_push(k, &origin, &mut sv, &mut suv, dt, &x);
            }
            let took = start.elapsed();
            black_box((l, u, sv, suv));
            if round > 0 && took < best {
                best = took;
            }
        }
        best
    }
}

/// How a filter iterates its per-dimension state, fixed at construction.
///
/// Exposed (doc-hidden on the filters) so tests can pin byte-identity
/// across all three modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// The monomorphized `d == 1` scalar fast path (PR 3).
    Scalar1,
    /// `2 ≤ d ≤ INLINE_DIMS`: fixed-width lane kernels on the given
    /// backend, operating on the `DimVec` inline block directly.
    Lanes(Kernel),
    /// Per-dimension loop over slices — the only dispatch valid at
    /// every `d`, and the reference semantics the others must match.
    Generic,
}

impl Dispatch {
    /// The dispatch a fresh filter of dimension `dims` should use.
    ///
    /// `scalar1` says whether the filter has a monomorphized `d == 1`
    /// path (swing and slide do; cache/linear/kalman run their generic
    /// loop at `d == 1`, which is already a single iteration).
    pub fn auto(dims: usize, scalar1: bool) -> Self {
        match dims {
            1 if scalar1 => Dispatch::Scalar1,
            2..=LANES => Dispatch::Lanes(Kernel::detect()),
            _ => Dispatch::Generic,
        }
    }

    /// `self` if it is valid for `dims`, otherwise [`Dispatch::auto`].
    ///
    /// Guards the doc-hidden test overrides: `Scalar1` requires
    /// `d == 1`, `Lanes` requires `2 ≤ d ≤ INLINE_DIMS` (and a
    /// non-scalar backend requires x86_64).
    pub fn sanitized(self, dims: usize, scalar1: bool) -> Self {
        let valid = match self {
            Dispatch::Scalar1 => dims == 1 && scalar1,
            Dispatch::Lanes(k) => {
                (2..=LANES).contains(&dims) && (cfg!(target_arch = "x86_64") || k == Kernel::Scalar)
            }
            Dispatch::Generic => true,
        };
        if valid {
            self
        } else {
            Dispatch::auto(dims, scalar1)
        }
    }
}

/// Copies `x` (length ≤ [`LANES`]) into a zero-padded lane block.
#[inline(always)]
pub(crate) fn pad4(x: &[f64]) -> [f64; LANES] {
    debug_assert!(x.len() <= LANES);
    let mut a = [0.0; LANES];
    a[..x.len()].copy_from_slice(x);
    a
}

/// Borrowed structure-of-arrays view of one envelope (`u` or `l`) of
/// the slide filter: per-lane anchor time, anchor value, and slope of
/// the line `x(t) = x0 + slope · (t − t0)`.
pub(crate) struct EnvView<'a> {
    pub t0: &'a [f64; LANES],
    pub x0: &'a [f64; LANES],
    pub slope: &'a [f64; LANES],
}

/// Result of [`slide_step`]: the fused fits test plus, when the point
/// fits, which lanes need their lower/upper envelope re-derived from a
/// hull tangent (bit `i` set ⇔ dimension `i`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlideStep {
    pub fits: bool,
    pub needs_l: u32,
    pub needs_u: u32,
}

macro_rules! dispatch_kernel {
    ($k:expr, $scalar:expr, $sse2:path, $avx2:path, ($($arg:expr),*)) => {
        match $k {
            Kernel::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            // SAFETY: non-scalar `Kernel` values are only constructed by
            // `Kernel::probe` (which requires the feature at runtime) or
            // sanitized test overrides on x86_64, where SSE2 is baseline
            // and Avx2 is gated on `is_x86_feature_detected!`.
            Kernel::Sse2 => unsafe { $sse2($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => unsafe { $avx2($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => $scalar,
        }
    };
}

/// Fused swing-filter step: the band fits test, and — when the point
/// fits — the conditional upper/lower slope clamps, in one pass.
///
/// Mirrors `SwingFilter::fits` + `SwingFilter::swing` exactly:
/// `hi = (origin + u·dt) + ε`, `lo = (origin + l·dt) − ε`, the point
/// fits iff `lo ≤ v ≤ hi` in every dimension; on a fit each slope is
/// tightened iff the point's ε-band edge clears the current envelope
/// value. Returns whether the point fit (no mutation on a miss).
#[inline(always)]
pub(crate) fn swing_step(
    k: Kernel,
    origin: &[f64; LANES],
    eps: &[f64; LANES],
    dt: f64,
    x: &[f64],
    l: &mut [f64; LANES],
    u: &mut [f64; LANES],
) -> bool {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::swing_step(origin, eps, dt, &xp, l, u),
        x86::swing_step_sse2,
        x86::swing_step_avx2,
        (origin, eps, dt, &xp, l, u)
    )
}

/// Affine residual fits test: `|v − (anchor + slope·dt)| ≤ ε` in every
/// dimension. Serves the swing filter's frozen intervals, the linear
/// filter (shared anchor time), and the Kalman filter's intervals.
#[inline(always)]
pub(crate) fn fits_affine(
    k: Kernel,
    anchor: &[f64; LANES],
    slope: &[f64; LANES],
    eps: &[f64; LANES],
    dt: f64,
    x: &[f64],
) -> bool {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::fits_affine(anchor, slope, eps, dt, &xp),
        x86::fits_affine_sse2,
        x86::fits_affine_avx2,
        (anchor, slope, eps, dt, &xp)
    )
}

/// Constant-prediction fits test: `|v − c| ≤ ε` in every dimension
/// (the cache filter's first-value acceptance).
#[inline(always)]
pub(crate) fn fits_const(k: Kernel, center: &[f64; LANES], eps: &[f64; LANES], x: &[f64]) -> bool {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::fits_const(center, eps, &xp),
        x86::fits_const_sse2,
        x86::fits_const_avx2,
        (center, eps, &xp)
    )
}

/// Fused slide-filter step: evaluates both envelopes once, runs the
/// fits test (`l(t) − ε ≤ v ≤ u(t) + ε`), and — when the point fits —
/// reports per-lane whether the point pierces an envelope
/// (`v > l(t) + ε` / `v < u(t) − ε`) and so needs a hull-tangent
/// rebuild. Pure: the caller applies the rebuilds.
///
/// The filter hot path uses the fused [`slide_step_mse`] instead; this
/// stands alone for the cross-backend equivalence tests.
#[cfg_attr(not(test), allow(dead_code))]
#[inline(always)]
pub(crate) fn slide_step(
    k: Kernel,
    u: EnvView<'_>,
    l: EnvView<'_>,
    eps: &[f64; LANES],
    t: f64,
    x: &[f64],
) -> SlideStep {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::slide_step(&u, &l, eps, t, &xp),
        x86::slide_step_sse2,
        x86::slide_step_avx2,
        (&u, &l, eps, t, &xp)
    )
}

/// Fused cache-filter range step: extends the running min/max with the
/// point, accepts iff `max' − min' ≤ 2ε` in every dimension, and on
/// acceptance commits the extended range and `sum += v`. Returns
/// whether the point was accepted (no mutation on a miss).
///
/// Min/max use compare-and-select (`a < b ? a : b`) semantics in every
/// backend — identical to `_mm_min_pd`/`_mm_max_pd` and, for the
/// validated (non-NaN) inputs filters see, value-identical to
/// `f64::min`/`f64::max`.
#[inline(always)]
pub(crate) fn range_step(
    k: Kernel,
    min: &mut [f64; LANES],
    max: &mut [f64; LANES],
    sum: &mut [f64; LANES],
    eps: &[f64; LANES],
    x: &[f64],
) -> bool {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::range_step(min, max, sum, eps, &xp),
        x86::range_step_sse2,
        x86::range_step_avx2,
        (min, max, sum, eps, &xp)
    )
}

/// Unconditional min/max/sum absorb (the cache filter's first-value
/// variant, whose acceptance test doesn't involve the range).
#[inline(always)]
pub(crate) fn minmax_sum(
    k: Kernel,
    min: &mut [f64; LANES],
    max: &mut [f64; LANES],
    sum: &mut [f64; LANES],
    x: &[f64],
) {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::minmax_sum(min, max, sum, &xp),
        x86::minmax_sum_sse2,
        x86::minmax_sum_avx2,
        (min, max, sum, &xp)
    )
}

/// Per-dimension regression-sum accumulation (`RegressionSums::push`):
/// `v = x − x_ref`, `sv += v`, `suv += u·v`.
#[inline(always)]
pub(crate) fn sums_push(
    k: Kernel,
    x_ref: &[f64; LANES],
    sv: &mut [f64; LANES],
    suv: &mut [f64; LANES],
    u: f64,
    x: &[f64],
) {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::sums_push(x_ref, sv, suv, u, &xp),
        x86::sums_push_sse2,
        x86::sums_push_avx2,
        (x_ref, sv, suv, u, &xp)
    )
}

/// Fused [`swing_step`] + [`sums_push`]: one kernel call (one pad, one
/// dispatch) for the swing filter's dominant accept path. The sums are
/// accumulated only when the point fits, with arithmetic identical to
/// the two separate calls — fusing changes call count, never values.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn swing_step_mse(
    k: Kernel,
    origin: &[f64; LANES],
    eps: &[f64; LANES],
    dt: f64,
    x: &[f64],
    l: &mut [f64; LANES],
    u: &mut [f64; LANES],
    x_ref: &[f64; LANES],
    sv: &mut [f64; LANES],
    suv: &mut [f64; LANES],
    ut: f64,
) -> bool {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::swing_step_mse(origin, eps, dt, &xp, l, u, x_ref, sv, suv, ut),
        x86::swing_step_mse_sse2,
        x86::swing_step_mse_avx2,
        (origin, eps, dt, &xp, l, u, x_ref, sv, suv, ut)
    )
}

/// Fused [`slide_step`] + [`sums_push`]: one kernel call for the slide
/// filter's accept path. Sums are accumulated only when the point fits;
/// arithmetic is identical to the two separate calls.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn slide_step_mse(
    k: Kernel,
    u: EnvView<'_>,
    l: EnvView<'_>,
    eps: &[f64; LANES],
    t: f64,
    x: &[f64],
    x_ref: &[f64; LANES],
    sv: &mut [f64; LANES],
    suv: &mut [f64; LANES],
    ut: f64,
) -> SlideStep {
    let xp = pad4(x);
    dispatch_kernel!(
        k,
        scalar::slide_step_mse(&u, &l, eps, t, &xp, x_ref, sv, suv, ut),
        x86::slide_step_mse_sse2,
        x86::slide_step_mse_avx2,
        (&u, &l, eps, t, &xp, x_ref, sv, suv, ut)
    )
}

/// Portable reference backend: plain loops over all four lanes, written
/// with the exact expression trees the SIMD backends replicate.
mod scalar {
    use super::{EnvView, SlideStep, LANES};

    pub(super) fn swing_step(
        origin: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
        l: &mut [f64; LANES],
        u: &mut [f64; LANES],
    ) -> bool {
        let mut lo_val = [0.0; LANES];
        let mut hi_val = [0.0; LANES];
        let mut ok = true;
        for d in 0..LANES {
            lo_val[d] = origin[d] + l[d] * dt;
            hi_val[d] = origin[d] + u[d] * dt;
            ok &= x[d] >= lo_val[d] - eps[d] && x[d] <= hi_val[d] + eps[d];
        }
        if !ok {
            return false;
        }
        for d in 0..LANES {
            if x[d] - eps[d] > lo_val[d] {
                l[d] = (x[d] - eps[d] - origin[d]) / dt;
            }
            if x[d] + eps[d] < hi_val[d] {
                u[d] = (x[d] + eps[d] - origin[d]) / dt;
            }
        }
        true
    }

    pub(super) fn fits_affine(
        anchor: &[f64; LANES],
        slope: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
    ) -> bool {
        let mut ok = true;
        for d in 0..LANES {
            ok &= (x[d] - (anchor[d] + slope[d] * dt)).abs() <= eps[d];
        }
        ok
    }

    pub(super) fn fits_const(center: &[f64; LANES], eps: &[f64; LANES], x: &[f64; LANES]) -> bool {
        let mut ok = true;
        for d in 0..LANES {
            ok &= (x[d] - center[d]).abs() <= eps[d];
        }
        ok
    }

    pub(super) fn slide_step(
        u: &EnvView<'_>,
        l: &EnvView<'_>,
        eps: &[f64; LANES],
        t: f64,
        x: &[f64; LANES],
    ) -> SlideStep {
        let mut ue = [0.0; LANES];
        let mut le = [0.0; LANES];
        let mut ok = true;
        for d in 0..LANES {
            ue[d] = u.x0[d] + u.slope[d] * (t - u.t0[d]);
            le[d] = l.x0[d] + l.slope[d] * (t - l.t0[d]);
            ok &= x[d] <= ue[d] + eps[d] && x[d] >= le[d] - eps[d];
        }
        if !ok {
            return SlideStep { fits: false, needs_l: 0, needs_u: 0 };
        }
        let mut needs_l = 0u32;
        let mut needs_u = 0u32;
        for d in 0..LANES {
            needs_l |= u32::from(x[d] > le[d] + eps[d]) << d;
            needs_u |= u32::from(x[d] < ue[d] - eps[d]) << d;
        }
        SlideStep { fits: true, needs_l, needs_u }
    }

    pub(super) fn range_step(
        min: &mut [f64; LANES],
        max: &mut [f64; LANES],
        sum: &mut [f64; LANES],
        eps: &[f64; LANES],
        x: &[f64; LANES],
    ) -> bool {
        let mut lo = [0.0; LANES];
        let mut hi = [0.0; LANES];
        let mut ok = true;
        for d in 0..LANES {
            // Compare-and-select min/max: see the `range_step` docs.
            lo[d] = if min[d] < x[d] { min[d] } else { x[d] };
            hi[d] = if max[d] > x[d] { max[d] } else { x[d] };
            ok &= hi[d] - lo[d] <= 2.0 * eps[d];
        }
        if !ok {
            return false;
        }
        *min = lo;
        *max = hi;
        for d in 0..LANES {
            sum[d] += x[d];
        }
        true
    }

    pub(super) fn minmax_sum(
        min: &mut [f64; LANES],
        max: &mut [f64; LANES],
        sum: &mut [f64; LANES],
        x: &[f64; LANES],
    ) {
        for d in 0..LANES {
            min[d] = if min[d] < x[d] { min[d] } else { x[d] };
            max[d] = if max[d] > x[d] { max[d] } else { x[d] };
            sum[d] += x[d];
        }
    }

    pub(super) fn sums_push(
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        u: f64,
        x: &[f64; LANES],
    ) {
        for d in 0..LANES {
            let v = x[d] - x_ref[d];
            sv[d] += v;
            suv[d] += u * v;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn swing_step_mse(
        origin: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
        l: &mut [f64; LANES],
        u: &mut [f64; LANES],
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        ut: f64,
    ) -> bool {
        if !swing_step(origin, eps, dt, x, l, u) {
            return false;
        }
        sums_push(x_ref, sv, suv, ut, x);
        true
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn slide_step_mse(
        u: &EnvView<'_>,
        l: &EnvView<'_>,
        eps: &[f64; LANES],
        t: f64,
        x: &[f64; LANES],
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        ut: f64,
    ) -> SlideStep {
        let s = slide_step(u, l, eps, t, x);
        if s.fits {
            sums_push(x_ref, sv, suv, ut, x);
        }
        s
    }
}

/// x86_64 SSE2/AVX2 backends. Each function's body is the scalar
/// expression tree transcribed lane-parallel: same associativity, no
/// FMA, conditionals as compare + blend.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    use super::{EnvView, SlideStep, LANES};

    #[inline(always)]
    unsafe fn lo(a: &[f64; LANES]) -> __m128d {
        unsafe { _mm_loadu_pd(a.as_ptr()) }
    }

    #[inline(always)]
    unsafe fn hi(a: &[f64; LANES]) -> __m128d {
        unsafe { _mm_loadu_pd(a.as_ptr().add(2)) }
    }

    #[inline(always)]
    unsafe fn store(a: &mut [f64; LANES], l: __m128d, h: __m128d) {
        unsafe {
            _mm_storeu_pd(a.as_mut_ptr(), l);
            _mm_storeu_pd(a.as_mut_ptr().add(2), h);
        }
    }

    /// `mask ? a : b` per lane, bit-exact (SSE2 has no blendv).
    #[inline(always)]
    unsafe fn sel(mask: __m128d, a: __m128d, b: __m128d) -> __m128d {
        unsafe { _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b)) }
    }

    #[inline(always)]
    unsafe fn load4(a: &[f64; LANES]) -> __m256d {
        unsafe { _mm256_loadu_pd(a.as_ptr()) }
    }

    const ALL2: i32 = 0b11;
    const ALL4: i32 = 0b1111;

    // ---- swing_step -----------------------------------------------------

    #[inline(always)]
    pub(super) unsafe fn swing_step_sse2(
        origin: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
        l: &mut [f64; LANES],
        u: &mut [f64; LANES],
    ) -> bool {
        unsafe {
            let dtv = _mm_set1_pd(dt);
            let (o0, o1) = (lo(origin), hi(origin));
            let (e0, e1) = (lo(eps), hi(eps));
            let (x0, x1) = (lo(x), hi(x));
            let (l0, l1) = (lo(l), hi(l));
            let (u0, u1) = (lo(u), hi(u));
            let lv0 = _mm_add_pd(o0, _mm_mul_pd(l0, dtv));
            let lv1 = _mm_add_pd(o1, _mm_mul_pd(l1, dtv));
            let hv0 = _mm_add_pd(o0, _mm_mul_pd(u0, dtv));
            let hv1 = _mm_add_pd(o1, _mm_mul_pd(u1, dtv));
            let ok0 = _mm_and_pd(
                _mm_cmpge_pd(x0, _mm_sub_pd(lv0, e0)),
                _mm_cmple_pd(x0, _mm_add_pd(hv0, e0)),
            );
            let ok1 = _mm_and_pd(
                _mm_cmpge_pd(x1, _mm_sub_pd(lv1, e1)),
                _mm_cmple_pd(x1, _mm_add_pd(hv1, e1)),
            );
            if _mm_movemask_pd(_mm_and_pd(ok0, ok1)) != ALL2 {
                return false;
            }
            let vme0 = _mm_sub_pd(x0, e0);
            let vme1 = _mm_sub_pd(x1, e1);
            let vpe0 = _mm_add_pd(x0, e0);
            let vpe1 = _mm_add_pd(x1, e1);
            let nl0 = sel(_mm_cmpgt_pd(vme0, lv0), _mm_div_pd(_mm_sub_pd(vme0, o0), dtv), l0);
            let nl1 = sel(_mm_cmpgt_pd(vme1, lv1), _mm_div_pd(_mm_sub_pd(vme1, o1), dtv), l1);
            let nu0 = sel(_mm_cmplt_pd(vpe0, hv0), _mm_div_pd(_mm_sub_pd(vpe0, o0), dtv), u0);
            let nu1 = sel(_mm_cmplt_pd(vpe1, hv1), _mm_div_pd(_mm_sub_pd(vpe1, o1), dtv), u1);
            store(l, nl0, nl1);
            store(u, nu0, nu1);
            true
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn swing_step_avx2(
        origin: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
        l: &mut [f64; LANES],
        u: &mut [f64; LANES],
    ) -> bool {
        unsafe {
            let dtv = _mm256_set1_pd(dt);
            let o = load4(origin);
            let e = load4(eps);
            let xv = load4(x);
            let lv = load4(l);
            let uv = load4(u);
            let lo_val = _mm256_add_pd(o, _mm256_mul_pd(lv, dtv));
            let hi_val = _mm256_add_pd(o, _mm256_mul_pd(uv, dtv));
            let ok = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GE_OQ>(xv, _mm256_sub_pd(lo_val, e)),
                _mm256_cmp_pd::<_CMP_LE_OQ>(xv, _mm256_add_pd(hi_val, e)),
            );
            if _mm256_movemask_pd(ok) != ALL4 {
                return false;
            }
            let vme = _mm256_sub_pd(xv, e);
            let vpe = _mm256_add_pd(xv, e);
            let nl = _mm256_blendv_pd(
                lv,
                _mm256_div_pd(_mm256_sub_pd(vme, o), dtv),
                _mm256_cmp_pd::<_CMP_GT_OQ>(vme, lo_val),
            );
            let nu = _mm256_blendv_pd(
                uv,
                _mm256_div_pd(_mm256_sub_pd(vpe, o), dtv),
                _mm256_cmp_pd::<_CMP_LT_OQ>(vpe, hi_val),
            );
            _mm256_storeu_pd(l.as_mut_ptr(), nl);
            _mm256_storeu_pd(u.as_mut_ptr(), nu);
            true
        }
    }

    // ---- fits_affine ----------------------------------------------------

    #[inline(always)]
    pub(super) unsafe fn fits_affine_sse2(
        anchor: &[f64; LANES],
        slope: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
    ) -> bool {
        unsafe {
            let dtv = _mm_set1_pd(dt);
            let sign = _mm_set1_pd(-0.0);
            let r0 = _mm_sub_pd(lo(x), _mm_add_pd(lo(anchor), _mm_mul_pd(lo(slope), dtv)));
            let r1 = _mm_sub_pd(hi(x), _mm_add_pd(hi(anchor), _mm_mul_pd(hi(slope), dtv)));
            let ok0 = _mm_cmple_pd(_mm_andnot_pd(sign, r0), lo(eps));
            let ok1 = _mm_cmple_pd(_mm_andnot_pd(sign, r1), hi(eps));
            _mm_movemask_pd(_mm_and_pd(ok0, ok1)) == ALL2
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fits_affine_avx2(
        anchor: &[f64; LANES],
        slope: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
    ) -> bool {
        unsafe {
            let dtv = _mm256_set1_pd(dt);
            let r = _mm256_sub_pd(
                load4(x),
                _mm256_add_pd(load4(anchor), _mm256_mul_pd(load4(slope), dtv)),
            );
            let abs = _mm256_andnot_pd(_mm256_set1_pd(-0.0), r);
            _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(abs, load4(eps))) == ALL4
        }
    }

    // ---- fits_const -----------------------------------------------------

    #[inline(always)]
    pub(super) unsafe fn fits_const_sse2(
        center: &[f64; LANES],
        eps: &[f64; LANES],
        x: &[f64; LANES],
    ) -> bool {
        unsafe {
            let sign = _mm_set1_pd(-0.0);
            let r0 = _mm_sub_pd(lo(x), lo(center));
            let r1 = _mm_sub_pd(hi(x), hi(center));
            let ok0 = _mm_cmple_pd(_mm_andnot_pd(sign, r0), lo(eps));
            let ok1 = _mm_cmple_pd(_mm_andnot_pd(sign, r1), hi(eps));
            _mm_movemask_pd(_mm_and_pd(ok0, ok1)) == ALL2
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fits_const_avx2(
        center: &[f64; LANES],
        eps: &[f64; LANES],
        x: &[f64; LANES],
    ) -> bool {
        unsafe {
            let r = _mm256_sub_pd(load4(x), load4(center));
            let abs = _mm256_andnot_pd(_mm256_set1_pd(-0.0), r);
            _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(abs, load4(eps))) == ALL4
        }
    }

    // ---- slide_step -----------------------------------------------------

    #[inline(always)]
    pub(super) unsafe fn slide_step_sse2(
        u: &EnvView<'_>,
        l: &EnvView<'_>,
        eps: &[f64; LANES],
        t: f64,
        x: &[f64; LANES],
    ) -> SlideStep {
        unsafe {
            let tv = _mm_set1_pd(t);
            let (e0, e1) = (lo(eps), hi(eps));
            let (x0, x1) = (lo(x), hi(x));
            let ue0 = _mm_add_pd(lo(u.x0), _mm_mul_pd(lo(u.slope), _mm_sub_pd(tv, lo(u.t0))));
            let ue1 = _mm_add_pd(hi(u.x0), _mm_mul_pd(hi(u.slope), _mm_sub_pd(tv, hi(u.t0))));
            let le0 = _mm_add_pd(lo(l.x0), _mm_mul_pd(lo(l.slope), _mm_sub_pd(tv, lo(l.t0))));
            let le1 = _mm_add_pd(hi(l.x0), _mm_mul_pd(hi(l.slope), _mm_sub_pd(tv, hi(l.t0))));
            let ok0 = _mm_and_pd(
                _mm_cmple_pd(x0, _mm_add_pd(ue0, e0)),
                _mm_cmpge_pd(x0, _mm_sub_pd(le0, e0)),
            );
            let ok1 = _mm_and_pd(
                _mm_cmple_pd(x1, _mm_add_pd(ue1, e1)),
                _mm_cmpge_pd(x1, _mm_sub_pd(le1, e1)),
            );
            if _mm_movemask_pd(_mm_and_pd(ok0, ok1)) != ALL2 {
                return SlideStep { fits: false, needs_l: 0, needs_u: 0 };
            }
            let nl0 = _mm_movemask_pd(_mm_cmpgt_pd(x0, _mm_add_pd(le0, e0))) as u32;
            let nl1 = _mm_movemask_pd(_mm_cmpgt_pd(x1, _mm_add_pd(le1, e1))) as u32;
            let nu0 = _mm_movemask_pd(_mm_cmplt_pd(x0, _mm_sub_pd(ue0, e0))) as u32;
            let nu1 = _mm_movemask_pd(_mm_cmplt_pd(x1, _mm_sub_pd(ue1, e1))) as u32;
            SlideStep { fits: true, needs_l: nl0 | (nl1 << 2), needs_u: nu0 | (nu1 << 2) }
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn slide_step_avx2(
        u: &EnvView<'_>,
        l: &EnvView<'_>,
        eps: &[f64; LANES],
        t: f64,
        x: &[f64; LANES],
    ) -> SlideStep {
        unsafe {
            let tv = _mm256_set1_pd(t);
            let e = load4(eps);
            let xv = load4(x);
            let ue = _mm256_add_pd(
                load4(u.x0),
                _mm256_mul_pd(load4(u.slope), _mm256_sub_pd(tv, load4(u.t0))),
            );
            let le = _mm256_add_pd(
                load4(l.x0),
                _mm256_mul_pd(load4(l.slope), _mm256_sub_pd(tv, load4(l.t0))),
            );
            let ok = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_LE_OQ>(xv, _mm256_add_pd(ue, e)),
                _mm256_cmp_pd::<_CMP_GE_OQ>(xv, _mm256_sub_pd(le, e)),
            );
            if _mm256_movemask_pd(ok) != ALL4 {
                return SlideStep { fits: false, needs_l: 0, needs_u: 0 };
            }
            let needs_l =
                _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(xv, _mm256_add_pd(le, e))) as u32;
            let needs_u =
                _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(xv, _mm256_sub_pd(ue, e))) as u32;
            SlideStep { fits: true, needs_l, needs_u }
        }
    }

    // ---- range_step / minmax_sum ----------------------------------------

    #[inline(always)]
    pub(super) unsafe fn range_step_sse2(
        min: &mut [f64; LANES],
        max: &mut [f64; LANES],
        sum: &mut [f64; LANES],
        eps: &[f64; LANES],
        x: &[f64; LANES],
    ) -> bool {
        unsafe {
            let two = _mm_set1_pd(2.0);
            let (x0, x1) = (lo(x), hi(x));
            let lo0 = _mm_min_pd(lo(min), x0);
            let lo1 = _mm_min_pd(hi(min), x1);
            let hi0 = _mm_max_pd(lo(max), x0);
            let hi1 = _mm_max_pd(hi(max), x1);
            let ok0 = _mm_cmple_pd(_mm_sub_pd(hi0, lo0), _mm_mul_pd(two, lo(eps)));
            let ok1 = _mm_cmple_pd(_mm_sub_pd(hi1, lo1), _mm_mul_pd(two, hi(eps)));
            if _mm_movemask_pd(_mm_and_pd(ok0, ok1)) != ALL2 {
                return false;
            }
            store(min, lo0, lo1);
            store(max, hi0, hi1);
            store(sum, _mm_add_pd(lo(sum), x0), _mm_add_pd(hi(sum), x1));
            true
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn range_step_avx2(
        min: &mut [f64; LANES],
        max: &mut [f64; LANES],
        sum: &mut [f64; LANES],
        eps: &[f64; LANES],
        x: &[f64; LANES],
    ) -> bool {
        unsafe {
            let xv = load4(x);
            let lo_v = _mm256_min_pd(load4(min), xv);
            let hi_v = _mm256_max_pd(load4(max), xv);
            let ok = _mm256_cmp_pd::<_CMP_LE_OQ>(
                _mm256_sub_pd(hi_v, lo_v),
                _mm256_mul_pd(_mm256_set1_pd(2.0), load4(eps)),
            );
            if _mm256_movemask_pd(ok) != ALL4 {
                return false;
            }
            _mm256_storeu_pd(min.as_mut_ptr(), lo_v);
            _mm256_storeu_pd(max.as_mut_ptr(), hi_v);
            _mm256_storeu_pd(sum.as_mut_ptr(), _mm256_add_pd(load4(sum), xv));
            true
        }
    }

    #[inline(always)]
    pub(super) unsafe fn minmax_sum_sse2(
        min: &mut [f64; LANES],
        max: &mut [f64; LANES],
        sum: &mut [f64; LANES],
        x: &[f64; LANES],
    ) {
        unsafe {
            let (x0, x1) = (lo(x), hi(x));
            store(min, _mm_min_pd(lo(min), x0), _mm_min_pd(hi(min), x1));
            store(max, _mm_max_pd(lo(max), x0), _mm_max_pd(hi(max), x1));
            store(sum, _mm_add_pd(lo(sum), x0), _mm_add_pd(hi(sum), x1));
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn minmax_sum_avx2(
        min: &mut [f64; LANES],
        max: &mut [f64; LANES],
        sum: &mut [f64; LANES],
        x: &[f64; LANES],
    ) {
        unsafe {
            let xv = load4(x);
            _mm256_storeu_pd(min.as_mut_ptr(), _mm256_min_pd(load4(min), xv));
            _mm256_storeu_pd(max.as_mut_ptr(), _mm256_max_pd(load4(max), xv));
            _mm256_storeu_pd(sum.as_mut_ptr(), _mm256_add_pd(load4(sum), xv));
        }
    }

    // ---- sums_push ------------------------------------------------------

    #[inline(always)]
    pub(super) unsafe fn sums_push_sse2(
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        u: f64,
        x: &[f64; LANES],
    ) {
        unsafe {
            let uv = _mm_set1_pd(u);
            let v0 = _mm_sub_pd(lo(x), lo(x_ref));
            let v1 = _mm_sub_pd(hi(x), hi(x_ref));
            store(sv, _mm_add_pd(lo(sv), v0), _mm_add_pd(hi(sv), v1));
            store(
                suv,
                _mm_add_pd(lo(suv), _mm_mul_pd(uv, v0)),
                _mm_add_pd(hi(suv), _mm_mul_pd(uv, v1)),
            );
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sums_push_avx2(
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        u: f64,
        x: &[f64; LANES],
    ) {
        unsafe {
            let v = _mm256_sub_pd(load4(x), load4(x_ref));
            _mm256_storeu_pd(sv.as_mut_ptr(), _mm256_add_pd(load4(sv), v));
            _mm256_storeu_pd(
                suv.as_mut_ptr(),
                _mm256_add_pd(load4(suv), _mm256_mul_pd(_mm256_set1_pd(u), v)),
            );
        }
    }

    // ---- fused step + sums ----------------------------------------------
    //
    // SSE2 is part of the x86_64 baseline, so its backends carry no
    // `#[target_feature]` gate and inline all the way into the filter
    // hot loops. The AVX2 backends do need the gate (an inlining
    // barrier from feature-less callers), so fusing step + sums halves
    // their per-push call count; within one `#[target_feature]` context
    // the component functions still inline into each other.

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn swing_step_mse_sse2(
        origin: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
        l: &mut [f64; LANES],
        u: &mut [f64; LANES],
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        ut: f64,
    ) -> bool {
        unsafe {
            if !swing_step_sse2(origin, eps, dt, x, l, u) {
                return false;
            }
            sums_push_sse2(x_ref, sv, suv, ut, x);
            true
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn swing_step_mse_avx2(
        origin: &[f64; LANES],
        eps: &[f64; LANES],
        dt: f64,
        x: &[f64; LANES],
        l: &mut [f64; LANES],
        u: &mut [f64; LANES],
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        ut: f64,
    ) -> bool {
        unsafe {
            if !swing_step_avx2(origin, eps, dt, x, l, u) {
                return false;
            }
            sums_push_avx2(x_ref, sv, suv, ut, x);
            true
        }
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn slide_step_mse_sse2(
        u: &EnvView<'_>,
        l: &EnvView<'_>,
        eps: &[f64; LANES],
        t: f64,
        x: &[f64; LANES],
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        ut: f64,
    ) -> SlideStep {
        unsafe {
            let s = slide_step_sse2(u, l, eps, t, x);
            if s.fits {
                sums_push_sse2(x_ref, sv, suv, ut, x);
            }
            s
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn slide_step_mse_avx2(
        u: &EnvView<'_>,
        l: &EnvView<'_>,
        eps: &[f64; LANES],
        t: f64,
        x: &[f64; LANES],
        x_ref: &[f64; LANES],
        sv: &mut [f64; LANES],
        suv: &mut [f64; LANES],
        ut: f64,
    ) -> SlideStep {
        unsafe {
            let s = slide_step_avx2(u, l, eps, t, x);
            if s.fits {
                sums_push_avx2(x_ref, sv, suv, ut, x);
            }
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64 in roughly [-100, 100].
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64 / (1u64 << 53) as f64) * 200.0 - 100.0
        }
        fn lanes(&mut self) -> [f64; LANES] {
            std::array::from_fn(|_| self.next_f64())
        }
        fn pos_lanes(&mut self) -> [f64; LANES] {
            std::array::from_fn(|_| self.next_f64().abs() * 0.1 + 1e-3)
        }
    }

    fn backends() -> Vec<Kernel> {
        let mut v = vec![Kernel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(Kernel::Sse2);
            if is_x86_feature_detected!("avx2") {
                v.push(Kernel::Avx2);
            }
        }
        v
    }

    #[test]
    fn detect_returns_a_valid_backend() {
        let k = Kernel::detect();
        assert!(backends().contains(&k) || k == Kernel::Scalar);
    }

    #[test]
    fn dispatch_auto_and_sanitize() {
        assert_eq!(Dispatch::auto(1, true), Dispatch::Scalar1);
        assert!(matches!(Dispatch::auto(1, false), Dispatch::Generic));
        assert!(matches!(Dispatch::auto(3, true), Dispatch::Lanes(_)));
        assert_eq!(Dispatch::auto(8, true), Dispatch::Generic);
        // Invalid overrides snap back to auto.
        assert_eq!(Dispatch::Scalar1.sanitized(4, true), Dispatch::auto(4, true));
        assert_eq!(Dispatch::Lanes(Kernel::Scalar).sanitized(8, true), Dispatch::Generic);
        assert_eq!(
            Dispatch::Lanes(Kernel::Scalar).sanitized(2, false),
            Dispatch::Lanes(Kernel::Scalar)
        );
    }

    /// Every SIMD backend must be bit-identical to the scalar backend on
    /// the same inputs — including mutated state — across many random
    /// rounds and every active dimension count (via zero padding).
    #[test]
    fn backends_are_bit_identical() {
        let ks = backends();
        let mut rng = Lcg(0xC0FFEE);
        for round in 0..500 {
            let d = 2 + round % 3; // 2..=4 active dims
            let origin = rng.lanes();
            let eps = rng.pos_lanes();
            let dt = rng.next_f64().abs() + 0.01;
            let mut x = rng.lanes();
            x[d..].iter_mut().for_each(|v| *v = 0.0);
            let mut base_env = (rng.lanes(), rng.lanes());
            base_env.0[d..].iter_mut().for_each(|v| *v = 0.0);
            base_env.1[d..].iter_mut().for_each(|v| *v = 0.0);

            // swing_step: compare result and mutated slopes.
            let mut want: Option<(bool, [f64; LANES], [f64; LANES])> = None;
            for &k in &ks {
                let (mut l, mut u) = base_env;
                let fit = swing_step(k, &origin, &eps, dt, &x[..d], &mut l, &mut u);
                let got = (fit, l, u);
                match &want {
                    None => want = Some(got),
                    Some(w) => {
                        assert_eq!(w.0, got.0, "{k:?} swing fits diverged");
                        assert_eq!(
                            w.1.map(f64::to_bits),
                            got.1.map(f64::to_bits),
                            "{k:?} swing l diverged"
                        );
                        assert_eq!(
                            w.2.map(f64::to_bits),
                            got.2.map(f64::to_bits),
                            "{k:?} swing u diverged"
                        );
                    }
                }
            }

            // fits_affine / fits_const.
            let slope = rng.lanes();
            let affine: Vec<bool> =
                ks.iter().map(|&k| fits_affine(k, &origin, &slope, &eps, dt, &x[..d])).collect();
            assert!(affine.windows(2).all(|w| w[0] == w[1]), "fits_affine diverged");
            let cst: Vec<bool> =
                ks.iter().map(|&k| fits_const(k, &origin, &eps, &x[..d])).collect();
            assert!(cst.windows(2).all(|w| w[0] == w[1]), "fits_const diverged");

            // slide_step.
            let (ut0, ux0, us) = (rng.lanes(), rng.lanes(), rng.lanes());
            let (lt0, lx0, ls) = (rng.lanes(), rng.lanes(), rng.lanes());
            let t = rng.next_f64();
            let steps: Vec<(bool, u32, u32)> = ks
                .iter()
                .map(|&k| {
                    let s = slide_step(
                        k,
                        EnvView { t0: &ut0, x0: &ux0, slope: &us },
                        EnvView { t0: &lt0, x0: &lx0, slope: &ls },
                        &eps,
                        t,
                        &x[..d],
                    );
                    (s.fits, s.needs_l, s.needs_u)
                })
                .collect();
            assert!(steps.windows(2).all(|w| w[0] == w[1]), "slide_step diverged: {steps:?}");

            // range_step + minmax_sum: compare mutated state.
            let base = (rng.lanes(), rng.lanes(), rng.lanes());
            type RangeBits = (bool, [u64; LANES], [u64; LANES], [u64; LANES]);
            let mut want_rs: Option<RangeBits> = None;
            for &k in &ks {
                let (mut mn, mut mx, mut sm) = base;
                let acc = range_step(k, &mut mn, &mut mx, &mut sm, &eps, &x[..d]);
                minmax_sum(k, &mut mn, &mut mx, &mut sm, &x[..d]);
                let got = (acc, mn.map(f64::to_bits), mx.map(f64::to_bits), sm.map(f64::to_bits));
                match &want_rs {
                    None => want_rs = Some(got),
                    Some(w) => assert_eq!(*w, got, "{k:?} range/minmax diverged"),
                }
            }

            // sums_push.
            let xr = rng.lanes();
            let u_t = rng.next_f64();
            let base = (rng.lanes(), rng.lanes());
            let mut want_sp: Option<([u64; LANES], [u64; LANES])> = None;
            for &k in &ks {
                let (mut sv, mut suv) = base;
                sums_push(k, &xr, &mut sv, &mut suv, u_t, &x[..d]);
                let got = (sv.map(f64::to_bits), suv.map(f64::to_bits));
                match &want_sp {
                    None => want_sp = Some(got),
                    Some(w) => assert_eq!(*w, got, "{k:?} sums_push diverged"),
                }
            }
        }
    }

    /// Zero padding lanes pass every fits test, absorb every update as a
    /// no-op, and stay exactly 0.0 through mutating kernels.
    #[test]
    fn padding_lanes_are_neutral() {
        for &k in &backends() {
            let origin = [1.0, -2.0, 0.0, 0.0];
            let eps = [0.5, 0.5, 0.0, 0.0];
            let mut l = [-1.0, -1.0, 0.0, 0.0];
            let mut u = [1.0, 1.0, 0.0, 0.0];
            let fit = swing_step(k, &origin, &eps, 2.0, &[1.4, -1.7], &mut l, &mut u);
            assert!(fit, "{k:?}: active lanes fit");
            assert_eq!(&l[2..], &[0.0, 0.0], "{k:?}: l padding disturbed");
            assert_eq!(&u[2..], &[0.0, 0.0], "{k:?}: u padding disturbed");

            let zeros = [0.0; LANES];
            assert!(fits_affine(k, &zeros, &zeros, &zeros, 123.0, &[]));
            assert!(fits_const(k, &zeros, &zeros, &[]));
            let s = slide_step(
                k,
                EnvView { t0: &zeros, x0: &zeros, slope: &zeros },
                EnvView { t0: &zeros, x0: &zeros, slope: &zeros },
                &zeros,
                7.5,
                &[],
            );
            assert!(s.fits && s.needs_l == 0 && s.needs_u == 0, "{k:?}: padding not neutral");

            let (mut mn, mut mx, mut sm) = (zeros, zeros, zeros);
            assert!(range_step(k, &mut mn, &mut mx, &mut sm, &zeros, &[]));
            assert_eq!([mn, mx, sm], [zeros; 3], "{k:?}: range padding disturbed");
            let (mut sv, mut suv) = (zeros, zeros);
            sums_push(k, &zeros, &mut sv, &mut suv, 3.0, &[]);
            assert_eq!([sv, suv], [zeros; 2], "{k:?}: sums padding disturbed");
        }
    }
}
