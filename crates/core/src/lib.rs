//! # pla-core — online piece-wise linear approximation with precision guarantees
//!
//! Faithful implementation of
//!
//! > H. Elmeleegy, A. K. Elmagarmid, E. Cecchet, W. G. Aref,
//! > W. Zwaenepoel. *Online Piece-wise Linear Approximation of Numerical
//! > Streams with Precision Guarantees.* VLDB 2009.
//!
//! The crate compresses a multi-dimensional numerical stream `(t_j, X_j)`
//! into line segments such that **every** original point stays within a
//! per-dimension L∞ bound `εᵢ` of the approximation — the dual of classic
//! time-series compression: the error is guaranteed, the compression ratio
//! is maximized best-effort.
//!
//! Four filters are provided (see [`filters`]):
//!
//! * [`filters::CacheFilter`] — piece-wise constant baseline (§2.2);
//! * [`filters::LinearFilter`] — fixed-slope linear baseline (§2.2);
//! * [`filters::SwingFilter`] — the paper's swing filter (§3): connected
//!   segments, O(d) per point;
//! * [`filters::SlideFilter`] — the paper's slide filter (§4): mostly
//!   disconnected segments chosen from sliding envelopes, convex-hull
//!   optimized, the best compressor of the four.
//!
//! Supporting types: [`Signal`] (columnar sample storage), [`Segment`] /
//! [`SegmentSink`] (output model with the paper's recording accounting),
//! [`Polyline`] (receiver-side reconstruction), and [`metrics`] (the §5.1
//! compression-ratio / average-error measurements).
//!
//! ## Example
//!
//! ```
//! use pla_core::filters::SlideFilter;
//! use pla_core::{metrics, Signal};
//!
//! // A noisy ramp, 1-D.
//! let values: Vec<f64> = (0..500)
//!     .map(|j| 0.3 * j as f64 + if j % 2 == 0 { 0.05 } else { -0.05 })
//!     .collect();
//! let signal = Signal::from_values(&values);
//!
//! let mut slide = SlideFilter::new(&[0.5]).unwrap();
//! let report = metrics::evaluate(&mut slide, &signal).unwrap();
//!
//! // The guarantee: no sample is more than ε from the approximation.
//! assert!(report.error.max_abs_overall() <= 0.5 + 1e-9);
//! // A near-linear signal compresses into a single segment.
//! assert_eq!(report.n_segments, 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod dimvec;
mod error;
pub mod filters;
pub mod kern;
pub mod metrics;
mod mse;
pub mod offline;
mod reconstruct;
mod sample;
mod segment;
pub mod stream;

pub use dimvec::{DimVec, INLINE_DIMS};
pub use error::{BatchError, FilterError};
pub use mse::RegressionSums;
pub use reconstruct::{GapPolicy, Polyline};
pub use sample::Signal;
pub use segment::{validate_epsilons, CollectingSink, ProvisionalUpdate, Segment, SegmentSink};
