//! The paper's §5.1 evaluation metrics: compression ratio and
//! reconstruction error.
//!
//! * **Compression ratio** — "the number of recordings needed when no
//!   filtering is used divided by that when filtering is used": `n`
//!   divided by the total recording count of the emitted segments (a
//!   connected segment costs one recording, a disconnected one two, a
//!   piece-wise-constant one one). Provisional lag updates, when present,
//!   are charged one recording each.
//! * **Average error** — "the sum of errors for each sample divided by
//!   the number of samples", computed per dimension and aggregated.

use crate::error::FilterError;
use crate::filters::{run_filter, StreamFilter};
use crate::reconstruct::{GapPolicy, Polyline};
use crate::sample::Signal;
use crate::segment::{CollectingSink, Segment, SegmentSink};

/// Per-dimension reconstruction error statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorStats {
    /// Mean absolute error per dimension.
    pub mean_abs: Vec<f64>,
    /// Maximum absolute error per dimension.
    pub max_abs: Vec<f64>,
    /// Root-mean-square error per dimension.
    pub rmse: Vec<f64>,
    /// Number of samples evaluated.
    pub n: usize,
}

impl ErrorStats {
    /// Mean absolute error averaged across dimensions — the scalar the
    /// paper plots in Figure 8.
    pub fn mean_abs_overall(&self) -> f64 {
        if self.mean_abs.is_empty() {
            return 0.0;
        }
        self.mean_abs.iter().sum::<f64>() / self.mean_abs.len() as f64
    }

    /// Largest per-dimension maximum error.
    pub fn max_abs_overall(&self) -> f64 {
        self.max_abs.iter().copied().fold(0.0, f64::max)
    }
}

/// Summary of one compression run.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Samples in the original signal (`n`).
    pub n_points: usize,
    /// Emitted segments (`K`).
    pub n_segments: usize,
    /// Total recordings (see module docs).
    pub n_recordings: u64,
    /// Provisional lag updates charged into `n_recordings`.
    pub n_provisionals: u64,
    /// `n_points / n_recordings` (∞-safe: 0 recordings ⇒ ratio 0).
    pub compression_ratio: f64,
    /// Reconstruction error of the original samples against the
    /// approximation.
    pub error: ErrorStats,
}

/// Computes error statistics of `segments` against the original `signal`.
///
/// # Panics
///
/// Panics if some sample time is not covered by any segment — filters
/// guarantee coverage, so this indicates a filter bug.
pub fn error_stats(signal: &Signal, segments: &[Segment]) -> ErrorStats {
    let d = signal.dims();
    let poly = Polyline::new(segments.to_vec());
    let mut sum_abs = vec![0.0; d];
    let mut max_abs = vec![0.0f64; d];
    let mut sum_sq = vec![0.0; d];
    for (t, x) in signal.iter() {
        for dim in 0..d {
            let approx = poly
                .eval(t, dim, GapPolicy::Strict)
                .unwrap_or_else(|| panic!("sample at t={t} not covered by any segment"));
            let err = (approx - x[dim]).abs();
            sum_abs[dim] += err;
            max_abs[dim] = max_abs[dim].max(err);
            sum_sq[dim] += err * err;
        }
    }
    let n = signal.len().max(1);
    ErrorStats {
        mean_abs: sum_abs.iter().map(|s| s / n as f64).collect(),
        max_abs,
        rmse: sum_sq.iter().map(|s| (s / n as f64).sqrt()).collect(),
        n: signal.len(),
    }
}

/// Runs `filter` over `signal` and assembles the full report.
pub fn evaluate(
    filter: &mut dyn StreamFilter,
    signal: &Signal,
) -> Result<CompressionReport, FilterError> {
    let mut sink = CollectingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink)?;
    }
    filter.finish(&mut sink)?;
    Ok(report_from(signal, &sink.segments, sink.provisionals.len() as u64))
}

/// Assembles a report from already-collected segments.
pub fn report_from(
    signal: &Signal,
    segments: &[Segment],
    n_provisionals: u64,
) -> CompressionReport {
    let seg_recordings: u64 = segments.iter().map(|s| s.new_recordings as u64).sum();
    let n_recordings = seg_recordings + n_provisionals;
    let compression_ratio =
        if n_recordings == 0 { 0.0 } else { signal.len() as f64 / n_recordings as f64 };
    CompressionReport {
        n_points: signal.len(),
        n_segments: segments.len(),
        n_recordings,
        n_provisionals,
        compression_ratio,
        error: error_stats(signal, segments),
    }
}

/// Convenience: compress `signal` with a fresh sink and return both the
/// segments and the report.
pub fn compress_and_report(
    filter: &mut dyn StreamFilter,
    signal: &Signal,
) -> Result<(Vec<Segment>, CompressionReport), FilterError> {
    let segments = run_filter(filter, signal)?;
    let report = report_from(signal, &segments, 0);
    Ok((segments, report))
}

/// Sink that counts recordings without storing segments — for
/// memory-lean throughput benchmarking.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Segments seen.
    pub segments: u64,
    /// Recordings seen.
    pub recordings: u64,
    /// Provisional updates seen.
    pub provisionals: u64,
    /// Data points covered by seen segments.
    pub points: u64,
}

impl SegmentSink for CountingSink {
    fn segment(&mut self, seg: Segment) {
        self.segments += 1;
        self.recordings += seg.new_recordings as u64;
        self.points += seg.n_points as u64;
    }
    fn provisional(&mut self, _update: crate::segment::ProvisionalUpdate) {
        self.provisionals += 1;
        self.recordings += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{CacheFilter, LinearFilter, SlideFilter, SwingFilter};

    fn noisy_signal(n: usize) -> Signal {
        let mut seed = 2024u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        Signal::from_values(
            &(0..n)
                .map(|_| {
                    x += rnd();
                    x
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn constant_signal_compresses_perfectly() {
        let signal = Signal::from_values(&[3.0; 100]);
        let mut f = CacheFilter::new(&[0.1]).unwrap();
        let report = evaluate(&mut f, &signal).unwrap();
        assert_eq!(report.n_recordings, 1);
        assert_eq!(report.compression_ratio, 100.0);
        assert_eq!(report.error.max_abs_overall(), 0.0);
    }

    #[test]
    fn error_never_exceeds_epsilon() {
        let signal = noisy_signal(500);
        let eps = 0.4;
        let mut filters: Vec<Box<dyn StreamFilter>> = vec![
            Box::new(CacheFilter::new(&[eps]).unwrap()),
            Box::new(LinearFilter::new(&[eps]).unwrap()),
            Box::new(SwingFilter::new(&[eps]).unwrap()),
            Box::new(SlideFilter::new(&[eps]).unwrap()),
        ];
        for f in filters.iter_mut() {
            let report = evaluate(f.as_mut(), &signal).unwrap();
            assert!(
                report.error.max_abs_overall() <= eps * (1.0 + 1e-6),
                "{} exceeded ε: {}",
                f.name(),
                report.error.max_abs_overall()
            );
            assert!(report.compression_ratio > 0.0);
        }
    }

    #[test]
    fn average_error_below_max_error() {
        let signal = noisy_signal(300);
        let mut f = SwingFilter::new(&[1.0]).unwrap();
        let report = evaluate(&mut f, &signal).unwrap();
        assert!(report.error.mean_abs_overall() <= report.error.max_abs_overall());
        assert!(report.error.rmse[0] >= report.error.mean_abs[0] - 1e-12);
    }

    #[test]
    fn provisionals_are_charged() {
        let signal = Signal::from_values(&(0..40).map(|i| i as f64).collect::<Vec<_>>());
        let mut f = SwingFilter::builder(&[0.5]).max_lag(10).build().unwrap();
        let report = evaluate(&mut f, &signal).unwrap();
        assert!(report.n_provisionals >= 1);
        assert!(report.n_recordings > report.n_segments as u64);
    }

    #[test]
    fn counting_sink_matches_collecting_sink() {
        let signal = noisy_signal(400);
        let mut f1 = SlideFilter::new(&[0.5]).unwrap();
        let mut f2 = SlideFilter::new(&[0.5]).unwrap();
        let segs = run_filter(&mut f1, &signal).unwrap();
        let mut counter = CountingSink::default();
        for (t, x) in signal.iter() {
            f2.push(t, x, &mut counter).unwrap();
        }
        f2.finish(&mut counter).unwrap();
        assert_eq!(counter.segments as usize, segs.len());
        assert_eq!(counter.recordings, segs.iter().map(|s| s.new_recordings as u64).sum::<u64>());
        assert_eq!(counter.points as usize, signal.len());
    }

    #[test]
    fn empty_signal_report() {
        let signal = Signal::new(1);
        let mut f = CacheFilter::new(&[0.1]).unwrap();
        let report = evaluate(&mut f, &signal).unwrap();
        assert_eq!(report.n_points, 0);
        assert_eq!(report.n_recordings, 0);
        assert_eq!(report.compression_ratio, 0.0);
    }
}
