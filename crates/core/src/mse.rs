//! Incremental least-squares slope selection (paper eq. 5–6).
//!
//! Both filters pick, as a *secondary* objective, the candidate line that
//! minimizes the mean square error over the interval's points among all
//! lines through a fixed anchor with slope inside the feasible cone:
//!
//! ```text
//! aᵢ = min(max(Aᵢ, a_lower), a_upper)                      (eq. 5)
//! Aᵢ = Σ (xᵢⱼ − xᵢ⁰)(tⱼ − t⁰) / Σ (tⱼ − t⁰)²               (eq. 6)
//! ```
//!
//! The swing filter's anchor (the previous recording) is known while the
//! interval runs, but the slide filter's anchor `zᵢ` (the envelope
//! intersection) is only known when the interval *ends* and differs per
//! dimension. [`RegressionSums`] therefore stores anchor-independent
//! moments, centred on the interval's first sample for numerical health,
//! from which `Aᵢ` for *any* anchor follows in O(d):
//!
//! ```text
//! Σ (tⱼ−t_z)²        = Suu − 2a·Su + n·a²            (a = t_z − t_ref)
//! Σ (xⱼ−x_z)(tⱼ−t_z) = Suv − a·Sv − b·Su + n·a·b     (b = x_z − x_ref)
//! ```

use crate::dimvec::DimVec;

/// Running moments of an interval's samples, relative to a fixed reference
/// sample, supporting O(1)-space least-squares slopes through arbitrary
/// anchors (one slope per dimension).
///
/// Per-dimension state lives in [`DimVec`]s, so constructing or resetting
/// the sums allocates nothing for `d ≤ 4`; filters additionally recycle
/// one instance across intervals via [`reset`](Self::reset).
#[derive(Debug, Clone)]
pub struct RegressionSums {
    t_ref: f64,
    x_ref: DimVec<f64>,
    n: u32,
    su: f64,
    suu: f64,
    sv: DimVec<f64>,
    suv: DimVec<f64>,
}

impl RegressionSums {
    /// Starts a new interval whose reference sample is `(t_ref, x_ref)`.
    /// The reference sample itself is *not* counted; push it explicitly if
    /// it belongs to the interval.
    pub fn new(t_ref: f64, x_ref: &[f64]) -> Self {
        Self {
            t_ref,
            x_ref: x_ref.into(),
            n: 0,
            su: 0.0,
            suu: 0.0,
            sv: DimVec::splat(x_ref.len(), 0.0),
            suv: DimVec::splat(x_ref.len(), 0.0),
        }
    }

    /// Resets to an empty interval with a new reference sample, reusing
    /// buffers.
    pub fn reset(&mut self, t_ref: f64, x_ref: &[f64]) {
        debug_assert_eq!(x_ref.len(), self.x_ref.len());
        self.t_ref = t_ref;
        self.x_ref.copy_from_slice(x_ref);
        self.n = 0;
        self.su = 0.0;
        self.suu = 0.0;
        self.sv.iter_mut().for_each(|v| *v = 0.0);
        self.suv.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Accumulates one sample.
    pub fn push(&mut self, t: f64, x: &[f64]) {
        debug_assert_eq!(x.len(), self.x_ref.len());
        let u = t - self.t_ref;
        self.n += 1;
        self.su += u;
        self.suu += u * u;
        // Slices hoisted out of the loop so the per-dimension accesses
        // compile to plain indexed loads/stores.
        let x_ref = self.x_ref.as_slice();
        let sv = self.sv.as_mut_slice();
        let suv = self.suv.as_mut_slice();
        for (dim, &xv) in x.iter().enumerate() {
            let v = xv - x_ref[dim];
            sv[dim] += v;
            suv[dim] += u * v;
        }
    }

    /// Accumulates one sample through the fixed-width lane kernel
    /// backend `k` — byte-identical to [`push`](Self::push) (the kernel
    /// replicates the loop's expression tree; see [`crate::kern`]).
    /// Callers guarantee `d ≤ INLINE_DIMS` (the sums are inline).
    #[inline]
    pub(crate) fn push_lanes(&mut self, k: crate::kern::Kernel, t: f64, x: &[f64]) {
        debug_assert_eq!(x.len(), self.x_ref.len());
        let u = t - self.t_ref;
        self.n += 1;
        self.su += u;
        self.suu += u * u;
        let Self { x_ref, sv, suv, .. } = self;
        crate::kern::sums_push(k, x_ref.lanes(), sv.lanes_mut(), suv.lanes_mut(), u, x);
    }

    /// Fused swing step + accumulate through one kernel call: runs
    /// [`crate::kern::swing_step`] and, iff the point fits, accumulates
    /// it — byte-identical to `swing_step` followed by
    /// [`push`](Self::push), at half the kernel-call overhead. Callers
    /// guarantee `d ≤ INLINE_DIMS`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn swing_step_lanes(
        &mut self,
        k: crate::kern::Kernel,
        origin: &crate::DimVec<f64>,
        eps: &crate::DimVec<f64>,
        dt: f64,
        t: f64,
        x: &[f64],
        l: &mut crate::DimVec<f64>,
        u: &mut crate::DimVec<f64>,
    ) -> bool {
        debug_assert_eq!(x.len(), self.x_ref.len());
        let ut = t - self.t_ref;
        let Self { x_ref, sv, suv, .. } = self;
        let fit = crate::kern::swing_step_mse(
            k,
            origin.lanes(),
            eps.lanes(),
            dt,
            x,
            l.lanes_mut(),
            u.lanes_mut(),
            x_ref.lanes(),
            sv.lanes_mut(),
            suv.lanes_mut(),
            ut,
        );
        if fit {
            self.n += 1;
            self.su += ut;
            self.suu += ut * ut;
        }
        fit
    }

    /// Fused slide step + accumulate: runs [`crate::kern::slide_step`]
    /// and, iff the point fits, accumulates it — byte-identical to
    /// `slide_step` followed by [`push`](Self::push). Callers guarantee
    /// `d ≤ INLINE_DIMS`.
    #[inline]
    pub(crate) fn slide_step_lanes(
        &mut self,
        k: crate::kern::Kernel,
        u_env: crate::kern::EnvView<'_>,
        l_env: crate::kern::EnvView<'_>,
        eps: &crate::DimVec<f64>,
        t: f64,
        x: &[f64],
    ) -> crate::kern::SlideStep {
        debug_assert_eq!(x.len(), self.x_ref.len());
        let ut = t - self.t_ref;
        let Self { x_ref, sv, suv, .. } = self;
        let s = crate::kern::slide_step_mse(
            k,
            u_env,
            l_env,
            eps.lanes(),
            t,
            x,
            x_ref.lanes(),
            sv.lanes_mut(),
            suv.lanes_mut(),
            ut,
        );
        if s.fits {
            self.n += 1;
            self.su += ut;
            self.suu += ut * ut;
        }
        s
    }

    /// Number of accumulated samples.
    #[inline]
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether no samples have been accumulated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Unconstrained least-squares slope `Aᵢ` (eq. 6) for dimension `dim`
    /// of the line forced through the anchor `(t_anchor, x_anchor_dim)`.
    ///
    /// Returns `None` when the denominator vanishes (no samples, or every
    /// sample at the anchor time), in which case any slope is equally
    /// optimal and the caller should fall back to the cone midpoint.
    pub fn optimal_slope(&self, t_anchor: f64, x_anchor_dim: f64, dim: usize) -> Option<f64> {
        let a = t_anchor - self.t_ref;
        let denom = self.suu - 2.0 * a * self.su + self.n as f64 * a * a;
        if denom <= 0.0 || !denom.is_finite() {
            return None;
        }
        let b = x_anchor_dim - self.x_ref[dim];
        let numer = self.suv[dim] - a * self.sv[dim] - b * self.su + self.n as f64 * a * b;
        let slope = numer / denom;
        slope.is_finite().then_some(slope)
    }

    /// Eq. (5): the least-squares slope clamped into `[lo, hi]`; falls
    /// back to the midpoint of the cone when the unconstrained optimum is
    /// undefined.
    pub fn clamped_slope(
        &self,
        t_anchor: f64,
        x_anchor_dim: f64,
        dim: usize,
        lo: f64,
        hi: f64,
    ) -> f64 {
        // Callers guarantee lo <= hi only up to rounding (the slide filter
        // tracks its envelope cone with the same relative tolerance); a
        // numerically inverted cone is a single slope — its midpoint. A
        // grossly inverted cone is a caller bug and must fail in release
        // too, or segments could silently violate the ε guarantee.
        assert!(
            lo <= hi + 1e-9 * hi.abs().max(1.0),
            "feasible cone must be non-empty: {lo} > {hi}"
        );
        if lo > hi {
            return 0.5 * (lo + hi);
        }
        match self.optimal_slope(t_anchor, x_anchor_dim, dim) {
            Some(a) => a.clamp(lo, hi),
            None => 0.5 * (lo + hi),
        }
    }

    /// The denominator `Σ (tⱼ − t_anchor)²` — the curvature of the
    /// per-dimension MSE as a function of the slope. Used by the
    /// multi-dimensional slide connection to weight dimensions.
    pub fn slope_curvature(&self, t_anchor: f64) -> f64 {
        let a = t_anchor - self.t_ref;
        self.suu - 2.0 * a * self.su + self.n as f64 * a * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: minimize Σ (x − (x_a + a(t−t_a)))² over a.
    fn brute_slope(pts: &[(f64, f64)], t_a: f64, x_a: f64) -> f64 {
        let num: f64 = pts.iter().map(|&(t, x)| (x - x_a) * (t - t_a)).sum();
        let den: f64 = pts
            .iter()
            .map(|&(t, x_)| {
                let _ = x_;
                (t - t_a) * (t - t_a)
            })
            .sum();
        num / den
    }

    #[test]
    fn matches_brute_force_at_reference_anchor() {
        let pts = [(1.0, 2.0), (2.0, 2.5), (3.0, 4.0), (4.0, 3.5)];
        let mut s = RegressionSums::new(0.0, &[1.0]);
        for &(t, x) in &pts {
            s.push(t, &[x]);
        }
        let got = s.optimal_slope(0.0, 1.0, 0).unwrap();
        let want = brute_slope(&pts, 0.0, 1.0);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn matches_brute_force_at_shifted_anchor() {
        let pts = [(10.0, 5.0), (11.0, 6.0), (12.0, 5.5), (14.0, 8.0)];
        let mut s = RegressionSums::new(10.0, &[5.0]);
        for &(t, x) in &pts {
            s.push(t, &[x]);
        }
        for &(t_a, x_a) in &[(9.0, 4.0), (12.5, 6.0), (20.0, 11.0)] {
            let got = s.optimal_slope(t_a, x_a, 0).unwrap();
            let want = brute_slope(&pts, t_a, x_a);
            assert!((got - want).abs() < 1e-10, "anchor ({t_a},{x_a}): {got} vs {want}");
        }
    }

    #[test]
    fn perfect_line_recovers_exact_slope() {
        let mut s = RegressionSums::new(0.0, &[0.0]);
        for j in 1..=10 {
            let t = j as f64;
            s.push(t, &[3.0 + 2.0 * t]); // line through (0,3) slope 2
        }
        let a = s.optimal_slope(0.0, 3.0, 0).unwrap();
        assert!((a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multi_dimensional_slopes_are_independent() {
        let mut s = RegressionSums::new(0.0, &[0.0, 10.0]);
        for j in 1..=5 {
            let t = j as f64;
            s.push(t, &[t, 10.0 - 3.0 * t]);
        }
        assert!((s.optimal_slope(0.0, 0.0, 0).unwrap() - 1.0).abs() < 1e-12);
        assert!((s.optimal_slope(0.0, 10.0, 1).unwrap() + 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_yield_none() {
        let s = RegressionSums::new(0.0, &[0.0]);
        assert_eq!(s.optimal_slope(0.0, 0.0, 0), None);
        let mut s = RegressionSums::new(0.0, &[0.0]);
        s.push(5.0, &[1.0]);
        // anchor exactly at the single accumulated point's time
        assert_eq!(s.optimal_slope(5.0, 1.0, 0), None);
    }

    #[test]
    fn clamping_respects_cone() {
        let mut s = RegressionSums::new(0.0, &[0.0]);
        for j in 1..=4 {
            s.push(j as f64, &[5.0 * j as f64]); // steep slope 5
        }
        let a = s.clamped_slope(0.0, 0.0, 0, -1.0, 2.0);
        assert_eq!(a, 2.0);
        let a = s.clamped_slope(0.0, 0.0, 0, 6.0, 7.0);
        assert_eq!(a, 6.0);
        // degenerate optimum → midpoint
        let empty = RegressionSums::new(0.0, &[0.0]);
        assert_eq!(empty.clamped_slope(0.0, 0.0, 0, 1.0, 3.0), 2.0);
    }

    #[test]
    fn tolerates_cone_inverted_by_rounding() {
        let mut s = RegressionSums::new(0.0, &[0.0]);
        for j in 1..=4 {
            s.push(j as f64, &[5.0 * j as f64]);
        }
        // lo exceeds hi by one ulp-scale error, as the slide filter's
        // envelope intersection can produce; must not panic.
        let lo = 0.0034000000000000102;
        let hi = 0.0033999999999999807;
        let a = s.clamped_slope(0.0, 0.0, 0, lo, hi);
        assert!((a - 0.5 * (lo + hi)).abs() < 1e-15);
    }

    #[test]
    fn reset_reuses_buffers() {
        let mut s = RegressionSums::new(0.0, &[0.0]);
        s.push(1.0, &[1.0]);
        s.reset(10.0, &[5.0]);
        assert!(s.is_empty());
        s.push(11.0, &[7.0]);
        let a = s.optimal_slope(10.0, 5.0, 0).unwrap();
        assert!((a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn curvature_matches_denominator() {
        let mut s = RegressionSums::new(0.0, &[0.0]);
        s.push(1.0, &[0.0]);
        s.push(3.0, &[0.0]);
        // Σ (t − 2)² = 1 + 1 = 2
        assert!((s.slope_curvature(2.0) - 2.0).abs() < 1e-12);
    }
}
