//! Offline oracles: optimal segment counts for L∞-bounded approximation.
//!
//! For *disconnected* piece-wise linear approximation under an L∞ bound,
//! the greedy strategy — extend the current piece while **some** line
//! stays within `εᵢ` of every covered point, cut otherwise — produces the
//! minimum possible number of pieces. (Classic interval-covering
//! exchange argument: a greedy piece ends strictly no earlier than the
//! corresponding piece of any optimal solution, by induction.) The
//! feasibility test is exactly the slide filter's envelope invariant
//! (Lemmas 4.1–4.2), so the slide filter's interval structure is
//! *segment-count optimal*; this module recomputes the optimum
//! independently (same math, separate code path) so tests can
//! cross-check, and derives the recording lower bound
//!
//! ```text
//! recordings ≥ K + 1      (K pieces, all endpoints shared at best)
//! ```
//!
//! which the `optgap` experiment compares against what the filters
//! actually spend.

use crate::sample::Signal;
use crate::segment::validate_epsilons;
use crate::FilterError;

/// Feasibility tracker for one dimension of one growing piece: the
/// extrapolation-envelope slopes, updated exactly as Lemma 4.1 dictates
/// but with the exhaustive candidate scan (this is an oracle, not a
/// filter — clarity over speed).
struct EnvelopeState {
    /// Points of the current piece (t, x).
    pts: Vec<(f64, f64)>,
    /// Upper envelope as (anchor_t, anchor_x, slope).
    u: (f64, f64, f64),
    /// Lower envelope.
    l: (f64, f64, f64),
}

impl EnvelopeState {
    fn new(p0: (f64, f64), p1: (f64, f64), eps: f64) -> Self {
        let u_slope = (p1.1 + eps - (p0.1 - eps)) / (p1.0 - p0.0);
        let l_slope = (p1.1 - eps - (p0.1 + eps)) / (p1.0 - p0.0);
        Self { pts: vec![p0, p1], u: (p0.0, p0.1 - eps, u_slope), l: (p0.0, p0.1 + eps, l_slope) }
    }

    fn eval(env: (f64, f64, f64), t: f64) -> f64 {
        env.1 + env.2 * (t - env.0)
    }

    /// Lemma 4.2 acceptance; Lemma 4.1 update on success.
    fn try_extend(&mut self, t: f64, x: f64, eps: f64) -> bool {
        let hi = Self::eval(self.u, t) + eps;
        let lo = Self::eval(self.l, t) - eps;
        if x > hi || x < lo {
            return false;
        }
        if x > Self::eval(self.l, t) + eps {
            // New lower envelope: max slope through (t', x'+ε), (t, x−ε).
            let q = (t, x - eps);
            let mut best: Option<(f64, f64, f64)> = None;
            for &(tp, xp) in &self.pts {
                let slope = (q.1 - (xp + eps)) / (q.0 - tp);
                if best.is_none_or(|b| slope > b.2) {
                    best = Some((tp, xp + eps, slope));
                }
            }
            self.l = best.expect("piece has points");
        }
        if x < Self::eval(self.u, t) - eps {
            let q = (t, x + eps);
            let mut best: Option<(f64, f64, f64)> = None;
            for &(tp, xp) in &self.pts {
                let slope = (q.1 - (xp - eps)) / (q.0 - tp);
                if best.is_none_or(|b| slope < b.2) {
                    best = Some((tp, xp - eps, slope));
                }
            }
            self.u = best.expect("piece has points");
        }
        self.pts.push((t, x));
        true
    }
}

/// Minimum number of contiguous pieces needed to approximate `signal`
/// under the per-dimension bounds `eps`, each piece representable by one
/// line within `εᵢ` of all its points in every dimension.
///
/// Runs the greedy maximal-piece construction; see the module docs for
/// why that is optimal. Cost is O(n · m) in the worst case (`m` = piece
/// length) — an oracle for tests and experiments, not a streaming filter.
pub fn min_segments(signal: &Signal, eps: &[f64]) -> Result<usize, FilterError> {
    validate_epsilons(eps)?;
    if eps.len() != signal.dims() {
        return Err(FilterError::DimensionMismatch { expected: signal.dims(), got: eps.len() });
    }
    let n = signal.len();
    if n == 0 {
        return Ok(0);
    }
    let d = signal.dims();
    let mut pieces = 0usize;
    let mut j = 0usize;
    while j < n {
        pieces += 1;
        if j + 1 >= n {
            break; // final singleton piece
        }
        let (t0, x0) = signal.sample(j);
        let (t1, x1) = signal.sample(j + 1);
        let mut envs: Vec<EnvelopeState> =
            (0..d).map(|i| EnvelopeState::new((t0, x0[i]), (t1, x1[i]), eps[i])).collect();
        let mut k = j + 2;
        while k < n {
            let (t, x) = signal.sample(k);
            // A piece extends only if every dimension accepts; probe
            // without mutating, then commit.
            let ok = envs.iter().zip(x.iter()).zip(eps.iter()).all(|((env, &v), &e)| {
                v <= EnvelopeState::eval(env.u, t) + e && v >= EnvelopeState::eval(env.l, t) - e
            });
            if !ok {
                break;
            }
            for (i, env) in envs.iter_mut().enumerate() {
                let extended = env.try_extend(t, x[i], eps[i]);
                debug_assert!(extended, "probe and extend disagree");
            }
            k += 1;
        }
        j = k;
    }
    Ok(pieces)
}

/// Lower bound on the recordings *any* ε-bounded piece-wise linear
/// approximation of `signal` must make: `K + 1` where `K` is
/// [`min_segments`] (every piece needs two endpoints; adjacent pieces can
/// share at most one).
pub fn recording_lower_bound(signal: &Signal, eps: &[f64]) -> Result<u64, FilterError> {
    let k = min_segments(signal, eps)?;
    Ok(match k {
        0 => 0,
        1 if signal.len() == 1 => 1,
        k => k as u64 + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{run_filter, SlideFilter};

    fn walk(n: usize, seed: u64, scale: f64) -> Signal {
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        Signal::from_values(
            &(0..n)
                .map(|_| {
                    x += rnd() * scale;
                    x
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn straight_line_needs_one_piece() {
        let s = Signal::from_values(&(0..50).map(|i| 2.0 * i as f64).collect::<Vec<_>>());
        assert_eq!(min_segments(&s, &[0.1]).unwrap(), 1);
        assert_eq!(recording_lower_bound(&s, &[0.1]).unwrap(), 2);
    }

    #[test]
    fn each_jump_forces_a_piece() {
        // Three plateaus at 0, 100, 200 with ε = 1: three pieces.
        let mut vals = vec![0.0; 10];
        vals.extend(vec![100.0; 10]);
        vals.extend(vec![200.0; 10]);
        let s = Signal::from_values(&vals);
        assert_eq!(min_segments(&s, &[1.0]).unwrap(), 3);
    }

    #[test]
    fn empty_and_tiny_signals() {
        let s = Signal::new(1);
        assert_eq!(min_segments(&s, &[1.0]).unwrap(), 0);
        assert_eq!(recording_lower_bound(&s, &[1.0]).unwrap(), 0);
        let s = Signal::from_values(&[5.0]);
        assert_eq!(min_segments(&s, &[1.0]).unwrap(), 1);
        assert_eq!(recording_lower_bound(&s, &[1.0]).unwrap(), 1);
        let s = Signal::from_values(&[5.0, 9.0]);
        assert_eq!(min_segments(&s, &[0.1]).unwrap(), 1);
    }

    #[test]
    fn slide_filter_is_segment_count_optimal() {
        // The slide filter's greedy intervals are maximal, so its segment
        // count must equal the oracle's minimum.
        for seed in [1u64, 2, 3, 4, 5] {
            let s = walk(600, seed, 1.5);
            for eps in [0.3, 1.0, 4.0] {
                let optimal = min_segments(&s, &[eps]).unwrap();
                let mut f = SlideFilter::new(&[eps]).unwrap();
                let segs = run_filter(&mut f, &s).unwrap();
                assert_eq!(
                    segs.len(),
                    optimal,
                    "seed {seed}, ε {eps}: slide {} vs optimal {optimal}",
                    segs.len()
                );
            }
        }
    }

    #[test]
    fn slide_recordings_respect_lower_bound() {
        for seed in [7u64, 8, 9] {
            let s = walk(500, seed, 2.0);
            let eps = 0.8;
            let bound = recording_lower_bound(&s, &[eps]).unwrap();
            let mut f = SlideFilter::new(&[eps]).unwrap();
            let segs = run_filter(&mut f, &s).unwrap();
            let recs: u64 = segs.iter().map(|sg| sg.new_recordings as u64).sum();
            assert!(recs >= bound, "recordings {recs} below lower bound {bound}");
            // Slide never spends more than 2 per piece.
            assert!(recs <= 2 * segs.len() as u64);
        }
    }

    #[test]
    fn multi_dim_pieces_break_on_any_dimension() {
        let mut s = Signal::new(2);
        for j in 0..20 {
            let t = j as f64;
            let x1 = if j < 10 { 0.0 } else { 50.0 };
            s.push(t, &[t, x1]).unwrap();
        }
        assert_eq!(min_segments(&s, &[0.5, 0.5]).unwrap(), 2);
    }

    #[test]
    fn rejects_bad_epsilons() {
        let s = Signal::from_values(&[1.0, 2.0]);
        assert!(min_segments(&s, &[]).is_err());
        assert!(min_segments(&s, &[0.0]).is_err());
        assert!(min_segments(&s, &[1.0, 1.0]).is_err());
    }
}
