//! Receiver-side reconstruction: turn a segment stream back into a
//! queryable function.
//!
//! The receiver of the paper's monitoring pipeline sees only recordings;
//! [`Polyline`] is the function those recordings define. Evaluation inside
//! a segment interpolates linearly; evaluation in a gap between
//! disconnected segments is governed by [`GapPolicy`]. Gaps never contain
//! original sample times (segments jointly cover every sample — an
//! invariant the test suites check), so the policy only matters when
//! resampling at arbitrary times.

use crate::sample::Signal;
use crate::segment::Segment;

/// How [`Polyline::eval`] treats times falling between two disconnected
/// segments (or outside the covered span).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GapPolicy {
    /// Return `None`.
    #[default]
    Strict,
    /// Hold the previous segment's end value (a receiver that keeps
    /// displaying the last known value).
    Hold,
    /// Interpolate linearly between the surrounding segment endpoints.
    Interpolate,
}

/// An immutable piece-wise linear function assembled from segments.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    segments: Vec<Segment>,
    dims: usize,
}

impl Polyline {
    /// Builds a polyline from time-ordered segments.
    ///
    /// # Panics
    ///
    /// Panics if segments overlap, run backwards in time, or disagree on
    /// dimensionality — filters never produce such streams.
    pub fn new(segments: Vec<Segment>) -> Self {
        let dims = segments.first().map_or(1, |s| s.dims());
        for s in &segments {
            assert_eq!(s.dims(), dims, "segments must agree on dimensionality");
            assert!(s.t_end >= s.t_start, "segment runs backwards");
        }
        for pair in segments.windows(2) {
            assert!(
                pair[1].t_start >= pair[0].t_end - 1e-9,
                "segments overlap: {} then {}",
                pair[0].t_end,
                pair[1].t_start
            );
        }
        Self { segments, dims }
    }

    /// The underlying segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total recordings the segments cost (the paper's §5.1 denominator).
    pub fn recordings(&self) -> u64 {
        self.segments.iter().map(|s| s.new_recordings as u64).sum()
    }

    /// Covered time span `(first start, last end)`, or `None` when empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        Some((self.segments.first()?.t_start, self.segments.last()?.t_end))
    }

    /// Index of the segment covering `t`, preferring the earliest cover.
    fn find(&self, t: f64) -> Result<usize, usize> {
        // Binary search on start times, then check coverage.
        let idx = self.segments.partition_point(|s| s.t_start <= t);
        if idx == 0 {
            return Err(0);
        }
        let cand = idx - 1;
        if self.segments[cand].covers(t) {
            Ok(cand)
        } else if idx < self.segments.len() && self.segments[idx].covers(t) {
            Ok(idx)
        } else {
            Err(idx)
        }
    }

    /// Value of dimension `dim` at time `t` under `policy`.
    pub fn eval(&self, t: f64, dim: usize, policy: GapPolicy) -> Option<f64> {
        assert!(dim < self.dims);
        match self.find(t) {
            Ok(i) => Some(self.segments[i].eval(t, dim)),
            Err(after) => match policy {
                GapPolicy::Strict => None,
                GapPolicy::Hold => {
                    if after == 0 {
                        None
                    } else {
                        Some(self.segments[after - 1].x_end[dim])
                    }
                }
                GapPolicy::Interpolate => {
                    if after == 0 || after >= self.segments.len() {
                        None
                    } else {
                        let a = &self.segments[after - 1];
                        let b = &self.segments[after];
                        let frac = (t - a.t_end) / (b.t_start - a.t_end);
                        Some(a.x_end[dim] + frac * (b.x_start[dim] - a.x_end[dim]))
                    }
                }
            },
        }
    }

    /// Resamples the polyline at the given times into a [`Signal`]
    /// (receiver-side replay of the original sampling grid).
    ///
    /// Returns `None` if any time is uncovered under the policy.
    pub fn resample(&self, times: &[f64], policy: GapPolicy) -> Option<Signal> {
        let mut out = Signal::with_capacity(self.dims, times.len());
        let mut buf = vec![0.0; self.dims];
        for &t in times {
            for (dim, slot) in buf.iter_mut().enumerate() {
                *slot = self.eval(t, dim, policy)?;
            }
            out.push(t, &buf).ok()?;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, x0: f64, t1: f64, x1: f64, connected: bool) -> Segment {
        Segment {
            t_start: t0,
            x_start: [x0].into(),
            t_end: t1,
            x_end: [x1].into(),
            connected,
            n_points: 2,
            new_recordings: if connected { 1 } else { 2 },
        }
    }

    fn sample_polyline() -> Polyline {
        Polyline::new(vec![
            seg(0.0, 0.0, 2.0, 2.0, false),
            // gap (2, 3)
            seg(3.0, 5.0, 5.0, 5.0, false),
            seg(5.0, 5.0, 6.0, 4.0, true),
        ])
    }

    #[test]
    fn eval_inside_segments() {
        let p = sample_polyline();
        assert_eq!(p.eval(1.0, 0, GapPolicy::Strict), Some(1.0));
        assert_eq!(p.eval(4.0, 0, GapPolicy::Strict), Some(5.0));
        assert_eq!(p.eval(5.5, 0, GapPolicy::Strict), Some(4.5));
    }

    #[test]
    fn boundary_times_resolve() {
        let p = sample_polyline();
        assert_eq!(p.eval(2.0, 0, GapPolicy::Strict), Some(2.0));
        assert_eq!(p.eval(3.0, 0, GapPolicy::Strict), Some(5.0));
        assert_eq!(p.eval(5.0, 0, GapPolicy::Strict), Some(5.0));
        assert_eq!(p.eval(0.0, 0, GapPolicy::Strict), Some(0.0));
        assert_eq!(p.eval(6.0, 0, GapPolicy::Strict), Some(4.0));
    }

    #[test]
    fn gap_policies() {
        let p = sample_polyline();
        assert_eq!(p.eval(2.5, 0, GapPolicy::Strict), None);
        assert_eq!(p.eval(2.5, 0, GapPolicy::Hold), Some(2.0));
        assert_eq!(p.eval(2.5, 0, GapPolicy::Interpolate), Some(3.5));
    }

    #[test]
    fn outside_span() {
        let p = sample_polyline();
        assert_eq!(p.eval(-1.0, 0, GapPolicy::Hold), None);
        assert_eq!(p.eval(7.0, 0, GapPolicy::Strict), None);
        assert_eq!(p.eval(7.0, 0, GapPolicy::Hold), Some(4.0));
    }

    #[test]
    fn recordings_accounting() {
        let p = sample_polyline();
        assert_eq!(p.recordings(), 2 + 2 + 1);
    }

    #[test]
    fn resample_round_trip() {
        let p = sample_polyline();
        let s = p.resample(&[0.0, 1.0, 4.0, 6.0], GapPolicy::Strict).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.value(1, 0), 1.0);
        assert!(p.resample(&[2.5], GapPolicy::Strict).is_none());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_segments_rejected() {
        Polyline::new(vec![seg(0.0, 0.0, 2.0, 2.0, false), seg(1.0, 0.0, 3.0, 0.0, false)]);
    }

    #[test]
    fn empty_polyline() {
        let p = Polyline::new(vec![]);
        assert_eq!(p.span(), None);
        assert_eq!(p.eval(0.0, 0, GapPolicy::Hold), None);
        assert_eq!(p.recordings(), 0);
    }
}
