//! Columnar storage for multi-dimensional signals.
//!
//! A signal is the paper's on-line sequence `(t_j, X_j)`, `X_j ∈ ℝᵈ`
//! (§2.1). Storage is columnar-by-row: one `times` vector and one flat
//! `values` vector holding `d` contiguous values per sample, so iterating
//! samples hands the filters a `(f64, &[f64])` pair without per-point
//! allocation.

use crate::error::FilterError;

/// A multi-dimensional signal stored in memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Signal {
    dims: usize,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Signal {
    /// Creates an empty signal with `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`; a signal must carry at least one value per
    /// sample.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a signal needs at least one dimension");
        Self { dims, times: Vec::new(), values: Vec::new() }
    }

    /// Creates an empty signal with capacity reserved for `n` samples.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        assert!(dims > 0, "a signal needs at least one dimension");
        Self { dims, times: Vec::with_capacity(n), values: Vec::with_capacity(n * dims) }
    }

    /// Builds a 1-D signal from `(t, x)` pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let mut s = Self::with_capacity(1, pairs.len());
        for &(t, x) in pairs {
            s.push(t, &[x]).expect("from_pairs input must be monotone and finite");
        }
        s
    }

    /// Builds a 1-D signal with unit-spaced timestamps `0, 1, 2, …` from
    /// raw values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = Self::with_capacity(1, values.len());
        for (j, &x) in values.iter().enumerate() {
            s.push(j as f64, &[x]).expect("from_values input must be finite");
        }
        s
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of samples `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the signal holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends a sample, validating monotonicity and finiteness — the same
    /// checks the filters make, so a [`Signal`] is always a valid filter
    /// input.
    pub fn push(&mut self, t: f64, x: &[f64]) -> Result<(), FilterError> {
        if x.len() != self.dims {
            return Err(FilterError::DimensionMismatch { expected: self.dims, got: x.len() });
        }
        if !t.is_finite() {
            return Err(FilterError::NonFiniteTime { offending: t });
        }
        if self.times.last().is_some_and(|&p| t <= p) {
            return Err(FilterError::NonMonotonicTime {
                previous: self.times.last().copied().unwrap_or(f64::NEG_INFINITY),
                offending: t,
            });
        }
        for (dim, &v) in x.iter().enumerate() {
            if !v.is_finite() {
                return Err(FilterError::NonFiniteValue { dim, value: v });
            }
        }
        self.times.push(t);
        self.values.extend_from_slice(x);
        Ok(())
    }

    /// The sample at index `j` as `(t, values)`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    #[inline]
    pub fn sample(&self, j: usize) -> (f64, &[f64]) {
        (self.times[j], &self.values[j * self.dims..(j + 1) * self.dims])
    }

    /// Iterator over samples as `(t, values)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> + '_ {
        self.times.iter().copied().zip(self.values.chunks_exact(self.dims))
    }

    /// All timestamps.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The value of dimension `dim` at sample `j`.
    #[inline]
    pub fn value(&self, j: usize, dim: usize) -> f64 {
        self.values[j * self.dims + dim]
    }

    /// Per-dimension value range `(min, max)`, or `None` for an empty
    /// signal. The paper expresses precision widths as a percentage of
    /// `max − min` (§5.1).
    pub fn range(&self, dim: usize) -> Option<(f64, f64)> {
        assert!(dim < self.dims);
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for j in 0..self.len() {
            let v = self.value(j, dim);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Precision widths `εᵢ` equal to `percent`% of each dimension's value
    /// range — the normalization used throughout the paper's §5.
    ///
    /// Dimensions with zero range (a constant signal) fall back to an `ε`
    /// of `percent`% of `max(|value|, 1)`, so the result is always a valid
    /// filter precision.
    pub fn epsilons_from_range_percent(&self, percent: f64) -> Vec<f64> {
        (0..self.dims)
            .map(|dim| {
                let (lo, hi) = self.range(dim).unwrap_or((0.0, 1.0));
                let span = hi - lo;
                if span > 0.0 {
                    span * percent / 100.0
                } else {
                    lo.abs().max(1.0) * percent / 100.0
                }
            })
            .collect()
    }

    /// Extracts a single dimension as a fresh 1-D signal (used by the
    /// independent-vs-joint compression experiment, §5.4).
    pub fn project(&self, dim: usize) -> Signal {
        assert!(dim < self.dims);
        let mut out = Signal::with_capacity(1, self.len());
        for j in 0..self.len() {
            out.push(self.times[j], &[self.value(j, dim)])
                .expect("projection of a valid signal is valid");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = Signal::new(2);
        s.push(0.0, &[1.0, 2.0]).unwrap();
        s.push(1.0, &[3.0, 4.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(1), (1.0, &[3.0, 4.0][..]));
        assert_eq!(s.value(0, 1), 2.0);
    }

    #[test]
    fn rejects_non_monotone_time() {
        let mut s = Signal::new(1);
        s.push(5.0, &[0.0]).unwrap();
        assert!(matches!(s.push(5.0, &[1.0]), Err(FilterError::NonMonotonicTime { .. })));
        assert!(matches!(s.push(4.0, &[1.0]), Err(FilterError::NonMonotonicTime { .. })));
    }

    #[test]
    fn rejects_wrong_dims_and_non_finite() {
        let mut s = Signal::new(2);
        assert!(matches!(
            s.push(0.0, &[1.0]),
            Err(FilterError::DimensionMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            s.push(0.0, &[1.0, f64::NAN]),
            Err(FilterError::NonFiniteValue { dim: 1, .. })
        ));
        assert!(matches!(
            s.push(f64::INFINITY, &[1.0, 1.0]),
            Err(FilterError::NonFiniteTime { .. })
        ));
        assert!(matches!(s.push(f64::NAN, &[1.0, 1.0]), Err(FilterError::NonFiniteTime { .. })));
    }

    #[test]
    fn iter_matches_sample() {
        let s = Signal::from_pairs(&[(0.0, 1.0), (1.0, 2.0), (2.5, -1.0)]);
        let collected: Vec<(f64, f64)> = s.iter().map(|(t, x)| (t, x[0])).collect();
        assert_eq!(collected, vec![(0.0, 1.0), (1.0, 2.0), (2.5, -1.0)]);
    }

    #[test]
    fn range_and_epsilons() {
        let s = Signal::from_values(&[2.0, 6.0, 4.0]);
        assert_eq!(s.range(0), Some((2.0, 6.0)));
        let eps = s.epsilons_from_range_percent(10.0);
        assert!((eps[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_epsilon_fallback() {
        let s = Signal::from_values(&[5.0, 5.0, 5.0]);
        let eps = s.epsilons_from_range_percent(10.0);
        assert!((eps[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn project_extracts_dimension() {
        let mut s = Signal::new(3);
        s.push(0.0, &[1.0, 10.0, 100.0]).unwrap();
        s.push(1.0, &[2.0, 20.0, 200.0]).unwrap();
        let p = s.project(1);
        assert_eq!(p.dims(), 1);
        assert_eq!(p.sample(1), (1.0, &[20.0][..]));
    }

    #[test]
    fn from_values_uses_unit_spacing() {
        let s = Signal::from_values(&[9.0, 8.0]);
        assert_eq!(s.times(), &[0.0, 1.0]);
    }
}
