//! Output model: segments, recordings accounting, and the sink trait.
//!
//! Filters turn a stream of samples into a stream of [`Segment`]s. A
//! segment is one straight piece `gᵏ` of the approximating function
//! together with the bookkeeping the paper's §5.1 compression-ratio metric
//! needs: how many *recordings* materializing this segment cost. The paper
//! counts one recording per connected-segment endpoint, two for a
//! disconnected segment, and one per cache-filter (piece-wise constant)
//! segment; filters set [`Segment::new_recordings`] accordingly so the
//! metric never has to guess.

use crate::dimvec::DimVec;
use crate::error::FilterError;

/// One line segment of the piece-wise linear (or constant) approximation.
///
/// The per-dimension payloads are [`DimVec`]s, so constructing and
/// cloning a segment is allocation-free for `d ≤`
/// [`INLINE_DIMS`](crate::INLINE_DIMS) — the filters' hot emission path
/// relies on this.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Start time of the segment.
    pub t_start: f64,
    /// Values at the start time, one per dimension.
    pub x_start: DimVec<f64>,
    /// End time of the segment (`≥ t_start`; equal for a degenerate
    /// single-point segment).
    pub t_end: f64,
    /// Values at the end time, one per dimension.
    pub x_end: DimVec<f64>,
    /// Whether the start point coincides with the previous segment's end
    /// point (a *connected* segment, needing no start recording of its
    /// own).
    pub connected: bool,
    /// Number of data points this segment approximates (the paper's `mₖ`).
    pub n_points: u32,
    /// Recordings that materializing this segment adds to the output: 1
    /// for a connected or piece-wise-constant segment, 2 for a
    /// disconnected one (including the very first segment of a
    /// piece-wise-linear stream).
    pub new_recordings: u8,
}

impl Segment {
    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.x_start.len()
    }

    /// Value of dimension `dim` at time `t`, linearly interpolated.
    ///
    /// `t` is not clamped to `[t_start, t_end]`; callers that need strict
    /// in-segment evaluation should check [`Self::covers`] first.
    #[inline]
    pub fn eval(&self, t: f64, dim: usize) -> f64 {
        let dt = self.t_end - self.t_start;
        if dt == 0.0 {
            return self.x_start[dim];
        }
        let frac = (t - self.t_start) / dt;
        self.x_start[dim] + frac * (self.x_end[dim] - self.x_start[dim])
    }

    /// Whether `t` lies within the segment's closed time span.
    #[inline]
    pub fn covers(&self, t: f64) -> bool {
        t >= self.t_start && t <= self.t_end
    }

    /// Slope `dx/dt` of dimension `dim` (0 for a degenerate segment).
    #[inline]
    pub fn slope(&self, dim: usize) -> f64 {
        let dt = self.t_end - self.t_start;
        if dt == 0.0 {
            0.0
        } else {
            (self.x_end[dim] - self.x_start[dim]) / dt
        }
    }
}

/// A provisional receiver update emitted when a filtering interval reaches
/// `m_max_lag` points (paper §3.3): the filter commits to one line of its
/// candidate set and tells the receiver about it, then degrades to a plain
/// linear filter until the interval ends.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProvisionalUpdate {
    /// Anchor time of the committed line.
    pub t_anchor: f64,
    /// Values of the committed line at the anchor time.
    pub x_anchor: DimVec<f64>,
    /// Slope per dimension of the committed line.
    pub slopes: DimVec<f64>,
    /// Timestamp of the newest point covered when the update was sent.
    pub covers_through: f64,
}

impl ProvisionalUpdate {
    /// Value of the committed line at time `t` for dimension `dim`.
    #[inline]
    pub fn eval(&self, t: f64, dim: usize) -> f64 {
        self.x_anchor[dim] + self.slopes[dim] * (t - self.t_anchor)
    }
}

/// Receives filter output.
///
/// `Vec<Segment>` implements this (dropping provisional updates), which is
/// all most callers need; the transport layer implements it to forward
/// both event kinds to a receiver.
pub trait SegmentSink {
    /// Called for every finalized segment, oldest first.
    fn segment(&mut self, seg: Segment);

    /// Called when a lag-bounded filter commits to a line mid-interval.
    /// Default: ignored.
    fn provisional(&mut self, update: ProvisionalUpdate) {
        let _ = update;
    }
}

impl SegmentSink for Vec<Segment> {
    fn segment(&mut self, seg: Segment) {
        self.push(seg);
    }
}

/// Sink adapter that counts provisional updates while collecting segments;
/// useful in tests and metrics.
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// Finalized segments, oldest first.
    pub segments: Vec<Segment>,
    /// Provisional updates, oldest first.
    pub provisionals: Vec<ProvisionalUpdate>,
}

impl SegmentSink for CollectingSink {
    fn segment(&mut self, seg: Segment) {
        self.segments.push(seg);
    }
    fn provisional(&mut self, update: ProvisionalUpdate) {
        self.provisionals.push(update);
    }
}

/// Validates a precision-width vector: finite and strictly positive in
/// every dimension, at least one dimension.
pub fn validate_epsilons(eps: &[f64]) -> Result<(), FilterError> {
    if eps.is_empty() {
        return Err(FilterError::ZeroDimensions);
    }
    for (dim, &e) in eps.iter().enumerate() {
        if !(e.is_finite() && e > 0.0) {
            return Err(FilterError::InvalidEpsilon { dim, value: e });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, x0: f64, t1: f64, x1: f64) -> Segment {
        Segment {
            t_start: t0,
            x_start: [x0].into(),
            t_end: t1,
            x_end: [x1].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    #[test]
    fn eval_interpolates() {
        let s = seg(0.0, 0.0, 2.0, 4.0);
        assert_eq!(s.eval(1.0, 0), 2.0);
        assert_eq!(s.eval(0.0, 0), 0.0);
        assert_eq!(s.eval(2.0, 0), 4.0);
        assert_eq!(s.slope(0), 2.0);
    }

    #[test]
    fn degenerate_segment_is_constant() {
        let s = seg(1.0, 3.0, 1.0, 3.0);
        assert_eq!(s.eval(1.0, 0), 3.0);
        assert_eq!(s.slope(0), 0.0);
    }

    #[test]
    fn covers_is_closed() {
        let s = seg(1.0, 0.0, 2.0, 0.0);
        assert!(s.covers(1.0));
        assert!(s.covers(2.0));
        assert!(!s.covers(0.999));
        assert!(!s.covers(2.001));
    }

    #[test]
    fn vec_sink_collects_segments() {
        let mut v: Vec<Segment> = Vec::new();
        v.segment(seg(0.0, 0.0, 1.0, 1.0));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn collecting_sink_sees_provisionals() {
        let mut sink = CollectingSink::default();
        sink.provisional(ProvisionalUpdate {
            t_anchor: 0.0,
            x_anchor: [1.0].into(),
            slopes: [0.5].into(),
            covers_through: 3.0,
        });
        assert_eq!(sink.provisionals.len(), 1);
        assert_eq!(sink.provisionals[0].eval(2.0, 0), 2.0);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn output_types_implement_serde() {
        fn assert_impl<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_impl::<Segment>();
        assert_impl::<ProvisionalUpdate>();
    }

    #[test]
    fn epsilon_validation() {
        assert!(validate_epsilons(&[0.1, 2.0]).is_ok());
        assert!(matches!(validate_epsilons(&[]), Err(FilterError::ZeroDimensions)));
        assert!(matches!(
            validate_epsilons(&[0.1, 0.0]),
            Err(FilterError::InvalidEpsilon { dim: 1, .. })
        ));
        assert!(matches!(
            validate_epsilons(&[f64::NAN]),
            Err(FilterError::InvalidEpsilon { dim: 0, .. })
        ));
    }
}
