//! Iterator ergonomics: compress any sample iterator lazily.
//!
//! The filters' push-based API is the primitive; this module adapts it to
//! Rust's iterator idiom so a pipeline reads naturally:
//!
//! ```
//! use pla_core::filters::SwingFilter;
//! use pla_core::stream::FilterIteratorExt;
//!
//! let samples = (0..100).map(|j| (j as f64, 0.5 * j as f64));
//! let filter = SwingFilter::new(&[0.1]).unwrap();
//! let segments: Vec<_> = samples.pla_segments(filter).map(|r| r.unwrap()).collect();
//! assert_eq!(segments.len(), 1); // a straight line is one segment
//! ```

use std::collections::VecDeque;

use crate::error::FilterError;
use crate::filters::StreamFilter;
use crate::segment::Segment;

/// Lazily compresses an underlying sample iterator.
///
/// Yields `Result<Segment, FilterError>`; after the first error the
/// iterator fuses (returns `None` forever), since filter state after a
/// rejected sample should be inspected, not silently continued.
pub struct SegmentIter<I, F> {
    samples: I,
    filter: F,
    ready: VecDeque<Segment>,
    finished: bool,
    errored: bool,
}

impl<I, F> SegmentIter<I, F> {
    /// The wrapped filter (for inspecting state mid-stream).
    pub fn filter(&self) -> &F {
        &self.filter
    }
}

/// One multi-dimensional sample: timestamp plus values.
pub trait Sample {
    /// Value slice of this sample.
    fn values(&self) -> &[f64];
    /// Timestamp of this sample.
    fn time(&self) -> f64;
}

impl Sample for (f64, f64) {
    fn values(&self) -> &[f64] {
        std::slice::from_ref(&self.1)
    }
    fn time(&self) -> f64 {
        self.0
    }
}

impl Sample for (f64, Vec<f64>) {
    fn values(&self) -> &[f64] {
        &self.1
    }
    fn time(&self) -> f64 {
        self.0
    }
}

impl Sample for (f64, &[f64]) {
    fn values(&self) -> &[f64] {
        self.1
    }
    fn time(&self) -> f64 {
        self.0
    }
}

impl<S: Sample> Sample for &S {
    fn values(&self) -> &[f64] {
        (**self).values()
    }
    fn time(&self) -> f64 {
        (**self).time()
    }
}

impl<I, F, S> Iterator for SegmentIter<I, F>
where
    S: Sample,
    I: Iterator<Item = S>,
    F: StreamFilter,
{
    type Item = Result<Segment, FilterError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(seg) = self.ready.pop_front() {
                return Some(Ok(seg));
            }
            if self.errored || (self.finished && self.ready.is_empty()) {
                return None;
            }
            match self.samples.next() {
                Some(sample) => {
                    let mut sink: Vec<Segment> = Vec::new();
                    if let Err(e) = self.filter.push(sample.time(), sample.values(), &mut sink) {
                        self.errored = true;
                        return Some(Err(e));
                    }
                    self.ready.extend(sink);
                }
                None => {
                    self.finished = true;
                    let mut sink: Vec<Segment> = Vec::new();
                    if let Err(e) = self.filter.finish(&mut sink) {
                        self.errored = true;
                        return Some(Err(e));
                    }
                    self.ready.extend(sink);
                }
            }
        }
    }
}

/// Extension trait adding `.pla_segments(filter)` to sample iterators.
pub trait FilterIteratorExt: Iterator + Sized {
    /// Compresses this iterator's samples through `filter`, yielding
    /// segments lazily.
    fn pla_segments<F>(self, filter: F) -> SegmentIter<Self, F>
    where
        Self::Item: Sample,
        F: StreamFilter,
    {
        SegmentIter {
            samples: self,
            filter,
            ready: VecDeque::new(),
            finished: false,
            errored: false,
        }
    }
}

impl<I: Iterator> FilterIteratorExt for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{SlideFilter, SwingFilter};

    #[test]
    fn lazy_compression_of_a_ramp() {
        let samples = (0..50).map(|j| (j as f64, 2.0 * j as f64));
        let iter = samples.pla_segments(SwingFilter::new(&[0.1]).unwrap());
        let segs: Result<Vec<_>, _> = iter.collect();
        let segs = segs.unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 50);
    }

    #[test]
    fn multi_dim_samples() {
        let samples = (0..30).map(|j| (j as f64, vec![j as f64, -(j as f64)]));
        let iter = samples.pla_segments(SlideFilter::new(&[0.1, 0.1]).unwrap());
        let segs: Result<Vec<_>, _> = iter.collect();
        assert_eq!(segs.unwrap().len(), 1);
    }

    #[test]
    fn segments_stream_out_before_exhaustion() {
        // A jumpy signal emits segments mid-stream; the iterator must
        // yield them without waiting for the end.
        let samples = (0..100).map(|j| (j as f64, if j < 50 { 0.0 } else { 100.0 }));
        let mut iter = samples.pla_segments(SwingFilter::new(&[0.5]).unwrap());
        let first = iter.next().unwrap().unwrap();
        assert!(first.t_end <= 50.0);
        // Remaining segments still arrive.
        let rest: Result<Vec<_>, _> = iter.collect();
        assert!(!rest.unwrap().is_empty());
    }

    #[test]
    fn error_fuses_the_iterator() {
        let samples = vec![(0.0, 1.0), (1.0, 2.0), (1.0, 3.0), (2.0, 4.0)];
        let mut iter = samples.into_iter().pla_segments(SwingFilter::new(&[0.5]).unwrap());
        let mut saw_error = false;
        for item in iter.by_ref() {
            if item.is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "duplicate timestamp must surface");
        assert!(iter.next().is_none(), "iterator must fuse after error");
    }

    #[test]
    fn borrowed_slice_samples_need_no_cloning() {
        // `Signal::iter` yields `(f64, &[f64])`; the iterator adapter must
        // consume it directly, without collecting into `Vec<f64>` pairs.
        let signal = crate::Signal::from_values(&(0..40).map(|j| j as f64).collect::<Vec<_>>());
        let iter = signal.iter().pla_segments(SwingFilter::new(&[0.1]).unwrap());
        let segs: Result<Vec<_>, _> = iter.collect();
        assert_eq!(segs.unwrap().len(), 1);
    }

    #[test]
    fn samples_by_reference() {
        // `&S` forwards to `S`, so iterating a borrowed collection works.
        let owned: Vec<(f64, f64)> = (0..30).map(|j| (j as f64, 3.0 * j as f64)).collect();
        let iter = owned.iter().pla_segments(SlideFilter::new(&[0.1]).unwrap());
        let segs: Result<Vec<_>, _> = iter.collect();
        assert_eq!(segs.unwrap().len(), 1);
        assert_eq!(owned.len(), 30, "collection is still owned by the caller");
    }

    #[test]
    fn empty_input_yields_nothing() {
        let samples = std::iter::empty::<(f64, f64)>();
        let mut iter = samples.pla_segments(SlideFilter::new(&[1.0]).unwrap());
        assert!(iter.next().is_none());
    }
}
