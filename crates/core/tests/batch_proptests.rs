//! Property: `push_batch` is segment-for-segment identical to the
//! equivalent sequence of `push` calls — for every filter, every signal,
//! and every way of chopping the signal into batches. The ingest layer
//! routes all traffic through `push_batch`, so this identity is what makes
//! its output trustworthy.

use proptest::prelude::*;

use pla_core::filters::{
    CacheFilter, FilterKind, FilterSpec, KalmanFilter, LinearFilter, SlideFilter, StreamFilter,
    SwingFilter,
};
use pla_core::kern::{Dispatch, Kernel};
use pla_core::{CollectingSink, FilterError, Signal};

/// A 1-D signal with walks, plateaus, and jumps (the same family the core
/// guarantee proptests use), plus a batch-split plan.
fn signal_and_splits() -> impl Strategy<Value = (Signal, Vec<usize>)> {
    (prop::collection::vec((-10.0f64..10.0, 0u8..4), 1..250), -100.0f64..100.0, any::<u64>())
        .prop_map(|(steps, start, split_seed)| {
            let mut x = start;
            let mut values = Vec::with_capacity(steps.len());
            for (step, kind) in steps {
                match kind {
                    0 => x += step,
                    1 => {}
                    2 => x += step * 50.0,
                    _ => x += step * 0.01,
                }
                values.push(x);
            }
            let signal = Signal::from_values(&values);
            // Deterministic irregular batch sizes derived from the seed:
            // exercises empty, single-sample, and large batches.
            let mut sizes = Vec::new();
            let mut state = split_seed | 1;
            let mut remaining = signal.len();
            while remaining > 0 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let take = ((state >> 33) as usize % 17).min(remaining);
                sizes.push(take);
                remaining -= take.max(1).min(remaining);
            }
            (signal, sizes)
        })
}

fn run_sequential(spec: &FilterSpec, signal: &Signal) -> CollectingSink {
    let mut f = spec.build().unwrap();
    let mut sink = CollectingSink::default();
    for (t, x) in signal.iter() {
        f.push(t, x, &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink
}

fn run_batched(spec: &FilterSpec, signal: &Signal, sizes: &[usize]) -> CollectingSink {
    let mut f = spec.build().unwrap();
    let mut sink = CollectingSink::default();
    let samples: Vec<(f64, &[f64])> = signal.iter().collect();
    let mut offset = 0;
    for &take in sizes {
        let take = take.min(samples.len() - offset);
        let n = f.push_batch(&samples[offset..offset + take], &mut sink).unwrap();
        assert_eq!(n, take, "successful batch must absorb every sample");
        offset += take;
    }
    if offset < samples.len() {
        f.push_batch(&samples[offset..], &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink
}

fn specs_under_test(eps: f64) -> Vec<FilterSpec> {
    let mut specs: Vec<FilterSpec> =
        FilterKind::OVERHEAD_SET.iter().map(|&k| FilterSpec::new(k, &[eps])).collect();
    // Lag-bounded configurations exercise the freeze paths inside the
    // batch loops.
    specs.push(FilterSpec::new(FilterKind::Swing, &[eps]).with_max_lag(7));
    specs.push(FilterSpec::new(FilterKind::Slide, &[eps]).with_max_lag(7));
    specs
}

fn run_dyn(f: &mut dyn StreamFilter, signal: &Signal) -> CollectingSink {
    let mut sink = CollectingSink::default();
    for (t, x) in signal.iter() {
        f.push(t, x, &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink
}

// ----- kernel-dispatch byte-identity ---------------------------------------

/// A `dims`-dimensional signal from the same walk/plateau/jump family as
/// [`signal_and_splits`], with independent per-dimension steps.
fn multi_signal(dims: usize) -> impl Strategy<Value = Signal> {
    (
        prop::collection::vec((prop::collection::vec(-10.0f64..10.0, dims), 0u8..4), 1..200),
        prop::collection::vec(-100.0f64..100.0, dims),
    )
        .prop_map(move |(steps, start)| {
            let mut x = start;
            let mut signal = Signal::new(dims);
            for (j, (step, kind)) in steps.into_iter().enumerate() {
                for d in 0..dims {
                    match kind {
                        0 => x[d] += step[d],
                        1 => {}
                        2 => x[d] += step[d] * 50.0,
                        _ => x[d] += step[d] * 0.01,
                    }
                }
                signal.push(j as f64, &x).unwrap();
            }
            signal
        })
}

fn dims_and_signal() -> impl Strategy<Value = (usize, Signal)> {
    (0usize..4).prop_map(|i| [2usize, 3, 4, 8][i]).prop_flat_map(|d| (Just(d), multi_signal(d)))
}

/// The dispatch modes whose outputs must coincide. Invalid combinations
/// (e.g. `Lanes` at `d = 8`, SSE2 off x86_64) are snapped to the valid
/// automatic choice by the builders, so every entry is always runnable.
fn dispatch_set() -> Vec<Dispatch> {
    let mut set =
        vec![Dispatch::Generic, Dispatch::Lanes(Kernel::Scalar), Dispatch::Lanes(Kernel::detect())];
    if cfg!(target_arch = "x86_64") {
        set.push(Dispatch::Lanes(Kernel::Sse2));
    }
    set
}

/// All five kernel-wired filter families (plus the lag-bounded swing and
/// slide configurations, which exercise the provisional-update paths),
/// each pinned to `disp`.
fn kernel_filters(eps: &[f64], disp: Dispatch) -> Vec<(&'static str, Box<dyn StreamFilter>)> {
    vec![
        ("cache", Box::new(CacheFilter::new(eps).unwrap().force_dispatch(disp))),
        ("linear", Box::new(LinearFilter::new(eps).unwrap().force_dispatch(disp))),
        ("kalman", Box::new(KalmanFilter::new(eps).unwrap().force_dispatch(disp))),
        ("swing", Box::new(SwingFilter::builder(eps).force_dispatch(disp).build().unwrap())),
        ("slide", Box::new(SlideFilter::builder(eps).force_dispatch(disp).build().unwrap())),
        (
            "swing-lag",
            Box::new(SwingFilter::builder(eps).max_lag(7).force_dispatch(disp).build().unwrap()),
        ),
        (
            "slide-lag",
            Box::new(SlideFilter::builder(eps).max_lag(7).force_dispatch(disp).build().unwrap()),
        ),
    ]
}

/// The output streams as raw bit patterns: value equality is not enough
/// for the kernel contract (it would let `-0.0` vs `0.0` slip through),
/// so every f64 is compared through `to_bits`.
fn bits_of(sink: &CollectingSink) -> (Vec<u64>, Vec<u64>) {
    let mut segs = Vec::new();
    for s in &sink.segments {
        segs.push(s.t_start.to_bits());
        segs.extend(s.x_start.iter().map(|v| v.to_bits()));
        segs.push(s.t_end.to_bits());
        segs.extend(s.x_end.iter().map(|v| v.to_bits()));
        segs.push(u64::from(s.connected));
        segs.push(u64::from(s.n_points));
        segs.push(u64::from(s.new_recordings));
    }
    let mut provs = Vec::new();
    for p in &sink.provisionals {
        provs.push(p.t_anchor.to_bits());
        provs.extend(p.x_anchor.iter().map(|v| v.to_bits()));
        provs.extend(p.slopes.iter().map(|v| v.to_bits()));
        provs.push(p.covers_through.to_bits());
    }
    (segs, provs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn push_batch_matches_push_sequence((signal, sizes) in signal_and_splits(), eps in 0.05f64..20.0) {
        for spec in specs_under_test(eps) {
            let sequential = run_sequential(&spec, &signal);
            let batched = run_batched(&spec, &signal, &sizes);
            prop_assert_eq!(
                &sequential.segments, &batched.segments,
                "{:?}: segment streams diverged", spec.kind
            );
            prop_assert_eq!(
                &sequential.provisionals, &batched.provisionals,
                "{:?}: provisional streams diverged", spec.kind
            );
        }
    }

    #[test]
    fn one_whole_batch_matches_push_sequence((signal, _) in signal_and_splits(), eps in 0.05f64..20.0) {
        let samples: Vec<(f64, &[f64])> = signal.iter().collect();
        for spec in specs_under_test(eps) {
            let sequential = run_sequential(&spec, &signal);
            let mut f = spec.build().unwrap();
            let mut sink = CollectingSink::default();
            f.push_batch(&samples, &mut sink).unwrap();
            f.finish(&mut sink).unwrap();
            prop_assert_eq!(&sequential.segments, &sink.segments, "{:?}", spec.kind);
        }
    }

    /// PR-3 pin: the `d == 1` scalar fast path (dispatched once at
    /// construction) is byte-identical to the generic per-dimension path
    /// — same `Segment`s, same `ProvisionalUpdate`s, for plain and
    /// lag-bounded configurations.
    #[test]
    fn scalar_fast_path_is_byte_identical((signal, _) in signal_and_splits(), eps in 0.05f64..20.0) {
        for max_lag in [None, Some(7usize)] {
            let mut swing_fast = {
                let mut b = SwingFilter::builder(&[eps]);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let mut swing_generic = {
                let mut b = SwingFilter::builder(&[eps]).force_generic(true);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let fast = run_dyn(&mut swing_fast, &signal);
            let generic = run_dyn(&mut swing_generic, &signal);
            prop_assert_eq!(&fast.segments, &generic.segments, "swing lag={:?}", max_lag);
            prop_assert_eq!(&fast.provisionals, &generic.provisionals, "swing lag={:?}", max_lag);

            let mut slide_fast = {
                let mut b = SlideFilter::builder(&[eps]);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let mut slide_generic = {
                let mut b = SlideFilter::builder(&[eps]).force_generic(true);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let fast = run_dyn(&mut slide_fast, &signal);
            let generic = run_dyn(&mut slide_generic, &signal);
            prop_assert_eq!(&fast.segments, &generic.segments, "slide lag={:?}", max_lag);
            prop_assert_eq!(&fast.provisionals, &generic.provisionals, "slide lag={:?}", max_lag);
        }
    }

    /// PR-3 pin: the recycled scratch buffers (hulls, raw points,
    /// regression sums) carry no state across `finish` — a warm filter
    /// re-compressing a stream emits byte-identical output to a freshly
    /// built one.
    #[test]
    fn recycled_scratch_is_byte_identical((signal, _) in signal_and_splits(), eps in 0.05f64..20.0) {
        for spec in specs_under_test(eps) {
            let mut warm = spec.build().unwrap();
            let first = run_dyn(warm.as_mut(), &signal);
            let second = run_dyn(warm.as_mut(), &signal);
            let fresh = run_dyn(spec.build().unwrap().as_mut(), &signal);
            prop_assert_eq!(&first.segments, &second.segments, "{:?}: warm rerun diverged", spec.kind);
            prop_assert_eq!(&second.segments, &fresh.segments, "{:?}: warm vs fresh diverged", spec.kind);
            prop_assert_eq!(&first.provisionals, &second.provisionals, "{:?}", spec.kind);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel-layer pin: every dispatch mode — generic per-dimension
    /// loop, scalar lanes, SSE2, and the detected best SIMD backend —
    /// produces **bit-identical** `Segment` and `ProvisionalUpdate`
    /// streams for all five filters at d ∈ {2, 3, 4, 8}.
    #[test]
    fn kernel_dispatches_are_bit_identical(
        (dims, signal) in dims_and_signal(),
        eps in 0.05f64..20.0,
    ) {
        type NamedBits = (&'static str, (Vec<u64>, Vec<u64>));
        let epsv = vec![eps; dims];
        let dispatches = dispatch_set();
        let reference: Vec<NamedBits> = kernel_filters(&epsv, dispatches[0])
            .into_iter()
            .map(|(name, mut f)| (name, bits_of(&run_dyn(f.as_mut(), &signal))))
            .collect();
        for &disp in &dispatches[1..] {
            for ((name, want), (_, mut f)) in reference.iter().zip(kernel_filters(&epsv, disp)) {
                let got = bits_of(&run_dyn(f.as_mut(), &signal));
                prop_assert_eq!(
                    want, &got,
                    "{} at d={}: {:?} diverged from {:?}", name, dims, disp, dispatches[0]
                );
            }
        }
    }
}

/// NaN and ±inf inputs surface the same typed [`FilterError`] under
/// every dispatch mode (validation runs before any kernel touches the
/// data), and the filter stays usable afterwards.
#[test]
fn non_finite_inputs_error_identically_under_every_dispatch() {
    for dims in [1usize, 2, 3, 4, 8] {
        let eps = vec![0.5; dims];
        let good = vec![1.0; dims];
        for disp in dispatch_set() {
            for (name, mut f) in kernel_filters(&eps, disp) {
                let mut sink = CollectingSink::default();
                f.push(0.0, &good, &mut sink).unwrap();
                let bad_dim = dims - 1;
                for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                    let mut x = good.clone();
                    x[bad_dim] = bad;
                    let err = f.push(1.0, &x, &mut sink).unwrap_err();
                    assert!(
                        matches!(err, FilterError::NonFiniteValue { dim, .. } if dim == bad_dim),
                        "{name} d={dims} {disp:?}: got {err:?} for value {bad}"
                    );
                }
                let err = f.push(f64::NAN, &good, &mut sink).unwrap_err();
                assert!(
                    matches!(err, FilterError::NonFiniteTime { .. }),
                    "{name} d={dims} {disp:?}: got {err:?} for NaN time"
                );
                // The rejected samples must not have corrupted the state.
                f.push(1.0, &good, &mut sink).unwrap();
                f.finish(&mut sink).unwrap();
            }
        }
    }
}

#[test]
fn batch_error_leaves_the_valid_prefix_absorbed() {
    // A batch with a time regression at index 2: the first two samples
    // must land, the error must surface, and the filter must keep working
    // exactly as if the bad sample had been pushed individually.
    for kind in FilterKind::OVERHEAD_SET {
        let mut batched = kind.build(&[0.5]).unwrap();
        let mut sequential = kind.build(&[0.5]).unwrap();
        let mut bsink = CollectingSink::default();
        let mut ssink = CollectingSink::default();

        let samples: [(f64, &[f64]); 4] =
            [(0.0, &[1.0]), (1.0, &[2.0]), (0.5, &[3.0]), (2.0, &[4.0])];
        let err = batched.push_batch(&samples, &mut bsink).unwrap_err();
        assert_eq!(err.absorbed, 2, "{}", kind.label());
        assert!(matches!(err.error, FilterError::NonMonotonicTime { .. }), "{}", kind.label());

        for &(t, x) in &samples {
            let _ = sequential.push(t, x, &mut ssink);
        }
        // Note: sequential pushed (2.0, 4.0) after the rejected sample;
        // replay it on the batched filter to align the streams.
        batched.push(2.0, &[4.0], &mut bsink).unwrap();
        batched.finish(&mut bsink).unwrap();
        sequential.finish(&mut ssink).unwrap();
        assert_eq!(bsink.segments, ssink.segments, "{}", kind.label());
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    for kind in FilterKind::OVERHEAD_SET {
        let mut f = kind.build(&[0.5]).unwrap();
        let mut sink = CollectingSink::default();
        assert_eq!(f.push_batch(&[], &mut sink), Ok(0), "{}", kind.label());
        assert!(sink.segments.is_empty());
    }
}
