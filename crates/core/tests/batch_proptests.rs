//! Property: `push_batch` is segment-for-segment identical to the
//! equivalent sequence of `push` calls — for every filter, every signal,
//! and every way of chopping the signal into batches. The ingest layer
//! routes all traffic through `push_batch`, so this identity is what makes
//! its output trustworthy.

use proptest::prelude::*;

use pla_core::filters::{FilterKind, FilterSpec, SlideFilter, StreamFilter, SwingFilter};
use pla_core::{CollectingSink, FilterError, Signal};

/// A 1-D signal with walks, plateaus, and jumps (the same family the core
/// guarantee proptests use), plus a batch-split plan.
fn signal_and_splits() -> impl Strategy<Value = (Signal, Vec<usize>)> {
    (prop::collection::vec((-10.0f64..10.0, 0u8..4), 1..250), -100.0f64..100.0, any::<u64>())
        .prop_map(|(steps, start, split_seed)| {
            let mut x = start;
            let mut values = Vec::with_capacity(steps.len());
            for (step, kind) in steps {
                match kind {
                    0 => x += step,
                    1 => {}
                    2 => x += step * 50.0,
                    _ => x += step * 0.01,
                }
                values.push(x);
            }
            let signal = Signal::from_values(&values);
            // Deterministic irregular batch sizes derived from the seed:
            // exercises empty, single-sample, and large batches.
            let mut sizes = Vec::new();
            let mut state = split_seed | 1;
            let mut remaining = signal.len();
            while remaining > 0 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let take = ((state >> 33) as usize % 17).min(remaining);
                sizes.push(take);
                remaining -= take.max(1).min(remaining);
            }
            (signal, sizes)
        })
}

fn run_sequential(spec: &FilterSpec, signal: &Signal) -> CollectingSink {
    let mut f = spec.build().unwrap();
    let mut sink = CollectingSink::default();
    for (t, x) in signal.iter() {
        f.push(t, x, &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink
}

fn run_batched(spec: &FilterSpec, signal: &Signal, sizes: &[usize]) -> CollectingSink {
    let mut f = spec.build().unwrap();
    let mut sink = CollectingSink::default();
    let samples: Vec<(f64, &[f64])> = signal.iter().collect();
    let mut offset = 0;
    for &take in sizes {
        let take = take.min(samples.len() - offset);
        let n = f.push_batch(&samples[offset..offset + take], &mut sink).unwrap();
        assert_eq!(n, take, "successful batch must absorb every sample");
        offset += take;
    }
    if offset < samples.len() {
        f.push_batch(&samples[offset..], &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink
}

fn specs_under_test(eps: f64) -> Vec<FilterSpec> {
    let mut specs: Vec<FilterSpec> =
        FilterKind::OVERHEAD_SET.iter().map(|&k| FilterSpec::new(k, &[eps])).collect();
    // Lag-bounded configurations exercise the freeze paths inside the
    // batch loops.
    specs.push(FilterSpec::new(FilterKind::Swing, &[eps]).with_max_lag(7));
    specs.push(FilterSpec::new(FilterKind::Slide, &[eps]).with_max_lag(7));
    specs
}

fn run_dyn(f: &mut dyn StreamFilter, signal: &Signal) -> CollectingSink {
    let mut sink = CollectingSink::default();
    for (t, x) in signal.iter() {
        f.push(t, x, &mut sink).unwrap();
    }
    f.finish(&mut sink).unwrap();
    sink
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn push_batch_matches_push_sequence((signal, sizes) in signal_and_splits(), eps in 0.05f64..20.0) {
        for spec in specs_under_test(eps) {
            let sequential = run_sequential(&spec, &signal);
            let batched = run_batched(&spec, &signal, &sizes);
            prop_assert_eq!(
                &sequential.segments, &batched.segments,
                "{:?}: segment streams diverged", spec.kind
            );
            prop_assert_eq!(
                &sequential.provisionals, &batched.provisionals,
                "{:?}: provisional streams diverged", spec.kind
            );
        }
    }

    #[test]
    fn one_whole_batch_matches_push_sequence((signal, _) in signal_and_splits(), eps in 0.05f64..20.0) {
        let samples: Vec<(f64, &[f64])> = signal.iter().collect();
        for spec in specs_under_test(eps) {
            let sequential = run_sequential(&spec, &signal);
            let mut f = spec.build().unwrap();
            let mut sink = CollectingSink::default();
            f.push_batch(&samples, &mut sink).unwrap();
            f.finish(&mut sink).unwrap();
            prop_assert_eq!(&sequential.segments, &sink.segments, "{:?}", spec.kind);
        }
    }

    /// PR-3 pin: the `d == 1` scalar fast path (dispatched once at
    /// construction) is byte-identical to the generic per-dimension path
    /// — same `Segment`s, same `ProvisionalUpdate`s, for plain and
    /// lag-bounded configurations.
    #[test]
    fn scalar_fast_path_is_byte_identical((signal, _) in signal_and_splits(), eps in 0.05f64..20.0) {
        for max_lag in [None, Some(7usize)] {
            let mut swing_fast = {
                let mut b = SwingFilter::builder(&[eps]);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let mut swing_generic = {
                let mut b = SwingFilter::builder(&[eps]).force_generic(true);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let fast = run_dyn(&mut swing_fast, &signal);
            let generic = run_dyn(&mut swing_generic, &signal);
            prop_assert_eq!(&fast.segments, &generic.segments, "swing lag={:?}", max_lag);
            prop_assert_eq!(&fast.provisionals, &generic.provisionals, "swing lag={:?}", max_lag);

            let mut slide_fast = {
                let mut b = SlideFilter::builder(&[eps]);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let mut slide_generic = {
                let mut b = SlideFilter::builder(&[eps]).force_generic(true);
                if let Some(m) = max_lag { b = b.max_lag(m); }
                b.build().unwrap()
            };
            let fast = run_dyn(&mut slide_fast, &signal);
            let generic = run_dyn(&mut slide_generic, &signal);
            prop_assert_eq!(&fast.segments, &generic.segments, "slide lag={:?}", max_lag);
            prop_assert_eq!(&fast.provisionals, &generic.provisionals, "slide lag={:?}", max_lag);
        }
    }

    /// PR-3 pin: the recycled scratch buffers (hulls, raw points,
    /// regression sums) carry no state across `finish` — a warm filter
    /// re-compressing a stream emits byte-identical output to a freshly
    /// built one.
    #[test]
    fn recycled_scratch_is_byte_identical((signal, _) in signal_and_splits(), eps in 0.05f64..20.0) {
        for spec in specs_under_test(eps) {
            let mut warm = spec.build().unwrap();
            let first = run_dyn(warm.as_mut(), &signal);
            let second = run_dyn(warm.as_mut(), &signal);
            let fresh = run_dyn(spec.build().unwrap().as_mut(), &signal);
            prop_assert_eq!(&first.segments, &second.segments, "{:?}: warm rerun diverged", spec.kind);
            prop_assert_eq!(&second.segments, &fresh.segments, "{:?}: warm vs fresh diverged", spec.kind);
            prop_assert_eq!(&first.provisionals, &second.provisionals, "{:?}", spec.kind);
        }
    }
}

#[test]
fn batch_error_leaves_the_valid_prefix_absorbed() {
    // A batch with a time regression at index 2: the first two samples
    // must land, the error must surface, and the filter must keep working
    // exactly as if the bad sample had been pushed individually.
    for kind in FilterKind::OVERHEAD_SET {
        let mut batched = kind.build(&[0.5]).unwrap();
        let mut sequential = kind.build(&[0.5]).unwrap();
        let mut bsink = CollectingSink::default();
        let mut ssink = CollectingSink::default();

        let samples: [(f64, &[f64]); 4] =
            [(0.0, &[1.0]), (1.0, &[2.0]), (0.5, &[3.0]), (2.0, &[4.0])];
        let err = batched.push_batch(&samples, &mut bsink).unwrap_err();
        assert_eq!(err.absorbed, 2, "{}", kind.label());
        assert!(matches!(err.error, FilterError::NonMonotonicTime { .. }), "{}", kind.label());

        for &(t, x) in &samples {
            let _ = sequential.push(t, x, &mut ssink);
        }
        // Note: sequential pushed (2.0, 4.0) after the rejected sample;
        // replay it on the batched filter to align the streams.
        batched.push(2.0, &[4.0], &mut bsink).unwrap();
        batched.finish(&mut bsink).unwrap();
        sequential.finish(&mut ssink).unwrap();
        assert_eq!(bsink.segments, ssink.segments, "{}", kind.label());
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    for kind in FilterKind::OVERHEAD_SET {
        let mut f = kind.build(&[0.5]).unwrap();
        let mut sink = CollectingSink::default();
        assert_eq!(f.push_batch(&[], &mut sink), Ok(0), "{}", kind.label());
        assert!(sink.segments.is_empty());
    }
}
