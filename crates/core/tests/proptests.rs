//! Property-based tests of the paper's headline guarantees.
//!
//! P1 (Theorems 3.1 / 4.1): for *every* filter and *every* input stream,
//! every original sample lies within `εᵢ` of the reconstructed
//! approximation in every dimension. The remaining properties pin down
//! structural invariants of the segment stream (coverage, ordering,
//! accounting) that the compression-ratio metric and the transport layer
//! rely on.

use proptest::prelude::*;

use pla_core::filters::{
    run_filter, CacheFilter, CacheVariant, HullMode, LinearFilter, LinearMode, SlideFilter,
    StreamFilter, SwingFilter,
};
use pla_core::{GapPolicy, Polyline, Segment, Signal};

/// Strategy: a 1-D signal built from bounded random steps (random-walk
/// like, the paper's §5.3 workload family), plus occasional plateaus and
/// jumps to hit the filters' edge paths.
fn signal_1d() -> impl Strategy<Value = Signal> {
    (2usize..200, prop::collection::vec((-10.0f64..10.0, 0u8..4), 1..200), -1000.0f64..1000.0)
        .prop_map(|(_, steps, start)| {
            let mut x = start;
            let mut values = Vec::with_capacity(steps.len());
            for (step, kind) in steps {
                match kind {
                    0 => x += step,        // walk
                    1 => {}                // plateau
                    2 => x += step * 50.0, // jump
                    _ => x += step * 0.01, // micro-noise
                }
                values.push(x);
            }
            Signal::from_values(&values)
        })
}

/// Strategy: a d-dimensional signal (d ∈ 1..=4) with independent walks.
fn signal_nd() -> impl Strategy<Value = Signal> {
    (1usize..=4, 2usize..120, any::<u64>()).prop_map(|(d, n, seed)| {
        let mut s = Signal::new(d);
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut vals = vec![0.0f64; d];
        let mut t = 0.0;
        for _ in 0..n {
            t += 0.5 + rnd().abs() * 3.0; // irregular spacing
            for v in vals.iter_mut() {
                *v += rnd() * 2.0;
            }
            s.push(t, &vals).expect("generated signal is valid");
        }
        s
    })
}

fn all_filters(eps: &[f64]) -> Vec<Box<dyn StreamFilter>> {
    vec![
        Box::new(CacheFilter::with_variant(eps, CacheVariant::FirstValue).unwrap()),
        Box::new(CacheFilter::with_variant(eps, CacheVariant::Midrange).unwrap()),
        Box::new(CacheFilter::with_variant(eps, CacheVariant::Mean).unwrap()),
        Box::new(LinearFilter::with_mode(eps, LinearMode::Connected).unwrap()),
        Box::new(LinearFilter::with_mode(eps, LinearMode::Disconnected).unwrap()),
        Box::new(SwingFilter::new(eps).unwrap()),
        Box::new(SlideFilter::new(eps).unwrap()),
        Box::new(SlideFilter::builder(eps).hull_mode(HullMode::Exhaustive).build().unwrap()),
    ]
}

/// Checks P1 plus the structural invariants for one filter run.
fn check_all_invariants(
    name: &str,
    signal: &Signal,
    segs: &[Segment],
    eps: &[f64],
) -> proptest::test_runner::TestCaseResult {
    // Segments are time-ordered and non-overlapping.
    for pair in segs.windows(2) {
        prop_assert!(pair[1].t_start >= pair[0].t_end - 1e-9, "{name}: segments overlap");
        if pair[1].connected {
            prop_assert!(
                (pair[1].t_start - pair[0].t_end).abs() < 1e-9,
                "{name}: connected segment does not touch predecessor"
            );
            for d in 0..signal.dims() {
                prop_assert!(
                    (pair[1].x_start[d] - pair[0].x_end[d]).abs() < 1e-9,
                    "{name}: connected segment value mismatch"
                );
            }
        }
    }
    // Recording accounting: connected ⇒ 1; disconnected line ⇒ 2 (cache &
    // degenerate points ⇒ 1).
    for s in segs {
        if s.connected {
            prop_assert_eq!(s.new_recordings, 1, "{}: connected segment recordings", name);
        } else {
            prop_assert!(
                s.new_recordings == 1 || s.new_recordings == 2,
                "{name}: recordings out of range"
            );
        }
    }
    // Point totals match the stream.
    let total: u64 = segs.iter().map(|s| s.n_points as u64).sum();
    prop_assert_eq!(total as usize, signal.len(), "{}: n_points total", name);

    // P1: the precision guarantee, via the reconstruction.
    let poly = Polyline::new(segs.to_vec());
    for (t, x) in signal.iter() {
        for d in 0..signal.dims() {
            let approx = poly.eval(t, d, GapPolicy::Strict);
            prop_assert!(approx.is_some(), "{name}: sample at t={t} not covered by any segment");
            let err = (approx.unwrap() - x[d]).abs();
            prop_assert!(
                err <= eps[d] * (1.0 + 1e-6) + 1e-12,
                "{name}: dim {d} error {err} exceeds ε={} at t={t}",
                eps[d]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P1 + structure, 1-D streams, every filter, ε sweep.
    #[test]
    fn guarantee_holds_for_every_filter_1d(signal in signal_1d(), eps in 0.01f64..20.0) {
        let eps = [eps];
        for mut f in all_filters(&eps) {
            let segs = run_filter(f.as_mut(), &signal).unwrap();
            check_all_invariants(f.name(), &signal, &segs, &eps)?;
        }
    }

    /// P1 + structure, multi-dimensional streams with distinct ε per dim.
    #[test]
    fn guarantee_holds_for_every_filter_nd(signal in signal_nd(), base in 0.05f64..5.0) {
        let eps: Vec<f64> = (0..signal.dims()).map(|d| base * (1.0 + d as f64)).collect();
        for mut f in all_filters(&eps) {
            let segs = run_filter(f.as_mut(), &signal).unwrap();
            check_all_invariants(f.name(), &signal, &segs, &eps)?;
        }
    }

    /// P4: lag-bounded filters never let pending points exceed the bound,
    /// and the guarantee survives freezing.
    #[test]
    fn lag_bound_is_respected(signal in signal_1d(), eps in 0.1f64..10.0, m in 2usize..20) {
        let filters: Vec<Box<dyn StreamFilter>> = vec![
            Box::new(SwingFilter::builder(&[eps]).max_lag(m).build().unwrap()),
            Box::new(SlideFilter::builder(&[eps]).max_lag(m).build().unwrap()),
        ];
        for mut f in filters {
            let mut sink: Vec<Segment> = Vec::new();
            for (t, x) in signal.iter() {
                f.push(t, x, &mut sink).unwrap();
                prop_assert!(
                    f.pending_points() <= m,
                    "{}: pending {} exceeds m_max_lag {m}",
                    f.name(),
                    f.pending_points()
                );
            }
            f.finish(&mut sink).unwrap();
            check_all_invariants(f.name(), &signal, &sink, &[eps])?;
        }
    }

    /// Determinism / reusability: running the same filter twice over the
    /// same stream yields identical output.
    #[test]
    fn filters_are_deterministic_and_reusable(signal in signal_1d(), eps in 0.05f64..5.0) {
        for mut f in all_filters(&[eps]) {
            let a = run_filter(f.as_mut(), &signal).unwrap();
            let b = run_filter(f.as_mut(), &signal).unwrap();
            prop_assert_eq!(a, b, "{} not deterministic", f.name());
        }
    }

    /// The slide filter's hull optimization is behaviour-preserving
    /// (Lemma 4.3): optimized and exhaustive modes segment identically.
    #[test]
    fn hull_optimization_is_behaviour_preserving(signal in signal_1d(), eps in 0.05f64..5.0) {
        let mut opt = SlideFilter::builder(&[eps]).build().unwrap();
        let mut exh = SlideFilter::builder(&[eps]).hull_mode(HullMode::Exhaustive).build().unwrap();
        let a = run_filter(&mut opt, &signal).unwrap();
        let b = run_filter(&mut exh, &signal).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(b.iter()) {
            prop_assert!((sa.t_start - sb.t_start).abs() < 1e-9);
            prop_assert!((sa.t_end - sb.t_end).abs() < 1e-9);
            prop_assert_eq!(sa.connected, sb.connected);
            prop_assert_eq!(sa.new_recordings, sb.new_recordings);
        }
    }

    /// Compression dominance sanity (paper §5 headline): swing and slide
    /// never need more recordings than the corresponding count of input
    /// points, and the slide filter's recordings never exceed
    /// 2 · (swing's segments + 1) — a loose structural bound that catches
    /// gross regressions without over-fitting to workloads.
    #[test]
    fn recording_counts_are_sane(signal in signal_1d(), eps in 0.05f64..5.0) {
        let mut swing = SwingFilter::new(&[eps]).unwrap();
        let mut slide = SlideFilter::new(&[eps]).unwrap();
        let sw = run_filter(&mut swing, &signal).unwrap();
        let sl = run_filter(&mut slide, &signal).unwrap();
        let swing_recs: u64 = sw.iter().map(|s| s.new_recordings as u64).sum();
        let slide_recs: u64 = sl.iter().map(|s| s.new_recordings as u64).sum();
        prop_assert!(swing_recs <= signal.len() as u64 + 1);
        prop_assert!(slide_recs <= 2 * (sw.len() as u64 + 1));
    }
}
