//! Failure-injection tests: filters must reject bad input cleanly and
//! remain usable afterwards.

use pla_core::filters::{
    CacheFilter, KalmanFilter, LinearFilter, SlideFilter, StreamFilter, SwingFilter,
};
use pla_core::{FilterError, Segment};

fn all_filters(eps: &[f64]) -> Vec<Box<dyn StreamFilter>> {
    vec![
        Box::new(CacheFilter::new(eps).unwrap()),
        Box::new(LinearFilter::new(eps).unwrap()),
        Box::new(SwingFilter::new(eps).unwrap()),
        Box::new(SlideFilter::new(eps).unwrap()),
        Box::new(KalmanFilter::new(eps).unwrap()),
    ]
}

#[test]
fn nan_values_are_rejected_and_stream_continues() {
    for mut f in all_filters(&[0.5]) {
        let mut out: Vec<Segment> = Vec::new();
        f.push(0.0, &[1.0], &mut out).unwrap();
        f.push(1.0, &[1.1], &mut out).unwrap();
        // Invalid sample rejected without corrupting state …
        assert!(matches!(
            f.push(2.0, &[f64::NAN], &mut out),
            Err(FilterError::NonFiniteValue { .. })
        ));
        // … and the stream can continue with valid samples.
        f.push(2.0, &[1.2], &mut out).unwrap();
        f.push(3.0, &[1.3], &mut out).unwrap();
        f.finish(&mut out).unwrap();
        let total: u32 = out.iter().map(|s| s.n_points).sum();
        assert_eq!(total, 4, "{}: rejected sample must not be counted", f.name());
        // Guarantee still holds for the accepted samples.
        for (t, x) in [(0.0, 1.0), (1.0, 1.1), (2.0, 1.2), (3.0, 1.3)] {
            let seg = out.iter().find(|s| s.covers(t)).unwrap();
            assert!((seg.eval(t, 0) - x).abs() <= 0.5 + 1e-9);
        }
    }
}

#[test]
fn infinite_time_is_rejected() {
    for mut f in all_filters(&[0.5]) {
        let mut out: Vec<Segment> = Vec::new();
        f.push(0.0, &[1.0], &mut out).unwrap();
        assert!(matches!(
            f.push(f64::INFINITY, &[1.0], &mut out),
            Err(FilterError::NonFiniteTime { .. })
        ));
        assert!(matches!(
            f.push(f64::NAN, &[1.0], &mut out),
            Err(FilterError::NonFiniteTime { .. })
        ));
    }
}

#[test]
fn nan_time_on_first_sample_is_a_non_finite_time_error() {
    // Regression test: with no previous sample a NaN `t` used to report
    // `NonMonotonicTime { previous: -inf }`, which is misleading in logs.
    for mut f in all_filters(&[0.5]) {
        let mut out: Vec<Segment> = Vec::new();
        assert!(
            matches!(f.push(f64::NAN, &[1.0], &mut out), Err(FilterError::NonFiniteTime { .. })),
            "{}: NaN first timestamp must be NonFiniteTime",
            f.name()
        );
        // The filter is still usable afterwards.
        f.push(0.0, &[1.0], &mut out).unwrap();
        f.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
    }
}

#[test]
fn time_regression_is_rejected_at_every_state() {
    for mut f in all_filters(&[0.5]) {
        let mut out: Vec<Segment> = Vec::new();
        // State One.
        f.push(10.0, &[1.0], &mut out).unwrap();
        assert!(f.push(9.0, &[1.0], &mut out).is_err());
        // State Active.
        f.push(11.0, &[1.0], &mut out).unwrap();
        assert!(f.push(11.0, &[1.0], &mut out).is_err());
        assert!(f.push(10.5, &[1.0], &mut out).is_err());
        // Valid continuation.
        f.push(12.0, &[1.0], &mut out).unwrap();
        f.finish(&mut out).unwrap();
    }
}

#[test]
fn dimension_mismatch_is_rejected() {
    for mut f in all_filters(&[0.5, 0.5]) {
        let mut out: Vec<Segment> = Vec::new();
        assert!(matches!(
            f.push(0.0, &[1.0], &mut out),
            Err(FilterError::DimensionMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            f.push(0.0, &[1.0, 2.0, 3.0], &mut out),
            Err(FilterError::DimensionMismatch { expected: 2, got: 3 })
        ));
        f.push(0.0, &[1.0, 2.0], &mut out).unwrap();
        f.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
    }
}

#[test]
fn huge_timestamps_stay_numerically_sane() {
    // Anchoring far from zero (epoch-nanosecond-like timestamps) must not
    // destroy the guarantee.
    let base = 1.7e18; // ~ns epoch
    for mut f in all_filters(&[0.5]) {
        let mut out: Vec<Segment> = Vec::new();
        let samples: Vec<(f64, f64)> =
            (0..200).map(|j| (base + j as f64 * 1e9, (j as f64 * 0.37).sin() * 3.0)).collect();
        for &(t, x) in &samples {
            f.push(t, &[x], &mut out).unwrap();
        }
        f.finish(&mut out).unwrap();
        for &(t, x) in &samples {
            let seg = out
                .iter()
                .find(|s| s.covers(t))
                .unwrap_or_else(|| panic!("{}: t={t} uncovered", f.name()));
            let err = (seg.eval(t, 0) - x).abs();
            assert!(err <= 0.5 + 1e-6, "{}: error {err} at huge timestamps", f.name());
        }
    }
}

#[test]
fn tiny_and_huge_epsilons() {
    let values: Vec<f64> = (0..100).map(|j| (j as f64 * 0.7).sin()).collect();
    for eps in [1e-12, 1e12] {
        for mut f in all_filters(&[eps]) {
            let mut out: Vec<Segment> = Vec::new();
            for (j, &x) in values.iter().enumerate() {
                f.push(j as f64, &[x], &mut out).unwrap();
            }
            f.finish(&mut out).unwrap();
            let total: u32 = out.iter().map(|s| s.n_points).sum();
            assert_eq!(total as usize, values.len(), "{} at ε={eps}", f.name());
            if eps > 1.0 {
                // Everything fits one segment when ε dwarfs the signal.
                assert!(out.len() <= 2, "{}: {} segments at huge ε", f.name(), out.len());
            }
        }
    }
}

#[test]
fn adversarial_identical_values() {
    // Long constant runs exercise zero-slope cones and degenerate hulls.
    for mut f in all_filters(&[0.1]) {
        let mut out: Vec<Segment> = Vec::new();
        for j in 0..500 {
            f.push(j as f64, &[42.0], &mut out).unwrap();
        }
        f.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1, "{}", f.name());
        assert_eq!(out[0].n_points, 500);
        assert!((out[0].eval(250.0, 0) - 42.0).abs() <= 0.1 + 1e-12);
    }
}

#[test]
fn alternating_extremes_worst_case() {
    // Every point violates: segment per 1–2 points, but nothing panics
    // and accounting stays exact.
    for mut f in all_filters(&[0.01]) {
        let mut out: Vec<Segment> = Vec::new();
        for j in 0..200 {
            let x = if j % 2 == 0 { 1e6 } else { -1e6 };
            f.push(j as f64, &[x], &mut out).unwrap();
        }
        f.finish(&mut out).unwrap();
        let total: u32 = out.iter().map(|s| s.n_points).sum();
        assert_eq!(total, 200, "{}", f.name());
    }
}
