//! `repro` — regenerate the paper's figures from the command line.
//!
//! ```text
//! repro <experiment>... [--quick] [--csv DIR]
//! repro all [--quick] [--csv DIR]
//! ```
//!
//! Experiments: fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 joint
//!              lag hull connect bytes variants multistream netstream
//!              collector

use std::path::PathBuf;
use std::process::ExitCode;

use pla_eval::experiments::{self, Config};
use pla_eval::Table;

const ALL: [&str; 20] = [
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "joint",
    "lag",
    "hull",
    "connect",
    "bytes",
    "variants",
    "optgap",
    "swab",
    "kalman",
    "multistream",
    "netstream",
    "collector",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments_requested: Vec<String> = Vec::new();
    let mut cfg = Config::default();
    let mut csv_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = Config::quick(),
            "--csv" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--csv needs a directory argument");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "all" => experiments_requested.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) => experiments_requested.push(other.to_string()),
            other => {
                eprintln!("unknown experiment or flag: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if experiments_requested.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for name in experiments_requested {
        run_one(&name, &cfg, csv_dir.as_deref());
    }
    ExitCode::SUCCESS
}

fn run_one(name: &str, cfg: &Config, csv_dir: Option<&std::path::Path>) {
    if name == "fig6" {
        let signal = experiments::fig6_signal();
        println!("# Figure 6: sea surface temperature proxy ({} points)", signal.len());
        match csv_dir {
            Some(dir) => {
                let path = dir.join("fig6.csv");
                pla_signal::csv::save(&signal, &path).expect("write fig6.csv");
                println!("written to {}", path.display());
            }
            None => {
                let mut out = Vec::new();
                pla_signal::csv::write_signal(&signal, &mut out).expect("serialize");
                println!("{}", String::from_utf8(out).expect("utf8"));
            }
        }
        return;
    }
    let table: Table = match name {
        "fig7" => experiments::fig7_compression(cfg),
        "fig8" => experiments::fig8_error(cfg),
        "fig9" => experiments::fig9_monotonicity(cfg),
        "fig10" => experiments::fig10_delta(cfg),
        "fig11" => experiments::fig11_dims(cfg),
        "fig12" => experiments::fig12_correlation(cfg),
        "fig13" => experiments::fig13_overhead(cfg),
        "joint" => experiments::joint_vs_independent(cfg),
        "lag" => experiments::lag_ablation(cfg),
        "hull" => experiments::hull_ablation(cfg),
        "connect" => experiments::connect_ablation(cfg),
        "bytes" => experiments::bytes_ablation(cfg),
        "variants" => experiments::variants_ablation(cfg),
        "optgap" => experiments::optgap_experiment(cfg),
        "swab" => experiments::swab_experiment(cfg),
        "kalman" => experiments::kalman_experiment(cfg),
        "multistream" => experiments::multistream_throughput(cfg),
        "netstream" => experiments::netstream_throughput(cfg),
        "collector" => experiments::collector_fanin(cfg),
        other => unreachable!("validated experiment name {other}"),
    };
    println!("{}", table.to_text());
    if let Some(dir) = csv_dir {
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write csv");
        println!("written to {}\n", path.display());
    }
}

fn print_usage() {
    eprintln!("usage: repro <experiment>... [--quick] [--csv DIR]");
    eprintln!("experiments: {}", ALL.join(" "));
    eprintln!("             all  (runs everything)");
    eprintln!("flags: --quick    reduced workload sizes");
    eprintln!("       --csv DIR  also write each table as CSV into DIR");
}
