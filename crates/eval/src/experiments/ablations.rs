//! Ablations beyond the paper's figures (DESIGN.md §3).

use pla_core::filters::{CacheFilter, CacheVariant, SlideFilter, StreamFilter, SwingFilter};
use pla_core::metrics;
use pla_core::Signal;
use pla_signal::{random_walk, sea_surface, WalkParams};
use pla_transport::wire::{CompactCodec, FixedCodec};
use pla_transport::Transmitter;

use crate::experiments::{Config, PRECISION_GRID};
use crate::Table;

/// abl-lag: compression ratio as a function of `m_max_lag` for the swing
/// and slide filters (the paper introduces the knob but never sweeps it).
///
/// Expected shape: tiny lag bounds force frequent provisional commitments
/// and cost compression; the curves approach the unbounded ratio as the
/// bound grows.
pub fn lag_ablation(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let eps = signal.epsilons_from_range_percent(1.0);
    let mut table = Table::new(
        "Ablation: compression ratio vs m_max_lag (sea surface, ε = 1% of range)",
        "m_max_lag (0 = unbounded)",
        vec!["swing".to_string(), "slide".to_string()],
    );
    let run = |max_lag: Option<usize>| -> Vec<f64> {
        let mut swing: Box<dyn StreamFilter> = match max_lag {
            Some(m) => Box::new(SwingFilter::builder(&eps).max_lag(m).build().unwrap()),
            None => Box::new(SwingFilter::new(&eps).unwrap()),
        };
        let mut slide: Box<dyn StreamFilter> = match max_lag {
            Some(m) => Box::new(SlideFilter::builder(&eps).max_lag(m).build().unwrap()),
            None => Box::new(SlideFilter::new(&eps).unwrap()),
        };
        vec![
            metrics::evaluate(swing.as_mut(), &signal).unwrap().compression_ratio,
            metrics::evaluate(slide.as_mut(), &signal).unwrap().compression_ratio,
        ]
    };
    for m in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        table.push_row(m as f64, run(Some(m)));
    }
    table.push_row(0.0, run(None)); // unbounded reference
    table
}

/// abl-hull: slide-filter hull size versus interval length across
/// precision widths — the paper's §4.3 claim that `m_H` stays small.
pub fn hull_ablation(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let mut table = Table::new(
        "Ablation: slide hull size vs precision width (sea surface)",
        "precision (% of range)",
        vec![
            "max hull vertices".to_string(),
            "mean hull vertices".to_string(),
            "max interval points".to_string(),
        ],
    );
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let mut f = SlideFilter::new(&eps).unwrap();
        let _ = pla_core::filters::run_filter(&mut f, &signal).unwrap();
        let stats = f.hull_stats();
        table.push_row(
            pct,
            vec![
                stats.max_vertices as f64,
                stats.mean_vertices(),
                stats.max_interval_points as f64,
            ],
        );
    }
    table
}

/// abl-connect: fraction of slide segments that end up *connected*
/// (costing one recording instead of two) as signal volatility grows —
/// quantifying the paper's §5.3 remark that sharp fluctuation raises the
/// chances of connecting neighbouring segments.
pub fn connect_ablation(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Ablation: slide segment connection rate vs step magnitude (p = 0.5)",
        "max delta (% of ε)",
        vec!["connected fraction".to_string(), "compression ratio".to_string()],
    );
    for (i, &pct) in [10.0, 31.6, 100.0, 316.0, 1000.0, 3160.0, 10_000.0].iter().enumerate() {
        let signal = random_walk(WalkParams {
            n: cfg.n,
            p_decrease: 0.5,
            max_delta: pct / 100.0,
            seed: cfg.seed ^ (0x400 + i as u64),
        });
        let mut f = SlideFilter::new(&[1.0]).unwrap();
        let segs = pla_core::filters::run_filter(&mut f, &signal).unwrap();
        let connected = segs.iter().filter(|s| s.connected).count();
        let frac = if segs.len() > 1 { connected as f64 / (segs.len() - 1) as f64 } else { 0.0 };
        let report = metrics::report_from(&signal, &segs, 0);
        table.push_row(pct, vec![frac, report.compression_ratio]);
    }
    table
}

/// abl-bytes: wire-level bytes per data point for the slide filter under
/// the fixed and compact codecs, against the unfiltered baseline
/// (8·(d+1) bytes per sample).
pub fn bytes_ablation(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let mut table = Table::new(
        "Ablation: wire bytes per point (slide filter, sea surface)",
        "precision (% of range)",
        vec!["raw (no filter)".to_string(), "fixed codec".to_string(), "compact codec".to_string()],
    );
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let raw = 8.0 * (signal.dims() + 1) as f64;
        let fixed = bytes_per_point(&signal, &eps, Codecs::Fixed);
        let compact = bytes_per_point(&signal, &eps, Codecs::Compact);
        table.push_row(pct, vec![raw, fixed, compact]);
    }
    table
}

enum Codecs {
    Fixed,
    Compact,
}

fn bytes_per_point(signal: &Signal, eps: &[f64], which: Codecs) -> f64 {
    let filter = SlideFilter::new(eps).unwrap();
    let bytes = match which {
        Codecs::Fixed => {
            let mut tx = Transmitter::new(filter, FixedCodec);
            for (t, x) in signal.iter() {
                tx.push(t, x).unwrap();
            }
            tx.finish().unwrap();
            tx.stats().bytes
        }
        Codecs::Compact => {
            // Quantize to ε/16 per value and the sampling interval / 16 on
            // the time axis — far below the precision budget.
            let t_quantum = (signal.times()[1] - signal.times()[0]) / 16.0;
            let quanta: Vec<f64> = eps.iter().map(|e| e / 16.0).collect();
            let mut tx = Transmitter::new(filter, CompactCodec::new(t_quantum, &quanta));
            for (t, x) in signal.iter() {
                tx.push(t, x).unwrap();
            }
            tx.finish().unwrap();
            tx.stats().bytes
        }
    };
    bytes as f64 / signal.len() as f64
}

/// abl-variants: the three cache-filter recording strategies compared
/// (first-value vs midrange vs clamped mean) on the sea-surface signal.
pub fn variants_ablation(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let variants = [
        ("first-value", CacheVariant::FirstValue),
        ("midrange", CacheVariant::Midrange),
        ("mean", CacheVariant::Mean),
    ];
    let mut table = Table::new(
        "Ablation: cache filter variants (sea surface)",
        "precision (% of range)",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let values = variants
            .iter()
            .map(|&(_, v)| {
                let mut f = CacheFilter::with_variant(&eps, v).unwrap();
                metrics::evaluate(&mut f, &signal).unwrap().compression_ratio
            })
            .collect();
        table.push_row(pct, values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_ablation_converges_to_unbounded() {
        let t = lag_ablation(&Config::quick());
        let slide = t.series_values("slide");
        let unbounded = *slide.last().unwrap(); // m = 0 row
        let tight = slide[0]; // m = 2 row
        let loose = slide[slide.len() - 2]; // m = 256 row
        assert!(tight <= unbounded, "tight lag cannot beat unbounded");
        assert!(
            (loose - unbounded).abs() / unbounded < 0.25,
            "m=256 ratio {loose} should approach unbounded {unbounded}"
        );
    }

    #[test]
    fn hull_stays_small_relative_to_interval() {
        let t = hull_ablation(&Config::quick());
        let verts = t.series_values("max hull vertices");
        let pts = t.series_values("max interval points");
        let last = t.rows.len() - 1;
        // At 10% precision the intervals span many points; the hull must
        // stay far smaller (the §4.3 observation).
        assert!(pts[last] > 20.0, "expected long intervals, got {}", pts[last]);
        assert!(
            verts[last] < pts[last] / 2.0,
            "hull {} not small next to interval {}",
            verts[last],
            pts[last]
        );
    }

    #[test]
    fn connection_rate_rises_with_volatility() {
        let t = connect_ablation(&Config::quick());
        let frac = t.series_values("connected fraction");
        // Paper §5.3: sharp fluctuations raise connection chances —
        // compare the small-delta and large-delta ends.
        let first = frac[0];
        let last = *frac.last().unwrap();
        assert!(
            last >= first * 0.8 || last > 0.3,
            "connection rate should not collapse at high volatility: {first} → {last}"
        );
        for f in &frac {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn compact_codec_beats_fixed_and_both_beat_raw() {
        let t = bytes_ablation(&Config::quick());
        for (row, (_, values)) in t.rows.iter().enumerate() {
            let (raw, fixed, compact) = (values[0], values[1], values[2]);
            assert!(fixed < raw, "row {row}: fixed {fixed} not below raw {raw}");
            assert!(compact < fixed, "row {row}: compact {compact} not below fixed {fixed}");
        }
    }

    #[test]
    fn midrange_variant_compresses_best() {
        let t = variants_ablation(&Config::quick());
        let fv = t.series_values("first-value");
        let mr = t.series_values("midrange");
        for i in 0..t.rows.len() {
            assert!(
                mr[i] >= fv[i] * 0.95,
                "row {i}: midrange {} should not trail first-value {}",
                mr[i],
                fv[i]
            );
        }
    }
}
