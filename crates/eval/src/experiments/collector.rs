//! Collector fan-in throughput: many connections, one shared store.
//!
//! The `netstream` experiment measures one multiplexed connection; this
//! one measures the paper's full deployment shape — N edge senders,
//! each multiplexing its own stream population over its own connection,
//! funneled by one `Collector` into one `SegmentStore`. Each cell
//! transfers every stream's full segment log end-to-end and reports
//! thousands of segments per second into the store, plus the wire cost
//! per segment (data frames + the batched `Ack`/`Credit` control
//! traffic, both directions).

use std::sync::Arc;
use std::time::Instant;

use pla_core::filters::{run_filter, FilterKind};
use pla_core::Segment;
use pla_ingest::SegmentStore;
use pla_net::driver::pump_sender;
use pla_net::listen::MemoryAcceptor;
use pla_net::{Collector, MemoryLink, MuxSender, NetConfig};
use pla_transport::wire::FixedCodec;

use crate::experiments::Config;
use crate::Table;

/// Builds one segment log per stream from the Figure 9/10 random-walk
/// workload.
fn segment_logs(streams: usize, samples_per_stream: usize, seed: u64) -> Vec<Vec<Segment>> {
    super::multistream::stream_workload(streams, samples_per_stream, seed)
        .iter()
        .map(|signal| {
            let mut filter = FilterKind::Swing.build(&[0.5]).expect("valid eps");
            run_filter(filter.as_mut(), signal).expect("valid signal")
        })
        .collect()
}

/// Fans `logs` in over `conns` connections (streams split round-robin)
/// into one shared store, returning `(segments, wire_bytes)`.
/// `wire_bytes` counts every byte the collector moved — inbound data
/// frames plus outbound acks and credit grants.
pub fn collector_transfer(logs: &[Vec<Segment>], conns: usize, window: u64) -> (u64, u64) {
    let cfg = NetConfig { window, max_frame: 1 << 20 };
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut collector = Collector::new(FixedCodec, 1, cfg, acceptor, store.clone());

    // Connection c owns streams c, c + conns, c + 2·conns, …
    let mut senders: Vec<(MuxSender<FixedCodec>, MemoryLink, Vec<usize>)> = (0..conns)
        .map(|c| {
            let link = connector.connect(8 * 1024);
            let streams: Vec<usize> = (c..logs.len()).step_by(conns).collect();
            (MuxSender::new(FixedCodec, 1, cfg), link, streams)
        })
        .collect();
    let mut cursors = vec![0usize; logs.len()];
    let mut done = false;
    while !done {
        done = true;
        for (tx, link, streams) in &mut senders {
            let mut conn_done = true;
            for &s in streams.iter() {
                let log = &logs[s];
                let cursor = &mut cursors[s];
                while *cursor < log.len() {
                    match tx.try_send_segment(s as u64, &log[*cursor]) {
                        Ok(()) => *cursor += 1,
                        Err(pla_net::NetError::Backpressure) => break,
                        Err(e) => panic!("send failed: {e}"),
                    }
                }
                if *cursor < log.len() {
                    conn_done = false;
                }
            }
            if conn_done && !streams.is_empty() {
                for &s in streams.iter() {
                    tx.finish_stream(s as u64).expect("fin");
                }
            } else {
                done = false;
            }
            pump_sender(tx, link).expect("sender link");
        }
        collector.pump().expect("collector");
        for (tx, link, _) in &mut senders {
            pump_sender(tx, link).expect("sender link");
            if !tx.all_acked() {
                done = false;
            }
        }
    }
    let stats = collector.stats();
    let wire_bytes: u64 = stats.conns.iter().map(|c| c.bytes_moved).sum();
    let want: u64 = logs.iter().map(|l| l.len() as u64).sum();
    assert_eq!(store.total_segments(), want, "every segment must land exactly once");
    assert_eq!(stats.dup_drops, 0, "no replays on a lossless run");
    (want, wire_bytes)
}

/// Collector fan-in throughput (Ksegments/s into the store) and wire
/// cost per segment vs connection count, for a fixed 64-stream
/// population. One connection is the PR 4 single-uplink baseline; more
/// connections split the same streams across more links.
pub fn collector_fanin(cfg: &Config) -> Table {
    let conn_counts = [1usize, 4, 16];
    const STREAMS: usize = 64;
    let window = 16 * 1024u64;
    let mut table = Table::new(
        "Collector fan-in throughput (Ksegments/s) and bytes/segment vs connection count",
        "connections",
        vec!["Kseg/s".to_string(), "bytes/seg".to_string()],
    );
    let per_stream = (cfg.n / STREAMS).max(2);
    let logs = segment_logs(STREAMS, per_stream, cfg.seed);
    for &conns in &conn_counts {
        collector_transfer(&logs, conns, window); // warm-up
        let start = Instant::now();
        let (segments, wire_bytes) = collector_transfer(&logs, conns, window);
        let secs = start.elapsed().as_secs_f64();
        table.push_row(
            conns as f64,
            vec![segments as f64 / secs / 1e3, wire_bytes as f64 / segments.max(1) as f64],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_table_has_expected_shape() {
        let t = collector_fanin(&Config::quick());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.series.len(), 2);
        for (conns, row) in &t.rows {
            assert!(row[0].is_finite() && row[0] > 0.0, "{conns} conns: {row:?}");
            assert!(
                row[1] > 16.0 && row[1] < 256.0,
                "{conns} conns: implausible wire cost {}",
                row[1]
            );
        }
    }

    #[test]
    fn transfer_is_lossless_across_many_connections() {
        let logs = segment_logs(12, 150, 0xBEEF);
        let want: u64 = logs.iter().map(|l| l.len() as u64).sum();
        for conns in [1usize, 3, 12] {
            let (segments, wire_bytes) = collector_transfer(&logs, conns, 4096);
            assert_eq!(segments, want, "{conns} connections");
            assert!(wire_bytes > 0);
        }
    }
}
