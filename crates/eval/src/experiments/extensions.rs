//! Extension experiments: the offline-optimality gap, the SWAB lookahead
//! comparison (paper §6's complementarity claim), and the Kalman baseline
//! (paper §6, Jain et al.).

use pla_core::filters::{run_filter, KalmanFilter};
use pla_core::{metrics, offline, Signal};
use pla_signal::{random_walk, sea_surface, WalkParams};
use pla_swab::{Lookahead, Swab};

use crate::experiments::{report, Config, PRECISION_GRID};
use crate::{FilterKind, Table};

/// ext-optgap: how close do the filters get to the offline-optimal
/// recording count?
///
/// `min segments` is the provably minimal piece count for any
/// disconnected L∞-bounded PLA (the greedy/slide structure); `K + 1` is
/// the recording lower bound for *any* piece-wise linear approximation.
/// The gap column shows slide's recordings relative to that bound.
pub fn optgap_experiment(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let mut table = Table::new(
        "Extension: optimality gap vs precision width (sea surface)",
        "precision (% of range)",
        vec![
            "recording lower bound".to_string(),
            "slide recordings".to_string(),
            "swing recordings".to_string(),
            "slide / bound".to_string(),
        ],
    );
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let bound = offline::recording_lower_bound(&signal, &eps).expect("valid") as f64;
        let slide = report(FilterKind::Slide, &eps, &signal).n_recordings as f64;
        let swing = report(FilterKind::Swing, &eps, &signal).n_recordings as f64;
        table.push_row(pct, vec![bound, slide, swing, slide / bound.max(1.0)]);
    }
    table
}

/// ext-swab: SWAB segment counts with linear, swing, and slide
/// lookaheads, against the plain slide filter.
///
/// The VLDB paper's §6: "the swing and slide filters can replace the
/// linear filter in the SWAB algorithm" — this quantifies what that buys.
pub fn swab_experiment(cfg: &Config) -> Table {
    let signal = sea_surface();
    let mut table = Table::new(
        "Extension: SWAB segments by lookahead (sea surface, buffer 256)",
        "precision (% of range)",
        vec![
            "swab(linear)".to_string(),
            "swab(swing)".to_string(),
            "swab(slide)".to_string(),
            "plain slide".to_string(),
        ],
    );
    let _ = cfg;
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let mut row = Vec::with_capacity(4);
        for kind in [Lookahead::Linear, Lookahead::Swing, Lookahead::Slide] {
            let mut swab = Swab::new(&eps, 256, kind).expect("valid config");
            let segs = run_filter(&mut swab, &signal).expect("valid signal");
            row.push(segs.len() as f64);
        }
        row.push(report(FilterKind::Slide, &eps, &signal).n_segments as f64);
        table.push_row(pct, row);
    }
    table
}

/// ext-kalman: the Kalman-slope baseline against the paper's filters on
/// noisy trends (where slope smoothing should matter most).
pub fn kalman_experiment(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Extension: Kalman-slope baseline, CR vs noise amplitude (noisy ramp)",
        "noise amplitude (× ε)",
        vec!["linear".to_string(), "kalman".to_string(), "swing".to_string(), "slide".to_string()],
    );
    let eps = 1.0;
    for (i, &amp) in [0.5, 1.0, 2.0, 4.0, 8.0].iter().enumerate() {
        let signal = noisy_ramp(cfg.n, amp * eps, cfg.seed ^ (0x500 + i as u64));
        let linear = report(FilterKind::Linear, &[eps], &signal).compression_ratio;
        let mut kf = KalmanFilter::with_noise(&[eps], 1e-4, 0.25).expect("valid");
        let kalman = metrics::evaluate(&mut kf, &signal).expect("valid").compression_ratio;
        let swing = report(FilterKind::Swing, &[eps], &signal).compression_ratio;
        let slide = report(FilterKind::Slide, &[eps], &signal).compression_ratio;
        table.push_row(amp, vec![linear, kalman, swing, slide]);
    }
    table
}

/// A linear trend with uniform noise of the given amplitude — the
/// workload where a smoothed slope estimate shines.
fn noisy_ramp(n: usize, amplitude: f64, seed: u64) -> Signal {
    let jitter = random_walk(WalkParams { n, p_decrease: 0.5, max_delta: amplitude, seed });
    let mut out = Signal::with_capacity(1, n);
    let mut prev = 0.0;
    for (j, (t, x)) in jitter.iter().enumerate() {
        // De-integrate the walk into i.i.d.-ish noise around a ramp.
        let noise = x[0] - prev;
        prev = x[0];
        out.push(t, &[0.3 * j as f64 + noise]).expect("monotone time");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optgap_is_small_and_bounded_below() {
        let t = optgap_experiment(&Config::quick());
        let bound = t.series_values("recording lower bound");
        let slide = t.series_values("slide recordings");
        let gap = t.series_values("slide / bound");
        for i in 0..t.rows.len() {
            assert!(slide[i] >= bound[i], "row {i}: recordings below lower bound");
            assert!(
                gap[i] <= 2.0 + 1e-9,
                "row {i}: slide spends more than 2× the lower bound ({})",
                gap[i]
            );
        }
    }

    #[test]
    fn swab_slide_lookahead_not_worse_than_linear() {
        let t = swab_experiment(&Config::quick());
        let lin = t.series_values("swab(linear)");
        let sli = t.series_values("swab(slide)");
        for i in 0..t.rows.len() {
            assert!(
                sli[i] <= lin[i] * 1.15 + 2.0,
                "row {i}: swab(slide) {} much worse than swab(linear) {}",
                sli[i],
                lin[i]
            );
        }
    }

    #[test]
    fn kalman_beats_linear_on_noisy_trends() {
        let t = kalman_experiment(&Config::quick());
        let linear = t.series_values("linear");
        let kalman = t.series_values("kalman");
        let slide = t.series_values("slide");
        let mut kalman_wins = 0;
        for i in 0..t.rows.len() {
            if kalman[i] > linear[i] {
                kalman_wins += 1;
            }
            // The paper's point stands: swing/slide beat the
            // single-hypothesis Kalman approach too.
            assert!(
                slide[i] >= kalman[i] * 0.95,
                "row {i}: slide {} should not trail kalman {}",
                slide[i],
                kalman[i]
            );
        }
        assert!(
            kalman_wins >= t.rows.len() / 2,
            "kalman should beat plain linear on most noise levels"
        );
    }
}
