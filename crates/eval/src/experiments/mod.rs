//! Experiment implementations, one per figure (see the crate docs).

mod ablations;
mod collector;
mod extensions;
mod multistream;
mod netstream;
mod overhead;
mod realdata;
mod synthetic;

pub use ablations::{
    bytes_ablation, connect_ablation, hull_ablation, lag_ablation, variants_ablation,
};
pub use collector::{collector_fanin, collector_transfer};
pub use extensions::{kalman_experiment, optgap_experiment, swab_experiment};
pub use multistream::{ingest_run, multistream_throughput, stream_workload};
pub use netstream::{netstream_throughput, transfer as netstream_transfer};
pub use overhead::fig13_overhead;
pub use realdata::{fig6_signal, fig7_compression, fig8_error};
pub use synthetic::{
    fig10_delta, fig11_dims, fig12_correlation, fig9_monotonicity, joint_vs_independent,
};

use pla_core::metrics::{self, CompressionReport};
use pla_core::Signal;

use crate::FilterKind;

/// Shared experiment configuration.
///
/// Defaults match the scale of the paper's setup; [`Config::quick`] is a
/// reduced configuration for unit tests and smoke runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Number of synthetic samples per run (§5.3/§5.4 workloads).
    pub n: usize,
    /// Base RNG seed; sweeps derive per-point seeds from it.
    pub seed: u64,
    /// Minimum wall-clock time per timing measurement (Figure 13).
    pub timing_min_ms: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self { n: 20_000, seed: 0xC0FFEE, timing_min_ms: 50 }
    }
}

impl Config {
    /// Reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self { n: 2_000, seed: 0xC0FFEE, timing_min_ms: 2 }
    }
}

/// Runs one filter kind over a signal and returns the full report.
pub(crate) fn report(kind: FilterKind, eps: &[f64], signal: &Signal) -> CompressionReport {
    let mut filter = kind.build(eps).expect("valid epsilons");
    metrics::evaluate(filter.as_mut(), signal).expect("valid signal")
}

/// Compression ratio of one filter kind over a signal.
pub(crate) fn cr(kind: FilterKind, eps: &[f64], signal: &Signal) -> f64 {
    report(kind, eps, signal).compression_ratio
}

/// The paper's precision-width grid for the sea-surface figures
/// (percent of the signal's range; Figures 7/8 use up to 10%,
/// Figure 13 extends to 100%).
pub(crate) const PRECISION_GRID: [f64; 6] = [0.0316, 0.1, 0.316, 1.0, 3.16, 10.0];

/// Extended grid for the overhead figure.
pub(crate) const PRECISION_GRID_WIDE: [f64; 8] = [0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, 31.6, 100.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = Config::default();
        assert!(c.n >= 10_000);
        let q = Config::quick();
        assert!(q.n < c.n);
    }

    #[test]
    fn report_runs_every_paper_filter() {
        let signal = pla_signal::waveforms::sine(300, 2.0, 60.0);
        for kind in FilterKind::PAPER_SET {
            let r = report(kind, &[0.25], &signal);
            assert_eq!(r.n_points, 300);
            assert!(r.compression_ratio > 0.0, "{}", kind.label());
            assert!(r.error.max_abs_overall() <= 0.25 * (1.0 + 1e-6));
        }
    }
}
