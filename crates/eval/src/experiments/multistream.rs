//! Multi-stream ingest throughput: shard scaling over the signal
//! generators.
//!
//! The paper evaluates one filter on one stream; the deployment the
//! introduction motivates (a DSMS fed by thousands of sensors) runs one
//! filter *per stream*. Duvignau et al.'s implementation study
//! (arXiv:1808.08877) found that at that scale the dispatch layer around
//! the O(d) filter core — routing, queueing, per-sample call overhead —
//! dominates throughput. This experiment measures exactly that layer:
//! aggregate samples/second through `pla-ingest`'s shard-per-core
//! [`IngestEngine`], sweeping shard count for several stream populations
//! of random-walk signals.

use std::time::Instant;

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::Signal;
use pla_ingest::{IngestConfig, IngestEngine, StreamId};
use pla_signal::{random_walk, WalkParams};

use crate::experiments::Config;
use crate::Table;

/// Batch size used when feeding the engine: large enough to amortize the
/// channel rendezvous, small enough to keep all shards busy while a
/// signal is being chopped up.
const FEED_BATCH: usize = 256;

/// Generates one random-walk signal per stream, seeds derived from
/// `seed` so the workload is reproducible.
pub fn stream_workload(streams: usize, samples_per_stream: usize, seed: u64) -> Vec<Signal> {
    (0..streams)
        .map(|i| {
            random_walk(WalkParams {
                n: samples_per_stream,
                p_decrease: 0.5,
                max_delta: 1.0,
                seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            })
        })
        .collect()
}

/// Feeds `signals` (one stream each) through a fresh engine with
/// `shards` shards and returns the total samples absorbed.
///
/// Streams are fed round-robin in [`FEED_BATCH`]-sample batches — the
/// interleaved arrival pattern of many sensors on one collector — and the
/// run panics if any stream is quarantined or loses samples, so the
/// timing can never silently measure partial work.
pub fn ingest_run(shards: usize, signals: &[Signal]) -> u64 {
    let engine = IngestEngine::new(IngestConfig { shards, queue_depth: 1024, shard_log: false });
    let handle = engine.handle();
    for i in 0..signals.len() {
        handle
            .register(StreamId(i as u64), FilterSpec::new(FilterKind::Swing, &[0.5]))
            .expect("valid spec");
    }
    let per_stream: Vec<Vec<(f64, &[f64])>> = signals.iter().map(|s| s.iter().collect()).collect();
    let longest = per_stream.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut offset = 0;
    while offset < longest {
        for (i, samples) in per_stream.iter().enumerate() {
            if offset < samples.len() {
                let end = (offset + FEED_BATCH).min(samples.len());
                handle.push_batch(StreamId(i as u64), &samples[offset..end]).expect("engine up");
            }
        }
        offset += FEED_BATCH;
    }
    let report = engine.finish();
    assert_eq!(report.quarantined(), 0, "no stream may be quarantined");
    let expected: u64 = signals.iter().map(|s| s.len() as u64).sum();
    assert_eq!(report.total_samples(), expected, "every sample must be absorbed");
    expected
}

/// Multi-stream ingest throughput (million samples/second) vs shard
/// count, one series per stream population.
///
/// Samples per stream are sized so each cell processes `cfg.n` samples in
/// total, keeping quick and full configurations proportionate.
pub fn multistream_throughput(cfg: &Config) -> Table {
    let stream_counts = [16usize, 64, 256];
    let shard_counts = [1usize, 2, 4, 8];
    let mut table = Table::new(
        "Multi-stream ingest throughput (Msamples/s) vs shard count",
        "shards",
        stream_counts.iter().map(|s| format!("{s} streams")).collect(),
    );
    for &shards in &shard_counts {
        let mut row = Vec::with_capacity(stream_counts.len());
        for &streams in &stream_counts {
            let per_stream = (cfg.n / streams).max(2);
            let signals = stream_workload(streams, per_stream, cfg.seed);
            // Warm-up pass (thread spawn, page-in), then the timed run.
            ingest_run(shards, &signals);
            let start = Instant::now();
            let samples = ingest_run(shards, &signals);
            let secs = start.elapsed().as_secs_f64();
            row.push(samples as f64 / secs / 1e6);
        }
        table.push_row(shards as f64, row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_table_has_expected_shape() {
        let t = multistream_throughput(&Config::quick());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.series.len(), 3);
        for (shards, row) in &t.rows {
            for (series, v) in t.series.iter().zip(row) {
                assert!(
                    v.is_finite() && *v > 0.0,
                    "{shards} shards / {series}: bad throughput {v}"
                );
            }
        }
    }

    #[test]
    fn ingest_run_absorbs_every_sample() {
        let signals = stream_workload(5, 40, 0xC0FFEE);
        assert_eq!(ingest_run(2, &signals), 5 * 40);
    }

    #[test]
    fn workload_is_reproducible() {
        let a = stream_workload(3, 20, 7);
        let b = stream_workload(3, 20, 7);
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.len(), sb.len());
            for j in 0..sa.len() {
                assert_eq!(sa.sample(j), sb.sample(j));
            }
        }
        // Distinct streams are distinct signals.
        assert_ne!(a[0].sample(5), a[1].sample(5));
    }
}
