//! Multiplexed transport throughput: how fast `pla-net` can move many
//! streams' segment logs over one connection.
//!
//! The paper's transmitter/receiver analysis (§5.4) counts recordings;
//! this experiment measures the *transport* those recordings ride on
//! once many transmitters share one multiplexed connection: framing,
//! per-stream sequencing, credit flow control, acks, and the
//! `StreamDemux` reconstruction on the far side. Each cell transfers
//! every stream's full segment log end-to-end (sender endpoint →
//! framed bytes → receiver endpoint → per-stream logs) and reports
//! thousands of segments per second, plus the wire cost per segment.

use std::time::Instant;

use pla_core::filters::{run_filter, FilterKind};
use pla_core::Segment;
use pla_net::{MuxSender, NetConfig, NetReceiver};
use pla_transport::wire::FixedCodec;

use crate::experiments::Config;
use crate::Table;

/// Builds one segment log per stream from the Figure 9/10 random-walk
/// workload.
fn segment_logs(streams: usize, samples_per_stream: usize, seed: u64) -> Vec<Vec<Segment>> {
    super::multistream::stream_workload(streams, samples_per_stream, seed)
        .iter()
        .map(|signal| {
            let mut filter = FilterKind::Swing.build(&[0.5]).expect("valid eps");
            run_filter(filter.as_mut(), signal).expect("valid signal")
        })
        .collect()
}

/// Transfers every log over one multiplexed connection (lossless
/// in-process hop), returning `(segments, wire_bytes)`.
///
/// Streams are fed round-robin — the interleaved arrival pattern of
/// many transmitters — and a stream that hits credit backpressure
/// simply waits for the next grant round, so small windows exercise the
/// full credit protocol rather than erroring out.
pub fn transfer(logs: &[Vec<Segment>], window: u64) -> (u64, u64) {
    let cfg = NetConfig { window, max_frame: 1 << 20 };
    let mut tx = MuxSender::new(FixedCodec, 1, cfg);
    let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
    let mut cursors = vec![0usize; logs.len()];
    let mut segments = 0u64;
    let mut wire_bytes = 0u64;
    let mut done = false;
    while !done {
        done = true;
        for (id, log) in logs.iter().enumerate() {
            let cursor = &mut cursors[id];
            while *cursor < log.len() {
                match tx.try_send_segment(id as u64, &log[*cursor]) {
                    Ok(()) => {
                        *cursor += 1;
                        segments += 1;
                    }
                    Err(pla_net::NetError::Backpressure) => break,
                    Err(e) => panic!("send failed: {e}"),
                }
            }
            if *cursor < log.len() {
                done = false;
            }
        }
        if done {
            tx.finish_all();
        }
        // The lossless hop: sender bytes over, control bytes back.
        let staged = tx.take_staged();
        wire_bytes += staged.len() as u64;
        rx.on_bytes(&staged).expect("receiver");
        let back = rx.take_staged();
        wire_bytes += back.len() as u64;
        tx.on_bytes(&back).expect("sender");
    }
    assert!(tx.is_idle(), "all frames must be acknowledged");
    assert_eq!(rx.finished_streams().count(), logs.len());
    let recovered = rx.into_demux().into_segment_logs();
    let total: usize = recovered.values().map(|l| l.len()).sum();
    assert_eq!(total as u64, segments, "every segment must arrive exactly once");
    (segments, wire_bytes)
}

/// Multiplexed transport throughput (Ksegments/s) and wire cost vs
/// stream count, for a tight and a roomy credit window. The wire cost
/// is reported per window too: a tight window pays materially more
/// `Credit`/`Ack` control traffic per segment.
pub fn netstream_throughput(cfg: &Config) -> Table {
    let stream_counts = [8usize, 32, 128];
    let windows: [(u64, &str); 2] = [(2 * 1024, "2 KiB window"), (64 * 1024, "64 KiB window")];
    let mut table = Table::new(
        "Multiplexed transport throughput (Ksegments/s) and bytes/segment vs stream count",
        "streams",
        vec![
            format!("Kseg/s ({})", windows[0].1),
            format!("Kseg/s ({})", windows[1].1),
            format!("bytes/seg ({})", windows[0].1),
            format!("bytes/seg ({})", windows[1].1),
        ],
    );
    for &streams in &stream_counts {
        let per_stream = (cfg.n / streams).max(2);
        let logs = segment_logs(streams, per_stream, cfg.seed);
        let mut rates = Vec::new();
        let mut costs = Vec::new();
        for &(window, _) in &windows {
            transfer(&logs, window); // warm-up
            let start = Instant::now();
            let (segments, wire_bytes) = transfer(&logs, window);
            let secs = start.elapsed().as_secs_f64();
            rates.push(segments as f64 / secs / 1e3);
            costs.push(wire_bytes as f64 / segments.max(1) as f64);
        }
        rates.extend(costs);
        table.push_row(streams as f64, rates);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netstream_table_has_expected_shape() {
        let t = netstream_throughput(&Config::quick());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.series.len(), 4);
        for (streams, row) in &t.rows {
            assert!(row[0].is_finite() && row[0] > 0.0, "{streams} streams: {row:?}");
            assert!(row[1].is_finite() && row[1] > 0.0, "{streams} streams: {row:?}");
            assert!(row[2] > 16.0, "{streams} streams: implausible wire cost {}", row[2]);
            assert!(
                row[2] >= row[3],
                "{streams} streams: the tight window cannot be cheaper on the wire ({row:?})"
            );
        }
    }

    #[test]
    fn transfer_is_lossless_under_a_tiny_window() {
        let logs = segment_logs(6, 200, 0xF00D);
        let want: u64 = logs.iter().map(|l| l.len() as u64).sum();
        let (segments, wire_bytes) = transfer(&logs, 256);
        assert_eq!(segments, want);
        assert!(wire_bytes > 0);
    }
}
