//! Figure 13: per-point processing overhead.
//!
//! The paper feeds the sea-surface signal through each filter, varying
//! the precision width (which controls the average filtering-interval
//! length — the only knob that matters for per-point cost), and reports
//! microseconds per data point. The headline observations to reproduce:
//!
//! * cache, linear, swing, and the *optimized* slide filter are flat —
//!   their per-point cost does not grow with interval length;
//! * the non-optimized slide filter (no convex-hull maintenance; scans
//!   every stored point) blows up as coarser precision makes intervals
//!   longer;
//! * absolute costs sit in the microsecond-or-below regime.

use std::time::{Duration, Instant};

use pla_core::metrics::CountingSink;
use pla_core::Signal;
use pla_signal::sea_surface;

use crate::experiments::{Config, PRECISION_GRID_WIDE};
use crate::{FilterKind, Table};

/// Measures mean per-point processing time (µs) of one filter
/// configuration, re-running the whole signal until `min_duration` has
/// elapsed (the paper repeats 10 000×; we repeat adaptively).
pub fn time_per_point_us(
    kind: FilterKind,
    eps: &[f64],
    signal: &Signal,
    min_duration: Duration,
) -> f64 {
    let mut total = Duration::ZERO;
    let mut points = 0u64;
    // Warm-up pass (page in code and data).
    run_once(kind, eps, signal);
    while total < min_duration {
        let start = Instant::now();
        run_once(kind, eps, signal);
        total += start.elapsed();
        points += signal.len() as u64;
    }
    total.as_secs_f64() * 1e6 / points as f64
}

fn run_once(kind: FilterKind, eps: &[f64], signal: &Signal) {
    let mut filter = kind.build(eps).expect("valid epsilons");
    let mut sink = CountingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink).expect("valid signal");
    }
    filter.finish(&mut sink).expect("flush");
    // Keep the sink's counters observable so the work is not elided.
    std::hint::black_box(sink);
}

/// Figure 13: processing time per data point (µs) vs precision width for
/// all five filter configurations on the sea-surface signal.
pub fn fig13_overhead(cfg: &Config) -> Table {
    let signal = sea_surface();
    let mut table = Table::new(
        "Figure 13: processing time per data point (µs) vs precision width",
        "precision (% of range)",
        FilterKind::OVERHEAD_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    let min_duration = Duration::from_millis(cfg.timing_min_ms);
    for &pct in &PRECISION_GRID_WIDE {
        let eps = signal.epsilons_from_range_percent(pct);
        let values = FilterKind::OVERHEAD_SET
            .iter()
            .map(|&kind| time_per_point_us(kind, &eps, &signal, min_duration))
            .collect();
        table.push_row(pct, values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_filters_stay_flat_but_exhaustive_slide_blows_up() {
        let cfg = Config::quick();
        let t = fig13_overhead(&cfg);
        let opt = t.series_values("slide");
        let exh = t.series_values("slide (non-optimized)");
        // At the coarsest precision the intervals span hundreds of points:
        // the exhaustive filter must be far slower than the optimized one.
        let last = t.rows.len() - 1;
        assert!(
            exh[last] > 3.0 * opt[last],
            "exhaustive {} µs should dwarf optimized {} µs at 100% precision",
            exh[last],
            opt[last]
        );
        // The optimized slide filter must not blow up with interval
        // length: compare the finest and coarsest rows within an order of
        // magnitude.
        assert!(
            opt[last] < opt[0] * 10.0 + 1.0,
            "optimized slide not flat: {} → {} µs",
            opt[0],
            opt[last]
        );
    }

    #[test]
    fn all_filters_run_in_microseconds() {
        let cfg = Config::quick();
        let signal = sea_surface();
        let eps = signal.epsilons_from_range_percent(1.0);
        for kind in FilterKind::PAPER_SET {
            let us =
                time_per_point_us(kind, &eps, &signal, Duration::from_millis(cfg.timing_min_ms));
            assert!(
                us < 50.0,
                "{} took {us} µs per point — far above the paper's regime",
                kind.label()
            );
        }
    }
}
