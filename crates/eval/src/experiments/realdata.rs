//! Figures 6–8: the sea-surface-temperature experiments.

use pla_core::Signal;
use pla_signal::sea_surface;

use crate::experiments::{cr, report, Config, PRECISION_GRID};
use crate::{FilterKind, Table};

/// Figure 6: the (proxy) sea-surface temperature signal itself.
///
/// The paper plots the raw trace; this returns it for dumping/plotting.
pub fn fig6_signal() -> Signal {
    sea_surface()
}

/// Figure 7: compression ratio vs precision width (% of range) for the
/// four filters on the sea-surface signal.
///
/// Paper shape: slide > swing > cache > linear at every precision, with
/// the slide filter's advantage exploding at coarse precision (up to
/// ~19.7× over linear at 10%).
pub fn fig7_compression(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let mut table = Table::new(
        "Figure 7: compression ratio vs precision width — sea surface temperature",
        "precision (% of range)",
        FilterKind::PAPER_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let values = FilterKind::PAPER_SET.iter().map(|&kind| cr(kind, &eps, &signal)).collect();
        table.push_row(pct, values);
    }
    table
}

/// Figure 8: average reconstruction error (% of range) vs precision width
/// on the sea-surface signal.
///
/// Paper shape: all filters' average error is far below the prescribed
/// precision (≤ ~45% of it); slide/swing/cache nearly coincide and the
/// linear filter is slightly lower (it also compresses least).
pub fn fig8_error(_cfg: &Config) -> Table {
    let signal = sea_surface();
    let (lo, hi) = signal.range(0).expect("non-empty");
    let range = hi - lo;
    let mut table = Table::new(
        "Figure 8: average error vs precision width — sea surface temperature",
        "precision (% of range)",
        FilterKind::PAPER_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    for &pct in &PRECISION_GRID {
        let eps = signal.epsilons_from_range_percent(pct);
        let values = FilterKind::PAPER_SET
            .iter()
            .map(|&kind| {
                let r = report(kind, &eps, &signal);
                r.error.mean_abs_overall() / range * 100.0
            })
            .collect();
        table.push_row(pct, values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_slide_dominates_and_swing_beats_baselines() {
        let t = fig7_compression(&Config::quick());
        let slide = t.series_values("slide");
        let swing = t.series_values("swing");
        let cache = t.series_values("cache");
        let linear = t.series_values("linear");
        for i in 0..t.rows.len() {
            assert!(
                slide[i] >= swing[i] * 0.95,
                "row {i}: slide {} should not trail swing {}",
                slide[i],
                swing[i]
            );
            assert!(slide[i] >= 1.0, "compression ratio below 1 at row {i}");
            assert!(slide[i] >= linear[i], "row {i}: slide must dominate the linear filter");
            // Cache can nose ahead at precisions finer than the sensor's
            // 0.01 °C quantization (constant runs cost it one recording);
            // from 0.316% up, slide must dominate as in the paper.
            if t.rows[i].0 >= 0.3 {
                assert!(
                    slide[i] >= cache[i],
                    "row {i}: slide {} must dominate cache {}",
                    slide[i],
                    cache[i]
                );
            }
        }
        // Paper: ratios grow with precision width; check endpoints.
        assert!(slide.last().unwrap() > &slide[0]);
        // Paper: the cache filter beats the linear filter on this signal
        // (values repeat often). Check at the coarser precisions where the
        // effect is pronounced.
        let last = t.rows.len() - 1;
        assert!(
            cache[last] > linear[last],
            "cache {} should beat linear {} at 10% precision",
            cache[last],
            linear[last]
        );
    }

    #[test]
    fn fig8_errors_stay_below_precision() {
        let t = fig8_error(&Config::quick());
        for (row, (pct, values)) in t.rows.iter().enumerate() {
            for (s, v) in t.series.iter().zip(values.iter()) {
                assert!(v <= pct, "row {row}: {s} average error {v}% exceeds precision {pct}%");
            }
        }
    }

    #[test]
    fn fig6_is_the_paper_scale_signal() {
        let s = fig6_signal();
        assert_eq!(s.len(), 1285);
        assert_eq!(s.dims(), 1);
    }
}
