//! Figures 9–12 and the §5.4 analysis: synthetic random-walk experiments.

use pla_core::filters::{SlideFilter, StreamFilter};
use pla_signal::{correlated_walk, multi_walk, random_walk, WalkParams};
use pla_transport::packing::compare_joint_vs_independent;

use crate::experiments::{cr, Config};
use crate::{FilterKind, Table};

/// The synthetic experiments fix ε = 1 and express the step magnitude `x`
/// relative to it, exactly as the paper does ("% of precision width").
const EPS: f64 = 1.0;

/// Figure 9: compression ratio vs the probability `p` of a decreasing
/// step (degree of monotonicity), with `x = 400%` of the precision width.
///
/// Paper shape: slide ≳ swing > linear > cache everywhere; everything but
/// cache degrades as the signal turns from monotone (`p = 0`) to
/// oscillating (`p = 0.5`); slide-over-cache improvement runs from ~200%
/// (p=0) to ~70% (p=0.5).
pub fn fig9_monotonicity(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Figure 9: compression ratio vs degree of monotonicity (x = 400% of ε)",
        "p (probability of decrease)",
        FilterKind::PAPER_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    for step in 0..=10 {
        let p = step as f64 * 0.05;
        let signal = random_walk(WalkParams {
            n: cfg.n,
            p_decrease: p,
            max_delta: 4.0 * EPS,
            seed: cfg.seed ^ (step as u64),
        });
        let values = FilterKind::PAPER_SET.iter().map(|&kind| cr(kind, &[EPS], &signal)).collect();
        table.push_row(p, values);
    }
    table
}

/// Figure 10: compression ratio vs maximum step magnitude `x`
/// (% of precision width, log grid), with `p = 0.5`.
///
/// Paper shape: all ratios fall as `x` grows; slide wins throughout
/// (+266% over linear at x=10% down to +19.5% at x=10000%); cache beats
/// linear when `x < ε` because oscillation inside the band suits constant
/// prediction.
pub fn fig10_delta(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Figure 10: compression ratio vs step magnitude (p = 0.5)",
        "max delta (% of ε)",
        FilterKind::PAPER_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    for (i, &pct) in [10.0, 31.6, 100.0, 316.0, 1000.0, 3160.0, 10_000.0].iter().enumerate() {
        let signal = random_walk(WalkParams {
            n: cfg.n,
            p_decrease: 0.5,
            max_delta: pct / 100.0 * EPS,
            seed: cfg.seed ^ (0x10 + i as u64),
        });
        let values = FilterKind::PAPER_SET.iter().map(|&kind| cr(kind, &[EPS], &signal)).collect();
        table.push_row(pct, values);
    }
    table
}

/// Figure 11: compression ratio vs number of (independent) dimensions,
/// `p = 0.5`, `x = 400%` of ε.
///
/// Paper shape: ratios fall as dimensions are added (any dimension's
/// violation cuts everyone's interval); slide and swing stay on top.
pub fn fig11_dims(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Figure 11: compression ratio vs number of dimensions",
        "dimensions",
        FilterKind::PAPER_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    for d in 1..=10usize {
        let signal = multi_walk(
            d,
            WalkParams {
                n: cfg.n,
                p_decrease: 0.5,
                max_delta: 4.0 * EPS,
                seed: cfg.seed ^ (0x100 + d as u64),
            },
        );
        let eps = vec![EPS; d];
        let values = FilterKind::PAPER_SET.iter().map(|&kind| cr(kind, &eps, &signal)).collect();
        table.push_row(d as f64, values);
    }
    table
}

/// Figure 12: compression ratio vs correlation between the five
/// dimensions of a joint signal.
///
/// Paper shape: ratios rise with correlation (correlated dimensions
/// violate together); slide and swing dominate throughout.
pub fn fig12_correlation(cfg: &Config) -> Table {
    let mut table = Table::new(
        "Figure 12: compression ratio vs dimension correlation (d = 5)",
        "correlation",
        FilterKind::PAPER_SET.iter().map(|f| f.label().to_string()).collect(),
    );
    for step in 1..=10 {
        let rho = step as f64 * 0.1;
        let signal = correlated_walk(
            5,
            rho,
            WalkParams {
                n: cfg.n,
                p_decrease: 0.5,
                max_delta: 4.0 * EPS,
                seed: cfg.seed ^ (0x200 + step as u64),
            },
        );
        let eps = vec![EPS; 5];
        let values = FilterKind::PAPER_SET.iter().map(|&kind| cr(kind, &eps, &signal)).collect();
        table.push_row(rho, values);
    }
    table
}

/// §5.4: joint vs independent compression of a 5-dimensional signal as a
/// function of correlation, in scalar units.
///
/// Paper analysis: with a single-dimension ratio of 2.47, independent
/// compression is worth `2.47·(5+1)/(2·5) = 1.48`; joint compression
/// overtakes it once correlation exceeds ≈ 0.7. The table reports both
/// measured ratios plus the paper's closed-form model.
pub fn joint_vs_independent(cfg: &Config) -> Table {
    let mut table = Table::new(
        "§5.4: joint vs independent compression (slide filter, d = 5)",
        "correlation",
        vec![
            "joint CR".to_string(),
            "independent CR (scalar units)".to_string(),
            "independent CR (paper model)".to_string(),
        ],
    );
    for step in 1..=10 {
        let rho = step as f64 * 0.1;
        let signal = correlated_walk(
            5,
            rho,
            WalkParams {
                n: cfg.n,
                p_decrease: 0.5,
                max_delta: 4.0 * EPS,
                seed: cfg.seed ^ (0x300 + step as u64),
            },
        );
        let eps = vec![EPS; 5];
        let cmp = compare_joint_vs_independent(&signal, &eps, |e| {
            Box::new(SlideFilter::new(e).unwrap()) as Box<dyn StreamFilter>
        })
        .expect("valid signal");
        table.push_row(rho, vec![cmp.joint_cr, cmp.independent_cr, cmp.independent_cr_model]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config::quick()
    }

    #[test]
    fn fig9_slide_and_swing_beat_baselines() {
        let t = fig9_monotonicity(&quick());
        let slide = t.series_values("slide");
        let swing = t.series_values("swing");
        let cache = t.series_values("cache");
        let linear = t.series_values("linear");
        for i in 0..t.rows.len() {
            let best_base = cache[i].max(linear[i]);
            assert!(
                slide[i] >= best_base,
                "row {i}: slide {} below best baseline {best_base}",
                slide[i]
            );
            assert!(
                swing[i] >= 0.9 * best_base,
                "row {i}: swing {} far below best baseline {best_base}",
                swing[i]
            );
        }
        // Monotone signals compress better than oscillating ones.
        assert!(slide[0] > *slide.last().unwrap());
    }

    #[test]
    fn fig10_ratios_fall_with_delta_and_cache_beats_linear_when_small() {
        let t = fig10_delta(&quick());
        let slide = t.series_values("slide");
        let cache = t.series_values("cache");
        let linear = t.series_values("linear");
        // Paper: cache beats linear when x < ε (first row, x = 10% of ε).
        assert!(
            cache[0] > linear[0],
            "cache {} should beat linear {} at x = 10% of ε",
            cache[0],
            linear[0]
        );
        // Ratios drop from the first to the last row for every filter.
        for name in ["cache", "linear", "swing", "slide"] {
            let v = t.series_values(name);
            assert!(v[0] > *v.last().unwrap(), "{name}: CR should fall as delta grows");
        }
        // Slide dominates at both extremes.
        assert!(slide[0] >= linear[0] && slide[0] >= cache[0]);
        let last = t.rows.len() - 1;
        assert!(slide[last] >= linear[last] * 0.95);
    }

    #[test]
    fn fig11_ratio_falls_with_dimensions() {
        let t = fig11_dims(&quick());
        for name in ["swing", "slide"] {
            let v = t.series_values(name);
            assert!(v[0] > *v.last().unwrap(), "{name}: CR should fall from d=1 to d=10");
        }
        let slide = t.series_values("slide");
        let cache = t.series_values("cache");
        let linear = t.series_values("linear");
        for i in 0..t.rows.len() {
            assert!(slide[i] >= cache[i].max(linear[i]) * 0.95, "row {i}");
        }
    }

    #[test]
    fn fig12_ratio_rises_with_correlation() {
        let t = fig12_correlation(&quick());
        for name in ["swing", "slide"] {
            let v = t.series_values(name);
            assert!(
                *v.last().unwrap() > v[0],
                "{name}: CR should rise from ρ=0.1 to ρ=1.0 ({} vs {})",
                v.last().unwrap(),
                v[0]
            );
        }
    }

    #[test]
    fn joint_wins_only_at_high_correlation() {
        let t = joint_vs_independent(&quick());
        let joint = t.series_values("joint CR");
        let indep = t.series_values("independent CR (scalar units)");
        // At ρ=0.1 independent wins; at ρ=1.0 joint wins (paper's §5.4
        // crossover logic).
        assert!(indep[0] > joint[0], "independent should win at ρ=0.1");
        let last = t.rows.len() - 1;
        assert!(joint[last] > indep[last], "joint should win at ρ=1.0");
    }
}
