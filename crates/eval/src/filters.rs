//! The filter line-up every experiment compares.
//!
//! The enum itself lives in `pla_core::filters` (as the config-driven
//! [`FilterSpec`](pla_core::filters::FilterSpec) factory's kind tag) so
//! the ingest layer can build filters from configuration; this module
//! re-exports it under the name the experiments have always used.

pub use pla_core::filters::FilterKind;
