//! The filter line-up every experiment compares.

use pla_core::filters::{
    CacheFilter, CacheVariant, HullMode, LinearFilter, LinearMode, SlideFilter, StreamFilter,
    SwingFilter,
};

/// The filters of the paper's §5 comparison, plus the non-optimized slide
/// configuration of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Piece-wise constant baseline (§2.2, first-value variant).
    Cache,
    /// Connected linear baseline (§2.2).
    Linear,
    /// Swing filter (§3).
    Swing,
    /// Slide filter (§4), hull-optimized.
    Slide,
    /// Slide filter without the convex-hull optimization (Figure 13's
    /// "non-optimized slide").
    SlideExhaustive,
}

impl FilterKind {
    /// The four filters every compression figure compares.
    pub const PAPER_SET: [FilterKind; 4] =
        [FilterKind::Cache, FilterKind::Linear, FilterKind::Swing, FilterKind::Slide];

    /// The five configurations of the overhead figure.
    pub const OVERHEAD_SET: [FilterKind; 5] = [
        FilterKind::Cache,
        FilterKind::Linear,
        FilterKind::Swing,
        FilterKind::Slide,
        FilterKind::SlideExhaustive,
    ];

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Self::Cache => "cache",
            Self::Linear => "linear",
            Self::Swing => "swing",
            Self::Slide => "slide",
            Self::SlideExhaustive => "slide (non-optimized)",
        }
    }

    /// Builds a fresh filter instance for the given precision widths.
    pub fn build(self, eps: &[f64]) -> Box<dyn StreamFilter> {
        match self {
            Self::Cache => {
                Box::new(CacheFilter::with_variant(eps, CacheVariant::FirstValue).unwrap())
            }
            Self::Linear => Box::new(LinearFilter::with_mode(eps, LinearMode::Connected).unwrap()),
            Self::Swing => Box::new(SwingFilter::new(eps).unwrap()),
            Self::Slide => Box::new(SlideFilter::new(eps).unwrap()),
            Self::SlideExhaustive => {
                Box::new(SlideFilter::builder(eps).hull_mode(HullMode::Exhaustive).build().unwrap())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = FilterKind::OVERHEAD_SET.iter().map(|f| f.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn build_produces_working_filters() {
        for kind in FilterKind::OVERHEAD_SET {
            let mut f = kind.build(&[0.5]);
            let mut out: Vec<pla_core::Segment> = Vec::new();
            f.push(0.0, &[1.0], &mut out).unwrap();
            f.push(1.0, &[1.1], &mut out).unwrap();
            f.finish(&mut out).unwrap();
            assert!(!out.is_empty(), "{}", kind.label());
        }
    }
}
