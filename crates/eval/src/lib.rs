//! # pla-eval — the paper-reproduction harness
//!
//! One experiment module per figure of the paper's §5 evaluation plus the
//! ablations listed in DESIGN.md. Each experiment is a pure function from
//! a [`Config`](experiments::Config) to a [`Table`] — the `repro` binary
//! prints the tables, and EXPERIMENTS.md records a paper-vs-measured
//! comparison for every one.
//!
//! | Experiment | Paper result | Module |
//! |---|---|---|
//! | `fig6` | sea-surface signal dump | [`experiments::fig6_signal`] |
//! | `fig7` | compression ratio vs precision width | [`experiments::fig7_compression`] |
//! | `fig8` | average error vs precision width | [`experiments::fig8_error`] |
//! | `fig9` | CR vs degree of monotonicity | [`experiments::fig9_monotonicity`] |
//! | `fig10` | CR vs step magnitude | [`experiments::fig10_delta`] |
//! | `fig11` | CR vs number of dimensions | [`experiments::fig11_dims`] |
//! | `fig12` | CR vs dimension correlation | [`experiments::fig12_correlation`] |
//! | `fig13` | per-point processing time vs precision width | [`experiments::fig13_overhead`] |
//! | `joint` | §5.4 joint-vs-independent analysis | [`experiments::joint_vs_independent`] |
//! | `lag` | CR degradation under `m_max_lag` (ablation) | [`experiments::lag_ablation`] |
//! | `hull` | hull size vs interval length (ablation) | [`experiments::hull_ablation`] |
//! | `connect` | slide connection rate (ablation) | [`experiments::connect_ablation`] |
//! | `bytes` | wire-byte compression (ablation) | [`experiments::bytes_ablation`] |
//! | `variants` | cache-variant comparison (ablation) | [`experiments::variants_ablation`] |
//! | `multistream` | ingest throughput vs shard count (scale-out) | [`experiments::multistream_throughput`] |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
mod filters;
mod table;

pub use filters::FilterKind;
pub use table::Table;
