//! Result tables: the series a paper figure plots, printable as aligned
//! text, markdown, or CSV.

use std::fmt::Write as _;

/// A figure's data: one x column and one y column per series.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Figure title.
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Series names (paper legend entries).
    pub series: Vec<String>,
    /// Rows: x value plus one y per series.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<String>) -> Self {
        Self { title: title.into(), x_label: x_label.into(), series, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the series count.
    pub fn push_row(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row width mismatch");
        self.rows.push((x, values));
    }

    /// All y values of one series, in row order.
    ///
    /// # Panics
    ///
    /// Panics if the series does not exist.
    pub fn series_values(&self, name: &str) -> Vec<f64> {
        let idx = self
            .series
            .iter()
            .position(|s| s == name)
            .unwrap_or_else(|| panic!("no series named {name:?}"));
        self.rows.iter().map(|(_, v)| v[idx]).collect()
    }

    /// The x values, in row order.
    pub fn x_values(&self) -> Vec<f64> {
        self.rows.iter().map(|(x, _)| *x).collect()
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let headers: Vec<String> =
            std::iter::once(self.x_label.clone()).chain(self.series.iter().cloned()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(x, vals)| {
                std::iter::once(format_num(*x)).chain(vals.iter().map(|v| format_num(*v))).collect()
            })
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |out: &mut String, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &headers);
        for row in &cells {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{s}");
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x}");
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.001 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", "x", vec!["a".into(), "b".into()]);
        t.push_row(1.0, vec![2.0, 3.0]);
        t.push_row(2.0, vec![4.0, 6.0]);
        t
    }

    #[test]
    fn series_extraction() {
        let t = sample();
        assert_eq!(t.series_values("a"), vec![2.0, 4.0]);
        assert_eq!(t.series_values("b"), vec![3.0, 6.0]);
        assert_eq!(t.x_values(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        sample().push_row(3.0, vec![1.0]);
    }

    #[test]
    fn text_render_contains_all_cells() {
        let text = sample().to_text();
        assert!(text.contains("Demo"));
        assert!(text.contains("2.0000"));
        assert!(text.contains("6.0000"));
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,2,3");
    }

    #[test]
    fn extreme_values_format() {
        assert_eq!(format_num(0.0), "0");
        assert!(format_num(123456.0).contains('e'));
        assert!(format_num(0.0000123).contains('e'));
    }
}
