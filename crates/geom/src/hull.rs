//! Incremental convex hull of a time-ordered point stream.
//!
//! The slide filter (paper §4.1, Lemma 4.3) only ever inserts points with
//! strictly increasing `t`, which makes the hull maintenance the append-only
//! half of Andrew's monotone-chain algorithm: keep an *upper* chain (turns
//! clockwise as `t` grows) and a *lower* chain (turns counter-clockwise),
//! push the new point onto both, and pop middle vertices that break the
//! turn invariant. Each point is pushed and popped at most once per chain,
//! so maintenance is amortized O(1) per point.
//!
//! The paper's Algorithm 2 consults the chains as follows (everything in
//! one dimension `i`):
//!
//! * raising the lower envelope `lᵢᵏ` scans the **upper** chain shifted up
//!   by `εᵢ` (candidates `(t_j′, X_j′ + εᵢ)`, Alg. 2 line 35);
//! * lowering the upper envelope `uᵢᵏ` scans the **lower** chain shifted
//!   down by `εᵢ` (candidates `(t_j′, X_j′ − εᵢ)`, Alg. 2 line 38).

use crate::point::{cross, Point2};

/// Which of the two hull chains to address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chain {
    /// The chain bounding the points from above (clockwise turns).
    Upper,
    /// The chain bounding the points from below (counter-clockwise turns).
    Lower,
}

/// Convex hull of a stream of points with strictly increasing `t`.
///
/// Both chains share their first and last vertex (the oldest and newest
/// point), mirroring the list layout described in paper §4.1.
///
/// ```
/// use pla_geom::{IncrementalHull, Chain, Point2};
///
/// let mut hull = IncrementalHull::new();
/// for (t, x) in [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0), (3.0, 3.0)] {
///     hull.push(Point2::new(t, x));
/// }
/// // (1.0, 2.0) survives on the upper chain, (2.0, 1.0) on the lower one.
/// assert_eq!(hull.chain(Chain::Upper).len(), 3);
/// assert_eq!(hull.chain(Chain::Lower).len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalHull {
    upper: Vec<Point2>,
    lower: Vec<Point2>,
    len: usize,
}

impl IncrementalHull {
    /// An empty hull.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty hull with vertex capacity reserved on both chains.
    pub fn with_capacity(cap: usize) -> Self {
        Self { upper: Vec::with_capacity(cap), lower: Vec::with_capacity(cap), len: 0 }
    }

    /// Number of points inserted since the last [`clear`](Self::clear).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.len
    }

    /// Total number of distinct hull vertices (shared endpoints counted
    /// once). This is the paper's `m_H`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        match self.len {
            0 => 0,
            1 => 1,
            // Endpoints appear on both chains.
            _ => self.upper.len() + self.lower.len() - 2,
        }
    }

    /// The vertices of one chain, oldest first.
    #[inline]
    pub fn chain(&self, which: Chain) -> &[Point2] {
        match which {
            Chain::Upper => &self.upper,
            Chain::Lower => &self.lower,
        }
    }

    /// Removes all points, retaining buffer capacity for reuse by the next
    /// filtering interval.
    pub fn clear(&mut self) {
        self.upper.clear();
        self.lower.clear();
        self.len = 0;
    }

    /// Grows both chains' buffers to hold at least `cap` vertices without
    /// reallocating. A no-op once the capacity is there, so recycling
    /// callers (the slide filter) can call it on every interval open with
    /// their observed worst-case vertex count.
    pub fn ensure_capacity(&mut self, cap: usize) {
        if self.upper.capacity() < cap {
            self.upper.reserve(cap - self.upper.len());
        }
        if self.lower.capacity() < cap {
            self.lower.reserve(cap - self.lower.len());
        }
    }

    /// Inserts a point.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `p.t` is not strictly greater than the
    /// previously inserted timestamp; the filters validate monotonicity at
    /// their own boundary, so this is an internal invariant.
    // Inlined: the slide filter calls this once per dimension per sample;
    // without the hint the cross-crate call never inlines.
    #[inline]
    pub fn push(&mut self, p: Point2) {
        debug_assert!(
            self.upper.last().is_none_or(|q| q.t < p.t),
            "hull points must arrive in strictly increasing time order"
        );
        // Upper chain: walking oldest→newest must turn clockwise (Right);
        // pop middle points that make a left/straight turn. Collinear
        // middles are dropped — they can never host a strictly better
        // tangent than the surviving endpoints.
        while let [.., a, b] = self.upper.as_slice() {
            if cross(*a, *b, p) >= 0.0 {
                self.upper.pop();
            } else {
                break;
            }
        }
        self.upper.push(p);
        // Lower chain: must turn counter-clockwise (Left).
        while let [.., a, b] = self.lower.as_slice() {
            if cross(*a, *b, p) <= 0.0 {
                self.lower.pop();
            } else {
                break;
            }
        }
        self.lower.push(p);
        self.len += 1;
    }

    /// The most recently inserted point, if any.
    #[inline]
    pub fn last(&self) -> Option<Point2> {
        self.upper.last().copied()
    }

    /// The oldest retained point, if any.
    #[inline]
    pub fn first(&self) -> Option<Point2> {
        self.upper.first().copied()
    }
}

/// Batch convex hull (Andrew's monotone chain) used as the test oracle for
/// [`IncrementalHull`].
///
/// Input must be sorted by strictly increasing `t` (which the filters
/// guarantee). Returns `(upper, lower)` chains including both endpoints.
///
/// ```
/// use pla_geom::{batch_hull, Point2};
///
/// let points: Vec<Point2> = [(0.0, 0.0), (1.0, 3.0), (2.0, -1.0), (3.0, 0.5)]
///     .iter()
///     .map(|&(t, x)| Point2::new(t, x))
///     .collect();
/// let (upper, lower) = batch_hull(&points);
/// // The spike at t=1 survives only on the upper chain, the dip at t=2
/// // only on the lower one; both chains share the endpoints.
/// assert_eq!(upper.len(), 3);
/// assert_eq!(lower.len(), 3);
/// assert_eq!(upper.first(), lower.first());
/// assert_eq!(upper.last(), lower.last());
/// ```
pub fn batch_hull(points: &[Point2]) -> (Vec<Point2>, Vec<Point2>) {
    let mut h = IncrementalHull::with_capacity(points.len());
    for &p in points {
        h.push(p);
    }
    (h.upper, h.lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point2> {
        v.iter().map(|&(t, x)| Point2::new(t, x)).collect()
    }

    #[test]
    fn empty_and_singleton() {
        let mut h = IncrementalHull::new();
        assert_eq!(h.num_vertices(), 0);
        h.push(Point2::new(0.0, 1.0));
        assert_eq!(h.num_vertices(), 1);
        assert_eq!(h.chain(Chain::Upper), h.chain(Chain::Lower));
    }

    #[test]
    fn two_points_share_both_chains() {
        let mut h = IncrementalHull::new();
        h.push(Point2::new(0.0, 0.0));
        h.push(Point2::new(1.0, 5.0));
        assert_eq!(h.num_vertices(), 2);
        assert_eq!(h.chain(Chain::Upper).len(), 2);
        assert_eq!(h.chain(Chain::Lower).len(), 2);
    }

    #[test]
    fn interior_point_is_dropped_from_both_chains() {
        let mut h = IncrementalHull::new();
        for p in pts(&[(0.0, 0.0), (1.0, 0.1), (2.0, 0.0)]) {
            h.push(p);
        }
        // (1, 0.1) bulges up: stays on upper, leaves lower.
        assert_eq!(h.chain(Chain::Upper).len(), 3);
        assert_eq!(h.chain(Chain::Lower).len(), 2);
    }

    #[test]
    fn collinear_middle_points_are_dropped() {
        let mut h = IncrementalHull::new();
        for p in pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]) {
            h.push(p);
        }
        assert_eq!(h.chain(Chain::Upper).len(), 2);
        assert_eq!(h.chain(Chain::Lower).len(), 2);
    }

    #[test]
    fn monotone_increasing_signal_has_two_vertex_chains_only_at_ends() {
        let mut h = IncrementalHull::new();
        for i in 0..100 {
            // convex (accelerating) curve: all points on the lower hull,
            // only the endpoints on the upper hull
            h.push(Point2::new(i as f64, (i * i) as f64));
        }
        assert_eq!(h.chain(Chain::Upper).len(), 2);
        assert_eq!(h.chain(Chain::Lower).len(), 100);
    }

    #[test]
    fn chains_are_convex() {
        let mut h = IncrementalHull::new();
        let data =
            [(0.0, 3.0), (1.0, -1.0), (2.0, 4.0), (3.0, 0.5), (4.0, 2.0), (5.0, -3.0), (6.0, 1.0)];
        for p in pts(&data) {
            h.push(p);
        }
        let up = h.chain(Chain::Upper);
        for w in up.windows(3) {
            assert!(cross(w[0], w[1], w[2]) < 0.0, "upper chain must turn right");
        }
        let lo = h.chain(Chain::Lower);
        for w in lo.windows(3) {
            assert!(cross(w[0], w[1], w[2]) > 0.0, "lower chain must turn left");
        }
    }

    #[test]
    fn all_points_lie_on_or_inside_hull() {
        let data: Vec<Point2> = (0..50)
            .map(|i| {
                let t = i as f64;
                Point2::new(t, (t * 0.7).sin() * 3.0 + (t * 0.13).cos())
            })
            .collect();
        let (upper, lower) = batch_hull(&data);
        for &p in &data {
            // below every upper edge, above every lower edge
            for w in upper.windows(2) {
                let l = crate::Line::through(w[0], w[1]);
                if p.t >= w[0].t && p.t <= w[1].t {
                    assert!(l.residual(p) <= 1e-9, "point {p:?} above upper hull");
                }
            }
            for w in lower.windows(2) {
                let l = crate::Line::through(w[0], w[1]);
                if p.t >= w[0].t && p.t <= w[1].t {
                    assert!(l.residual(p) >= -1e-9, "point {p:?} below lower hull");
                }
            }
        }
    }

    #[test]
    fn clear_retains_capacity() {
        let mut h = IncrementalHull::with_capacity(16);
        for i in 0..10 {
            h.push(Point2::new(i as f64, (i % 3) as f64));
        }
        h.clear();
        assert_eq!(h.num_points(), 0);
        assert_eq!(h.num_vertices(), 0);
        h.push(Point2::new(0.0, 0.0));
        assert_eq!(h.num_vertices(), 1);
    }
}
