//! Computational-geometry substrate for the `pla` workspace.
//!
//! The slide filter of Elmeleegy et al. (VLDB 2009) reduces its envelope
//! maintenance to two classic planar problems (paper §4.1, Lemma 4.3):
//!
//! 1. **Incremental convex hull** of the data points observed in the current
//!    filtering interval, where points arrive in strictly increasing time
//!    order. This is the "two sorted chains" special case of Andrew's
//!    monotone-chain algorithm: each insertion appends to both chains and
//!    pops vertices that no longer turn the right way (amortized O(1)).
//! 2. **Extreme-slope tangents** from a new point (which lies strictly to
//!    the right of the hull) to the ε-shifted hull — the candidate upper and
//!    lower envelope lines of Lemma 4.1.
//!
//! The paper cites de Berg et al., *Computational Geometry* for (1) and
//! Chazelle & Dobkin for a sub-linear version of (2). This crate implements
//! both a linear scan and an O(log n) binary search for (2); the slide
//! filter uses the scan by default (hulls stay tiny in practice — the
//! paper's Figure 13 observation) and the tests cross-check the two.
//!
//! Everything here is allocation-conscious: the hull reuses its vertex
//! buffers across filtering intervals via [`IncrementalHull::clear`].

#![warn(missing_docs)]
#![warn(clippy::all)]

mod hull;
mod line;
mod point;
mod tangent;

pub use hull::{batch_hull, Chain, IncrementalHull};
pub use line::Line;
pub use point::{cross, turn, Point2, Turn};
pub use tangent::{max_slope_to_chain, min_slope_to_chain, scan, TangentHit};
