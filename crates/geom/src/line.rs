//! Non-vertical lines in the `(t, x)` plane, in point–slope form.
//!
//! The swing and slide envelopes (`uᵢᵏ`, `lᵢᵏ` in the paper) are stored as
//! a line anchored at a point that lies *inside* the current filtering
//! interval. Anchoring at an in-interval point — rather than, say, the
//! intercept at `t = 0` — keeps evaluation numerically stable even when
//! timestamps are large (e.g. Unix epochs): the products `slope · (t − t₀)`
//! stay small.

use crate::point::Point2;

/// A non-vertical line `x(t) = x₀ + slope · (t − t₀)`.
///
/// The `Default` line is the degenerate `x(t) = 0` through the origin; it
/// exists so lines can live in fixed-capacity inline storage
/// (`pla_core`'s `DimVec`) and carries no geometric meaning.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Line {
    /// Anchor time.
    pub t0: f64,
    /// Value at the anchor time.
    pub x0: f64,
    /// Slope `dx/dt`.
    pub slope: f64,
}

impl Line {
    /// Line through `anchor` with the given slope.
    #[inline]
    pub const fn new(anchor: Point2, slope: f64) -> Self {
        Self { t0: anchor.t, x0: anchor.x, slope }
    }

    /// Line through two points with distinct timestamps.
    ///
    /// Anchored at `a`. Returns a line with infinite slope if the
    /// timestamps coincide; callers are expected to have rejected
    /// non-increasing timestamps already.
    #[inline]
    pub fn through(a: Point2, b: Point2) -> Self {
        Self::new(a, a.slope_to(b))
    }

    /// Value of the line at time `t`.
    #[inline]
    pub fn eval(&self, t: f64) -> f64 {
        self.x0 + self.slope * (t - self.t0)
    }

    /// The anchor point.
    #[inline]
    pub fn anchor(&self) -> Point2 {
        Point2::new(self.t0, self.x0)
    }

    /// Re-anchors the line at time `t` without changing its graph.
    ///
    /// Useful before storing a line for a long time: the anchor should sit
    /// near the times at which the line will later be evaluated.
    #[inline]
    pub fn anchored_at(&self, t: f64) -> Self {
        Self { t0: t, x0: self.eval(t), slope: self.slope }
    }

    /// Time at which `self` and `other` intersect.
    ///
    /// Returns `None` for (near-)parallel lines — parallel feasible
    /// envelopes mean the connection window of Lemma 4.4 is unbounded on
    /// one side, which the slide filter handles explicitly.
    #[inline]
    pub fn intersection_t(&self, other: &Line) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds == 0.0 || !ds.is_finite() {
            return None;
        }
        // self.x0 + s1 (t - t01) = other.x0 + s2 (t - t02)
        let t = (other.x0 - self.x0 + self.slope * self.t0 - other.slope * other.t0) / ds;
        t.is_finite().then_some(t)
    }

    /// Point at which `self` and `other` intersect.
    #[inline]
    pub fn intersection(&self, other: &Line) -> Option<Point2> {
        self.intersection_t(other).map(|t| Point2::new(t, self.eval(t)))
    }

    /// The line shifted vertically by `dx`.
    #[inline]
    pub fn shifted(&self, dx: f64) -> Self {
        Self { t0: self.t0, x0: self.x0 + dx, slope: self.slope }
    }

    /// Vertical distance `x − line(t)` of a point above the line
    /// (negative when below).
    #[inline]
    pub fn residual(&self, p: Point2) -> f64 {
        p.x - self.eval(p.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn through_two_points_interpolates() {
        let l = Line::through(Point2::new(1.0, 1.0), Point2::new(3.0, 5.0));
        assert_eq!(l.slope, 2.0);
        assert_eq!(l.eval(1.0), 1.0);
        assert_eq!(l.eval(3.0), 5.0);
        assert_eq!(l.eval(2.0), 3.0);
    }

    #[test]
    fn intersection_of_crossing_lines() {
        let a = Line::new(Point2::new(0.0, 0.0), 1.0);
        let b = Line::new(Point2::new(0.0, 4.0), -1.0);
        let p = a.intersection(&b).unwrap();
        assert_eq!(p, Point2::new(2.0, 2.0));
    }

    #[test]
    fn parallel_lines_do_not_intersect() {
        let a = Line::new(Point2::new(0.0, 0.0), 0.5);
        let b = Line::new(Point2::new(0.0, 1.0), 0.5);
        assert_eq!(a.intersection_t(&b), None);
    }

    #[test]
    fn reanchoring_preserves_graph() {
        let l = Line::new(Point2::new(1.0e9, 3.0), 1.0e-3);
        let r = l.anchored_at(1.0e9 + 500.0);
        for dt in [0.0, 10.0, 123.456] {
            let t = 1.0e9 + dt;
            assert!((l.eval(t) - r.eval(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn residual_sign() {
        let l = Line::new(Point2::new(0.0, 0.0), 1.0);
        assert!(l.residual(Point2::new(1.0, 2.0)) > 0.0);
        assert!(l.residual(Point2::new(1.0, 0.0)) < 0.0);
        assert_eq!(l.residual(Point2::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn shifted_moves_value() {
        let l = Line::new(Point2::new(0.0, 1.0), 2.0).shifted(0.5);
        assert_eq!(l.eval(0.0), 1.5);
        assert_eq!(l.slope, 2.0);
    }

    #[test]
    fn intersection_with_equal_slope_after_subtraction_is_none() {
        let a = Line::new(Point2::new(0.0, 0.0), 1.0 + 1e-18);
        let b = Line::new(Point2::new(0.0, 1.0), 1.0);
        // slopes differ by less than f64 epsilon at this magnitude → the
        // subtraction underflows to a denormal/zero; either answer (None or
        // a huge t) must not be NaN.
        if let Some(t) = a.intersection_t(&b) {
            assert!(t.is_finite());
        }
    }
}
