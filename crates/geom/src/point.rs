//! Planar points in the `(t, x)` plane and orientation predicates.
//!
//! Throughout the workspace the horizontal axis is *time* and the vertical
//! axis is the signal value of one dimension, matching the paper's
//! "t–xᵢ plane" projections.

/// A point in the `(t, x)` plane.
///
/// `t` is a timestamp, `x` the signal value of a single dimension at that
/// time. Coordinates are `f64`; the filters never need exact arithmetic
/// because every accept/reject decision already tolerates the prescribed
/// precision width (see the crate docs of `pla-core`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// Time coordinate.
    pub t: f64,
    /// Value coordinate.
    pub x: f64,
}

impl Point2 {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(t: f64, x: f64) -> Self {
        Self { t, x }
    }

    /// Returns this point shifted vertically by `dx` (used for the
    /// `(t, x ± ε)` constructions of Lemmas 4.1–4.3).
    #[inline]
    pub fn shifted(self, dx: f64) -> Self {
        Self { t: self.t, x: self.x + dx }
    }

    /// Slope of the line from `self` to `other`.
    ///
    /// Returns `±∞` when the two points share a timestamp; the filters
    /// reject non-increasing timestamps before ever calling this.
    #[inline]
    pub fn slope_to(self, other: Point2) -> f64 {
        (other.x - self.x) / (other.t - self.t)
    }
}

/// Orientation of the ordered triple `(o, a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Turn {
    /// `b` lies to the left of the directed line `o → a`
    /// (counter-clockwise).
    Left,
    /// `b` lies to the right of the directed line `o → a` (clockwise).
    Right,
    /// The three points are collinear.
    Straight,
}

/// Twice the signed area of the triangle `(o, a, b)`.
///
/// Positive for a counter-clockwise (left) turn, negative for clockwise
/// (right), zero for collinear points.
#[inline]
pub fn cross(o: Point2, a: Point2, b: Point2) -> f64 {
    (a.t - o.t) * (b.x - o.x) - (a.x - o.x) * (b.t - o.t)
}

/// Classifies the turn made at `a` when walking `o → a → b`.
#[inline]
pub fn turn(o: Point2, a: Point2, b: Point2) -> Turn {
    let c = cross(o, a, b);
    if c > 0.0 {
        Turn::Left
    } else if c < 0.0 {
        Turn::Right
    } else {
        Turn::Straight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_sign_matches_orientation() {
        let o = Point2::new(0.0, 0.0);
        let a = Point2::new(1.0, 0.0);
        let up = Point2::new(2.0, 1.0);
        let down = Point2::new(2.0, -1.0);
        let ahead = Point2::new(2.0, 0.0);
        assert!(cross(o, a, up) > 0.0);
        assert!(cross(o, a, down) < 0.0);
        assert_eq!(cross(o, a, ahead), 0.0);
    }

    #[test]
    fn turn_classification() {
        let o = Point2::new(0.0, 0.0);
        let a = Point2::new(1.0, 1.0);
        assert_eq!(turn(o, a, Point2::new(1.0, 2.0)), Turn::Left);
        assert_eq!(turn(o, a, Point2::new(2.0, 0.0)), Turn::Right);
        assert_eq!(turn(o, a, Point2::new(2.0, 2.0)), Turn::Straight);
    }

    #[test]
    fn slope_to_is_rise_over_run() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, 8.0);
        assert_eq!(a.slope_to(b), 3.0);
        assert_eq!(b.slope_to(a), 3.0);
    }

    #[test]
    fn shifted_moves_only_x() {
        let p = Point2::new(5.0, 1.0).shifted(0.25);
        assert_eq!(p, Point2::new(5.0, 1.25));
    }

    #[test]
    fn slope_to_vertical_is_infinite() {
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(1.0, 3.0);
        assert!(a.slope_to(b).is_infinite());
    }
}
