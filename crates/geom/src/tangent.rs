//! Extreme-slope queries from a new point to an ε-shifted hull chain.
//!
//! When the slide filter must rebuild an envelope (paper Alg. 2 lines
//! 34–39), it looks for the line through the shifted new point
//! `q = (t_j, x_j ∓ ε)` and some shifted earlier point that has the extreme
//! slope:
//!
//! * new **lower** envelope `lᵢᵏ`: *maximum* slope over lines through
//!   `(t_j′, x_j′ + ε)` and `q = (t_j, x_j − ε)` — the up-shifted earlier
//!   touch lives on the **lower** hull chain;
//! * new **upper** envelope `uᵢᵏ`: *minimum* slope over lines through
//!   `(t_j′, x_j′ − ε)` and `q = (t_j, x_j + ε)` — the down-shifted earlier
//!   touch lives on the **upper** hull chain.
//!
//! Along the correct chain the slope, viewed as a function of the vertex
//! index, is unimodal: consecutive chord lines of a convex chain, evaluated
//! at `q.t` (which lies to the right of the whole chain), are ordered
//! monotonically in the index, so "is `q` above chord `i`" flips at most
//! once. That yields the O(log n) binary searches below — the
//! Chazelle–Dobkin-style refinement the paper alludes to ("an even more
//! efficient algorithm can be found in [6]"). The filters default to these;
//! the test suite cross-checks them against exhaustive scans.

use crate::point::Point2;

/// Result of a tangent query: the touched vertex and the tangent slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TangentHit {
    /// Index of the touched vertex within the queried chain.
    pub index: usize,
    /// The touched vertex, already shifted by the query's `shift`.
    pub vertex: Point2,
    /// Slope of the line from the shifted vertex to the query point.
    pub slope: f64,
}

#[inline]
fn slope_from(chain: &[Point2], shift: f64, i: usize, q: Point2) -> f64 {
    Point2::new(chain[i].t, chain[i].x + shift).slope_to(q)
}

fn hit(chain: &[Point2], shift: f64, i: usize, q: Point2) -> TangentHit {
    let vertex = Point2::new(chain[i].t, chain[i].x + shift);
    TangentHit { index: i, vertex, slope: vertex.slope_to(q) }
}

/// Unimodal binary search: find the index maximizing `f` when `f` rises
/// then falls (`maximize = true`), or minimizing it when it falls then
/// rises (`maximize = false`). Returns the index and its slope.
///
/// The comparisons run on cross-multiplied rise/run pairs instead of the
/// slopes themselves: every chain vertex precedes `q` in time, so the
/// runs `tᵢ − q.t` are strictly negative, their product is positive, and
/// `A/da < B/db ⟺ A·db < B·da`. That keeps the envelope-rebuild hot
/// path (the slide filter calls this ~once per dimension per accepted
/// point) off the divider; only the winning slope pays one division.
fn unimodal_argopt(
    chain: &[Point2],
    shift: f64,
    q: Point2,
    maximize: bool,
) -> Option<(usize, f64)> {
    if chain.is_empty() {
        return None;
    }
    let rise = |i: usize| chain[i].x + shift - q.x;
    let run = |i: usize| chain[i].t - q.t;
    let (mut lo, mut hi) = (0usize, chain.len() - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // b > a ⟺ B·da > A·db (da, db < 0, so da·db > 0).
        let (b_cross, a_cross) = (rise(mid + 1) * run(mid), rise(mid) * run(mid + 1));
        let go_right = if maximize { b_cross > a_cross } else { b_cross < a_cross };
        if go_right {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some((lo, slope_from(chain, shift, lo, q)))
}

/// Maximum-slope line from a vertex of `chain` (each shifted vertically by
/// `shift`) to the query point `q`.
///
/// `chain` must be the **lower** hull chain (counter-clockwise turns) of
/// points whose timestamps all precede `q.t`; the slope is then unimodal
/// (rising, then falling) in the vertex index and the search is O(log n).
///
/// Returns `None` on an empty chain.
#[inline]
pub fn max_slope_to_chain(chain: &[Point2], shift: f64, q: Point2) -> Option<TangentHit> {
    unimodal_argopt(chain, shift, q, true).map(|(i, slope)| TangentHit {
        index: i,
        vertex: Point2::new(chain[i].t, chain[i].x + shift),
        slope,
    })
}

/// Minimum-slope line from a vertex of `chain` (each shifted vertically by
/// `shift`) to the query point `q`.
///
/// `chain` must be the **upper** hull chain (clockwise turns) of points
/// whose timestamps all precede `q.t`; the slope is then unimodal (falling,
/// then rising) in the vertex index.
///
/// Returns `None` on an empty chain.
#[inline]
pub fn min_slope_to_chain(chain: &[Point2], shift: f64, q: Point2) -> Option<TangentHit> {
    unimodal_argopt(chain, shift, q, false).map(|(i, slope)| TangentHit {
        index: i,
        vertex: Point2::new(chain[i].t, chain[i].x + shift),
        slope,
    })
}

/// Exhaustive-scan variants, used as test oracles and by the
/// "non-optimized slide filter" configuration of the paper's Figure 13.
pub mod scan {
    use super::*;

    /// Linear-scan version of [`max_slope_to_chain`](super::max_slope_to_chain);
    /// works on arbitrary point sets, not just convex chains.
    pub fn max_slope(points: &[Point2], shift: f64, q: Point2) -> Option<TangentHit> {
        argopt(points, shift, q, true)
    }

    /// Linear-scan version of [`min_slope_to_chain`](super::min_slope_to_chain).
    pub fn min_slope(points: &[Point2], shift: f64, q: Point2) -> Option<TangentHit> {
        argopt(points, shift, q, false)
    }

    /// Like [`max_slope`], but every point must precede `q` in time.
    /// Runs the comparisons on cross-multiplied rise/run pairs (all runs
    /// negative, so `A/da < B/db ⟺ A·db < B·da`), paying a single
    /// division for the winner — the slide filter's rebuild hot path for
    /// intervals still below its hull threshold.
    pub fn max_slope_before(points: &[Point2], shift: f64, q: Point2) -> Option<TangentHit> {
        argopt_before(points, shift, q, true)
    }

    /// Like [`min_slope`], but every point must precede `q` in time.
    pub fn min_slope_before(points: &[Point2], shift: f64, q: Point2) -> Option<TangentHit> {
        argopt_before(points, shift, q, false)
    }

    fn argopt_before(
        points: &[Point2],
        shift: f64,
        q: Point2,
        maximize: bool,
    ) -> Option<TangentHit> {
        let (first, rest) = points.split_first()?;
        debug_assert!(points.iter().all(|p| p.t < q.t));
        let mut best = 0usize;
        let (mut best_rise, mut best_run) = (first.x + shift - q.x, first.t - q.t);
        for (j, p) in rest.iter().enumerate() {
            let (rise, run) = (p.x + shift - q.x, p.t - q.t);
            let (cand, incumbent) = (rise * best_run, best_rise * run);
            let better = if maximize { cand > incumbent } else { cand < incumbent };
            if better {
                best = j + 1;
                (best_rise, best_run) = (rise, run);
            }
        }
        Some(hit(points, shift, best, q))
    }

    fn argopt(points: &[Point2], shift: f64, q: Point2, maximize: bool) -> Option<TangentHit> {
        let mut best: Option<usize> = None;
        let mut best_slope = if maximize { f64::NEG_INFINITY } else { f64::INFINITY };
        for i in 0..points.len() {
            let s = slope_from(points, shift, i, q);
            let better = if maximize { s > best_slope } else { s < best_slope };
            if better {
                best_slope = s;
                best = Some(i);
            }
        }
        best.map(|i| hit(points, shift, i, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::batch_hull;

    fn pts(v: &[(f64, f64)]) -> Vec<Point2> {
        v.iter().map(|&(t, x)| Point2::new(t, x)).collect()
    }

    #[test]
    fn single_vertex_chain() {
        let chain = pts(&[(0.0, 1.0)]);
        let q = Point2::new(2.0, 5.0);
        let h = max_slope_to_chain(&chain, 0.0, q).unwrap();
        assert_eq!(h.index, 0);
        assert_eq!(h.slope, 2.0);
    }

    #[test]
    fn empty_chain_yields_none() {
        assert_eq!(max_slope_to_chain(&[], 0.0, Point2::new(0.0, 0.0)), None);
        assert_eq!(min_slope_to_chain(&[], 0.0, Point2::new(0.0, 0.0)), None);
    }

    #[test]
    fn interior_valley_hosts_max_slope_on_lower_chain() {
        // valley at t=1 — lower chain keeps it; max slope to a low query
        // point comes from the valley.
        let points = pts(&[(0.0, 0.0), (1.0, -1.5), (2.0, 0.0)]);
        let (_, lower) = batch_hull(&points);
        let q = Point2::new(3.0, -1.5); // x_j − ε with ε=1, x_j=−0.5
        let h = max_slope_to_chain(&lower, 1.0, q).unwrap();
        assert_eq!(h.vertex, Point2::new(1.0, -0.5));
        assert!((h.slope - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn interior_peak_hosts_min_slope_on_upper_chain() {
        let points = pts(&[(0.0, 0.0), (1.0, 1.5), (2.0, 0.0)]);
        let (upper, _) = batch_hull(&points);
        let q = Point2::new(3.0, 1.5); // x_j + ε with ε=1, x_j=0.5
        let h = min_slope_to_chain(&upper, -1.0, q).unwrap();
        assert_eq!(h.vertex, Point2::new(1.0, 0.5));
        assert!((h.slope - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binary_search_matches_scan_on_random_chains() {
        // Deterministic pseudo-random walk; cross-check the O(log n)
        // search against the exhaustive scan on both chains.
        let mut x = 0.0f64;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for trial in 0..200 {
            let n = 3 + (trial % 40);
            let points: Vec<Point2> = (0..n)
                .map(|i| {
                    x += rnd();
                    Point2::new(i as f64, x)
                })
                .collect();
            let (upper, lower) = batch_hull(&points);
            let q_low = Point2::new(n as f64 + 1.0, x + rnd() * 3.0);
            let q_high = Point2::new(n as f64 + 1.0, x + rnd() * 3.0);
            let fast = max_slope_to_chain(&lower, 0.5, q_low).unwrap();
            let slow = scan::max_slope(&lower, 0.5, q_low).unwrap();
            assert!((fast.slope - slow.slope).abs() < 1e-9, "max mismatch: {fast:?} vs {slow:?}");
            let divfree = scan::max_slope_before(&points, 0.5, q_low).unwrap();
            assert!(
                (divfree.slope - slow.slope).abs() < 1e-9,
                "max_before mismatch: {divfree:?} vs {slow:?}"
            );
            let fast = min_slope_to_chain(&upper, -0.5, q_high).unwrap();
            let slow = scan::min_slope(&upper, -0.5, q_high).unwrap();
            assert!((fast.slope - slow.slope).abs() < 1e-9, "min mismatch: {fast:?} vs {slow:?}");
            let divfree = scan::min_slope_before(&points, -0.5, q_high).unwrap();
            assert!(
                (divfree.slope - slow.slope).abs() < 1e-9,
                "min_before mismatch: {divfree:?} vs {slow:?}"
            );
        }
    }

    #[test]
    fn scan_handles_non_convex_sets() {
        // The non-optimized slide filter scans raw point sets.
        let points = pts(&[(0.0, 0.0), (1.0, 5.0), (2.0, -5.0), (3.0, 1.0)]);
        let q = Point2::new(4.0, 0.0);
        let h = scan::max_slope(&points, 0.0, q).unwrap();
        assert_eq!(h.vertex, Point2::new(2.0, -5.0));
        let h = scan::min_slope(&points, 0.0, q).unwrap();
        assert_eq!(h.vertex, Point2::new(1.0, 5.0));
    }

    #[test]
    fn shift_is_applied_before_slope() {
        let chain = pts(&[(0.0, 0.0)]);
        let q = Point2::new(1.0, 0.0);
        let h = max_slope_to_chain(&chain, 2.0, q).unwrap();
        assert_eq!(h.vertex, Point2::new(0.0, 2.0));
        assert_eq!(h.slope, -2.0);
    }
}
