//! Property tests for the geometry substrate: hull invariants (P2 of
//! DESIGN.md §6) and tangent-search equivalence.

use proptest::prelude::*;

use pla_geom::{
    batch_hull, cross, max_slope_to_chain, min_slope_to_chain, scan, IncrementalHull, Line, Point2,
};

fn points_strategy() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(-100.0f64..100.0, 1..120)
        .prop_map(|xs| xs.into_iter().enumerate().map(|(i, x)| Point2::new(i as f64, x)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Chains turn consistently and contain the extreme points.
    #[test]
    fn hull_chains_are_convex_and_extreme(points in points_strategy()) {
        let (upper, lower) = batch_hull(&points);
        for w in upper.windows(3) {
            prop_assert!(cross(w[0], w[1], w[2]) < 0.0, "upper chain must turn right");
        }
        for w in lower.windows(3) {
            prop_assert!(cross(w[0], w[1], w[2]) > 0.0, "lower chain must turn left");
        }
        // Endpoints shared.
        prop_assert_eq!(upper.first(), lower.first());
        prop_assert_eq!(upper.last(), lower.last());
        // Every point lies between the chains.
        for &p in &points {
            for w in upper.windows(2) {
                if p.t >= w[0].t && p.t <= w[1].t {
                    let l = Line::through(w[0], w[1]);
                    prop_assert!(l.residual(p) <= 1e-7, "point above upper hull");
                }
            }
            for w in lower.windows(2) {
                if p.t >= w[0].t && p.t <= w[1].t {
                    let l = Line::through(w[0], w[1]);
                    prop_assert!(l.residual(p) >= -1e-7, "point below lower hull");
                }
            }
        }
    }

    /// Incremental insertion equals batch construction.
    #[test]
    fn incremental_equals_batch(points in points_strategy()) {
        let mut inc = IncrementalHull::new();
        for &p in &points {
            inc.push(p);
        }
        let (upper, lower) = batch_hull(&points);
        prop_assert_eq!(inc.chain(pla_geom::Chain::Upper), &upper[..]);
        prop_assert_eq!(inc.chain(pla_geom::Chain::Lower), &lower[..]);
        prop_assert_eq!(inc.num_points(), points.len());
    }

    /// The O(log n) tangent searches agree with exhaustive scans over the
    /// hull chains — and, per Lemma 4.3, the chain optimum equals the
    /// optimum over *all* points.
    #[test]
    fn tangent_search_matches_scan(
        points in points_strategy(),
        q_off in -50.0f64..50.0,
        shift in 0.01f64..5.0,
    ) {
        prop_assume!(points.len() >= 2);
        let (upper, lower) = batch_hull(&points);
        let last = points.last().unwrap();
        let q = Point2::new(last.t + 1.0, last.x + q_off);

        // Lower chain ↔ max slope with an upward shift (lᵢ rebuild).
        let fast = max_slope_to_chain(&lower, shift, q).unwrap();
        let slow = scan::max_slope(&lower, shift, q).unwrap();
        prop_assert!((fast.slope - slow.slope).abs() <= 1e-9 * slow.slope.abs().max(1.0));
        // Lemma 4.3: scanning every raw point finds nothing better.
        let all = scan::max_slope(&points, shift, q).unwrap();
        prop_assert!(
            fast.slope >= all.slope - 1e-9 * all.slope.abs().max(1.0),
            "chain optimum {} worse than raw-point optimum {}",
            fast.slope,
            all.slope
        );

        // Upper chain ↔ min slope with a downward shift (uᵢ rebuild).
        let fast = min_slope_to_chain(&upper, -shift, q).unwrap();
        let slow = scan::min_slope(&upper, -shift, q).unwrap();
        prop_assert!((fast.slope - slow.slope).abs() <= 1e-9 * slow.slope.abs().max(1.0));
        let all = scan::min_slope(&points, -shift, q).unwrap();
        prop_assert!(
            fast.slope <= all.slope + 1e-9 * all.slope.abs().max(1.0),
            "chain optimum {} worse than raw-point optimum {}",
            fast.slope,
            all.slope
        );
    }

    /// Line intersection is symmetric and lies on both lines.
    #[test]
    fn intersection_lies_on_both_lines(
        a0 in -100.0f64..100.0, s0 in -10.0f64..10.0,
        a1 in -100.0f64..100.0, s1 in -10.0f64..10.0,
    ) {
        prop_assume!((s0 - s1).abs() > 1e-6);
        let l0 = Line::new(Point2::new(0.0, a0), s0);
        let l1 = Line::new(Point2::new(0.0, a1), s1);
        let p = l0.intersection(&l1).unwrap();
        prop_assert!((l0.eval(p.t) - p.x).abs() < 1e-6);
        prop_assert!((l1.eval(p.t) - p.x).abs() < 1e-6);
        let q = l1.intersection(&l0).unwrap();
        prop_assert!((p.t - q.t).abs() < 1e-6);
    }

    /// Hull size never exceeds the point count and clear() resets.
    #[test]
    fn hull_size_bounds(points in points_strategy()) {
        let mut h = IncrementalHull::new();
        for &p in &points {
            h.push(p);
            prop_assert!(h.num_vertices() <= h.num_points());
        }
        h.clear();
        prop_assert_eq!(h.num_vertices(), 0);
    }
}
