//! The shard-per-core engine: hash-routed worker threads, bounded
//! channels, fan-in reporting.
//!
//! Every stream is pinned to one shard by [`shard_of`], a deterministic
//! hash of its id — so a stream's samples are always processed by the same
//! worker, in the order they were sent, and the per-stream segment output
//! is identical to a standalone filter run regardless of the shard count.
//! The channels are *bounded*: a saturated shard pushes back on producers
//! ([`IngestHandle::push`] blocks, [`IngestHandle::try_push`] reports
//! [`IngestError::Backpressure`]) instead of buffering without limit.

use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;

use pla_core::filters::FilterSpec;
use pla_core::Segment;

use crate::table::{IngestError, StreamOutput, StreamTable};
use crate::StreamId;

/// Deterministic stream→shard routing: a SplitMix64 finalizer over the
/// stream id, reduced modulo the shard count. Stable across runs,
/// machines, and engine instances, so tests (and repartition tooling) can
/// predict placements.
pub fn shard_of(stream: StreamId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = stream.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Worker thread count (clamped to ≥ 1). The intended setting is one
    /// shard per core.
    pub shards: usize,
    /// Bounded capacity of each shard's input queue, in operations
    /// (clamped to ≥ 1). This is the backpressure knob: the total number
    /// of in-flight samples is at most `shards × queue_depth` plus one
    /// batch per producer.
    pub queue_depth: usize,
    /// Record, per shard, the fan-in log of `(stream, segment)` pairs in
    /// emission order — the feed a multiplexing transport would ship.
    /// Costs one segment clone per emission; off by default.
    pub shard_log: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { shards, queue_depth: 1024, shard_log: false }
    }
}

/// Counters one shard accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Operations dequeued (registrations, pushes, batches, finishes).
    pub ops: u64,
    /// Samples offered to this shard (including dropped ones).
    pub samples: u64,
    /// Samples addressed to ids never registered on this shard (an
    /// unknown `finish_stream` drops no samples and is not counted).
    pub unknown_stream_drops: u64,
    /// Registrations dropped because the id was already registered. The
    /// original filter keeps running; re-registration with a new spec is
    /// not supported.
    pub duplicate_registers: u64,
    /// Streams registered on this shard.
    pub streams: usize,
    /// Segments emitted by this shard's filters.
    pub segments: u64,
}

/// What the engine hands back at shutdown.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Per-stream outputs, ordered by stream id.
    pub streams: BTreeMap<StreamId, StreamOutput>,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-shard fan-in logs (empty unless [`IngestConfig::shard_log`]).
    pub shard_logs: Vec<Vec<(StreamId, Segment)>>,
}

impl IngestReport {
    /// Total segments across all streams.
    pub fn total_segments(&self) -> usize {
        self.streams.values().map(|o| o.segments.len()).sum()
    }

    /// Total samples the filters absorbed.
    pub fn total_samples(&self) -> u64 {
        self.streams.values().map(|o| o.samples_in).sum()
    }

    /// Number of quarantined streams.
    pub fn quarantined(&self) -> usize {
        self.streams.values().filter(|o| o.quarantine.is_some()).count()
    }
}

enum Op {
    Register {
        stream: StreamId,
        spec: FilterSpec,
    },
    Push {
        stream: StreamId,
        t: f64,
        x: Box<[f64]>,
    },
    /// Columnar batch: `values` holds `dims` contiguous values per sample.
    PushBatch {
        stream: StreamId,
        dims: usize,
        times: Box<[f64]>,
        values: Box<[f64]>,
    },
    FinishStream {
        stream: StreamId,
    },
    Shutdown,
}

struct ShardResult {
    outputs: BTreeMap<StreamId, StreamOutput>,
    stats: ShardStats,
    log: Vec<(StreamId, Segment)>,
}

/// Cloneable producer handle: routes samples to shards.
///
/// All methods are callable from any thread. Samples for one stream sent
/// from one thread are processed in send order; interleavings *between*
/// producers racing on the same stream are, as always, unordered.
#[derive(Clone)]
pub struct IngestHandle {
    senders: Vec<SyncSender<Op>>,
}

impl IngestHandle {
    fn sender_for(&self, stream: StreamId) -> &SyncSender<Op> {
        &self.senders[shard_of(stream, self.senders.len())]
    }

    fn send(&self, stream: StreamId, op: Op) -> Result<(), IngestError> {
        self.sender_for(stream).send(op).map_err(|_| IngestError::Closed)
    }

    /// Number of shards this handle routes across.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Registers a stream. The spec is validated here, synchronously;
    /// routing and filter construction happen on the owning shard. A
    /// duplicate id is dropped there — the first registration's filter
    /// keeps running — and counted in
    /// [`ShardStats::duplicate_registers`].
    pub fn register(&self, stream: StreamId, spec: FilterSpec) -> Result<(), IngestError> {
        spec.validate().map_err(|error| IngestError::Filter { stream, error })?;
        self.send(stream, Op::Register { stream, spec })
    }

    /// Sends one sample, blocking while the owning shard's queue is full
    /// (backpressure).
    pub fn push(&self, stream: StreamId, t: f64, x: &[f64]) -> Result<(), IngestError> {
        self.send(stream, Op::Push { stream, t, x: x.into() })
    }

    /// Sends one sample without blocking; a full shard queue yields
    /// [`IngestError::Backpressure`].
    pub fn try_push(&self, stream: StreamId, t: f64, x: &[f64]) -> Result<(), IngestError> {
        match self.sender_for(stream).try_send(Op::Push { stream, t, x: x.into() }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(IngestError::Backpressure),
            Err(TrySendError::Disconnected(_)) => Err(IngestError::Closed),
        }
    }

    /// Sends a whole batch as one queue operation (one routing decision,
    /// one channel rendezvous, and the filter's batch fast path on the
    /// shard). All samples must share one dimensionality.
    pub fn push_batch(
        &self,
        stream: StreamId,
        samples: &[(f64, &[f64])],
    ) -> Result<(), IngestError> {
        let Some(&(_, first)) = samples.first() else { return Ok(()) };
        let dims = first.len();
        let mut times = Vec::with_capacity(samples.len());
        let mut values = Vec::with_capacity(samples.len() * dims);
        for &(t, x) in samples {
            if x.len() != dims {
                return Err(IngestError::RaggedBatch);
            }
            times.push(t);
            values.extend_from_slice(x);
        }
        self.send(
            stream,
            Op::PushBatch { stream, dims, times: times.into(), values: values.into() },
        )
    }

    /// Ends a stream, flushing its filter's pending output.
    pub fn finish_stream(&self, stream: StreamId) -> Result<(), IngestError> {
        self.send(stream, Op::FinishStream { stream })
    }
}

/// The multi-stream ingest engine. See the crate docs for the model.
pub struct IngestEngine {
    handle: IngestHandle,
    workers: Vec<JoinHandle<ShardResult>>,
}

impl IngestEngine {
    /// Spawns the shard workers described by `config`.
    pub fn new(config: IngestConfig) -> Self {
        let shards = config.shards.max(1);
        let depth = config.queue_depth.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Op>(depth);
            senders.push(tx);
            let shard_log = config.shard_log;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pla-ingest-shard-{shard}"))
                    .spawn(move || run_shard(rx, shard_log))
                    .expect("spawn shard worker"),
            );
        }
        Self { handle: IngestHandle { senders }, workers }
    }

    /// A cloneable producer handle.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handle.senders.len()
    }

    /// The shard a stream is pinned to.
    pub fn shard_of(&self, stream: StreamId) -> usize {
        shard_of(stream, self.shards())
    }

    /// Shuts down: every queued operation is drained, every live stream is
    /// finished, and the per-stream outputs are collected.
    ///
    /// Producers must stop feeding first: operations a still-live
    /// [`IngestHandle`] enqueues concurrently with `finish` may be
    /// silently dropped, and sends after shutdown fail with
    /// [`IngestError::Closed`].
    pub fn finish(self) -> IngestReport {
        for tx in &self.handle.senders {
            // A full queue still accepts the shutdown marker eventually;
            // a worker that already exited (impossible without Shutdown,
            // but defensive) just drops it.
            let _ = tx.send(Op::Shutdown);
        }
        let mut streams = BTreeMap::new();
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut shard_logs = Vec::with_capacity(self.workers.len());
        for worker in self.workers {
            let result = worker.join().expect("shard worker panicked");
            streams.extend(result.outputs);
            shards.push(result.stats);
            shard_logs.push(result.log);
        }
        IngestReport { streams, shards, shard_logs }
    }
}

/// `(t, x)` pair views over columnar batch storage. `dims == 0` yields
/// empty value slices (zero-dimension batches are rejected later by the
/// filter's own validation).
fn pair_iter<'a>(
    dims: usize,
    times: &'a [f64],
    values: &'a [f64],
) -> impl Iterator<Item = (f64, &'a [f64])> {
    times.iter().enumerate().map(move |(i, &t)| {
        let x = if dims == 0 { &[][..] } else { &values[i * dims..(i + 1) * dims] };
        (t, x)
    })
}

/// Writes the pair views into `out` (the small-batch stack buffer).
fn fill_pairs<'a>(out: &mut [(f64, &'a [f64])], dims: usize, times: &'a [f64], values: &'a [f64]) {
    for (slot, pair) in out.iter_mut().zip(pair_iter(dims, times, values)) {
        *slot = pair;
    }
}

fn run_shard(rx: Receiver<Op>, shard_log: bool) -> ShardResult {
    let mut table = StreamTable::new();
    let mut stats = ShardStats::default();
    let mut log: Vec<(StreamId, Segment)> = Vec::new();
    while let Ok(op) = rx.recv() {
        stats.ops += 1;
        match op {
            Op::Register { stream, spec } => {
                // An unbuildable spec is recorded in the table as
                // quarantine state; a duplicate registration is dropped
                // (the original filter keeps running) and counted so the
                // discard is observable.
                if let Err(IngestError::DuplicateStream(_)) = table.register(stream, &spec) {
                    stats.duplicate_registers += 1;
                }
            }
            Op::Push { stream, t, x } => {
                stats.samples += 1;
                if let Err(IngestError::UnknownStream(_)) = table.push(stream, t, &x) {
                    stats.unknown_stream_drops += 1;
                }
                if shard_log {
                    table.drain_new_segments(stream, |seg| log.push((stream, seg.clone())));
                }
            }
            Op::PushBatch { stream, dims, times, values } => {
                stats.samples += times.len() as u64;
                // Rebuild the pair view on a small stack buffer for
                // small batches (its zero-init is cheaper than an
                // allocation); larger batches build an exact-capacity
                // heap Vec whose one allocation amortizes over the
                // batch. The filters' own scratch reuse in pla-core
                // keeps the rest of the path allocation-free.
                const PAIR_STACK: usize = 32;
                let n = times.len();
                let mut stack = [(0.0f64, &[][..]); PAIR_STACK];
                let heap: Vec<(f64, &[f64])>;
                let pairs: &[(f64, &[f64])] = if n <= PAIR_STACK {
                    fill_pairs(&mut stack[..n], dims, &times, &values);
                    &stack[..n]
                } else {
                    heap = pair_iter(dims, &times, &values).collect();
                    &heap
                };
                let result = table.push_batch(stream, pairs);
                if let Err(IngestError::UnknownStream(_)) = result {
                    stats.unknown_stream_drops += times.len() as u64;
                }
                if shard_log {
                    table.drain_new_segments(stream, |seg| log.push((stream, seg.clone())));
                }
            }
            Op::FinishStream { stream } => {
                // An unknown finish drops no samples; nothing to count.
                let _ = table.finish_stream(stream);
                if shard_log {
                    table.drain_new_segments(stream, |seg| log.push((stream, seg.clone())));
                }
            }
            Op::Shutdown => break,
        }
    }
    table.finish_all();
    if shard_log {
        let ids: Vec<StreamId> = table.ids().collect();
        for stream in ids {
            table.drain_new_segments(stream, |seg| log.push((stream, seg.clone())));
        }
    }
    stats.streams = table.len();
    stats.segments = table.total_segments() as u64;
    ShardResult { outputs: table.into_outputs(), stats, log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_core::filters::FilterKind;

    fn spec() -> FilterSpec {
        FilterSpec::new(FilterKind::Swing, &[0.5])
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut seen = vec![false; shards];
            for id in 0..1000u64 {
                let s = shard_of(StreamId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(StreamId(id), shards), "routing must be stable");
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "{shards} shards: some shard got no stream");
        }
    }

    #[test]
    fn engine_compresses_and_reports() {
        let engine = IngestEngine::new(IngestConfig { shards: 2, queue_depth: 8, shard_log: true });
        let h = engine.handle();
        for id in 0..6u64 {
            h.register(StreamId(id), spec()).unwrap();
        }
        for j in 0..200 {
            for id in 0..6u64 {
                h.push(StreamId(id), j as f64, &[(j as f64 * (0.1 + id as f64 * 0.05)).sin()])
                    .unwrap();
            }
        }
        let report = engine.finish();
        assert_eq!(report.streams.len(), 6);
        assert_eq!(report.total_samples(), 6 * 200);
        assert_eq!(report.quarantined(), 0);
        // The fan-in logs carry every segment exactly once.
        let logged: usize = report.shard_logs.iter().map(|l| l.len()).sum();
        assert_eq!(logged, report.total_segments());
        // Per-shard stats add up.
        let samples: u64 = report.shards.iter().map(|s| s.samples).sum();
        assert_eq!(samples, 6 * 200);
    }

    #[test]
    fn unknown_streams_are_counted_not_fatal() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 2, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        h.push(StreamId(1), 0.0, &[1.0]).unwrap();
        h.push(StreamId(999), 0.0, &[1.0]).unwrap(); // never registered
        h.push(StreamId(1), 1.0, &[1.1]).unwrap();
        let report = engine.finish();
        assert_eq!(report.streams.len(), 1);
        let drops: u64 = report.shards.iter().map(|s| s.unknown_stream_drops).sum();
        assert_eq!(drops, 1);
    }

    #[test]
    fn unknown_batches_count_every_sample_dropped() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let x = [1.0];
        let samples: Vec<(f64, &[f64])> = (0..5).map(|j| (j as f64, &x[..])).collect();
        h.push_batch(StreamId(999), &samples).unwrap(); // never registered
        let report = engine.finish();
        let drops: u64 = report.shards.iter().map(|s| s.unknown_stream_drops).sum();
        assert_eq!(drops, 5, "a dropped batch counts per sample, not per op");
    }

    #[test]
    fn duplicate_registration_is_counted_and_first_spec_wins() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 8, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        // Same id, different spec: validated Ok at the handle, dropped on
        // the shard — observable through the duplicate counter.
        h.register(StreamId(1), FilterSpec::new(FilterKind::Cache, &[2.0])).unwrap();
        h.push(StreamId(1), 0.0, &[1.0]).unwrap();
        h.push(StreamId(1), 1.0, &[1.1]).unwrap();
        let report = engine.finish();
        assert_eq!(report.shards[0].duplicate_registers, 1);
        assert_eq!(report.streams.len(), 1);
        assert_eq!(report.streams[&StreamId(1)].samples_in, 2, "first filter keeps running");
    }

    #[test]
    fn sends_after_finish_fail_closed() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let _ = engine.finish();
        assert_eq!(h.push(StreamId(1), 0.0, &[1.0]), Err(IngestError::Closed));
        assert_eq!(h.try_push(StreamId(1), 0.0, &[1.0]), Err(IngestError::Closed));
    }

    #[test]
    fn invalid_spec_is_rejected_at_the_handle() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        let bad = FilterSpec::new(FilterKind::Swing, &[-1.0]);
        assert!(matches!(
            h.register(StreamId(1), bad),
            Err(IngestError::Filter { stream: StreamId(1), .. })
        ));
        let _ = engine.finish();
    }

    #[test]
    fn ragged_batches_are_rejected() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let a = [1.0, 2.0];
        let b = [1.0];
        let ragged: Vec<(f64, &[f64])> = vec![(0.0, &a[..]), (1.0, &b[..])];
        assert_eq!(h.push_batch(StreamId(1), &ragged), Err(IngestError::RaggedBatch));
        let _ = engine.finish();
    }
}
