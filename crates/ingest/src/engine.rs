//! The shard-per-core engine: hash-routed worker threads, bounded
//! channels, fan-in reporting.
//!
//! Every stream is pinned to one shard by [`shard_of`], a deterministic
//! hash of its id — so a stream's samples are always processed by the same
//! worker, in the order they were sent, and the per-stream segment output
//! is identical to a standalone filter run regardless of the shard count.
//! The channels are *bounded*: a saturated shard pushes back on producers
//! ([`IngestHandle::push`] blocks, [`IngestHandle::try_push`] reports
//! [`IngestError::Backpressure`]) instead of buffering without limit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use pla_core::filters::FilterSpec;
use pla_core::Segment;

use crate::store::SegmentStore;
use crate::table::{IngestError, StreamOutput, StreamTable};
use crate::StreamId;

/// Deterministic stream→shard routing: a SplitMix64 finalizer over the
/// stream id, reduced modulo the shard count. Stable across runs,
/// machines, and engine instances, so tests (and repartition tooling) can
/// predict placements.
pub fn shard_of(stream: StreamId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = stream.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Worker thread count (clamped to ≥ 1). The intended setting is one
    /// shard per core.
    pub shards: usize,
    /// Bounded capacity of each shard's input queue, in operations
    /// (clamped to ≥ 1). This is the backpressure knob: the total number
    /// of in-flight samples is at most `shards × queue_depth` plus one
    /// batch per producer.
    pub queue_depth: usize,
    /// Record, per shard, the fan-in log of `(stream, segment)` pairs in
    /// emission order — the feed a multiplexing transport would ship.
    /// Costs one segment clone per emission; off by default.
    pub shard_log: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { shards, queue_depth: 1024, shard_log: false }
    }
}

/// Counters one shard accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Operations dequeued (registrations, pushes, batches, finishes).
    pub ops: u64,
    /// Samples offered to this shard (including dropped ones).
    pub samples: u64,
    /// Samples addressed to ids never registered on this shard (an
    /// unknown `finish_stream` drops no samples and is not counted).
    pub unknown_stream_drops: u64,
    /// Registrations dropped because the id was already registered. The
    /// original filter keeps running; re-registration with a new spec is
    /// not supported.
    pub duplicate_registers: u64,
    /// Streams registered on this shard.
    pub streams: usize,
    /// Segments emitted by this shard's filters.
    pub segments: u64,
    /// [`IngestHandle::try_push`] attempts refused with
    /// [`IngestError::Backpressure`] because this shard's queue was
    /// full. Counted on the handle side (the sample never reaches the
    /// shard), aggregated into the report at shutdown so shed load is
    /// observable instead of silently vanishing at the call sites.
    pub backpressure: u64,
}

/// What the engine hands back at shutdown.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Per-stream outputs, ordered by stream id.
    pub streams: BTreeMap<StreamId, StreamOutput>,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Per-shard fan-in logs (empty unless [`IngestConfig::shard_log`]).
    pub shard_logs: Vec<Vec<(StreamId, Segment)>>,
}

impl IngestReport {
    /// Total segments across all streams.
    pub fn total_segments(&self) -> usize {
        self.streams.values().map(|o| o.segments.len()).sum()
    }

    /// Total samples the filters absorbed.
    pub fn total_samples(&self) -> u64 {
        self.streams.values().map(|o| o.samples_in).sum()
    }

    /// Number of quarantined streams.
    pub fn quarantined(&self) -> usize {
        self.streams.values().filter(|o| o.quarantine.is_some()).count()
    }
}

enum Op {
    Register {
        stream: StreamId,
        spec: FilterSpec,
    },
    Push {
        stream: StreamId,
        t: f64,
        x: Box<[f64]>,
    },
    /// Columnar batch: `values` holds `dims` contiguous values per sample.
    PushBatch {
        stream: StreamId,
        dims: usize,
        times: Box<[f64]>,
        values: Box<[f64]>,
    },
    FinishStream {
        stream: StreamId,
    },
    Shutdown,
}

struct ShardResult {
    outputs: BTreeMap<StreamId, StreamOutput>,
    stats: ShardStats,
    log: Vec<(StreamId, Segment)>,
}

/// Cloneable producer handle: routes samples to shards.
///
/// All methods are callable from any thread. Samples for one stream sent
/// from one thread are processed in send order; interleavings *between*
/// producers racing on the same stream are, as always, unordered.
#[derive(Clone)]
pub struct IngestHandle {
    senders: Vec<SyncSender<Op>>,
    /// Per-shard count of `try_push` rejections, shared by all handle
    /// clones and read into [`ShardStats::backpressure`] at shutdown.
    backpressure: Arc<Vec<AtomicU64>>,
}

impl IngestHandle {
    fn sender_for(&self, stream: StreamId) -> &SyncSender<Op> {
        &self.senders[shard_of(stream, self.senders.len())]
    }

    fn send(&self, stream: StreamId, op: Op) -> Result<(), IngestError> {
        self.sender_for(stream).send(op).map_err(|_| IngestError::Closed)
    }

    /// Number of shards this handle routes across.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Registers a stream. The spec is validated here, synchronously;
    /// routing and filter construction happen on the owning shard. A
    /// duplicate id is dropped there — the first registration's filter
    /// keeps running — and counted in
    /// [`ShardStats::duplicate_registers`].
    pub fn register(&self, stream: StreamId, spec: FilterSpec) -> Result<(), IngestError> {
        spec.validate().map_err(|error| IngestError::Filter { stream, error })?;
        self.send(stream, Op::Register { stream, spec })
    }

    /// Sends one sample, blocking while the owning shard's queue is full
    /// (backpressure).
    pub fn push(&self, stream: StreamId, t: f64, x: &[f64]) -> Result<(), IngestError> {
        self.send(stream, Op::Push { stream, t, x: x.into() })
    }

    /// Sends one sample without blocking; a full shard queue yields
    /// [`IngestError::Backpressure`]. Every rejection is counted into
    /// the owning shard's [`ShardStats::backpressure`].
    pub fn try_push(&self, stream: StreamId, t: f64, x: &[f64]) -> Result<(), IngestError> {
        let shard = shard_of(stream, self.senders.len());
        match self.senders[shard].try_send(Op::Push { stream, t, x: x.into() }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                self.backpressure[shard].fetch_add(1, Ordering::Relaxed);
                Err(IngestError::Backpressure)
            }
            Err(TrySendError::Disconnected(_)) => Err(IngestError::Closed),
        }
    }

    /// Sends a whole batch as one queue operation (one routing decision,
    /// one channel rendezvous, and the filter's batch fast path on the
    /// shard). All samples must share one dimensionality.
    pub fn push_batch(
        &self,
        stream: StreamId,
        samples: &[(f64, &[f64])],
    ) -> Result<(), IngestError> {
        let Some(&(_, first)) = samples.first() else { return Ok(()) };
        let dims = first.len();
        let mut times = Vec::with_capacity(samples.len());
        let mut values = Vec::with_capacity(samples.len() * dims);
        for &(t, x) in samples {
            if x.len() != dims {
                return Err(IngestError::RaggedBatch);
            }
            times.push(t);
            values.extend_from_slice(x);
        }
        self.send(
            stream,
            Op::PushBatch { stream, dims, times: times.into(), values: values.into() },
        )
    }

    /// Ends a stream, flushing its filter's pending output.
    pub fn finish_stream(&self, stream: StreamId) -> Result<(), IngestError> {
        self.send(stream, Op::FinishStream { stream })
    }
}

/// The multi-stream ingest engine. See the crate docs for the model.
///
/// ```
/// use pla_core::filters::{FilterKind, FilterSpec};
/// use pla_ingest::{IngestConfig, IngestEngine, SegmentStore, StreamId};
/// use std::sync::Arc;
///
/// // Shard-per-core ingest, emitting straight into a shared store.
/// let store = Arc::new(SegmentStore::new());
/// let engine = IngestEngine::with_segment_store(
///     IngestConfig { shards: 2, ..Default::default() },
///     store.clone(),
///     0, // this engine's source watermark id
/// );
/// let handle = engine.handle();
/// handle.register(StreamId(7), FilterSpec::new(FilterKind::Swing, &[0.5])).unwrap();
/// for j in 0..100 {
///     handle.push(StreamId(7), j as f64, &[j as f64 * 0.1]).unwrap();
/// }
/// let report = engine.finish();
/// // The store saw exactly what the report accounts for.
/// assert_eq!(store.total_segments(), report.total_segments() as u64);
/// assert_eq!(store.watermark(0).unwrap().segments, store.total_segments());
/// ```
pub struct IngestEngine {
    handle: IngestHandle,
    workers: Vec<JoinHandle<ShardResult>>,
}

impl IngestEngine {
    /// Spawns the shard workers described by `config`.
    pub fn new(config: IngestConfig) -> Self {
        Self::build(config, None, None)
    }

    /// Spawns the engine with a *segment tap*: every segment any shard's
    /// filters emit is also sent, live, as `(stream, segment)` over the
    /// returned channel — the feed `pla-net`'s uplink multiplexes out
    /// over one connection.
    ///
    /// Ordering: segments of one stream arrive in emission order (a
    /// stream is pinned to one shard); interleaving between streams is
    /// whatever the shards race to. The channel is unbounded — the tap
    /// must not be able to deadlock the shards against the engine's own
    /// bounded queues — so a consumer that stops draining trades memory
    /// for that safety. The tap closes when the engine finishes.
    pub fn with_segment_tap(config: IngestConfig) -> (Self, mpsc::Receiver<(StreamId, Segment)>) {
        let (tap_tx, tap_rx) = mpsc::channel();
        (Self::build(config, Some(tap_tx), None), tap_rx)
    }

    /// Spawns the engine wired straight into a shared [`SegmentStore`]:
    /// every segment any shard emits is appended live (in per-stream
    /// emission order) under the given `source` watermark id — the
    /// local-ingest counterpart of a `pla-net` collector connection
    /// writing into the same store.
    ///
    /// Unlike the tap there is no channel in between: each ingest shard
    /// appends a drain's segments as one batch, taking the owning
    /// *store* shard's write lock once per drain. Segment emission is
    /// filter-rate-limited (hundreds of samples per segment) and store
    /// shards only contend when two ingest shards publish streams that
    /// hash to the same store shard, so the locks are quiet even at
    /// high sample rates.
    pub fn with_segment_store(
        config: IngestConfig,
        store: std::sync::Arc<SegmentStore>,
        source: u64,
    ) -> Self {
        Self::build(config, None, Some((store, source)))
    }

    fn build(
        config: IngestConfig,
        tap: Option<mpsc::Sender<(StreamId, Segment)>>,
        store: Option<(std::sync::Arc<SegmentStore>, u64)>,
    ) -> Self {
        let shards = config.shards.max(1);
        let depth = config.queue_depth.max(1);
        let backpressure = Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect::<Vec<_>>());
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Op>(depth);
            senders.push(tx);
            let shard_log = config.shard_log;
            let tap = tap.clone();
            let store = store.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pla-ingest-shard-{shard}"))
                    .spawn(move || run_shard(rx, shard_log, tap, store))
                    .expect("spawn shard worker"),
            );
        }
        Self { handle: IngestHandle { senders, backpressure }, workers }
    }

    /// A cloneable producer handle.
    pub fn handle(&self) -> IngestHandle {
        self.handle.clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handle.senders.len()
    }

    /// The shard a stream is pinned to.
    pub fn shard_of(&self, stream: StreamId) -> usize {
        shard_of(stream, self.shards())
    }

    /// Shuts down: every queued operation is drained — including
    /// operations that raced in behind the shutdown marker — every live
    /// stream is finished, and the per-stream outputs are collected.
    ///
    /// Producers should stop feeding first; an operation enqueued
    /// concurrently with `finish` is still processed if it lands before
    /// the worker's final queue drain, and sends after shutdown fail
    /// with [`IngestError::Closed`].
    pub fn finish(self) -> IngestReport {
        for tx in &self.handle.senders {
            // A full queue still accepts the shutdown marker eventually;
            // a worker that already exited (impossible without Shutdown,
            // but defensive) just drops it.
            let _ = tx.send(Op::Shutdown);
        }
        let mut streams = BTreeMap::new();
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut shard_logs = Vec::with_capacity(self.workers.len());
        for (shard, worker) in self.workers.into_iter().enumerate() {
            let mut result = worker.join().expect("shard worker panicked");
            result.stats.backpressure =
                self.handle.backpressure[shard].load(std::sync::atomic::Ordering::Relaxed);
            streams.extend(result.outputs);
            shards.push(result.stats);
            shard_logs.push(result.log);
        }
        IngestReport { streams, shards, shard_logs }
    }
}

/// `(t, x)` pair views over columnar batch storage. `dims == 0` yields
/// empty value slices (zero-dimension batches are rejected later by the
/// filter's own validation).
fn pair_iter<'a>(
    dims: usize,
    times: &'a [f64],
    values: &'a [f64],
) -> impl Iterator<Item = (f64, &'a [f64])> {
    times.iter().enumerate().map(move |(i, &t)| {
        let x = if dims == 0 { &[][..] } else { &values[i * dims..(i + 1) * dims] };
        (t, x)
    })
}

/// Writes the pair views into `out` (the small-batch stack buffer).
fn fill_pairs<'a>(out: &mut [(f64, &'a [f64])], dims: usize, times: &'a [f64], values: &'a [f64]) {
    for (slot, pair) in out.iter_mut().zip(pair_iter(dims, times, values)) {
        *slot = pair;
    }
}

/// One shard worker's mutable state, factored out so the main receive
/// loop and the post-shutdown drain apply operations identically.
struct ShardWorker {
    table: StreamTable,
    stats: ShardStats,
    log: Vec<(StreamId, Segment)>,
    shard_log: bool,
    tap: Option<mpsc::Sender<(StreamId, Segment)>>,
    /// Live append target with its source watermark id
    /// ([`IngestEngine::with_segment_store`]).
    store: Option<(std::sync::Arc<SegmentStore>, u64)>,
    /// Recycled staging buffer for store publication: a drain's segments
    /// are collected here and appended as one batch, so the shard takes
    /// its store shard's write lock once per drain instead of once per
    /// segment.
    publish_scratch: Vec<Segment>,
}

impl ShardWorker {
    /// Forwards segments emitted since the last call for `stream` into
    /// the fan-in log, the live tap, and/or the shared store.
    fn emit_new_segments(&mut self, stream: StreamId) {
        if !self.shard_log && self.tap.is_none() && self.store.is_none() {
            return;
        }
        let log = &mut self.log;
        let shard_log = self.shard_log;
        let tap = &self.tap;
        let staging = self.store.is_some();
        let scratch = &mut self.publish_scratch;
        self.table.drain_new_segments(stream, |seg| {
            if shard_log {
                log.push((stream, seg.clone()));
            }
            if let Some(tap) = tap {
                // A dropped tap consumer is load shedding, not an error.
                let _ = tap.send((stream, seg.clone()));
            }
            if staging {
                scratch.push(seg.clone());
            }
        });
        if let Some((store, source)) = &self.store {
            if !scratch.is_empty() {
                store.append_batch(*source, stream, scratch);
                scratch.clear();
            }
        }
    }

    /// Applies one queued operation.
    fn apply(&mut self, op: Op) {
        self.stats.ops += 1;
        match op {
            Op::Register { stream, spec } => {
                // An unbuildable spec is recorded in the table as
                // quarantine state; a duplicate registration is dropped
                // (the original filter keeps running) and counted so the
                // discard is observable.
                if let Err(IngestError::DuplicateStream(_)) = self.table.register(stream, &spec) {
                    self.stats.duplicate_registers += 1;
                }
            }
            Op::Push { stream, t, x } => {
                self.stats.samples += 1;
                if let Err(IngestError::UnknownStream(_)) = self.table.push(stream, t, &x) {
                    self.stats.unknown_stream_drops += 1;
                }
                self.emit_new_segments(stream);
            }
            Op::PushBatch { stream, dims, times, values } => {
                self.stats.samples += times.len() as u64;
                // Rebuild the pair view on a small stack buffer for
                // small batches (its zero-init is cheaper than an
                // allocation); larger batches build an exact-capacity
                // heap Vec whose one allocation amortizes over the
                // batch. The filters' own scratch reuse in pla-core
                // keeps the rest of the path allocation-free.
                const PAIR_STACK: usize = 32;
                let n = times.len();
                let mut stack = [(0.0f64, &[][..]); PAIR_STACK];
                let heap: Vec<(f64, &[f64])>;
                let pairs: &[(f64, &[f64])] = if n <= PAIR_STACK {
                    fill_pairs(&mut stack[..n], dims, &times, &values);
                    &stack[..n]
                } else {
                    heap = pair_iter(dims, &times, &values).collect();
                    &heap
                };
                let result = self.table.push_batch(stream, pairs);
                if let Err(IngestError::UnknownStream(_)) = result {
                    self.stats.unknown_stream_drops += times.len() as u64;
                }
                self.emit_new_segments(stream);
            }
            Op::FinishStream { stream } => {
                // An unknown finish drops no samples; nothing to count.
                let _ = self.table.finish_stream(stream);
                self.emit_new_segments(stream);
            }
            Op::Shutdown => unreachable!("Shutdown is handled by the receive loop"),
        }
    }
}

fn run_shard(
    rx: Receiver<Op>,
    shard_log: bool,
    tap: Option<mpsc::Sender<(StreamId, Segment)>>,
    store: Option<(std::sync::Arc<SegmentStore>, u64)>,
) -> ShardResult {
    let mut worker = ShardWorker {
        table: StreamTable::new(),
        stats: ShardStats::default(),
        log: Vec::new(),
        shard_log,
        tap,
        store,
        publish_scratch: Vec::new(),
    };
    while let Ok(op) = rx.recv() {
        if matches!(op, Op::Shutdown) {
            worker.stats.ops += 1;
            // Graceful drain: operations that raced into the queue
            // behind the shutdown marker are still in flight from a
            // producer's point of view — process them instead of
            // silently dropping the queue tail with the channel.
            while let Ok(op) = rx.try_recv() {
                if !matches!(op, Op::Shutdown) {
                    worker.apply(op);
                }
            }
            break;
        }
        worker.apply(op);
    }
    worker.table.finish_all();
    let ids: Vec<StreamId> = worker.table.ids().collect();
    for stream in ids {
        worker.emit_new_segments(stream);
    }
    worker.stats.streams = worker.table.len();
    worker.stats.segments = worker.table.total_segments() as u64;
    ShardResult { outputs: worker.table.into_outputs(), stats: worker.stats, log: worker.log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_core::filters::FilterKind;

    fn spec() -> FilterSpec {
        FilterSpec::new(FilterKind::Swing, &[0.5])
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut seen = vec![false; shards];
            for id in 0..1000u64 {
                let s = shard_of(StreamId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(StreamId(id), shards), "routing must be stable");
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "{shards} shards: some shard got no stream");
        }
    }

    #[test]
    fn engine_compresses_and_reports() {
        let engine = IngestEngine::new(IngestConfig { shards: 2, queue_depth: 8, shard_log: true });
        let h = engine.handle();
        for id in 0..6u64 {
            h.register(StreamId(id), spec()).unwrap();
        }
        for j in 0..200 {
            for id in 0..6u64 {
                h.push(StreamId(id), j as f64, &[(j as f64 * (0.1 + id as f64 * 0.05)).sin()])
                    .unwrap();
            }
        }
        let report = engine.finish();
        assert_eq!(report.streams.len(), 6);
        assert_eq!(report.total_samples(), 6 * 200);
        assert_eq!(report.quarantined(), 0);
        // The fan-in logs carry every segment exactly once.
        let logged: usize = report.shard_logs.iter().map(|l| l.len()).sum();
        assert_eq!(logged, report.total_segments());
        // Per-shard stats add up.
        let samples: u64 = report.shards.iter().map(|s| s.samples).sum();
        assert_eq!(samples, 6 * 200);
    }

    #[test]
    fn unknown_streams_are_counted_not_fatal() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 2, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        h.push(StreamId(1), 0.0, &[1.0]).unwrap();
        h.push(StreamId(999), 0.0, &[1.0]).unwrap(); // never registered
        h.push(StreamId(1), 1.0, &[1.1]).unwrap();
        let report = engine.finish();
        assert_eq!(report.streams.len(), 1);
        let drops: u64 = report.shards.iter().map(|s| s.unknown_stream_drops).sum();
        assert_eq!(drops, 1);
    }

    #[test]
    fn unknown_batches_count_every_sample_dropped() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let x = [1.0];
        let samples: Vec<(f64, &[f64])> = (0..5).map(|j| (j as f64, &x[..])).collect();
        h.push_batch(StreamId(999), &samples).unwrap(); // never registered
        let report = engine.finish();
        let drops: u64 = report.shards.iter().map(|s| s.unknown_stream_drops).sum();
        assert_eq!(drops, 5, "a dropped batch counts per sample, not per op");
    }

    #[test]
    fn duplicate_registration_is_counted_and_first_spec_wins() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 8, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        // Same id, different spec: validated Ok at the handle, dropped on
        // the shard — observable through the duplicate counter.
        h.register(StreamId(1), FilterSpec::new(FilterKind::Cache, &[2.0])).unwrap();
        h.push(StreamId(1), 0.0, &[1.0]).unwrap();
        h.push(StreamId(1), 1.0, &[1.1]).unwrap();
        let report = engine.finish();
        assert_eq!(report.shards[0].duplicate_registers, 1);
        assert_eq!(report.streams.len(), 1);
        assert_eq!(report.streams[&StreamId(1)].samples_in, 2, "first filter keeps running");
    }

    #[test]
    fn shutdown_drains_operations_queued_behind_the_marker() {
        // Deterministic construction of the shutdown race: stall the
        // single shard with a pipeline of large batches, send the
        // shutdown marker while it is still chewing, then enqueue more
        // samples *behind the marker*. The graceful drain must process
        // them instead of dropping the queue tail.
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 32, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let values: Vec<f64> = (0..500_000).map(|j| (j as f64 * 0.01).sin()).collect();
        let mut t0 = 0.0;
        for _ in 0..8 {
            let samples: Vec<(f64, &[f64])> = values
                .iter()
                .enumerate()
                .map(|(j, v)| (t0 + j as f64, std::slice::from_ref(v)))
                .collect();
            h.push_batch(StreamId(1), &samples).unwrap();
            t0 += values.len() as f64;
        }
        // The shard is now busy for tens of milliseconds. Shut down from
        // another thread; its marker enqueues behind the batches.
        let finisher = std::thread::spawn(move || engine.finish());
        std::thread::sleep(std::time::Duration::from_millis(2));
        // These land behind the shutdown marker (the shard is still busy
        // with the batch pipeline). A push can fail Closed only if the
        // worker already exited — count the ones that were accepted.
        let mut late_ok = 0u64;
        for j in 0..8 {
            if h.push(StreamId(1), t0 + j as f64, &[0.5]).is_ok() {
                late_ok += 1;
            }
        }
        let report = finisher.join().expect("finish");
        assert_eq!(
            report.total_samples(),
            8 * 500_000 + late_ok,
            "samples queued behind the shutdown marker must be drained, not dropped"
        );
        assert!(late_ok > 0, "the late pushes should have reached the queue");
    }

    #[test]
    fn backpressure_rejections_are_counted_per_shard() {
        // Stall the single shard with a large batch, fill its depth-1
        // queue, then watch try_push rejections: every Backpressure the
        // caller sees must be visible in the report.
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 1, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let values: Vec<f64> = (0..1_000_000).map(|j| (j as f64 * 0.01).sin()).collect();
        let samples: Vec<(f64, &[f64])> =
            values.iter().enumerate().map(|(j, v)| (j as f64, std::slice::from_ref(v))).collect();
        h.push_batch(StreamId(1), &samples).unwrap();
        // Occupy the single queue slot, then push against the full queue.
        let t1 = values.len() as f64;
        h.push(StreamId(1), t1, &[0.0]).unwrap();
        let mut rejected = 0u64;
        for j in 0..16 {
            match h.try_push(StreamId(1), t1 + 1.0 + j as f64, &[0.0]) {
                Err(IngestError::Backpressure) => rejected += 1,
                Ok(()) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "the depth-1 queue should have pushed back");
        let report = engine.finish();
        let counted: u64 = report.shards.iter().map(|s| s.backpressure).sum();
        assert_eq!(counted, rejected, "every rejection the caller saw must be reported");
    }

    #[test]
    fn segment_tap_streams_every_segment_live_in_order() {
        let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
            shards: 2,
            queue_depth: 16,
            shard_log: true,
        });
        let h = engine.handle();
        for id in 0..6u64 {
            h.register(StreamId(id), spec()).unwrap();
        }
        for j in 0..300 {
            for id in 0..6u64 {
                h.push(
                    StreamId(id),
                    j as f64,
                    &[(j as f64 * (0.2 + id as f64 * 0.07)).sin() * 3.0],
                )
                .unwrap();
            }
        }
        let report = engine.finish();
        // The tap closed with the engine; collect everything it carried.
        let mut tapped: BTreeMap<StreamId, Vec<Segment>> = BTreeMap::new();
        while let Ok((stream, seg)) = tap.recv() {
            tapped.entry(stream).or_default().push(seg);
        }
        assert_eq!(tapped.len(), report.streams.len());
        for (id, out) in &report.streams {
            assert_eq!(
                tapped[id], out.segments,
                "{id}: tap must carry the exact segment log in emission order"
            );
        }
        // And it coexists with (doesn't replace) the shard fan-in log.
        let logged: usize = report.shard_logs.iter().map(|l| l.len()).sum();
        assert_eq!(logged, report.total_segments());
    }

    #[test]
    fn segment_store_wiring_carries_every_segment_in_order() {
        let store = std::sync::Arc::new(SegmentStore::new());
        let engine = IngestEngine::with_segment_store(
            IngestConfig { shards: 2, queue_depth: 16, shard_log: true },
            store.clone(),
            42,
        );
        let h = engine.handle();
        for id in 0..6u64 {
            h.register(StreamId(id), spec()).unwrap();
        }
        for j in 0..300 {
            for id in 0..6u64 {
                h.push(
                    StreamId(id),
                    j as f64,
                    &[(j as f64 * (0.2 + id as f64 * 0.07)).sin() * 3.0],
                )
                .unwrap();
            }
        }
        let report = engine.finish();
        let snap = store.snapshot();
        assert_eq!(snap.streams.len(), report.streams.len());
        for (id, out) in &report.streams {
            assert_eq!(
                snap.streams[id], out.segments,
                "{id}: store must carry the exact segment log in emission order"
            );
        }
        let mark = snap.sources[&42];
        assert_eq!(mark.segments, report.total_segments() as u64);
        assert!(mark.covered_through.is_finite());
    }

    #[test]
    fn sends_after_finish_fail_closed() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let _ = engine.finish();
        assert_eq!(h.push(StreamId(1), 0.0, &[1.0]), Err(IngestError::Closed));
        assert_eq!(h.try_push(StreamId(1), 0.0, &[1.0]), Err(IngestError::Closed));
    }

    #[test]
    fn invalid_spec_is_rejected_at_the_handle() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        let bad = FilterSpec::new(FilterKind::Swing, &[-1.0]);
        assert!(matches!(
            h.register(StreamId(1), bad),
            Err(IngestError::Filter { stream: StreamId(1), .. })
        ));
        let _ = engine.finish();
    }

    #[test]
    fn ragged_batches_are_rejected() {
        let engine =
            IngestEngine::new(IngestConfig { shards: 1, queue_depth: 4, shard_log: false });
        let h = engine.handle();
        h.register(StreamId(1), spec()).unwrap();
        let a = [1.0, 2.0];
        let b = [1.0];
        let ragged: Vec<(f64, &[f64])> = vec![(0.0, &a[..]), (1.0, &b[..])];
        assert_eq!(h.push_batch(StreamId(1), &ragged), Err(IngestError::RaggedBatch));
        let _ = engine.finish();
    }
}
