//! # pla-ingest — multi-stream ingest engine
//!
//! The paper defines one filter per stream; a production deployment
//! (ROADMAP north star) ingests millions of independent streams at once.
//! This crate is the layer between those two worlds:
//!
//! * [`StreamTable`] — a single-threaded registry mapping [`StreamId`] to
//!   a boxed [`StreamFilter`](pla_core::filters::StreamFilter) built from
//!   a per-stream [`FilterSpec`](pla_core::filters::FilterSpec), with
//!   per-stream error *quarantine*: a stream that feeds invalid samples is
//!   sidelined (error recorded, later samples counted and dropped) without
//!   disturbing any other stream.
//! * [`IngestEngine`] — shard-per-core scale-out: `N` worker threads, each
//!   owning one `StreamTable`, fed through bounded channels. Samples are
//!   hash-routed by stream id ([`shard_of`]), so a given stream always
//!   lands on the same shard and its samples are processed in send order —
//!   the per-stream segment sequence is *identical* to running that stream
//!   through a standalone filter (property-tested).
//! * Backpressure — the channels are bounded: [`IngestHandle::push`]
//!   blocks when a shard is saturated, [`IngestHandle::try_push`] returns
//!   [`IngestError::Backpressure`] instead, letting the caller shed load.
//! * [`SegmentStore`] — the shared, concurrently-appendable home for
//!   segment logs: streams hash across lock shards, each stream's log is
//!   a chain of immutable `Arc`-shared [`Run`]s plus a small mutable
//!   tail, and [`snapshot`](SegmentStore::snapshot)s are O(streams)
//!   pointer grabs with a per-shard consistency contract (see
//!   [`store`](SegmentStore)'s module docs). Fed directly by an engine
//!   ([`IngestEngine::with_segment_store`]) or, at the base station, by
//!   `pla-net`'s many-connection collector funneling every connection's
//!   reconstruction into one queryable place; `pla-query`'s
//!   `StoreQueryEngine` answers point/range/aggregate queries straight
//!   off a [`StoreSnapshot`].
//!
//! ```
//! use pla_core::filters::{FilterKind, FilterSpec};
//! use pla_ingest::{IngestConfig, IngestEngine, StreamId};
//!
//! let engine = IngestEngine::new(IngestConfig { shards: 2, ..Default::default() });
//! for id in 0..4u64 {
//!     engine.handle().register(StreamId(id), FilterSpec::new(FilterKind::Swing, &[0.5])).unwrap();
//! }
//! for j in 0..100 {
//!     for id in 0..4u64 {
//!         engine.handle().push(StreamId(id), j as f64, &[(j as f64) * 0.1]).unwrap();
//!     }
//! }
//! let report = engine.finish();
//! assert_eq!(report.streams.len(), 4);
//! for out in report.streams.values() {
//!     assert_eq!(out.segments.len(), 1); // clean ramps: one segment each
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod engine;
mod store;
mod table;

pub use engine::{shard_of, IngestConfig, IngestEngine, IngestHandle, IngestReport, ShardStats};
pub use store::{Run, SegmentStore, SourceWatermark, StoreConfig, StoreSnapshot, StreamView};
pub use table::{IngestError, Quarantine, StreamOutput, StreamTable};

/// Identity of one logical stream.
///
/// Stream ids are caller-assigned opaque integers; the engine only hashes
/// them for shard routing and orders them in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}
