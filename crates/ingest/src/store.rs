//! The shared segment store: one concurrently-appendable home for every
//! reconstructed (or locally emitted) segment log.
//!
//! The deployment picture behind it is the paper's: many sensors
//! compress at the edge, one base station reconstructs — and Ferragina
//! & Lari (arXiv:2509.07827) argue the reconstructed logs should land
//! in a *queryable shared structure*, not per-connection buffers. A
//! `pla-net` collector funnels every connection's `(ConnId, StreamId,
//! Segment)` output here; an [`IngestEngine`](crate::IngestEngine) can
//! append its shards' emissions directly
//! ([`with_segment_store`](crate::IngestEngine::with_segment_store));
//! readers take consistent [`snapshot`](SegmentStore::snapshot)s while
//! appends continue.
//!
//! Design choices, in order of importance:
//!
//! * **Appends are totally ordered per stream.** One `RwLock` over the
//!   whole store (writers append, readers snapshot) is deliberate:
//!   appends are tiny (one `Vec::push`), segment production is filter-
//!   rate-limited, and a coarse lock keeps snapshots trivially
//!   consistent — a snapshot never shows stream A ahead of the append
//!   that preceded stream B's. Per-stream sharding can come later
//!   behind the same API if a profile demands it.
//! * **A stream has one owner.** Stream ids are expected to be written
//!   by a single source (connection or engine); the store does not
//!   merge-sort interleaved owners, it appends in arrival order.
//!   Multi-owner writes are not an error — they are recorded in arrival
//!   order — but no cross-source ordering is promised.
//! * **Watermarks are per source.** Each source id carries how many
//!   segments it appended and the highest `t_end` it reached —
//!   enough for a collector to report per-connection progress and for
//!   load-shed decisions to stay observable.

use std::collections::BTreeMap;
use std::sync::RwLock;

use pla_core::Segment;

use crate::StreamId;

/// Progress watermark for one append source (a collector connection, an
/// engine, a backfill job).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceWatermark {
    /// Segments this source has appended.
    pub segments: u64,
    /// Highest `t_end` this source has appended (`-inf` before the
    /// first append).
    pub covered_through: f64,
}

impl Default for SourceWatermark {
    fn default() -> Self {
        Self { segments: 0, covered_through: f64::NEG_INFINITY }
    }
}

#[derive(Debug, Default)]
struct StoreInner {
    streams: BTreeMap<StreamId, Vec<Segment>>,
    sources: BTreeMap<u64, SourceWatermark>,
    total_segments: u64,
}

/// A point-in-time copy of the store: per-stream logs plus per-source
/// watermarks, internally consistent (taken under one read lock, so it
/// reflects a prefix of the append history — never a torn mix).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreSnapshot {
    /// Per-stream segment logs, ordered by stream id, each in append
    /// order.
    pub streams: BTreeMap<StreamId, Vec<Segment>>,
    /// Per-source progress watermarks, ordered by source id.
    pub sources: BTreeMap<u64, SourceWatermark>,
    /// Total segments across all streams.
    pub total_segments: u64,
}

/// The concurrently-appendable segment store. Cheap to share:
/// construct once, wrap in an `Arc`, and hand clones to every appender
/// and reader.
///
/// ```
/// use pla_core::Segment;
/// use pla_ingest::{SegmentStore, StreamId};
///
/// let store = SegmentStore::new();
/// let seg = Segment {
///     t_start: 0.0,
///     x_start: [1.0].into(),
///     t_end: 4.0,
///     x_end: [3.0].into(),
///     connected: false,
///     n_points: 5,
///     new_recordings: 2,
/// };
/// store.append(7, StreamId(42), seg.clone());
/// let snap = store.snapshot();
/// assert_eq!(snap.streams[&StreamId(42)], vec![seg]);
/// assert_eq!(snap.sources[&7].segments, 1);
/// assert_eq!(snap.sources[&7].covered_through, 4.0);
/// ```
#[derive(Debug, Default)]
pub struct SegmentStore {
    inner: RwLock<StoreInner>,
}

impl SegmentStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one segment to `stream`'s log, crediting `source`'s
    /// watermark.
    pub fn append(&self, source: u64, stream: StreamId, segment: Segment) {
        let mut inner = self.inner.write().expect("segment store lock");
        let mark = inner.sources.entry(source).or_default();
        mark.segments += 1;
        if segment.t_end > mark.covered_through {
            mark.covered_through = segment.t_end;
        }
        inner.total_segments += 1;
        inner.streams.entry(stream).or_default().push(segment);
    }

    /// Appends a batch under one lock acquisition (what a collector's
    /// pump round publishes per stream).
    pub fn append_batch(&self, source: u64, stream: StreamId, segments: &[Segment]) {
        if segments.is_empty() {
            return;
        }
        let mut inner = self.inner.write().expect("segment store lock");
        let mark = inner.sources.entry(source).or_default();
        mark.segments += segments.len() as u64;
        for seg in segments {
            if seg.t_end > mark.covered_through {
                mark.covered_through = seg.t_end;
            }
        }
        inner.total_segments += segments.len() as u64;
        inner.streams.entry(stream).or_default().extend_from_slice(segments);
    }

    /// A consistent point-in-time copy of everything (logs and
    /// watermarks). Readers query the copy lock-free; see the module
    /// docs for the consistency contract.
    pub fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.read().expect("segment store lock");
        StoreSnapshot {
            streams: inner.streams.clone(),
            sources: inner.sources.clone(),
            total_segments: inner.total_segments,
        }
    }

    /// One stream's log (cloned), or `None` if nothing was ever
    /// appended to it.
    pub fn stream_segments(&self, stream: StreamId) -> Option<Vec<Segment>> {
        self.inner.read().expect("segment store lock").streams.get(&stream).cloned()
    }

    /// Stream ids present, ascending.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.inner.read().expect("segment store lock").streams.keys().copied().collect()
    }

    /// Number of distinct streams.
    pub fn len(&self) -> usize {
        self.inner.read().expect("segment store lock").streams.len()
    }

    /// Whether the store holds no streams at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total segments across all streams.
    pub fn total_segments(&self) -> u64 {
        self.inner.read().expect("segment store lock").total_segments
    }

    /// `source`'s progress watermark, or `None` if it never appended.
    pub fn watermark(&self, source: u64) -> Option<SourceWatermark> {
        self.inner.read().expect("segment store lock").sources.get(&source).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn seg(t0: f64, t1: f64) -> Segment {
        Segment {
            t_start: t0,
            x_start: [t0].into(),
            t_end: t1,
            x_end: [t1].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    #[test]
    fn appends_accumulate_in_order_with_watermarks() {
        let store = SegmentStore::new();
        store.append(1, StreamId(5), seg(0.0, 2.0));
        store.append(1, StreamId(5), seg(2.0, 7.0));
        store.append(2, StreamId(9), seg(0.0, 3.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_segments(), 3);
        let log = store.stream_segments(StreamId(5)).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].t_end, 7.0);
        assert_eq!(store.watermark(1).unwrap().segments, 2);
        assert_eq!(store.watermark(1).unwrap().covered_through, 7.0);
        assert_eq!(store.watermark(2).unwrap().covered_through, 3.0);
        assert_eq!(store.watermark(3), None);
    }

    #[test]
    fn batch_append_equals_singles() {
        let a = SegmentStore::new();
        let b = SegmentStore::new();
        let segs = [seg(0.0, 1.0), seg(1.0, 4.0), seg(4.0, 9.0)];
        a.append_batch(3, StreamId(1), &segs);
        for s in &segs {
            b.append(3, StreamId(1), s.clone());
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_is_a_stable_copy() {
        let store = SegmentStore::new();
        store.append(1, StreamId(1), seg(0.0, 1.0));
        let snap = store.snapshot();
        store.append(1, StreamId(1), seg(1.0, 2.0));
        assert_eq!(snap.streams[&StreamId(1)].len(), 1, "snapshot must not see later appends");
        assert_eq!(store.snapshot().streams[&StreamId(1)].len(), 2);
    }

    #[test]
    fn concurrent_appenders_lose_nothing() {
        let store = Arc::new(SegmentStore::new());
        let threads: Vec<_> = (0..4u64)
            .map(|source| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let t = i as f64;
                        store.append(source, StreamId(source), seg(t, t + 1.0));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.total_segments, 1000);
        for source in 0..4u64 {
            assert_eq!(snap.sources[&source].segments, 250);
            let log = &snap.streams[&StreamId(source)];
            assert_eq!(log.len(), 250);
            // Per-stream order is the single owner's append order.
            for (i, s) in log.iter().enumerate() {
                assert_eq!(s.t_start, i as f64);
            }
        }
    }
}
