//! The shared segment store: a sharded, epoch-based home for every
//! reconstructed (or locally emitted) segment log, built so *readers
//! scale*.
//!
//! The deployment picture behind it is the paper's: many sensors
//! compress at the edge, one base station reconstructs — and Ferragina
//! & Lari (arXiv:2509.07827) argue the reconstructed logs should land
//! in a *queryable shared structure*, not per-connection buffers. A
//! `pla-net` collector funnels every connection's `(ConnId, StreamId,
//! Segment)` output here; an [`IngestEngine`](crate::IngestEngine) can
//! append its shards' emissions directly
//! ([`with_segment_store`](crate::IngestEngine::with_segment_store));
//! readers take [`snapshot`](SegmentStore::snapshot)s while appends
//! continue — and a snapshot costs O(streams) pointer grabs, not a
//! deep copy of every segment.
//!
//! # Layout: shards → streams → runs + tail
//!
//! ```text
//! SegmentStore
//!  ├─ shard 0 (RwLock) ── streams hashed here by shard_of
//!  │    ├─ stream 7:  [run₀ (Arc)] [run₁ (Arc)] [run₂ (Arc)] | tail (Vec)
//!  │    │              └────────── sealed, immutable ───────┘  └ mutable,
//!  │    │                                                        < seal
//!  │    │                                                        threshold
//!  │    └─ stream 23: [run₀ (Arc)] | tail
//!  ├─ shard 1 (RwLock) …
//!  └─ shard N-1
//! ```
//!
//! * **Streams hash across N shards** (the same [`shard_of`] routing the
//!   ingest engine uses), each shard behind its own `RwLock` — writers
//!   on different shards never contend, and a reader sweeping a
//!   snapshot holds one shard's lock at a time, never a global lock
//!   across streams.
//! * **A stream's log is a chain of immutable runs plus a small mutable
//!   tail.** Appends push into the tail; when the tail reaches the
//!   *seal threshold* it is sealed into an [`Arc<Run>`](Run) — and a
//!   sealed run is **immutable forever**. Snapshots share sealed runs
//!   by `Arc` clone (a pointer grab) and copy only the tail (bounded by
//!   the threshold), so [`snapshot`](SegmentStore::snapshot) is
//!   O(streams · threshold) worst case instead of O(total segments) —
//!   at 10k segments per stream that is two orders of magnitude less
//!   copying, and the shared runs mean a snapshot's memory cost is
//!   O(streams) too.
//! * **Epochs make change detection O(shards).** Every shard counts the
//!   segments it has ever admitted in an *epoch* counter; snapshots
//!   record the per-shard epochs they observed, so a poller can compare
//!   [`epochs`](SegmentStore::epochs) against its last snapshot and
//!   skip the sweep when nothing moved.
//!
//! # Consistency contract (per shard)
//!
//! The old coarse-lock store promised a global prefix: a snapshot never
//! showed stream A ahead of the append that preceded stream B's. Under
//! sharding that guarantee is **per shard**:
//!
//! * For any two streams on the *same* shard, a snapshot is a prefix of
//!   that shard's append history — if stream B's k-th segment is
//!   visible, every same-shard append that happened before it
//!   (including stream A's earlier segments) is visible too. Pinned by
//!   `same_shard_streams_never_tear` below.
//! * Across shards, a snapshot interleaves per-shard prefixes taken in
//!   shard order; no cross-shard ordering is promised. Each stream
//!   lives entirely on one shard, so **per-stream logs are always exact
//!   prefixes of their append history** — a snapshot can lag a racing
//!   writer, it can never tear a stream or reorder within one.
//! * A snapshot never changes after it is returned: sealed runs are
//!   immutable and the tail is copied out under the shard lock.
//!
//! Other rules carried over unchanged from the coarse-lock store:
//!
//! * **A stream has one owner.** Stream ids are expected to be written
//!   by a single source (connection or engine); multi-owner writes are
//!   recorded in arrival order but no cross-source ordering is
//!   promised.
//! * **Watermarks are per source.** Each source id carries how many
//!   segments it appended and the highest `t_end` it reached. A source
//!   writing streams on several shards has its watermark tracked
//!   per shard and merged on read, so a watermark read concurrent with
//!   appends may mix per-shard prefixes — each of which is itself
//!   consistent, and the merged value is always ≤ the true total.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use pla_core::Segment;

use crate::engine::shard_of;
use crate::StreamId;

/// Progress watermark for one append source (a collector connection, an
/// engine, a backfill job).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceWatermark {
    /// Segments this source has appended.
    pub segments: u64,
    /// Highest `t_end` this source has appended (`-inf` before the
    /// first append).
    pub covered_through: f64,
}

impl Default for SourceWatermark {
    fn default() -> Self {
        Self { segments: 0, covered_through: f64::NEG_INFINITY }
    }
}

impl SourceWatermark {
    /// Folds another shard's contribution for the same source into
    /// `self` (segment counts add, coverage takes the furthest point).
    fn merge(&mut self, other: &SourceWatermark) {
        self.segments += other.segments;
        if other.covered_through > self.covered_through {
            self.covered_through = other.covered_through;
        }
    }
}

/// Construction parameters for a [`SegmentStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of lock shards streams hash across (clamped to ≥ 1).
    /// More shards mean less writer contention and a finer-grained
    /// consistency guarantee (see the module docs); the default suits a
    /// collector with tens to hundreds of connections.
    pub shards: usize,
    /// Tail length at which a stream's mutable tail is sealed into an
    /// immutable [`Run`] (clamped to ≥ 1). This bounds both the
    /// per-stream copy cost of a snapshot and the granularity of run
    /// sharing: every sealed run holds exactly this many segments.
    pub seal_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { shards: 16, seal_threshold: 64 }
    }
}

/// A sealed, immutable block of consecutive segments of one stream.
///
/// Runs are the unit of sharing between the live store and its
/// snapshots: once sealed, a run's contents never change (the
/// Arc-sharing rule in ARCHITECTURE.md), so cloning the `Arc` *is* the
/// copy. Every run sealed by a store holds exactly
/// [`StoreConfig::seal_threshold`] segments — uniform length keeps
/// position lookups O(1).
#[derive(Debug, PartialEq)]
pub struct Run {
    segments: Box<[Segment]>,
}

impl Run {
    /// The segments of this run, in append order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments in this run.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the run is empty (never true for store-sealed runs).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// One stream's live log inside a shard: the sealed-run chain plus the
/// mutable tail being filled.
#[derive(Debug, Default)]
struct StreamLog {
    runs: Vec<Arc<Run>>,
    sealed: usize,
    tail: Vec<Segment>,
}

impl StreamLog {
    fn len(&self) -> usize {
        self.sealed + self.tail.len()
    }

    fn push(&mut self, segment: Segment, seal_threshold: usize) {
        self.tail.push(segment);
        if self.tail.len() == seal_threshold {
            let run = std::mem::replace(&mut self.tail, Vec::with_capacity(seal_threshold));
            self.runs.push(Arc::new(Run { segments: run.into_boxed_slice() }));
            self.sealed += seal_threshold;
        }
    }

    fn view(&self, run_len: usize) -> StreamView {
        StreamView {
            runs: self.runs.clone(),
            tail: self.tail.clone().into(),
            len: self.len(),
            run_len,
        }
    }
}

#[derive(Debug, Default)]
struct ShardInner {
    streams: BTreeMap<StreamId, StreamLog>,
    /// This shard's *contribution* to each source's watermark (a source
    /// writing streams on several shards is merged on read).
    sources: BTreeMap<u64, SourceWatermark>,
    segments: u64,
    /// Segments ever admitted by this shard; never decreases.
    epoch: u64,
}

impl ShardInner {
    fn append(&mut self, source: u64, stream: StreamId, segment: Segment, seal: usize) {
        let mark = self.sources.entry(source).or_default();
        mark.segments += 1;
        if segment.t_end > mark.covered_through {
            mark.covered_through = segment.t_end;
        }
        self.segments += 1;
        self.epoch += 1;
        self.streams.entry(stream).or_default().push(segment, seal);
    }
}

/// A read-only view of one stream's log at snapshot time: shared sealed
/// runs plus a copy of the tail.
///
/// The view reads like the flat `Vec<Segment>` the pre-sharding store
/// returned — [`iter`](StreamView::iter), [`get`](StreamView::get),
/// [`len`](StreamView::len), equality against segment slices — without
/// materializing one; [`to_vec`](StreamView::to_vec) materializes
/// explicitly when a flat log is genuinely needed. Query layers index
/// the runs directly ([`runs`](StreamView::runs) /
/// [`tail`](StreamView::tail)): run lengths are uniform
/// ([`run_len`](StreamView::run_len)), so position arithmetic is O(1)
/// and time lookups binary-search run starts then within one run.
#[derive(Clone)]
pub struct StreamView {
    runs: Vec<Arc<Run>>,
    tail: Arc<[Segment]>,
    len: usize,
    run_len: usize,
}

impl Default for StreamView {
    fn default() -> Self {
        Self { runs: Vec::new(), tail: Vec::new().into(), len: 0, run_len: 1 }
    }
}

impl StreamView {
    /// Total segments in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no segments.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sealed, immutable runs (each shared with the live store by
    /// `Arc`), oldest first.
    pub fn runs(&self) -> &[Arc<Run>] {
        &self.runs
    }

    /// The unsealed tail as of snapshot time, following the runs.
    pub fn tail(&self) -> &[Segment] {
        &self.tail
    }

    /// Number of segments in every sealed run (uniform; the store's
    /// seal threshold).
    pub fn run_len(&self) -> usize {
        self.run_len
    }

    /// The `i`-th segment in append order, or `None` past the end.
    /// O(1): uniform run lengths make this pure index arithmetic.
    pub fn get(&self, i: usize) -> Option<&Segment> {
        let sealed = self.runs.len() * self.run_len;
        if i < sealed {
            Some(&self.runs[i / self.run_len].segments[i % self.run_len])
        } else {
            self.tail.get(i - sealed)
        }
    }

    /// Iterates every segment in append order, runs first then tail.
    pub fn iter(&self) -> impl Iterator<Item = &Segment> + Clone {
        self.runs.iter().flat_map(|r| r.segments.iter()).chain(self.tail.iter())
    }

    /// Materializes the view into a flat log (the pre-sharding snapshot
    /// shape). Costs one copy of every segment — query through the view
    /// instead where possible.
    pub fn to_vec(&self) -> Vec<Segment> {
        self.iter().cloned().collect()
    }

    /// Covered time span `(first t_start, last t_end)`, or `None` when
    /// empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        Some((self.get(0)?.t_start, self.get(self.len - 1)?.t_end))
    }
}

impl std::fmt::Debug for StreamView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for StreamView {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl PartialEq<[Segment]> for StreamView {
    fn eq(&self, other: &[Segment]) -> bool {
        self.len == other.len() && self.iter().eq(other.iter())
    }
}

impl PartialEq<Vec<Segment>> for StreamView {
    fn eq(&self, other: &Vec<Segment>) -> bool {
        *self == other[..]
    }
}

impl PartialEq<StreamView> for Vec<Segment> {
    fn eq(&self, other: &StreamView) -> bool {
        *other == self[..]
    }
}

/// A point-in-time view of the store: per-stream [`StreamView`]s plus
/// merged per-source watermarks.
///
/// Internally consistent *per shard* (see the module docs): every
/// stream's view is an exact prefix of its append history, same-shard
/// streams are mutually consistent, and the snapshot never changes
/// after it is returned. Equality compares logical content (segment
/// sequences, watermarks, totals) — not run boundaries, which are an
/// implementation detail of when seals happened.
#[derive(Debug, Clone, Default)]
pub struct StoreSnapshot {
    /// Per-stream segment views, ordered by stream id, each in append
    /// order.
    pub streams: BTreeMap<StreamId, StreamView>,
    /// Per-source progress watermarks (merged across shards), ordered
    /// by source id.
    pub sources: BTreeMap<u64, SourceWatermark>,
    /// Total segments across all streams.
    pub total_segments: u64,
    /// Per-shard epochs observed while sweeping; compare against
    /// [`SegmentStore::epochs`] to detect whether anything changed
    /// since this snapshot without paying for a new one.
    pub epochs: Box<[u64]>,
}

impl PartialEq for StoreSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.total_segments == other.total_segments
            && self.streams == other.streams
            && self.sources == other.sources
    }
}

/// The concurrently-appendable segment store. Cheap to share:
/// construct once, wrap in an `Arc`, and hand clones to every appender
/// and reader.
///
/// ```
/// use pla_core::Segment;
/// use pla_ingest::{SegmentStore, StreamId};
///
/// let store = SegmentStore::new();
/// let seg = Segment {
///     t_start: 0.0,
///     x_start: [1.0].into(),
///     t_end: 4.0,
///     x_end: [3.0].into(),
///     connected: false,
///     n_points: 5,
///     new_recordings: 2,
/// };
/// store.append(7, StreamId(42), seg.clone());
/// let snap = store.snapshot();
/// assert_eq!(snap.streams[&StreamId(42)], vec![seg]);
/// assert_eq!(snap.sources[&7].segments, 1);
/// assert_eq!(snap.sources[&7].covered_through, 4.0);
/// ```
#[derive(Debug)]
pub struct SegmentStore {
    shards: Box<[RwLock<ShardInner>]>,
    seal_threshold: usize,
}

impl Default for SegmentStore {
    fn default() -> Self {
        Self::with_config(StoreConfig::default())
    }
}

impl SegmentStore {
    /// An empty store with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with explicit shard count and seal threshold.
    pub fn with_config(config: StoreConfig) -> Self {
        let shards = config.shards.max(1);
        Self {
            shards: (0..shards).map(|_| RwLock::new(ShardInner::default())).collect(),
            seal_threshold: config.seal_threshold.max(1),
        }
    }

    /// Number of lock shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Tail length at which runs are sealed.
    pub fn seal_threshold(&self) -> usize {
        self.seal_threshold
    }

    fn shard(&self, stream: StreamId) -> &RwLock<ShardInner> {
        &self.shards[shard_of(stream, self.shards.len())]
    }

    /// Appends one segment to `stream`'s log, crediting `source`'s
    /// watermark. Takes only the owning shard's write lock.
    pub fn append(&self, source: u64, stream: StreamId, segment: Segment) {
        let mut inner = self.shard(stream).write().expect("segment store shard lock");
        inner.append(source, stream, segment, self.seal_threshold);
    }

    /// Appends a batch under one lock acquisition of the owning shard
    /// (what a collector's pump round publishes per stream).
    pub fn append_batch(&self, source: u64, stream: StreamId, segments: &[Segment]) {
        if segments.is_empty() {
            return;
        }
        let mut inner = self.shard(stream).write().expect("segment store shard lock");
        for seg in segments {
            inner.append(source, stream, seg.clone(), self.seal_threshold);
        }
    }

    /// A point-in-time view of everything (logs and watermarks), taken
    /// one shard at a time — O(streams) `Arc` clones plus a copy of
    /// each stream's sub-threshold tail, *not* a deep copy of every
    /// segment. See the module docs for the per-shard consistency
    /// contract.
    pub fn snapshot(&self) -> StoreSnapshot {
        let mut snap = StoreSnapshot::default();
        let mut epochs = Vec::with_capacity(self.shards.len());
        for shard in self.shards.iter() {
            let inner = shard.read().expect("segment store shard lock");
            for (&id, log) in &inner.streams {
                snap.streams.insert(id, log.view(self.seal_threshold));
            }
            for (&source, mark) in &inner.sources {
                snap.sources.entry(source).or_default().merge(mark);
            }
            snap.total_segments += inner.segments;
            epochs.push(inner.epoch);
        }
        snap.epochs = epochs.into();
        snap
    }

    /// The pre-sharding snapshot semantics: every segment deep-copied
    /// into one freshly allocated run per stream, sharing nothing with
    /// the live store. Kept as the A/B baseline for the
    /// `store_concurrent` bench and for callers that need a snapshot
    /// whose memory is independent of the store's (e.g. to outlive it
    /// cheaply after the store keeps growing).
    pub fn snapshot_deep(&self) -> StoreSnapshot {
        let mut snap = self.snapshot();
        for view in snap.streams.values_mut() {
            let flat = view.to_vec();
            *view = StreamView {
                len: flat.len(),
                run_len: flat.len().max(1),
                runs: vec![Arc::new(Run { segments: flat.into_boxed_slice() })],
                tail: Vec::new().into(),
            };
        }
        snap
    }

    /// Per-shard epochs (segments ever admitted, per shard). Compare
    /// with a snapshot's [`epochs`](StoreSnapshot::epochs) for an
    /// O(shards) "did anything change?" probe.
    pub fn epochs(&self) -> Box<[u64]> {
        self.shards.iter().map(|s| s.read().expect("segment store shard lock").epoch).collect()
    }

    /// One stream's log, materialized flat, or `None` if nothing was
    /// ever appended to it.
    pub fn stream_segments(&self, stream: StreamId) -> Option<Vec<Segment>> {
        let inner = self.shard(stream).read().expect("segment store shard lock");
        inner.streams.get(&stream).map(|log| log.view(self.seal_threshold).to_vec())
    }

    /// Stream ids present, ascending.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        let mut ids: Vec<StreamId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("segment store shard lock")
                    .streams
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of distinct streams.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("segment store shard lock").streams.len()).sum()
    }

    /// Whether the store holds no streams at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total segments across all streams. Sums per-shard counts read
    /// one lock at a time; monotone, may lag racing writers.
    pub fn total_segments(&self) -> u64 {
        self.shards.iter().map(|s| s.read().expect("segment store shard lock").segments).sum()
    }

    /// `source`'s progress watermark merged across shards, or `None` if
    /// it never appended.
    pub fn watermark(&self, source: u64) -> Option<SourceWatermark> {
        let mut merged: Option<SourceWatermark> = None;
        for shard in self.shards.iter() {
            let inner = shard.read().expect("segment store shard lock");
            if let Some(mark) = inner.sources.get(&source) {
                merged.get_or_insert_with(SourceWatermark::default).merge(mark);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(t0: f64, t1: f64) -> Segment {
        Segment {
            t_start: t0,
            x_start: [t0].into(),
            t_end: t1,
            x_end: [t1].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    #[test]
    fn appends_accumulate_in_order_with_watermarks() {
        let store = SegmentStore::new();
        store.append(1, StreamId(5), seg(0.0, 2.0));
        store.append(1, StreamId(5), seg(2.0, 7.0));
        store.append(2, StreamId(9), seg(0.0, 3.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_segments(), 3);
        let log = store.stream_segments(StreamId(5)).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[1].t_end, 7.0);
        assert_eq!(store.watermark(1).unwrap().segments, 2);
        assert_eq!(store.watermark(1).unwrap().covered_through, 7.0);
        assert_eq!(store.watermark(2).unwrap().covered_through, 3.0);
        assert_eq!(store.watermark(3), None);
    }

    #[test]
    fn batch_append_equals_singles() {
        let a = SegmentStore::new();
        let b = SegmentStore::new();
        let segs = [seg(0.0, 1.0), seg(1.0, 4.0), seg(4.0, 9.0)];
        a.append_batch(3, StreamId(1), &segs);
        for s in &segs {
            b.append(3, StreamId(1), s.clone());
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_is_a_stable_copy() {
        let store = SegmentStore::new();
        store.append(1, StreamId(1), seg(0.0, 1.0));
        let snap = store.snapshot();
        store.append(1, StreamId(1), seg(1.0, 2.0));
        assert_eq!(snap.streams[&StreamId(1)].len(), 1, "snapshot must not see later appends");
        assert_eq!(store.snapshot().streams[&StreamId(1)].len(), 2);
    }

    #[test]
    fn sealing_at_threshold_keeps_runs_uniform_and_order_flat() {
        let store = SegmentStore::with_config(StoreConfig { shards: 2, seal_threshold: 4 });
        let mut flat = Vec::new();
        for i in 0..11 {
            let s = seg(i as f64, i as f64 + 1.0);
            flat.push(s.clone());
            store.append(1, StreamId(3), s);
        }
        let snap = store.snapshot();
        let view = &snap.streams[&StreamId(3)];
        assert_eq!(view.runs().len(), 2, "11 appends at threshold 4 seal two runs");
        assert!(view.runs().iter().all(|r| r.len() == 4), "sealed runs are uniform");
        assert_eq!(view.tail().len(), 3);
        assert_eq!(view.len(), 11);
        assert_eq!(*view, flat, "runs + tail iterate in flat append order");
        for (i, want) in flat.iter().enumerate() {
            assert_eq!(view.get(i), Some(want), "get({i}) must match the flat log");
        }
        assert_eq!(view.get(11), None);
        assert_eq!(view.span(), Some((0.0, 11.0)));
    }

    #[test]
    fn snapshots_share_sealed_runs_with_the_store() {
        let store = SegmentStore::with_config(StoreConfig { shards: 1, seal_threshold: 2 });
        for i in 0..6 {
            store.append(1, StreamId(1), seg(i as f64, i as f64 + 1.0));
        }
        let a = store.snapshot();
        let b = store.snapshot();
        let (ra, rb) = (a.streams[&StreamId(1)].runs(), b.streams[&StreamId(1)].runs());
        assert_eq!(ra.len(), 3);
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert!(Arc::ptr_eq(x, y), "snapshots must share sealed runs, not copy them");
        }
    }

    #[test]
    fn epochs_detect_change_cheaply() {
        let store = SegmentStore::with_config(StoreConfig { shards: 4, seal_threshold: 8 });
        let snap = store.snapshot();
        assert_eq!(store.epochs(), snap.epochs, "quiet store: epochs match the snapshot's");
        store.append(1, StreamId(9), seg(0.0, 1.0));
        assert_ne!(store.epochs(), snap.epochs, "an append must bump its shard's epoch");
    }

    #[test]
    fn deep_snapshot_matches_and_shares_nothing() {
        let store = SegmentStore::with_config(StoreConfig { shards: 2, seal_threshold: 3 });
        for i in 0..10 {
            store.append(1, StreamId(4), seg(i as f64, i as f64 + 1.0));
        }
        let cheap = store.snapshot();
        let deep = store.snapshot_deep();
        assert_eq!(cheap, deep, "deep and cheap snapshots are logically identical");
        let live = store.snapshot();
        for run in deep.streams[&StreamId(4)].runs() {
            for shared in live.streams[&StreamId(4)].runs() {
                assert!(!Arc::ptr_eq(run, shared), "deep snapshot must not share runs");
            }
        }
    }

    #[test]
    fn watermarks_merge_across_shards() {
        // One source writing many streams: contributions land on several
        // shards and must merge to the true totals.
        let store = SegmentStore::with_config(StoreConfig { shards: 8, seal_threshold: 64 });
        for id in 0..32u64 {
            store.append(7, StreamId(id), seg(id as f64, id as f64 + 1.0));
        }
        let mark = store.watermark(7).unwrap();
        assert_eq!(mark.segments, 32);
        assert_eq!(mark.covered_through, 32.0);
        assert_eq!(store.snapshot().sources[&7], mark);
    }

    #[test]
    fn concurrent_appenders_lose_nothing() {
        let store = Arc::new(SegmentStore::new());
        let threads: Vec<_> = (0..4u64)
            .map(|source| {
                let store = store.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let t = i as f64;
                        store.append(source, StreamId(source), seg(t, t + 1.0));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.total_segments, 1000);
        for source in 0..4u64 {
            assert_eq!(snap.sources[&source].segments, 250);
            let log = &snap.streams[&StreamId(source)];
            assert_eq!(log.len(), 250);
            // Per-stream order is the single owner's append order.
            for (i, s) in log.iter().enumerate() {
                assert_eq!(s.t_start, i as f64);
            }
        }
    }

    /// The satellite consistency pin: two streams on the *same shard*
    /// must never tear — whenever a snapshot shows stream B's k-th
    /// append, stream A's k-th (which always happens first) is visible.
    #[test]
    fn same_shard_streams_never_tear() {
        let shards = 4;
        // Find two distinct stream ids that hash to the same shard.
        let a = StreamId(0);
        let b = (1..64)
            .map(StreamId)
            .find(|&id| shard_of(id, shards) == shard_of(a, shards))
            .expect("some id shares shard 0's bucket");
        let store = Arc::new(SegmentStore::with_config(StoreConfig { shards, seal_threshold: 8 }));
        let writer = {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..2000 {
                    let t = i as f64;
                    store.append(1, a, seg(t, t + 1.0));
                    store.append(1, b, seg(t, t + 1.0));
                }
            })
        };
        while !writer.is_finished() {
            let snap = store.snapshot();
            let na = snap.streams.get(&a).map_or(0, StreamView::len);
            let nb = snap.streams.get(&b).map_or(0, StreamView::len);
            assert!(
                na >= nb,
                "same-shard tear: B shows {nb} segments but A (appended first) only {na}"
            );
        }
        writer.join().unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.streams[&a].len(), 2000);
        assert_eq!(snap.streams[&b].len(), 2000);
    }
}
