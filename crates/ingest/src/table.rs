//! The per-shard stream registry: `StreamId -> Box<dyn StreamFilter>`
//! with per-stream epsilon specs and error quarantine.

use std::collections::{BTreeMap, HashMap};

use pla_core::filters::{FilterSpec, StreamFilter};
use pla_core::{CollectingSink, FilterError, ProvisionalUpdate, Segment};

use crate::StreamId;

/// Errors reported by the ingest layer.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A sample or finish was addressed to a stream that was never
    /// registered.
    UnknownStream(StreamId),
    /// A stream id was registered twice.
    DuplicateStream(StreamId),
    /// The stream is quarantined: an earlier sample was rejected by its
    /// filter and every sample since is being dropped and counted.
    Quarantined(StreamId),
    /// The stream's filter rejected this sample (or its spec failed to
    /// build); the stream is now quarantined.
    Filter {
        /// The offending stream.
        stream: StreamId,
        /// The filter's verdict.
        error: FilterError,
    },
    /// A batch's samples do not share one dimensionality, so it cannot be
    /// routed as a unit.
    RaggedBatch,
    /// `try_push` would have blocked: the target shard's queue is full.
    Backpressure,
    /// The engine has shut down; no shard is listening.
    Closed,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownStream(id) => write!(f, "{id} is not registered"),
            Self::DuplicateStream(id) => write!(f, "{id} is already registered"),
            Self::Quarantined(id) => write!(f, "{id} is quarantined; sample dropped"),
            Self::Filter { stream, error } => write!(f, "{stream} rejected a sample: {error}"),
            Self::RaggedBatch => write!(f, "batch samples must share one dimensionality"),
            Self::Backpressure => write!(f, "shard queue full; retry or drop"),
            Self::Closed => write!(f, "ingest engine has shut down"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Why and how hard a stream is quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantine {
    /// The error that triggered the quarantine (also covers a spec that
    /// failed to build at registration).
    pub error: FilterError,
    /// Samples dropped *after* the trigger because the stream was already
    /// quarantined.
    pub dropped: u64,
}

/// Everything one stream produced, collected when the table is drained.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutput {
    /// Finalized segments, oldest first — identical to what a standalone
    /// filter run over the same samples would emit.
    pub segments: Vec<Segment>,
    /// Provisional (lag-bound) updates, oldest first.
    pub provisionals: Vec<ProvisionalUpdate>,
    /// Samples handed to the filter (including one that triggered a
    /// quarantine, excluding samples dropped while quarantined).
    pub samples_in: u64,
    /// Set if the stream was quarantined.
    pub quarantine: Option<Quarantine>,
}

struct StreamEntry {
    /// `None` only when the spec itself failed to build (the entry is
    /// then quarantined from birth).
    filter: Option<Box<dyn StreamFilter>>,
    sink: CollectingSink,
    samples_in: u64,
    quarantine: Option<Quarantine>,
    /// How many segments the shard log has already copied out.
    log_cursor: usize,
}

/// Registry of streams and their filters; one per shard (or standalone
/// for single-threaded ingest).
///
/// The quarantine contract: the first [`FilterError`] a stream produces is
/// recorded and returned; from then on the stream's samples are dropped
/// and counted, and **no other stream is affected** — a misbehaving sensor
/// cannot poison the shard it shares with thousands of healthy ones.
#[derive(Default)]
pub struct StreamTable {
    streams: HashMap<StreamId, StreamEntry>,
}

impl StreamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered streams (including quarantined ones).
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no stream is registered.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: StreamId) -> bool {
        self.streams.contains_key(&id)
    }

    /// Number of quarantined streams.
    pub fn quarantined(&self) -> usize {
        self.streams.values().filter(|e| e.quarantine.is_some()).count()
    }

    /// Registers a stream with its filter spec.
    ///
    /// A spec that fails to build still registers the stream — quarantined
    /// from birth, so its samples are counted as dropped rather than
    /// reported as [`IngestError::UnknownStream`].
    pub fn register(&mut self, id: StreamId, spec: &FilterSpec) -> Result<(), IngestError> {
        if self.streams.contains_key(&id) {
            return Err(IngestError::DuplicateStream(id));
        }
        let (filter, quarantine, result) = match spec.build() {
            Ok(f) => (Some(f), None, Ok(())),
            Err(e) => (
                None,
                Some(Quarantine { error: e.clone(), dropped: 0 }),
                Err(IngestError::Filter { stream: id, error: e }),
            ),
        };
        self.streams.insert(
            id,
            StreamEntry {
                filter,
                sink: CollectingSink::default(),
                samples_in: 0,
                quarantine,
                log_cursor: 0,
            },
        );
        result
    }

    /// Offers one sample to a stream's filter.
    pub fn push(&mut self, id: StreamId, t: f64, x: &[f64]) -> Result<(), IngestError> {
        let entry = self.streams.get_mut(&id).ok_or(IngestError::UnknownStream(id))?;
        if let Some(q) = &mut entry.quarantine {
            q.dropped += 1;
            return Err(IngestError::Quarantined(id));
        }
        entry.samples_in += 1;
        match entry.filter.as_mut().expect("unquarantined entry has a filter").push(
            t,
            x,
            &mut entry.sink,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                entry.quarantine = Some(Quarantine { error: e.clone(), dropped: 0 });
                Err(IngestError::Filter { stream: id, error: e })
            }
        }
    }

    /// Offers a batch of samples to a stream's filter (the batch fast
    /// path; output is identical to per-sample pushes).
    pub fn push_batch(
        &mut self,
        id: StreamId,
        samples: &[(f64, &[f64])],
    ) -> Result<usize, IngestError> {
        let entry = self.streams.get_mut(&id).ok_or(IngestError::UnknownStream(id))?;
        if let Some(q) = &mut entry.quarantine {
            q.dropped += samples.len() as u64;
            return Err(IngestError::Quarantined(id));
        }
        match entry
            .filter
            .as_mut()
            .expect("unquarantined entry has a filter")
            .push_batch(samples, &mut entry.sink)
        {
            Ok(n) => {
                entry.samples_in += n as u64;
                Ok(n)
            }
            Err(batch) => {
                // The absorbed prefix plus the sample that triggered the
                // quarantine were handed to the filter (matching `push`'s
                // accounting); the unprocessed tail counts as dropped.
                entry.samples_in += batch.absorbed as u64 + 1;
                let dropped = (samples.len() - batch.absorbed - 1) as u64;
                entry.quarantine = Some(Quarantine { error: batch.error.clone(), dropped });
                Err(IngestError::Filter { stream: id, error: batch.error })
            }
        }
    }

    /// Ends a stream: flushes its filter's pending state into the output.
    /// The filter resets, so the same id may continue with a fresh
    /// (time-restarted) stream afterwards.
    pub fn finish_stream(&mut self, id: StreamId) -> Result<(), IngestError> {
        let entry = self.streams.get_mut(&id).ok_or(IngestError::UnknownStream(id))?;
        if entry.quarantine.is_some() {
            return Err(IngestError::Quarantined(id));
        }
        match entry
            .filter
            .as_mut()
            .expect("unquarantined entry has a filter")
            .finish(&mut entry.sink)
        {
            Ok(()) => Ok(()),
            Err(e) => {
                entry.quarantine = Some(Quarantine { error: e.clone(), dropped: 0 });
                Err(IngestError::Filter { stream: id, error: e })
            }
        }
    }

    /// Ends every non-quarantined stream (engine shutdown). A filter whose
    /// `finish` errors (none of the built-ins do) is quarantined like any
    /// other failure.
    pub fn finish_all(&mut self) {
        for entry in self.streams.values_mut() {
            if entry.quarantine.is_none() {
                if let Err(e) = entry
                    .filter
                    .as_mut()
                    .expect("unquarantined entry has a filter")
                    .finish(&mut entry.sink)
                {
                    entry.quarantine = Some(Quarantine { error: e, dropped: 0 });
                }
            }
        }
    }

    /// Hands every segment emitted since the last call for `id` to `f`
    /// (the shard fan-in log's feed).
    pub fn drain_new_segments(&mut self, id: StreamId, mut f: impl FnMut(&Segment)) {
        if let Some(entry) = self.streams.get_mut(&id) {
            for seg in &entry.sink.segments[entry.log_cursor..] {
                f(seg);
            }
            entry.log_cursor = entry.sink.segments.len();
        }
    }

    /// Registered stream ids, in arbitrary order.
    pub fn ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.streams.keys().copied()
    }

    /// Total segments collected across all streams.
    pub fn total_segments(&self) -> usize {
        self.streams.values().map(|e| e.sink.segments.len()).sum()
    }

    /// Drains the table into per-stream outputs, ordered by stream id.
    pub fn into_outputs(self) -> BTreeMap<StreamId, StreamOutput> {
        self.streams
            .into_iter()
            .map(|(id, e)| {
                (
                    id,
                    StreamOutput {
                        segments: e.sink.segments,
                        provisionals: e.sink.provisionals,
                        samples_in: e.samples_in,
                        quarantine: e.quarantine,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_core::filters::{run_filter, FilterKind};
    use pla_core::Signal;

    fn spec(kind: FilterKind) -> FilterSpec {
        FilterSpec::new(kind, &[0.5])
    }

    #[test]
    fn register_push_finish_roundtrip() {
        let mut table = StreamTable::new();
        table.register(StreamId(1), &spec(FilterKind::Slide)).unwrap();
        for j in 0..50 {
            table.push(StreamId(1), j as f64, &[0.3 * j as f64]).unwrap();
        }
        table.finish_stream(StreamId(1)).unwrap();
        let out = table.into_outputs().remove(&StreamId(1)).unwrap();
        assert_eq!(out.segments.len(), 1);
        assert_eq!(out.samples_in, 50);
        assert!(out.quarantine.is_none());
    }

    #[test]
    fn duplicate_and_unknown_streams_are_reported() {
        let mut table = StreamTable::new();
        table.register(StreamId(7), &spec(FilterKind::Cache)).unwrap();
        assert_eq!(
            table.register(StreamId(7), &spec(FilterKind::Cache)),
            Err(IngestError::DuplicateStream(StreamId(7)))
        );
        assert_eq!(
            table.push(StreamId(8), 0.0, &[1.0]),
            Err(IngestError::UnknownStream(StreamId(8)))
        );
    }

    #[test]
    fn quarantine_isolates_the_bad_stream() {
        let mut table = StreamTable::new();
        table.register(StreamId(1), &spec(FilterKind::Swing)).unwrap();
        table.register(StreamId(2), &spec(FilterKind::Swing)).unwrap();
        table.push(StreamId(1), 0.0, &[1.0]).unwrap();
        table.push(StreamId(2), 0.0, &[1.0]).unwrap();
        // Stream 1 regresses in time → quarantined.
        assert!(matches!(
            table.push(StreamId(1), 0.0, &[2.0]),
            Err(IngestError::Filter { stream: StreamId(1), .. })
        ));
        // Later samples for stream 1 are dropped and counted …
        assert_eq!(
            table.push(StreamId(1), 1.0, &[3.0]),
            Err(IngestError::Quarantined(StreamId(1)))
        );
        assert_eq!(table.quarantined(), 1);
        // … while stream 2 sails on (a clean ramp: one segment).
        for j in 1..20 {
            table.push(StreamId(2), j as f64, &[1.0 + j as f64 * 0.1]).unwrap();
        }
        table.finish_stream(StreamId(2)).unwrap();
        let outs = table.into_outputs();
        let q = outs[&StreamId(1)].quarantine.as_ref().unwrap();
        assert_eq!(q.dropped, 1);
        assert!(matches!(q.error, FilterError::NonMonotonicTime { .. }));
        assert_eq!(outs[&StreamId(2)].segments.len(), 1);
        assert!(outs[&StreamId(2)].quarantine.is_none());
    }

    #[test]
    fn mid_batch_failure_accounts_for_every_sample() {
        let mut table = StreamTable::new();
        table.register(StreamId(1), &spec(FilterKind::Swing)).unwrap();
        // Time regresses at index 2: two samples absorbed, one trigger,
        // three dropped without reaching the filter.
        let samples: [(f64, &[f64]); 6] = [
            (0.0, &[1.0]),
            (1.0, &[2.0]),
            (0.5, &[3.0]),
            (2.0, &[4.0]),
            (3.0, &[5.0]),
            (4.0, &[6.0]),
        ];
        assert!(matches!(
            table.push_batch(StreamId(1), &samples),
            Err(IngestError::Filter { stream: StreamId(1), .. })
        ));
        let out = table.into_outputs().remove(&StreamId(1)).unwrap();
        assert_eq!(out.samples_in, 3, "absorbed prefix plus the trigger");
        let q = out.quarantine.unwrap();
        assert_eq!(q.dropped, 3, "unprocessed tail counts as dropped");
        assert!(matches!(q.error, FilterError::NonMonotonicTime { .. }));
    }

    #[test]
    fn invalid_spec_quarantines_from_birth() {
        let mut table = StreamTable::new();
        let bad = FilterSpec::new(FilterKind::Slide, &[0.0]);
        assert!(matches!(
            table.register(StreamId(3), &bad),
            Err(IngestError::Filter { stream: StreamId(3), .. })
        ));
        assert_eq!(
            table.push(StreamId(3), 0.0, &[1.0]),
            Err(IngestError::Quarantined(StreamId(3)))
        );
        let out = table.into_outputs().remove(&StreamId(3)).unwrap();
        assert_eq!(out.quarantine.unwrap().dropped, 1);
        assert_eq!(out.samples_in, 0);
    }

    #[test]
    fn table_output_matches_standalone_filter() {
        let signal = Signal::from_values(
            &(0..300).map(|i| ((i as f64) * 0.23).sin() * 4.0).collect::<Vec<_>>(),
        );
        let mut standalone = FilterKind::Slide.build(&[0.5]).unwrap();
        let expected = run_filter(standalone.as_mut(), &signal).unwrap();

        let mut table = StreamTable::new();
        table.register(StreamId(9), &spec(FilterKind::Slide)).unwrap();
        for (t, x) in signal.iter() {
            table.push(StreamId(9), t, x).unwrap();
        }
        table.finish_stream(StreamId(9)).unwrap();
        let out = table.into_outputs().remove(&StreamId(9)).unwrap();
        assert_eq!(out.segments, expected);
    }

    #[test]
    fn shard_log_cursor_sees_each_segment_once() {
        let mut table = StreamTable::new();
        table.register(StreamId(1), &spec(FilterKind::Cache)).unwrap();
        let mut seen = 0;
        for j in 0..10 {
            // Alternating far-apart values: every second push closes a run.
            table.push(StreamId(1), j as f64, &[if j % 2 == 0 { 0.0 } else { 10.0 }]).unwrap();
            table.drain_new_segments(StreamId(1), |_| seen += 1);
        }
        table.finish_stream(StreamId(1)).unwrap();
        table.drain_new_segments(StreamId(1), |_| seen += 1);
        assert_eq!(seen, table.total_segments());
    }
}
