//! End-to-end engine tests: the acceptance bar is that every per-stream
//! segment sequence coming out of the sharded engine is *identical* to
//! running that stream through a standalone filter — for any shard count,
//! under concurrent producers, and through the batch path.

use std::collections::BTreeMap;

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::{CollectingSink, Segment, Signal};
use pla_ingest::{shard_of, IngestConfig, IngestEngine, IngestError, StreamId};

/// A deterministic per-stream workload: a random walk seeded by the
/// stream id, so every test regenerates the same signals.
fn stream_signal(id: u64, n: usize) -> Signal {
    let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut rnd = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut x = rnd() * 10.0;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        x += rnd();
        values.push(x);
    }
    Signal::from_values(&values)
}

/// The spec each stream uses: vary the filter family by id so every
/// family runs under the engine.
fn spec_for(id: u64) -> FilterSpec {
    let kind = match id % 4 {
        0 => FilterKind::Cache,
        1 => FilterKind::Linear,
        2 => FilterKind::Swing,
        _ => FilterKind::Slide,
    };
    FilterSpec::new(kind, &[0.4])
}

fn standalone_segments(id: u64, n: usize) -> Vec<Segment> {
    let signal = stream_signal(id, n);
    let mut filter = spec_for(id).build().unwrap();
    let mut sink = CollectingSink::default();
    for (t, x) in signal.iter() {
        filter.push(t, x, &mut sink).unwrap();
    }
    filter.finish(&mut sink).unwrap();
    sink.segments
}

#[test]
fn sixty_four_streams_on_two_shards_match_standalone_filters() {
    const STREAMS: u64 = 64;
    const N: usize = 400;
    let engine = IngestEngine::new(IngestConfig { shards: 2, queue_depth: 64, shard_log: false });
    let h = engine.handle();
    for id in 0..STREAMS {
        h.register(StreamId(id), spec_for(id)).unwrap();
    }
    // Interleave all streams sample-by-sample, like a receiver multiplexing
    // many sensors on one wire.
    let signals: Vec<Signal> = (0..STREAMS).map(|id| stream_signal(id, N)).collect();
    for j in 0..N {
        for (id, signal) in signals.iter().enumerate() {
            let (t, x) = signal.sample(j);
            h.push(StreamId(id as u64), t, x).unwrap();
        }
    }
    let report = engine.finish();
    assert_eq!(report.streams.len(), STREAMS as usize);
    assert_eq!(report.quarantined(), 0);
    for id in 0..STREAMS {
        let expected = standalone_segments(id, N);
        let got = &report.streams[&StreamId(id)].segments;
        assert_eq!(got, &expected, "stream {id} diverged from its standalone filter");
    }
}

#[test]
fn concurrent_producers_preserve_per_stream_order() {
    const STREAMS_PER_PRODUCER: u64 = 8;
    const PRODUCERS: u64 = 4;
    const N: usize = 300;
    let engine = IngestEngine::new(IngestConfig { shards: 4, queue_depth: 16, shard_log: false });
    let h = engine.handle();
    for id in 0..STREAMS_PER_PRODUCER * PRODUCERS {
        h.register(StreamId(id), spec_for(id)).unwrap();
    }
    // Each producer thread owns a disjoint id range and feeds its streams
    // interleaved; shards receive racing traffic from all producers.
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let h = engine.handle();
            scope.spawn(move || {
                let ids: Vec<u64> =
                    (0..STREAMS_PER_PRODUCER).map(|k| p * STREAMS_PER_PRODUCER + k).collect();
                let signals: Vec<Signal> = ids.iter().map(|&id| stream_signal(id, N)).collect();
                for j in 0..N {
                    for (&id, signal) in ids.iter().zip(&signals) {
                        let (t, x) = signal.sample(j);
                        h.push(StreamId(id), t, x).unwrap();
                    }
                }
            });
        }
    });
    let report = engine.finish();
    assert_eq!(report.quarantined(), 0);
    for id in 0..STREAMS_PER_PRODUCER * PRODUCERS {
        assert_eq!(
            &report.streams[&StreamId(id)].segments,
            &standalone_segments(id, N),
            "stream {id}: concurrent feed must preserve per-stream order"
        );
    }
}

#[test]
fn shard_count_does_not_change_any_stream_output() {
    const STREAMS: u64 = 24;
    const N: usize = 250;
    let mut outputs: Vec<BTreeMap<StreamId, Vec<Segment>>> = Vec::new();
    for shards in [1usize, 2, 4] {
        let engine = IngestEngine::new(IngestConfig { shards, queue_depth: 32, shard_log: false });
        let h = engine.handle();
        for id in 0..STREAMS {
            h.register(StreamId(id), spec_for(id)).unwrap();
        }
        for id in 0..STREAMS {
            let signal = stream_signal(id, N);
            let samples: Vec<(f64, &[f64])> = signal.iter().collect();
            // Feed in batches to exercise the batch path end to end.
            for chunk in samples.chunks(37) {
                h.push_batch(StreamId(id), chunk).unwrap();
            }
        }
        let report = engine.finish();
        outputs.push(report.streams.into_iter().map(|(id, out)| (id, out.segments)).collect());
    }
    assert_eq!(outputs[0], outputs[1], "1 shard vs 2 shards");
    assert_eq!(outputs[0], outputs[2], "1 shard vs 4 shards");
    assert_eq!(&outputs[0][&StreamId(3)], &standalone_segments(3, N));
}

#[test]
fn routing_is_stable_across_engines() {
    let a = IngestEngine::new(IngestConfig { shards: 4, queue_depth: 4, shard_log: false });
    let b = IngestEngine::new(IngestConfig { shards: 4, queue_depth: 4, shard_log: false });
    for id in 0..500u64 {
        assert_eq!(a.shard_of(StreamId(id)), b.shard_of(StreamId(id)));
        assert_eq!(a.shard_of(StreamId(id)), shard_of(StreamId(id), 4));
    }
    let _ = a.finish();
    let _ = b.finish();
}

#[test]
fn try_push_backpressure_never_loses_accepted_samples() {
    // A 1-deep queue on one shard: under a producer flood, try_push will
    // sometimes report Backpressure. The invariant under test: exactly the
    // accepted samples reach the filter, in order.
    let engine = IngestEngine::new(IngestConfig { shards: 1, queue_depth: 1, shard_log: false });
    let h = engine.handle();
    h.register(StreamId(1), FilterSpec::new(FilterKind::Swing, &[0.5])).unwrap();
    let mut accepted = 0u64;
    let mut t = 0.0;
    let mut backpressured = false;
    for _ in 0..5_000 {
        match h.try_push(StreamId(1), t, &[t * 0.5]) {
            Ok(()) => {
                accepted += 1;
                t += 1.0;
            }
            Err(IngestError::Backpressure) => backpressured = true,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let report = engine.finish();
    assert_eq!(report.streams[&StreamId(1)].samples_in, accepted);
    assert_eq!(report.quarantined(), 0);
    // Informational: on a loaded machine the worker may keep up and never
    // exert backpressure; the accounting invariant above is the real test.
    let _ = backpressured;
}

#[test]
fn quarantine_under_load_spares_shard_mates() {
    // Find two ids that share a shard in a 2-shard engine.
    let sick = 5u64;
    let healthy = (0..100u64)
        .find(|&id| id != sick && shard_of(StreamId(id), 2) == shard_of(StreamId(sick), 2))
        .expect("some id shares the shard");
    let engine = IngestEngine::new(IngestConfig { shards: 2, queue_depth: 16, shard_log: false });
    let h = engine.handle();
    h.register(StreamId(sick), FilterSpec::new(FilterKind::Slide, &[0.5])).unwrap();
    h.register(StreamId(healthy), FilterSpec::new(FilterKind::Slide, &[0.5])).unwrap();
    for j in 0..100 {
        // The sick stream repeats t=0 forever: quarantined at its second
        // sample, the rest dropped.
        h.push(StreamId(sick), 0.0, &[1.0]).unwrap();
        h.push(StreamId(healthy), j as f64, &[j as f64 * 0.1]).unwrap();
    }
    let report = engine.finish();
    let sick_out = &report.streams[&StreamId(sick)];
    assert!(sick_out.quarantine.is_some());
    assert_eq!(sick_out.quarantine.as_ref().unwrap().dropped, 98);
    let healthy_out = &report.streams[&StreamId(healthy)];
    assert!(healthy_out.quarantine.is_none());
    assert_eq!(healthy_out.samples_in, 100);
    assert_eq!(healthy_out.segments.len(), 1, "clean ramp: one segment");
}
