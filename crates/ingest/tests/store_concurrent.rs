//! Multi-writer / multi-reader stress test for the sharded store.
//!
//! Pins the consistency contract documented in `store.rs`: writers
//! (one owner per stream, as the collector and ingest engine guarantee)
//! append deterministic sequences while readers snapshot in a tight
//! loop. Every snapshot a reader takes must be a *prefix* of the final
//! store — per stream, the view is exactly the first `len` segments of
//! the sequence the owner wrote — and per-shard epochs must only grow.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pla_core::Segment;
use pla_ingest::{shard_of, SegmentStore, StoreConfig, StreamId};

const WRITERS: usize = 4;
const STREAMS_PER_WRITER: usize = 8;
const SEGMENTS_PER_STREAM: usize = 400;
const READERS: usize = 3;

/// The k-th segment of stream `s`: times and values encode (s, k) so a
/// reordered, torn, or cross-wired log cannot compare equal.
fn expected_segment(s: u64, k: usize) -> Segment {
    let t0 = k as f64;
    let v = s as f64 * 1e6 + k as f64;
    Segment {
        t_start: t0,
        x_start: [v].into(),
        t_end: t0 + 1.0,
        x_end: [v + 0.5].into(),
        connected: false,
        n_points: 2,
        new_recordings: 2,
    }
}

fn expected_log(s: u64) -> Vec<Segment> {
    (0..SEGMENTS_PER_STREAM).map(|k| expected_segment(s, k)).collect()
}

#[test]
fn snapshots_under_write_load_are_prefixes_of_the_final_store() {
    // Small seal threshold so sealing happens constantly under load.
    let store = Arc::new(SegmentStore::with_config(StoreConfig { shards: 8, seal_threshold: 16 }));
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS as u64)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let streams: Vec<u64> =
                    (0..STREAMS_PER_WRITER as u64).map(|i| w * 100 + i).collect();
                for k in 0..SEGMENTS_PER_STREAM {
                    for &s in &streams {
                        // Alternate singles and batches to cover both
                        // append paths.
                        if k % 3 == 0 {
                            store.append(w, StreamId(s), expected_segment(s, k));
                        } else {
                            store.append_batch(w, StreamId(s), &[expected_segment(s, k)]);
                        }
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last_total = 0u64;
                let mut last_epochs = store.epochs();
                let mut snapshots = 0usize;
                while !done.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    // Totals and epochs never move backwards.
                    assert!(snap.total_segments >= last_total, "total_segments regressed");
                    last_total = snap.total_segments;
                    let epochs = store.epochs();
                    for (now, before) in epochs.iter().zip(last_epochs.iter()) {
                        assert!(now >= before, "shard epoch regressed");
                    }
                    last_epochs = epochs;
                    // Every stream view is an exact prefix of what its
                    // owner will have written by the end.
                    for (id, view) in &snap.streams {
                        let want = expected_log(id.0);
                        assert!(view.len() <= want.len(), "stream {} overshot", id.0);
                        assert!(
                            *view == want[..view.len()],
                            "stream {} snapshot is not a prefix of its final log",
                            id.0
                        );
                    }
                    snapshots += 1;
                }
                snapshots
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let mut total_snapshots = 0;
    for r in readers {
        total_snapshots += r.join().unwrap();
    }
    assert!(total_snapshots > 0, "readers never got a snapshot in");

    // Final state: every stream holds its full log, totals add up, and
    // each writer's watermark covers everything it wrote.
    let snap = store.snapshot();
    assert_eq!(snap.streams.len(), WRITERS * STREAMS_PER_WRITER);
    for (id, view) in &snap.streams {
        assert!(*view == expected_log(id.0), "final log mismatch for stream {}", id.0);
    }
    let want_total = (WRITERS * STREAMS_PER_WRITER * SEGMENTS_PER_STREAM) as u64;
    assert_eq!(snap.total_segments, want_total);
    for w in 0..WRITERS as u64 {
        let mark = snap.sources[&w];
        assert_eq!(mark.segments, (STREAMS_PER_WRITER * SEGMENTS_PER_STREAM) as u64);
        assert_eq!(mark.covered_through, SEGMENTS_PER_STREAM as f64);
    }
}

/// Two streams routed to the *same shard* must never tear relative to
/// each other: the writer appends to A strictly before B each round, so
/// any snapshot must show `len(A) >= len(B)`.
#[test]
fn same_shard_streams_never_tear_under_concurrency() {
    let shards = 8;
    let store = Arc::new(SegmentStore::with_config(StoreConfig { shards, seal_threshold: 8 }));

    // Find two distinct stream ids that hash to the same shard.
    let a = 0u64;
    let b =
        (1..).find(|&b| shard_of(StreamId(b), shards) == shard_of(StreamId(a), shards)).unwrap();

    let writer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for k in 0..2000 {
                store.append(0, StreamId(a), expected_segment(a, k));
                store.append(0, StreamId(b), expected_segment(b, k));
            }
        })
    };

    let mut observed = 0;
    while observed < 500 {
        let snap = store.snapshot();
        let na = snap.streams.get(&StreamId(a)).map_or(0, |v| v.len());
        let nb = snap.streams.get(&StreamId(b)).map_or(0, |v| v.len());
        assert!(na >= nb, "same-shard tear: A has {na} segments but B already has {nb}");
        observed += 1;
    }
    writer.join().unwrap();
}
