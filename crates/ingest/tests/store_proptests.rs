//! Property tests for the sharded store's run/tail representation.
//!
//! The store may carve a stream's log into sealed runs plus a mutable
//! tail however its seal threshold dictates — but every read path must
//! present the exact flat append order. These properties drive random
//! shard counts, seal thresholds, and single/batch append interleavings
//! against a flat `Vec<Segment>` reference model.

use std::collections::BTreeMap;

use pla_core::Segment;
use pla_ingest::{SegmentStore, StoreConfig, StreamId};
use proptest::prelude::*;

fn seg(tag: u64, k: usize) -> Segment {
    let t0 = k as f64;
    let v = tag as f64 * 1e4 + k as f64;
    Segment {
        t_start: t0,
        x_start: [v].into(),
        t_end: t0 + 1.0,
        x_end: [v + 0.25].into(),
        connected: false,
        n_points: 2,
        new_recordings: 2,
    }
}

/// One append op: which stream, how many segments, and whether they go
/// in one batch or one at a time.
#[derive(Debug, Clone)]
struct Op {
    stream: u64,
    count: usize,
    batched: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..6u64, 1..12usize, any::<bool>()).prop_map(|(stream, count, batched)| Op {
        stream,
        count,
        batched,
    })
}

fn bits(s: &Segment) -> (u64, Vec<u64>, u64, Vec<u64>, bool, u64, u64) {
    (
        s.t_start.to_bits(),
        s.x_start.iter().map(|x| x.to_bits()).collect(),
        s.t_end.to_bits(),
        s.x_end.iter().map(|x| x.to_bits()).collect(),
        s.connected,
        u64::from(s.n_points),
        u64::from(s.new_recordings),
    )
}

proptest! {
    /// Sealed-run + tail iteration is byte-identical to the flat log,
    /// for every read path: `iter`, positional `get`, `to_vec`,
    /// `stream_segments`, and slice equality.
    #[test]
    fn run_and_tail_reads_match_flat_log(
        ops in prop::collection::vec(op_strategy(), 1..60),
        shards in 1..8usize,
        seal in 1..9usize,
    ) {
        let store = SegmentStore::with_config(StoreConfig { shards, seal_threshold: seal });
        let mut reference: BTreeMap<u64, Vec<Segment>> = BTreeMap::new();

        for op in &ops {
            let log = reference.entry(op.stream).or_default();
            let next: Vec<Segment> =
                (0..op.count).map(|i| seg(op.stream, log.len() + i)).collect();
            if op.batched {
                store.append_batch(op.stream, StreamId(op.stream), &next);
            } else {
                for s in &next {
                    store.append(op.stream, StreamId(op.stream), s.clone());
                }
            }
            log.extend(next);
        }

        let snap = store.snapshot();
        prop_assert_eq!(snap.streams.len(), reference.len());
        let mut total = 0u64;
        for (id, flat) in &reference {
            let view = &snap.streams[&StreamId(*id)];
            prop_assert_eq!(view.len(), flat.len());
            // iter(): same order, bit-for-bit.
            let iter_bits: Vec<_> = view.iter().map(bits).collect();
            let flat_bits: Vec<_> = flat.iter().map(bits).collect();
            prop_assert_eq!(&iter_bits, &flat_bits);
            // get(i): position arithmetic over uniform runs.
            for (i, want) in flat.iter().enumerate() {
                prop_assert_eq!(bits(view.get(i).unwrap()), bits(want));
            }
            prop_assert!(view.get(flat.len()).is_none());
            // to_vec() and the compat equality both agree.
            prop_assert_eq!(&view.to_vec(), flat);
            prop_assert!(view == flat);
            // The run/tail carve is exact: sealed runs all hold
            // `seal_threshold` segments and runs + tail re-form the log.
            for run in view.runs() {
                prop_assert_eq!(run.len(), seal);
            }
            prop_assert_eq!(view.runs().len() * seal + view.tail().len(), flat.len());
            prop_assert!(view.tail().len() < seal, "tail must seal at the threshold");
            // stream_segments() materializes the same flat log.
            prop_assert_eq!(&store.stream_segments(StreamId(*id)).unwrap(), flat);
            total += flat.len() as u64;
        }
        prop_assert_eq!(snap.total_segments, total);
    }

    /// The O(streams) snapshot and the deep-copy baseline are logically
    /// identical for any schedule — sharing is an implementation detail.
    #[test]
    fn shared_and_deep_snapshots_agree(
        ops in prop::collection::vec(op_strategy(), 1..40),
        shards in 1..6usize,
        seal in 1..7usize,
    ) {
        let store = SegmentStore::with_config(StoreConfig { shards, seal_threshold: seal });
        let mut lens: BTreeMap<u64, usize> = BTreeMap::new();
        for op in &ops {
            let from = *lens.get(&op.stream).unwrap_or(&0);
            let next: Vec<Segment> = (0..op.count).map(|i| seg(op.stream, from + i)).collect();
            store.append_batch(op.stream, StreamId(op.stream), &next);
            *lens.entry(op.stream).or_default() += op.count;
        }
        prop_assert_eq!(store.snapshot(), store.snapshot_deep());
    }
}
