//! The many-connection collector: N inbound links, one shared store.
//!
//! This is the base-station half of the paper's deployment picture —
//! many sensors compress at the edge ([`MuxSender`](crate::MuxSender)
//! over whatever uplink they have), one collector reconstructs
//! everything with the precision guarantee intact. Duvignau et al.
//! (arXiv:1808.08877) evaluate exactly this many-producer streaming-PLA
//! topology; the collector turns PR 4's point-to-point demo into it:
//!
//! * an [`Acceptor`] yields inbound [`Link`]s (a TCP listener in
//!   production, a [`MemoryAcceptor`](crate::listen::MemoryAcceptor)
//!   for deterministic tests);
//! * every connection gets its **own** [`NetReceiver`] — its own frame
//!   decoder, demultiplexer, sequence state, and credit windows, so one
//!   slow or replaying sender cannot corrupt another's reconstruction;
//! * every reconstructed segment is published, in per-stream order, to
//!   one shared [`SegmentStore`] as `(ConnId, StreamId, Segment)` —
//!   per-connection buffers exist only transiently inside the demux;
//!   queries read consistent store snapshots while ingest continues.
//!
//! The collector is a sans-I/O-style state machine like the endpoints
//! it hosts: [`pump`](Collector::pump) does one non-blocking round
//! (tests drive it deterministically, interleaving and severing however
//! they like), and [`drive_collector`] runs it on the
//! [`runtime`] — one accept task plus one spawned task
//! per connection, each parking on its link's readiness source (epoll-
//! precise for TCP).
//!
//! Reconnect: a dead link *detaches* its connection (state retained)
//! rather than destroying it. [`reattach`](Collector::reattach) hands
//! the connection a fresh link and replays the standard recovery — the
//! receiver re-announces cumulative acks/credits, the sender replays
//! unacked frames, duplicates are dropped by sequence number — so the
//! store ends up byte-identical to an uninterrupted run.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::rc::Rc;
use std::sync::Arc;

use pla_ingest::{SegmentStore, StreamId};
use pla_transport::wire::Codec;

use crate::driver::{pump_receiver, stall_interest, DriveError};
use crate::link::Link;
use crate::listen::Acceptor;
use crate::receiver::{NetReceiver, ReceiverStats};
use crate::runtime;
use crate::{NetConfig, NetError};

/// Identity of one accepted connection, assigned in accept order
/// (starting at 1). Doubles as the [`SegmentStore`] source id for the
/// connection's watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// A fatal collector failure: one connection's byte stream violated the
/// protocol (reconnecting cannot help; I/O failures are *not* errors —
/// they detach the connection for [`Collector::reattach`]).
#[derive(Debug)]
pub struct CollectorError {
    /// The connection whose stream failed.
    pub conn: ConnId,
    /// The protocol violation.
    pub error: NetError,
}

impl std::fmt::Display for CollectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.conn, self.error)
    }
}

impl std::error::Error for CollectorError {}

/// Point-in-time counters for one connection — the per-connection ack
/// state [`StreamDemux`](pla_transport::StreamDemux) keeps per demux,
/// surfaced per connection so shed load stays observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnStats {
    /// The connection.
    pub conn: ConnId,
    /// Whether a link is currently attached (false = detached, awaiting
    /// reconnect).
    pub attached: bool,
    /// The connection's receiving-endpoint counters (frames applied,
    /// duplicate replays dropped, control frames staged after
    /// batching).
    pub receiver: ReceiverStats,
    /// Segments published to the shared store.
    pub published: u64,
    /// Pump rounds that could not fully flush staged control bytes to
    /// the link — the peer (or the pipe) is slow draining our acks,
    /// i.e. backpressure against the collector itself.
    pub backpressure: u64,
    /// Bytes moved over the link (read + written) across the
    /// connection's lifetime, including across reattaches.
    pub bytes_moved: u64,
    /// The protocol violation that quarantined this connection, if any.
    pub failed: Option<NetError>,
    /// Per-stream cumulative ack points `(stream, through_seq)` — what
    /// this connection's demux has durably applied.
    pub ack_points: Vec<(u64, u64)>,
}

/// Aggregate counters across the collector, `IngestReport`-style
/// (`pla_ingest::IngestReport`): totals first, per-connection detail
/// attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorStats {
    /// Connections accepted over the collector's lifetime.
    pub connections: usize,
    /// Connections currently holding a live link.
    pub attached: usize,
    /// `Data` frames applied across all connections.
    pub frames: u64,
    /// Duplicate frames dropped across all connections (replays after
    /// reconnect — shed load).
    pub dup_drops: u64,
    /// Segments published to the shared store.
    pub segments: u64,
    /// Total backpressured pump rounds (see [`ConnStats::backpressure`]).
    pub backpressure: u64,
    /// Connections quarantined by a protocol violation.
    pub failed: usize,
    /// Per-connection detail, in accept order.
    pub conns: Vec<ConnStats>,
}

/// Per-connection state: the receiver plus publish bookkeeping.
struct Connection<C: Codec, L: Link> {
    rx: NetReceiver<C>,
    /// `None` while detached (link died; awaiting reattach).
    link: Option<L>,
    /// Set when this connection's byte stream violated the protocol:
    /// the connection is quarantined (link dropped, no reattach) but
    /// every other connection keeps running — the collector-level
    /// analogue of `pla-ingest`'s per-stream quarantine.
    failed: Option<NetError>,
    /// Per-stream count of segments already published to the store.
    published: BTreeMap<u64, usize>,
    /// Streams whose end-of-stream flush has run (Fin seen, trailing
    /// hold closed and published).
    flushed: std::collections::BTreeSet<u64>,
    published_total: u64,
    backpressure: u64,
    bytes_moved: u64,
}

/// The many-connection collector. See the [module docs](self) for the
/// model and [`drive_collector`] for the async form.
///
/// ```
/// use pla_ingest::{SegmentStore, StreamId};
/// use pla_net::listen::MemoryAcceptor;
/// use pla_net::{Collector, MuxSender, NetConfig};
/// use pla_transport::wire::FixedCodec;
/// use std::sync::Arc;
///
/// let store = Arc::new(SegmentStore::new());
/// let acceptor = MemoryAcceptor::new();
/// let connector = acceptor.connector();
/// let cfg = NetConfig::default();
/// let mut collector = Collector::new(FixedCodec, 1, cfg, acceptor, store.clone());
///
/// // Two edge senders dial in, each with its own streams.
/// let mut links = Vec::new();
/// let mut senders = Vec::new();
/// for id in 0..2u64 {
///     links.push(connector.connect(4096));
///     let mut tx = MuxSender::new(FixedCodec, 1, cfg);
///     tx.try_send_segment(
///         id,
///         &pla_core::Segment {
///             t_start: 0.0,
///             x_start: [1.0].into(),
///             t_end: 4.0,
///             x_end: [5.0].into(),
///             connected: false,
///             n_points: 5,
///             new_recordings: 2,
///         },
///     )
///     .unwrap();
///     tx.finish_all();
///     senders.push(tx);
/// }
/// // Senders write, the collector pumps, acks flow back.
/// for (tx, link) in senders.iter_mut().zip(&mut links) {
///     pla_net::driver::pump_sender(tx, link).unwrap();
/// }
/// collector.pump().unwrap();
/// for (tx, link) in senders.iter_mut().zip(&mut links) {
///     pla_net::driver::pump_sender(tx, link).unwrap();
/// }
/// assert!(senders.iter().all(|tx| tx.all_acked()));
/// let snap = store.snapshot();
/// assert_eq!(snap.streams.len(), 2);
/// assert_eq!(snap.total_segments, 2);
/// assert_eq!(collector.stats().connections, 2);
/// ```
pub struct Collector<C: Codec + Clone, A: Acceptor> {
    codec: C,
    dims: usize,
    config: NetConfig,
    acceptor: A,
    store: Arc<SegmentStore>,
    conns: BTreeMap<u64, Connection<C, A::Link>>,
    next_conn: u64,
}

impl<C: Codec + Clone, A: Acceptor> Collector<C, A> {
    /// Creates a collector for `dims`-dimensional streams. Every
    /// accepted connection gets a receiver cloned from `codec` and
    /// `config` — as always, `config.window` must match what the
    /// senders were built with.
    pub fn new(
        codec: C,
        dims: usize,
        config: NetConfig,
        acceptor: A,
        store: Arc<SegmentStore>,
    ) -> Self {
        Self { codec, dims, config, acceptor, store, conns: BTreeMap::new(), next_conn: 1 }
    }

    /// The shared store this collector publishes into.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// Accepts every pending connection, returning the ids of the new
    /// ones (empty when nothing was waiting).
    pub fn poll_accept(&mut self) -> io::Result<Vec<ConnId>> {
        let mut fresh = Vec::new();
        while let Some(link) = self.acceptor.try_accept()? {
            let id = self.next_conn;
            self.next_conn += 1;
            self.conns.insert(
                id,
                Connection {
                    rx: NetReceiver::new(self.codec.clone(), self.dims, self.config),
                    link: Some(link),
                    failed: None,
                    published: BTreeMap::new(),
                    flushed: std::collections::BTreeSet::new(),
                    published_total: 0,
                    backpressure: 0,
                    bytes_moved: 0,
                },
            );
            fresh.push(ConnId(id));
        }
        Ok(fresh)
    }

    /// One non-blocking round for one connection: absorb inbound
    /// frames, flush the round's batched acks, write them back, and
    /// publish newly reconstructed segments to the store. Returns bytes
    /// moved.
    ///
    /// An I/O failure **detaches** the connection (its reconstruction
    /// state is retained for [`reattach`](Self::reattach)) and counts
    /// as no progress. A protocol violation **quarantines** the
    /// connection — link dropped, [`reattach`](Self::reattach) refused,
    /// failure recorded in [`ConnStats::failed`] — and is returned once
    /// to the caller; every *other* connection is unaffected.
    pub fn pump_conn(&mut self, conn: ConnId) -> Result<usize, CollectorError> {
        let Some(c) = self.conns.get_mut(&conn.0) else { return Ok(0) };
        if c.failed.is_some() {
            return Ok(0);
        }
        let Some(link) = c.link.as_mut() else { return Ok(0) };
        match pump_receiver(&mut c.rx, link) {
            Ok(0) => Ok(0),
            Ok(moved) => {
                if c.rx.staged_bytes() > 0 {
                    c.backpressure += 1;
                }
                c.bytes_moved += moved as u64;
                self.publish_conn(conn.0);
                Ok(moved)
            }
            Err(DriveError::Io(_)) => {
                c.link = None;
                // Frames applied before the link died may have produced
                // segments; publish them before going quiet.
                self.publish_conn(conn.0);
                Ok(0)
            }
            Err(DriveError::Net(error)) => {
                c.link = None;
                c.failed = Some(error.clone());
                self.publish_conn(conn.0);
                Err(CollectorError { conn, error })
            }
        }
    }

    /// Publishes `conn`'s newly reconstructed segments (and, for
    /// streams whose `Fin` arrived, the flushed trailing hold) to the
    /// store.
    fn publish_conn(&mut self, conn: u64) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        let streams: Vec<u64> = c.rx.demux().streams().collect();
        for stream in streams {
            if c.rx.is_finished(stream) && !c.flushed.contains(&stream) {
                c.rx.demux_mut().flush_stream(stream);
                c.flushed.insert(stream);
            }
            let log = c.rx.demux().segments(stream).unwrap_or(&[]);
            let from = c.published.get(&stream).copied().unwrap_or(0);
            if log.len() > from {
                self.store.append_batch(conn, StreamId(stream), &log[from..]);
                c.published_total += (log.len() - from) as u64;
                c.published.insert(stream, log.len());
            }
        }
    }

    /// One non-blocking round over the whole collector: accept pending
    /// connections, pump every attached one. Returns total bytes moved.
    pub fn pump(&mut self) -> Result<usize, CollectorError> {
        // Accept errors mean the listener died; surface as no progress
        // (existing connections keep running) — a deployment would
        // rebind and swap the acceptor.
        let _ = self.poll_accept();
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        let mut moved = 0;
        let mut first_failure = None;
        for id in ids {
            match self.pump_conn(ConnId(id)) {
                Ok(n) => moved += n,
                // Quarantine already happened; keep pumping the others
                // and report the first failure once at the end.
                Err(e) => {
                    first_failure.get_or_insert(e);
                }
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(moved),
        }
    }

    /// Re-attaches a fresh link to a detached (or still-attached —
    /// the old link is dropped) connection, running the receiver's
    /// reconnect protocol: partial frames are discarded and cumulative
    /// `Ack`/`Credit` state is restaged for the replaying sender.
    /// Returns false if the connection id was never accepted or is
    /// quarantined after a protocol violation (a corrupted session must
    /// not resume).
    pub fn reattach(&mut self, conn: ConnId, link: A::Link) -> bool {
        match self.conns.get_mut(&conn.0) {
            Some(c) if c.failed.is_none() => {
                c.rx.on_reconnect();
                c.link = Some(link);
                true
            }
            _ => false,
        }
    }

    /// Ids of connections whose link died and await
    /// [`reattach`](Self::reattach), ascending (quarantined
    /// connections are not reattachable and not listed).
    pub fn detached(&self) -> Vec<ConnId> {
        self.conns
            .iter()
            .filter(|(_, c)| c.link.is_none() && c.failed.is_none())
            .map(|(&id, _)| ConnId(id))
            .collect()
    }

    /// Whether `conn`'s sender has finished every stream it opened and
    /// nothing remains staged — the connection's session is complete.
    pub fn conn_complete(&self, conn: ConnId) -> bool {
        self.conns.get(&conn.0).is_some_and(|c| {
            let streams = c.rx.demux().streams().count();
            streams > 0
                && c.rx.finished_streams().count() == streams
                && c.rx.staged_bytes() == 0
                && !c.rx.control_dirty()
        })
    }

    /// The first quarantined connection's failure, if any — a protocol
    /// violation poisons only its own connection, so an async `done`
    /// predicate (or a post-run check) decides whether one bad sensor
    /// aborts the collection round or merely gets reported.
    pub fn failure(&self) -> Option<CollectorError> {
        self.conns.iter().find_map(|(&id, c)| {
            c.failed.clone().map(|error| CollectorError { conn: ConnId(id), error })
        })
    }

    /// Counters for one connection.
    pub fn conn_stats(&self, conn: ConnId) -> Option<ConnStats> {
        self.conns.get(&conn.0).map(|c| ConnStats {
            conn,
            attached: c.link.is_some(),
            receiver: c.rx.stats(),
            published: c.published_total,
            backpressure: c.backpressure,
            bytes_moved: c.bytes_moved,
            failed: c.failed.clone(),
            ack_points: c.rx.demux().streams().map(|s| (s, c.rx.demux().ack_point(s))).collect(),
        })
    }

    /// Aggregate counters plus per-connection detail.
    pub fn stats(&self) -> CollectorStats {
        let conns: Vec<ConnStats> =
            self.conns.keys().filter_map(|&id| self.conn_stats(ConnId(id))).collect();
        CollectorStats {
            connections: conns.len(),
            attached: conns.iter().filter(|c| c.attached).count(),
            frames: conns.iter().map(|c| c.receiver.frames_applied).sum(),
            dup_drops: conns.iter().map(|c| c.receiver.dup_drops).sum(),
            segments: conns.iter().map(|c| c.published).sum(),
            backpressure: conns.iter().map(|c| c.backpressure).sum(),
            failed: conns.iter().filter(|c| c.failed.is_some()).count(),
            conns,
        }
    }

    /// What a connection's async task should do after a no-progress
    /// round: park on the link's readiness source, back off while
    /// detached, or exit after quarantine.
    fn conn_wait_hint(&self, conn: u64) -> ConnWait {
        match self.conns.get(&conn) {
            Some(c) if c.failed.is_some() => ConnWait::Gone,
            Some(c) => match &c.link {
                Some(link) => ConnWait::Ready(link.event_source(), c.rx.staged_bytes()),
                None => ConnWait::Detached,
            },
            None => ConnWait::Gone,
        }
    }
}

/// How a connection task should wait after an idle round.
enum ConnWait {
    /// Attached: park on the link's source (with staged-byte count for
    /// the interest choice).
    Ready(Option<runtime::EventSource>, usize),
    /// Detached, awaiting [`Collector::reattach`]: back off on a timer.
    Detached,
    /// Quarantined or removed: the task exits.
    Gone,
}

/// Drives a collector on the [`runtime`]: one accept
/// task (parking on the listener's readiness source where it has one)
/// plus one spawned task per accepted connection, each pumping its own
/// [`NetReceiver`] and parking on its own link. Returns `Ok(())` when
/// `done(&collector)` is satisfied — spawned tasks are dropped with the
/// root (structured teardown) — or the first failure once **every**
/// connection has been quarantined (nothing left to drive). A protocol
/// violation on one connection quarantines only that connection; put
/// [`Collector::failure`]/[`CollectorStats::failed`] in the `done`
/// predicate to abort earlier.
///
/// The `done` predicate is re-evaluated on a millisecond timer (the
/// per-connection I/O itself is event-driven; only this completion
/// check polls).
pub async fn drive_collector<C, A>(
    collector: Rc<RefCell<Collector<C, A>>>,
    mut done: impl FnMut(&Collector<C, A>) -> bool,
) -> Result<(), CollectorError>
where
    C: Codec + Clone + 'static,
    A: Acceptor + 'static,
{
    let spawner = runtime::spawner();
    // Accept task: adopt new connections, spawn one pump task each.
    spawner.spawn({
        let collector = collector.clone();
        let spawner = spawner.clone();
        async move {
            loop {
                let (fresh, source) = {
                    let mut coll = collector.borrow_mut();
                    let fresh = coll.poll_accept().unwrap_or_default();
                    (fresh, coll.acceptor.event_source())
                };
                for conn in fresh {
                    spawner.spawn(drive_connection(collector.clone(), conn));
                }
                runtime::io_ready(source, runtime::Interest::Read).await;
            }
        }
    });
    loop {
        {
            let coll = collector.borrow();
            if done(&coll) {
                return Ok(());
            }
            let stats = coll.stats();
            if stats.connections > 0 && stats.failed == stats.connections {
                let failure = coll.failure().expect("every connection failed");
                return Err(failure);
            }
        }
        runtime::sleep(std::time::Duration::from_millis(1)).await;
    }
}

/// One connection's pump loop (the spawned per-connection task).
async fn drive_connection<C, A>(collector: Rc<RefCell<Collector<C, A>>>, conn: ConnId)
where
    C: Codec + Clone + 'static,
    A: Acceptor + 'static,
{
    loop {
        let moved = match collector.borrow_mut().pump_conn(conn) {
            Ok(n) => n,
            // Quarantined: the failure is recorded in the connection's
            // stats; this task has nothing left to drive.
            Err(_) => return,
        };
        if moved == 0 {
            let hint = collector.borrow().conn_wait_hint(conn.0);
            match hint {
                ConnWait::Ready(source, staged) => {
                    runtime::io_ready(source, stall_interest(staged)).await
                }
                // Awaiting reattach: a timer backoff, not a poll-cadence
                // spin (a dead connection must not keep the reactor hot).
                ConnWait::Detached => runtime::sleep(std::time::Duration::from_millis(5)).await,
                ConnWait::Gone => return,
            }
        } else {
            runtime::yield_now().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::pump_sender;
    use crate::link::MemoryLink;
    use crate::listen::MemoryAcceptor;
    use crate::MuxSender;
    use pla_core::Segment;
    use pla_transport::wire::FixedCodec;

    fn seg(i: usize) -> Segment {
        let t = i as f64 * 10.0;
        Segment {
            t_start: t,
            x_start: [t].into(),
            t_end: t + 5.0,
            x_end: [t + 1.0].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    fn make(
        cfg: NetConfig,
    ) -> (Collector<FixedCodec, MemoryAcceptor>, crate::listen::MemoryConnector, Arc<SegmentStore>)
    {
        let store = Arc::new(SegmentStore::new());
        let acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        (Collector::new(FixedCodec, 1, cfg, acceptor, store.clone()), connector, store)
    }

    #[test]
    fn two_connections_funnel_into_one_store() {
        let cfg = NetConfig::default();
        let (mut coll, connector, store) = make(cfg);
        let mut senders: Vec<(MuxSender<FixedCodec>, MemoryLink)> = (0..2u64)
            .map(|c| {
                let link = connector.connect(4096);
                let mut tx = MuxSender::new(FixedCodec, 1, cfg);
                for s in 0..3u64 {
                    let stream = c * 3 + s;
                    for i in 0..4 {
                        tx.try_send_segment(stream, &seg(i)).unwrap();
                    }
                    tx.finish_stream(stream).unwrap();
                }
                (tx, link)
            })
            .collect();
        let mut stalled = 0;
        while !senders.iter().all(|(tx, _)| tx.all_acked()) {
            let mut moved = coll.pump().unwrap();
            for (tx, link) in &mut senders {
                moved += pump_sender(tx, link).unwrap();
            }
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "fan-in deadlocked");
        }
        let snap = store.snapshot();
        assert_eq!(snap.streams.len(), 6, "both connections' streams landed");
        assert_eq!(snap.total_segments, 6 * 4);
        for log in snap.streams.values() {
            assert_eq!(log.len(), 4);
        }
        // Watermarks are per connection.
        assert_eq!(snap.sources[&1].segments, 12);
        assert_eq!(snap.sources[&2].segments, 12);
        let stats = coll.stats();
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.segments, 24);
        assert_eq!(stats.frames, 24);
        assert_eq!(stats.dup_drops, 0);
        assert!(coll.conn_complete(ConnId(1)) && coll.conn_complete(ConnId(2)));
        // Per-connection ack state is exposed.
        let c1 = coll.conn_stats(ConnId(1)).unwrap();
        assert_eq!(c1.ack_points, vec![(0, 4), (1, 4), (2, 4)]);
    }

    #[test]
    fn protocol_violation_quarantines_only_its_own_connection() {
        let cfg = NetConfig::default();
        let (mut coll, connector, store) = make(cfg);
        // Conn 1 will turn hostile; conn 2 stays healthy.
        let mut bad_link = connector.connect(4096);
        let good_link = connector.connect(4096);
        let mut good_tx = MuxSender::new(FixedCodec, 1, cfg);
        for i in 0..4 {
            good_tx.try_send_segment(7, &seg(i)).unwrap();
        }
        good_tx.finish_stream(7).unwrap();
        coll.poll_accept().unwrap();
        // A frame with an unknown kind byte: framing-fatal for conn 1.
        bad_link.try_write(&[1u8, 0, 0, 0, 99]).unwrap();
        let err = coll.pump().expect_err("the violation must surface once");
        assert_eq!(err.conn, ConnId(1));
        // Conn 1 is quarantined: no reattach, no further pump errors,
        // and the failure is visible in stats.
        assert!(!coll.reattach(ConnId(1), MemoryLink::pair(8).0), "quarantine refuses reattach");
        assert!(coll.detached().is_empty(), "quarantined conns are not 'awaiting reattach'");
        let stats = coll.stats();
        assert_eq!(stats.failed, 1);
        assert!(coll.conn_stats(ConnId(1)).unwrap().failed.is_some());
        assert_eq!(coll.failure().unwrap().conn, ConnId(1));
        // Conn 2's session completes untouched.
        let mut good = (good_tx, good_link);
        let mut stalled = 0;
        while !(good.0.all_acked() && coll.conn_complete(ConnId(2))) {
            let moved = coll.pump().expect("no further errors after quarantine")
                + pump_sender(&mut good.0, &mut good.1).unwrap();
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "healthy connection starved by the quarantined one");
        }
        assert_eq!(store.stream_segments(StreamId(7)).unwrap().len(), 4);
    }

    #[test]
    fn dead_link_detaches_and_reattach_resumes() {
        let cfg = NetConfig::default();
        let (mut coll, connector, store) = make(cfg);
        let link = connector.connect(256);
        let mut tx = MuxSender::new(FixedCodec, 1, cfg);
        let mut link = link;
        for i in 0..6 {
            tx.try_send_segment(9, &seg(i)).unwrap();
        }
        // First exchange: some frames land.
        let _ = pump_sender(&mut tx, &mut link);
        coll.pump().unwrap();
        let before = store.total_segments();
        assert!(before > 0);
        // Kill the pipe mid-stream.
        link.sever();
        coll.pump().unwrap();
        assert_eq!(coll.detached(), vec![ConnId(1)], "dead link detaches, state retained");
        assert_eq!(coll.pump().unwrap(), 0, "detached connections pump nothing");
        // Fresh pipe, same connection: replay finishes the job.
        let (mut client, server) = MemoryLink::pair(256);
        assert!(coll.reattach(ConnId(1), server));
        tx.on_reconnect();
        tx.finish_stream(9).unwrap();
        let mut stalled = 0;
        while !(tx.all_acked() && coll.conn_complete(ConnId(1))) {
            let moved = coll.pump().unwrap() + pump_sender(&mut tx, &mut client).unwrap_or(0);
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "reconnect transfer deadlocked");
        }
        let log = store.stream_segments(StreamId(9)).unwrap();
        assert_eq!(log.len(), 6, "no loss, no duplication across the reconnect");
        assert!(coll.stats().dup_drops > 0, "the replay was partially duplicate");
        assert!(!coll.reattach(ConnId(99), MemoryLink::pair(8).0), "unknown conn refused");
    }

    #[test]
    fn async_driver_spawns_a_task_per_connection() {
        let cfg = NetConfig::default();
        let (coll, connector, store) = make(cfg);
        let coll = Rc::new(RefCell::new(coll));
        const CONNS: u64 = 4;
        // Sender threads dial in and push concurrently — the memory
        // connector is Send, so this exercises real cross-thread wakes.
        let senders: Vec<_> = (0..CONNS)
            .map(|c| {
                let connector = connector.clone();
                std::thread::spawn(move || {
                    let mut link = connector.connect(512);
                    let mut tx = MuxSender::new(FixedCodec, 1, cfg);
                    for i in 0..5 {
                        tx.try_send_segment(c, &seg(i)).unwrap();
                    }
                    tx.finish_stream(c).unwrap();
                    let mut stalled = 0;
                    while !tx.all_acked() {
                        match pump_sender(&mut tx, &mut link) {
                            Ok(0) => {
                                stalled += 1;
                                assert!(stalled < 4000, "sender starved");
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Ok(_) => stalled = 0,
                            Err(e) => panic!("sender link failed: {e}"),
                        }
                    }
                })
            })
            .collect();
        runtime::block_on(drive_collector(coll.clone(), |c| c.stats().segments == CONNS * 5))
            .expect("collector");
        for s in senders {
            s.join().unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.streams.len(), CONNS as usize);
        assert_eq!(snap.total_segments, CONNS * 5);
        assert_eq!(coll.borrow().stats().connections, CONNS as usize);
    }
}
