//! The many-connection collector: N inbound links, one shared store.
//!
//! This is the base-station half of the paper's deployment picture —
//! many sensors compress at the edge ([`MuxSender`](crate::MuxSender)
//! over whatever uplink they have), one collector reconstructs
//! everything with the precision guarantee intact. Duvignau et al.
//! (arXiv:1808.08877) evaluate exactly this many-producer streaming-PLA
//! topology; the collector turns PR 4's point-to-point demo into it:
//!
//! * an [`Acceptor`] yields inbound [`Link`]s (a TCP listener in
//!   production, a [`MemoryAcceptor`](crate::listen::MemoryAcceptor)
//!   for deterministic tests);
//! * every connection gets its **own** [`NetReceiver`] — its own frame
//!   decoder, demultiplexer, sequence state, and credit windows, so one
//!   slow or replaying sender cannot corrupt another's reconstruction;
//! * every reconstructed segment is published, in per-stream order, to
//!   one shared [`SegmentStore`] as `(ConnId, StreamId, Segment)` —
//!   per-connection buffers exist only transiently inside the demux;
//!   queries read cheap O(streams) store snapshots (per-shard
//!   consistent, `Arc`-shared sealed runs) while ingest continues.
//!
//! The collector is a sans-I/O-style state machine like the endpoints
//! it hosts: [`pump`](Collector::pump) does one non-blocking round
//! (tests drive it deterministically, interleaving and severing however
//! they like), and [`drive_collector`] runs it on the
//! [`runtime`] — one accept task plus one spawned task
//! per connection, each parking on its link's readiness source (epoll-
//! precise for TCP).
//!
//! Reconnect: a dead link *detaches* its connection (state retained)
//! rather than destroying it. [`reattach`](Collector::reattach) hands
//! the connection a fresh link and replays the standard recovery — the
//! receiver re-announces cumulative acks/credits, the sender replays
//! unacked frames, duplicates are dropped by sequence number — so the
//! store ends up byte-identical to an uninterrupted run.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use bytes::BytesMut;
use pla_ingest::{SegmentStore, StreamId};
use pla_transport::wire::Codec;

use crate::driver::{pump_in, pump_receiver_split, stall_interest, DriveError};
use crate::frame::{encode, FrameDecoder, NetFrame};
use crate::link::Link;
use crate::listen::Acceptor;
use crate::receiver::{NetReceiver, ReceiverStats};
use crate::runtime;
use crate::session::{splitmix64, HandshakeError, SessionConfig};
use crate::{NetConfig, NetError};

/// Identity of one accepted connection, assigned in accept order
/// (starting at 1). Doubles as the [`SegmentStore`] source id for the
/// connection's watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

/// A fatal collector failure: one connection's byte stream violated the
/// protocol (reconnecting cannot help; I/O failures are *not* errors —
/// they detach the connection for [`Collector::reattach`]).
#[derive(Debug)]
pub struct CollectorError {
    /// The connection whose stream failed.
    pub conn: ConnId,
    /// The protocol violation.
    pub error: NetError,
}

impl std::fmt::Display for CollectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.conn, self.error)
    }
}

impl std::error::Error for CollectorError {}

/// Point-in-time counters for one connection — the per-connection ack
/// state [`StreamDemux`](pla_transport::StreamDemux) keeps per demux,
/// surfaced per connection so shed load stays observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnStats {
    /// The connection.
    pub conn: ConnId,
    /// Whether a link is currently attached (false = detached, awaiting
    /// reconnect).
    pub attached: bool,
    /// The session token bound to this connection (0 in legacy mode).
    pub token: u64,
    /// The connection's receiving-endpoint counters (frames applied,
    /// duplicate replays dropped, control frames staged after
    /// batching).
    pub receiver: ReceiverStats,
    /// Segments published to the shared store.
    pub published: u64,
    /// Pump rounds that could not fully flush staged control bytes to
    /// the link — the peer (or the pipe) is slow draining our acks,
    /// i.e. backpressure against the collector itself.
    pub backpressure: u64,
    /// Bytes moved over the link (read + written) across the
    /// connection's lifetime, including across reattaches.
    pub bytes_moved: u64,
    /// Times this connection was resumed onto a fresh link — token
    /// resumes in session mode plus explicit
    /// [`reattach`](Collector::reattach) calls. The collector-side view
    /// of the peer's redial attempts.
    pub resumes: u64,
    /// The protocol violation that quarantined this connection, if any.
    pub failed: Option<NetError>,
    /// Per-stream cumulative ack points `(stream, through_seq)` — what
    /// this connection's demux has durably applied.
    pub ack_points: Vec<(u64, u64)>,
}

/// Aggregate counters across the collector, `IngestReport`-style
/// (`pla_ingest::IngestReport`): totals first, per-connection detail
/// attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorStats {
    /// Connections accepted over the collector's lifetime.
    pub connections: usize,
    /// Connections currently holding a live link.
    pub attached: usize,
    /// `Data` frames applied across all connections.
    pub frames: u64,
    /// Duplicate frames dropped across all connections (replays after
    /// reconnect — shed load).
    pub dup_drops: u64,
    /// Segments published to the shared store.
    pub segments: u64,
    /// Total backpressured pump rounds (see [`ConnStats::backpressure`]).
    pub backpressure: u64,
    /// Connections quarantined by a protocol violation.
    pub failed: usize,
    /// Handshakes refused (version mismatch, garbage first frame,
    /// unknown/quarantined token, handshake timeout) — session mode
    /// only. A refusal touches no bound connection.
    pub refused: u64,
    /// Detached sessions evicted after their TTL lapsed.
    pub evicted: u64,
    /// Heartbeat frames received across all connections — the echoed
    /// side of the session liveness protocol (senders count the sent
    /// side in `SessionStats::heartbeats_sent`).
    pub heartbeats: u64,
    /// Link resumes across all connections (token resumes plus explicit
    /// reattaches) — see [`ConnStats::resumes`].
    pub resumes: u64,
    /// Segments shed by per-stream quarantine
    /// ([`Collector::quarantine_stream`]) instead of published.
    pub shed_segments: u64,
    /// Streams currently quarantined, ascending.
    pub quarantined_streams: Vec<u64>,
    /// Human-readable reason of the most recent handshake refusal, if
    /// any (refused links never get a `ConnId` to hang a failure on).
    pub last_refusal: Option<String>,
    /// Per-connection detail, in accept order.
    pub conns: Vec<ConnStats>,
}

/// Per-connection state: the receiver plus publish bookkeeping.
struct Connection<C: Codec, L: Link> {
    rx: NetReceiver<C>,
    /// `None` while detached (link died; awaiting reattach).
    link: Option<L>,
    /// Set when this connection's byte stream violated the protocol:
    /// the connection is quarantined (link dropped, no reattach) but
    /// every other connection keeps running — the collector-level
    /// analogue of `pla-ingest`'s per-stream quarantine.
    failed: Option<NetError>,
    /// The session token bound to this connection (0 in legacy
    /// explicit-reattach mode).
    token: u64,
    /// When inbound bytes last arrived — the liveness clock (session
    /// mode only).
    last_recv: Instant,
    /// When the connection detached, for session-TTL eviction.
    detached_at: Option<Instant>,
    /// Per-stream count of segments already published to the store.
    published: BTreeMap<u64, usize>,
    /// Streams whose end-of-stream flush has run (Fin seen, trailing
    /// hold closed and published).
    flushed: std::collections::BTreeSet<u64>,
    published_total: u64,
    backpressure: u64,
    bytes_moved: u64,
    /// Token resumes plus explicit reattaches (see [`ConnStats::resumes`]).
    resumes: u64,
}

/// An accepted link that has not yet completed the session handshake:
/// it has no `ConnId` and no receiver until a valid `Hello` arrives.
struct Pending<L: Link> {
    link: L,
    dec: FrameDecoder,
    since: Instant,
}

/// The many-connection collector. See the [module docs](self) for the
/// model and [`drive_collector`] for the async form.
///
/// ```
/// use pla_ingest::{SegmentStore, StreamId};
/// use pla_net::listen::MemoryAcceptor;
/// use pla_net::{Collector, MuxSender, NetConfig};
/// use pla_transport::wire::FixedCodec;
/// use std::sync::Arc;
///
/// let store = Arc::new(SegmentStore::new());
/// let acceptor = MemoryAcceptor::new();
/// let connector = acceptor.connector();
/// let cfg = NetConfig::default();
/// let mut collector = Collector::new(FixedCodec, 1, cfg, acceptor, store.clone());
///
/// // Two edge senders dial in, each with its own streams.
/// let mut links = Vec::new();
/// let mut senders = Vec::new();
/// for id in 0..2u64 {
///     links.push(connector.connect(4096));
///     let mut tx = MuxSender::new(FixedCodec, 1, cfg);
///     tx.try_send_segment(
///         id,
///         &pla_core::Segment {
///             t_start: 0.0,
///             x_start: [1.0].into(),
///             t_end: 4.0,
///             x_end: [5.0].into(),
///             connected: false,
///             n_points: 5,
///             new_recordings: 2,
///         },
///     )
///     .unwrap();
///     tx.finish_all();
///     senders.push(tx);
/// }
/// // Senders write, the collector pumps, acks flow back.
/// for (tx, link) in senders.iter_mut().zip(&mut links) {
///     pla_net::driver::pump_sender(tx, link).unwrap();
/// }
/// collector.pump().unwrap();
/// for (tx, link) in senders.iter_mut().zip(&mut links) {
///     pla_net::driver::pump_sender(tx, link).unwrap();
/// }
/// assert!(senders.iter().all(|tx| tx.all_acked()));
/// let snap = store.snapshot();
/// assert_eq!(snap.streams.len(), 2);
/// assert_eq!(snap.total_segments, 2);
/// assert_eq!(collector.stats().connections, 2);
/// ```
pub struct Collector<C: Codec + Clone, A: Acceptor> {
    codec: C,
    dims: usize,
    config: NetConfig,
    acceptor: A,
    store: Arc<SegmentStore>,
    conns: BTreeMap<u64, Connection<C, A::Link>>,
    next_conn: u64,
    /// `Some` = session mode: connections must open with `Hello`, get a
    /// token, heartbeat-lapse detach, and TTL eviction. `None` = the
    /// legacy explicit-[`reattach`](Self::reattach) mode.
    session: Option<SessionConfig>,
    /// Accepted links mid-handshake (session mode only).
    pending: Vec<Pending<A::Link>>,
    /// Issued session tokens → connection ids.
    tokens: BTreeMap<u64, u64>,
    token_ctr: u64,
    refused: u64,
    evicted: u64,
    /// The most recent handshake refusal, for observability (refused
    /// links have no `ConnId` to hang a failure on).
    last_refusal: Option<NetError>,
    /// Streams under admin quarantine: their segments are shed at the
    /// publish seam instead of appended to the store, isolating a bad
    /// stream without touching its connection (the per-stream analogue
    /// of connection quarantine, mirroring `pla-ingest`'s).
    quarantined_streams: std::collections::BTreeSet<u64>,
    /// Segments shed by per-stream quarantine.
    shed_segments: u64,
}

impl<C: Codec + Clone, A: Acceptor> Collector<C, A> {
    /// Creates a collector for `dims`-dimensional streams. Every
    /// accepted connection gets a receiver cloned from `codec` and
    /// `config` — as always, `config.window` must match what the
    /// senders were built with.
    pub fn new(
        codec: C,
        dims: usize,
        config: NetConfig,
        acceptor: A,
        store: Arc<SegmentStore>,
    ) -> Self {
        Self {
            codec,
            dims,
            config,
            acceptor,
            store,
            conns: BTreeMap::new(),
            next_conn: 1,
            session: None,
            pending: Vec::new(),
            tokens: BTreeMap::new(),
            token_ctr: 0,
            refused: 0,
            evicted: 0,
            last_refusal: None,
            quarantined_streams: std::collections::BTreeSet::new(),
            shed_segments: 0,
        }
    }

    /// Creates a collector in **session mode**: every connection must
    /// open with a versioned `Hello`, gets a server-issued session
    /// token in its `HelloAck`, and resumes by presenting that token on
    /// a fresh link — no [`reattach`](Self::reattach) call needed. A
    /// link silent past `session.liveness_timeout` is detached; a
    /// detached session unclaimed past `session.session_ttl` is
    /// evicted. Drive with [`pump_at`](Self::pump_at) (tests) or
    /// [`pump`](Self::pump)/[`drive_collector`] (production clock).
    pub fn with_sessions(
        codec: C,
        dims: usize,
        config: NetConfig,
        session: SessionConfig,
        acceptor: A,
        store: Arc<SegmentStore>,
    ) -> Self {
        let mut c = Self::new(codec, dims, config, acceptor, store);
        c.session = Some(session);
        c
    }

    /// The shared store this collector publishes into.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// Accepts every pending connection. In legacy mode each accepted
    /// link becomes a connection immediately and its `ConnId` is
    /// returned; in session mode accepted links are parked until their
    /// `Hello` arrives ([`pump_at`](Self::pump_at) completes the
    /// handshake), so this returns an empty list.
    pub fn poll_accept(&mut self) -> io::Result<Vec<ConnId>> {
        self.poll_accept_at(Instant::now())
    }

    fn poll_accept_at(&mut self, now: Instant) -> io::Result<Vec<ConnId>> {
        let mut fresh = Vec::new();
        while let Some(link) = self.acceptor.try_accept()? {
            if self.session.is_some() {
                self.pending.push(Pending {
                    link,
                    dec: FrameDecoder::new(self.config.max_frame),
                    since: now,
                });
            } else {
                let id = self.adopt(link, 0, now);
                fresh.push(ConnId(id));
            }
        }
        Ok(fresh)
    }

    /// Materializes a connection around an already-handshaken (or
    /// legacy-mode) link.
    fn adopt(&mut self, link: A::Link, token: u64, now: Instant) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            Connection {
                rx: NetReceiver::new(self.codec.clone(), self.dims, self.config),
                link: Some(link),
                failed: None,
                token,
                last_recv: now,
                detached_at: None,
                published: BTreeMap::new(),
                flushed: std::collections::BTreeSet::new(),
                published_total: 0,
                backpressure: 0,
                bytes_moved: 0,
                resumes: 0,
            },
        );
        id
    }

    /// One non-blocking round for one connection: absorb inbound
    /// frames, flush the round's batched acks, write them back, and
    /// publish newly reconstructed segments to the store. Returns bytes
    /// moved.
    ///
    /// An I/O failure **detaches** the connection (its reconstruction
    /// state is retained for [`reattach`](Self::reattach)) and counts
    /// as no progress. A protocol violation **quarantines** the
    /// connection — link dropped, [`reattach`](Self::reattach) refused,
    /// failure recorded in [`ConnStats::failed`] — and is returned once
    /// to the caller; every *other* connection is unaffected.
    pub fn pump_conn(&mut self, conn: ConnId) -> Result<usize, CollectorError> {
        self.pump_conn_at(conn, Instant::now())
    }

    /// [`pump_conn`](Self::pump_conn) with an explicit clock — the form
    /// deterministic tests drive. In session mode, `now` feeds the
    /// liveness deadline: a link that produced no inbound bytes for
    /// `liveness_timeout` is shut down and the connection detached, its
    /// state retained for a token resume.
    pub fn pump_conn_at(&mut self, conn: ConnId, now: Instant) -> Result<usize, CollectorError> {
        let Some(c) = self.conns.get_mut(&conn.0) else { return Ok(0) };
        if c.failed.is_some() {
            return Ok(0);
        }
        let Some(link) = c.link.as_mut() else { return Ok(0) };
        match pump_receiver_split(&mut c.rx, link) {
            Ok((read, written)) => {
                if read > 0 {
                    c.last_recv = now;
                } else if let Some(sess) = self.session {
                    // Only *arriving* bytes prove the peer alive — our own
                    // writes may be vanishing into a wedged pipe.
                    if now.duration_since(c.last_recv) >= sess.liveness_timeout {
                        if let Some(mut dead) = c.link.take() {
                            dead.shutdown();
                        }
                        c.detached_at = Some(now);
                        self.publish_conn(conn.0);
                        return Ok(written);
                    }
                }
                let moved = read + written;
                if moved == 0 {
                    return Ok(0);
                }
                if c.rx.staged_bytes() > 0 {
                    c.backpressure += 1;
                }
                c.bytes_moved += moved as u64;
                self.publish_conn(conn.0);
                Ok(moved)
            }
            Err(DriveError::Io(_)) => {
                c.link = None;
                c.detached_at = Some(now);
                // Frames applied before the link died may have produced
                // segments; publish them before going quiet.
                self.publish_conn(conn.0);
                Ok(0)
            }
            Err(DriveError::Net(error)) => {
                c.link = None;
                c.failed = Some(error.clone());
                self.publish_conn(conn.0);
                Err(CollectorError { conn, error })
            }
        }
    }

    /// Publishes `conn`'s newly reconstructed segments (and, for
    /// streams whose `Fin` arrived, the flushed trailing hold) to the
    /// store.
    fn publish_conn(&mut self, conn: u64) {
        let Some(c) = self.conns.get_mut(&conn) else { return };
        let streams: Vec<u64> = c.rx.demux().streams().collect();
        for stream in streams {
            if c.rx.is_finished(stream) && !c.flushed.contains(&stream) {
                c.rx.demux_mut().flush_stream(stream);
                c.flushed.insert(stream);
            }
            let log = c.rx.demux().segments(stream).unwrap_or(&[]);
            let from = c.published.get(&stream).copied().unwrap_or(0);
            if log.len() > from {
                if self.quarantined_streams.contains(&stream) {
                    // Shed instead of publish, but still advance the
                    // publish cursor: a later release resumes from live
                    // data, it does not backfill the quarantined span.
                    self.shed_segments += (log.len() - from) as u64;
                } else {
                    self.store.append_batch(conn, StreamId(stream), &log[from..]);
                    c.published_total += (log.len() - from) as u64;
                }
                c.published.insert(stream, log.len());
            }
        }
    }

    /// Issues a fresh session token: unique among live sessions and
    /// nonzero (0 on the wire means "refused"). splitmix64 over the
    /// configured seed — identity, not authentication.
    fn issue_token(&mut self, seed: u64) -> u64 {
        loop {
            self.token_ctr += 1;
            let mut s = seed ^ self.token_ctr;
            splitmix64(&mut s);
            let token = if s == 0 { 1 } else { s };
            if !self.tokens.contains_key(&token) {
                return token;
            }
        }
    }

    /// Refuses a mid-handshake link: best-effort `HelloAck` with token 0
    /// (so the peer gets a *typed* refusal instead of a timeout), then
    /// the link is dropped — not shut down, which on in-memory pipes
    /// would destroy the refusal before the peer reads it. Only this
    /// link is touched — every bound connection keeps running.
    fn refuse(&mut self, link: &mut A::Link, version: u16, err: HandshakeError) {
        let mut buf = BytesMut::new();
        encode(&NetFrame::HelloAck { version, token: 0, cursors: Vec::new() }, &mut buf);
        let _ = link.try_write(&buf);
        self.refused += 1;
        self.last_refusal = Some(NetError::Handshake(err));
    }

    /// Feeds bytes that arrived in the same read as the `Hello` (the
    /// sender's 0-RTT replay) to the freshly bound connection.
    fn feed_adopted(&mut self, id: u64, leftover: &[u8], now: Instant) {
        if leftover.is_empty() {
            return;
        }
        let Some(c) = self.conns.get_mut(&id) else { return };
        match c.rx.on_bytes(leftover) {
            Ok(()) => {
                c.last_recv = now;
                c.bytes_moved += leftover.len() as u64;
                self.publish_conn(id);
            }
            Err(error) => {
                if let Some(mut dead) = c.link.take() {
                    dead.shutdown();
                }
                c.failed = Some(error);
            }
        }
    }

    /// Advances every mid-handshake link at the given instant: reads,
    /// decodes the first frame, and either binds a connection (fresh
    /// token or resume), refuses the link, or keeps waiting until the
    /// handshake deadline. Also evicts detached sessions whose TTL
    /// lapsed. Returns the connections bound this round (a resumed
    /// `ConnId` reappears here when its session rebinds). No-op outside
    /// session mode.
    pub fn pump_sessions(&mut self, now: Instant) -> Vec<ConnId> {
        let Some(sess) = self.session else { return Vec::new() };
        self.evict_expired(now, sess.session_ttl);
        let mut bound = Vec::new();
        let mut keep = Vec::new();
        for mut p in std::mem::take(&mut self.pending) {
            let read = pump_in(&mut p.link, |bytes| {
                p.dec.extend(bytes);
                Ok(())
            });
            if matches!(read, Err(DriveError::Io(_))) {
                // Died before identifying itself: nothing to retain.
                continue;
            }
            match p.dec.try_next() {
                Ok(None) => {
                    if now.duration_since(p.since) >= sess.handshake_timeout {
                        self.refused += 1;
                        self.last_refusal = Some(NetError::Handshake(HandshakeError::Timeout));
                        p.link.shutdown();
                    } else {
                        keep.push(p);
                    }
                }
                Err(e) => {
                    self.refuse(&mut p.link, sess.version, HandshakeError::Garbage(e));
                }
                Ok(Some(NetFrame::Hello { version, token })) => {
                    if version != sess.version {
                        self.refuse(
                            &mut p.link,
                            sess.version,
                            HandshakeError::VersionMismatch { ours: sess.version, theirs: version },
                        );
                        continue;
                    }
                    let leftover = p.dec.take_remaining();
                    if token == 0 {
                        let token = self.issue_token(sess.token_seed);
                        let id = self.adopt(p.link, token, now);
                        self.tokens.insert(token, id);
                        let ack = NetFrame::HelloAck {
                            version: sess.version,
                            token,
                            cursors: Vec::new(),
                        };
                        self.conns.get_mut(&id).expect("just adopted").rx.stage_session(&ack);
                        self.feed_adopted(id, &leftover, now);
                        bound.push(ConnId(id));
                    } else {
                        match self.tokens.get(&token).copied() {
                            Some(id) if self.conns[&id].failed.is_some() => {
                                self.refuse(
                                    &mut p.link,
                                    sess.version,
                                    HandshakeError::Quarantined(token),
                                );
                            }
                            Some(id) => {
                                let c = self.conns.get_mut(&id).expect("token maps to a conn");
                                if let Some(mut old) = c.link.take() {
                                    old.shutdown();
                                }
                                c.rx.reset_link();
                                let ack = NetFrame::HelloAck {
                                    version: sess.version,
                                    token,
                                    cursors: c.rx.resume_cursors(),
                                };
                                c.rx.stage_session(&ack);
                                c.link = Some(p.link);
                                c.detached_at = None;
                                c.last_recv = now;
                                c.resumes += 1;
                                self.feed_adopted(id, &leftover, now);
                                bound.push(ConnId(id));
                            }
                            None => {
                                self.refuse(
                                    &mut p.link,
                                    sess.version,
                                    HandshakeError::UnknownToken(token),
                                );
                            }
                        }
                    }
                }
                Ok(Some(other)) => {
                    self.refuse(
                        &mut p.link,
                        sess.version,
                        HandshakeError::NotHello(frame_name(&other)),
                    );
                }
            }
        }
        self.pending = keep;
        bound
    }

    /// Evicts detached sessions whose TTL lapsed: connection state and
    /// token are dropped; a later resume with that token is refused as
    /// [`HandshakeError::UnknownToken`].
    fn evict_expired(&mut self, now: Instant, ttl: std::time::Duration) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.detached_at.is_some_and(|at| now.duration_since(at) >= ttl))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some(c) = self.conns.remove(&id) {
                self.tokens.remove(&c.token);
                self.evicted += 1;
            }
        }
    }

    /// One non-blocking round over the whole collector: accept pending
    /// connections, pump every attached one. Returns total bytes moved.
    pub fn pump(&mut self) -> Result<usize, CollectorError> {
        self.pump_at(Instant::now())
    }

    /// [`pump`](Self::pump) with an explicit clock — the form
    /// deterministic tests drive. In session mode this also advances
    /// mid-handshake links and runs liveness/TTL enforcement.
    pub fn pump_at(&mut self, now: Instant) -> Result<usize, CollectorError> {
        // Accept errors mean the listener died; surface as no progress
        // (existing connections keep running) — a deployment would
        // rebind and swap the acceptor.
        let _ = self.poll_accept_at(now);
        let _ = self.pump_sessions(now);
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        let mut moved = 0;
        let mut first_failure = None;
        for id in ids {
            match self.pump_conn_at(ConnId(id), now) {
                Ok(n) => moved += n,
                // Quarantine already happened; keep pumping the others
                // and report the first failure once at the end.
                Err(e) => {
                    first_failure.get_or_insert(e);
                }
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(moved),
        }
    }

    /// Re-attaches a fresh link to a detached (or still-attached —
    /// the old link is dropped) connection, running the receiver's
    /// reconnect protocol: partial frames are discarded and cumulative
    /// `Ack`/`Credit` state is restaged for the replaying sender.
    /// Returns false if the connection id was never accepted or is
    /// quarantined after a protocol violation (a corrupted session must
    /// not resume).
    pub fn reattach(&mut self, conn: ConnId, link: A::Link) -> bool {
        match self.conns.get_mut(&conn.0) {
            Some(c) if c.failed.is_none() => {
                c.rx.on_reconnect();
                c.link = Some(link);
                c.detached_at = None;
                c.last_recv = Instant::now();
                c.resumes += 1;
                true
            }
            _ => false,
        }
    }

    /// Administratively detaches `conn`: the link is shut down and
    /// dropped, pending reconstructed segments are published, and the
    /// connection parks as detached — a session-mode peer resumes with
    /// its token (TTL permitting), a legacy peer via
    /// [`reattach`](Self::reattach). Returns false if the connection is
    /// unknown, quarantined, or already detached.
    pub fn drain(&mut self, conn: ConnId) -> bool {
        let now = Instant::now();
        match self.conns.get_mut(&conn.0) {
            Some(c) if c.failed.is_none() && c.link.is_some() => {
                if let Some(mut dead) = c.link.take() {
                    dead.shutdown();
                }
                c.detached_at = Some(now);
                self.publish_conn(conn.0);
                true
            }
            _ => false,
        }
    }

    /// Quarantines `stream` across every connection: from now on its
    /// reconstructed segments are shed at the publish seam instead of
    /// appended to the store. Already-published segments stay. Every
    /// other stream is untouched. Returns false if already quarantined.
    pub fn quarantine_stream(&mut self, stream: u64) -> bool {
        self.quarantined_streams.insert(stream)
    }

    /// Lifts a [`quarantine_stream`](Self::quarantine_stream): publishing
    /// resumes with segments reconstructed *after* the release (the
    /// quarantined span is shed, not backfilled). Returns false if the
    /// stream was not quarantined.
    pub fn release_stream(&mut self, stream: u64) -> bool {
        self.quarantined_streams.remove(&stream)
    }

    /// Whether `stream` is currently quarantined.
    pub fn stream_quarantined(&self, stream: u64) -> bool {
        self.quarantined_streams.contains(&stream)
    }

    /// Streams currently quarantined, ascending.
    pub fn quarantined_streams(&self) -> Vec<u64> {
        self.quarantined_streams.iter().copied().collect()
    }

    /// Ids of connections whose link died and await
    /// [`reattach`](Self::reattach), ascending (quarantined
    /// connections are not reattachable and not listed).
    pub fn detached(&self) -> Vec<ConnId> {
        self.conns
            .iter()
            .filter(|(_, c)| c.link.is_none() && c.failed.is_none())
            .map(|(&id, _)| ConnId(id))
            .collect()
    }

    /// Whether `conn`'s sender has finished every stream it opened and
    /// nothing remains staged — the connection's session is complete.
    pub fn conn_complete(&self, conn: ConnId) -> bool {
        self.conns.get(&conn.0).is_some_and(|c| {
            let streams = c.rx.demux().streams().count();
            streams > 0
                && c.rx.finished_streams().count() == streams
                && c.rx.staged_bytes() == 0
                && !c.rx.control_dirty()
        })
    }

    /// The first quarantined connection's failure, if any — a protocol
    /// violation poisons only its own connection, so an async `done`
    /// predicate (or a post-run check) decides whether one bad sensor
    /// aborts the collection round or merely gets reported.
    pub fn failure(&self) -> Option<CollectorError> {
        self.conns.iter().find_map(|(&id, c)| {
            c.failed.clone().map(|error| CollectorError { conn: ConnId(id), error })
        })
    }

    /// Counters for one connection.
    pub fn conn_stats(&self, conn: ConnId) -> Option<ConnStats> {
        self.conns.get(&conn.0).map(|c| ConnStats {
            conn,
            attached: c.link.is_some(),
            token: c.token,
            receiver: c.rx.stats(),
            published: c.published_total,
            backpressure: c.backpressure,
            bytes_moved: c.bytes_moved,
            resumes: c.resumes,
            failed: c.failed.clone(),
            ack_points: c.rx.demux().streams().map(|s| (s, c.rx.demux().ack_point(s))).collect(),
        })
    }

    /// Aggregate counters plus per-connection detail.
    pub fn stats(&self) -> CollectorStats {
        let conns: Vec<ConnStats> =
            self.conns.keys().filter_map(|&id| self.conn_stats(ConnId(id))).collect();
        CollectorStats {
            connections: conns.len(),
            attached: conns.iter().filter(|c| c.attached).count(),
            frames: conns.iter().map(|c| c.receiver.frames_applied).sum(),
            dup_drops: conns.iter().map(|c| c.receiver.dup_drops).sum(),
            segments: conns.iter().map(|c| c.published).sum(),
            backpressure: conns.iter().map(|c| c.backpressure).sum(),
            failed: conns.iter().filter(|c| c.failed.is_some()).count(),
            refused: self.refused,
            evicted: self.evicted,
            heartbeats: conns.iter().map(|c| c.receiver.heartbeats).sum(),
            resumes: conns.iter().map(|c| c.resumes).sum(),
            shed_segments: self.shed_segments,
            quarantined_streams: self.quarantined_streams(),
            last_refusal: self.last_refusal.as_ref().map(|e| e.to_string()),
            conns,
        }
    }

    /// The most recent handshake refusal, if any — refused links never
    /// get a `ConnId`, so their typed failure is surfaced here.
    pub fn last_refusal(&self) -> Option<&NetError> {
        self.last_refusal.as_ref()
    }

    /// Links accepted but still mid-handshake (session mode).
    pub fn pending_handshakes(&self) -> usize {
        self.pending.len()
    }

    /// What a connection's async task should do after a no-progress
    /// round: park on the link's readiness source, back off while
    /// detached, or exit after quarantine.
    fn conn_wait_hint(&self, conn: u64) -> ConnWait {
        match self.conns.get(&conn) {
            Some(c) if c.failed.is_some() => ConnWait::Gone,
            Some(c) => match &c.link {
                // Session mode parks on a timer even while attached: a
                // silently wedged fd never becomes readable, so an
                // event-source wait would sleep straight through the
                // liveness deadline it is supposed to enforce.
                Some(_) if self.session.is_some() => ConnWait::Timer,
                Some(link) => ConnWait::Ready(link.event_source(), c.rx.staged_bytes()),
                None => ConnWait::Detached,
            },
            None => ConnWait::Gone,
        }
    }
}

/// The wire-level name of a frame, for typed `NotHello` refusals.
fn frame_name(frame: &NetFrame) -> &'static str {
    match frame {
        NetFrame::Data { .. } => "Data",
        NetFrame::Ack { .. } => "Ack",
        NetFrame::Credit { .. } => "Credit",
        NetFrame::Fin { .. } => "Fin",
        NetFrame::Hello { .. } => "Hello",
        NetFrame::HelloAck { .. } => "HelloAck",
        NetFrame::Heartbeat { .. } => "Heartbeat",
        NetFrame::QueryReq { .. } => "QueryReq",
        NetFrame::QueryResp { .. } => "QueryResp",
        NetFrame::EpochsReq { .. } => "EpochsReq",
        NetFrame::EpochsResp { .. } => "EpochsResp",
    }
}

/// How a connection task should wait after an idle round.
enum ConnWait {
    /// Attached: park on the link's source (with staged-byte count for
    /// the interest choice).
    Ready(Option<runtime::EventSource>, usize),
    /// Attached in session mode: park on a short timer so
    /// liveness/heartbeat deadlines fire even on a wedged link.
    Timer,
    /// Detached, awaiting [`Collector::reattach`] (or a token resume in
    /// session mode): back off on a timer.
    Detached,
    /// Quarantined or removed: the task exits.
    Gone,
}

/// Drives a collector on the [`runtime`]: one accept
/// task (parking on the listener's readiness source where it has one)
/// plus one spawned task per accepted connection, each pumping its own
/// [`NetReceiver`] and parking on its own link. Returns `Ok(())` when
/// `done(&collector)` is satisfied — spawned tasks are dropped with the
/// root (structured teardown) — or the first failure once **every**
/// connection has been quarantined (nothing left to drive). A protocol
/// violation on one connection quarantines only that connection; put
/// [`Collector::failure`]/[`CollectorStats::failed`] in the `done`
/// predicate to abort earlier.
///
/// The `done` predicate is re-evaluated on a millisecond timer (the
/// per-connection I/O itself is event-driven; only this completion
/// check polls).
pub async fn drive_collector<C, A>(
    collector: Rc<RefCell<Collector<C, A>>>,
    mut done: impl FnMut(&Collector<C, A>) -> bool,
) -> Result<(), CollectorError>
where
    C: Codec + Clone + 'static,
    A: Acceptor + 'static,
{
    let spawner = runtime::spawner();
    // Accept task: adopt new connections, spawn one pump task each. In
    // session mode it also advances mid-handshake links on a millisecond
    // cadence (pending sockets have no spawned task until their `Hello`
    // binds them, and handshake deadlines need a clock). A resumed
    // session reuses its `ConnId`, whose original task is still alive in
    // its detached backoff — the spawned-set keeps it singly driven.
    spawner.spawn({
        let collector = collector.clone();
        let spawner = spawner.clone();
        async move {
            let mut spawned = std::collections::BTreeSet::new();
            loop {
                let (fresh, source, session_mode) = {
                    let mut coll = collector.borrow_mut();
                    let mut fresh = coll.poll_accept().unwrap_or_default();
                    let session_mode = coll.session.is_some();
                    if session_mode {
                        fresh.extend(coll.pump_sessions(Instant::now()));
                    }
                    (fresh, coll.acceptor.event_source(), session_mode)
                };
                for conn in fresh {
                    if spawned.insert(conn.0) {
                        spawner.spawn(drive_connection(collector.clone(), conn));
                    }
                }
                if session_mode {
                    runtime::sleep(std::time::Duration::from_millis(1)).await;
                } else {
                    runtime::io_ready(source, runtime::Interest::Read).await;
                }
            }
        }
    });
    loop {
        {
            let coll = collector.borrow();
            if done(&coll) {
                return Ok(());
            }
            let stats = coll.stats();
            if stats.connections > 0 && stats.failed == stats.connections {
                let failure = coll.failure().expect("every connection failed");
                return Err(failure);
            }
        }
        runtime::sleep(std::time::Duration::from_millis(1)).await;
    }
}

/// One connection's pump loop (the spawned per-connection task).
async fn drive_connection<C, A>(collector: Rc<RefCell<Collector<C, A>>>, conn: ConnId)
where
    C: Codec + Clone + 'static,
    A: Acceptor + 'static,
{
    loop {
        let moved = match collector.borrow_mut().pump_conn(conn) {
            Ok(n) => n,
            // Quarantined: the failure is recorded in the connection's
            // stats; this task has nothing left to drive.
            Err(_) => return,
        };
        if moved == 0 {
            let hint = collector.borrow().conn_wait_hint(conn.0);
            match hint {
                ConnWait::Ready(source, staged) => {
                    runtime::io_ready(source, stall_interest(staged)).await
                }
                ConnWait::Timer => runtime::sleep(std::time::Duration::from_millis(1)).await,
                // Awaiting reattach: a timer backoff, not a poll-cadence
                // spin (a dead connection must not keep the reactor hot).
                ConnWait::Detached => runtime::sleep(std::time::Duration::from_millis(5)).await,
                ConnWait::Gone => return,
            }
        } else {
            runtime::yield_now().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::pump_sender;
    use crate::link::MemoryLink;
    use crate::listen::MemoryAcceptor;
    use crate::MuxSender;
    use pla_core::Segment;
    use pla_transport::wire::FixedCodec;

    fn seg(i: usize) -> Segment {
        let t = i as f64 * 10.0;
        Segment {
            t_start: t,
            x_start: [t].into(),
            t_end: t + 5.0,
            x_end: [t + 1.0].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    fn make(
        cfg: NetConfig,
    ) -> (Collector<FixedCodec, MemoryAcceptor>, crate::listen::MemoryConnector, Arc<SegmentStore>)
    {
        let store = Arc::new(SegmentStore::new());
        let acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        (Collector::new(FixedCodec, 1, cfg, acceptor, store.clone()), connector, store)
    }

    #[test]
    fn two_connections_funnel_into_one_store() {
        let cfg = NetConfig::default();
        let (mut coll, connector, store) = make(cfg);
        let mut senders: Vec<(MuxSender<FixedCodec>, MemoryLink)> = (0..2u64)
            .map(|c| {
                let link = connector.connect(4096);
                let mut tx = MuxSender::new(FixedCodec, 1, cfg);
                for s in 0..3u64 {
                    let stream = c * 3 + s;
                    for i in 0..4 {
                        tx.try_send_segment(stream, &seg(i)).unwrap();
                    }
                    tx.finish_stream(stream).unwrap();
                }
                (tx, link)
            })
            .collect();
        let mut stalled = 0;
        while !senders.iter().all(|(tx, _)| tx.all_acked()) {
            let mut moved = coll.pump().unwrap();
            for (tx, link) in &mut senders {
                moved += pump_sender(tx, link).unwrap();
            }
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "fan-in deadlocked");
        }
        let snap = store.snapshot();
        assert_eq!(snap.streams.len(), 6, "both connections' streams landed");
        assert_eq!(snap.total_segments, 6 * 4);
        for log in snap.streams.values() {
            assert_eq!(log.len(), 4);
        }
        // Watermarks are per connection.
        assert_eq!(snap.sources[&1].segments, 12);
        assert_eq!(snap.sources[&2].segments, 12);
        let stats = coll.stats();
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.segments, 24);
        assert_eq!(stats.frames, 24);
        assert_eq!(stats.dup_drops, 0);
        assert!(coll.conn_complete(ConnId(1)) && coll.conn_complete(ConnId(2)));
        // Per-connection ack state is exposed.
        let c1 = coll.conn_stats(ConnId(1)).unwrap();
        assert_eq!(c1.ack_points, vec![(0, 4), (1, 4), (2, 4)]);
    }

    #[test]
    fn protocol_violation_quarantines_only_its_own_connection() {
        let cfg = NetConfig::default();
        let (mut coll, connector, store) = make(cfg);
        // Conn 1 will turn hostile; conn 2 stays healthy.
        let mut bad_link = connector.connect(4096);
        let good_link = connector.connect(4096);
        let mut good_tx = MuxSender::new(FixedCodec, 1, cfg);
        for i in 0..4 {
            good_tx.try_send_segment(7, &seg(i)).unwrap();
        }
        good_tx.finish_stream(7).unwrap();
        coll.poll_accept().unwrap();
        // A frame with an unknown kind byte: framing-fatal for conn 1.
        bad_link.try_write(&[1u8, 0, 0, 0, 99]).unwrap();
        let err = coll.pump().expect_err("the violation must surface once");
        assert_eq!(err.conn, ConnId(1));
        // Conn 1 is quarantined: no reattach, no further pump errors,
        // and the failure is visible in stats.
        assert!(!coll.reattach(ConnId(1), MemoryLink::pair(8).0), "quarantine refuses reattach");
        assert!(coll.detached().is_empty(), "quarantined conns are not 'awaiting reattach'");
        let stats = coll.stats();
        assert_eq!(stats.failed, 1);
        assert!(coll.conn_stats(ConnId(1)).unwrap().failed.is_some());
        assert_eq!(coll.failure().unwrap().conn, ConnId(1));
        // Conn 2's session completes untouched.
        let mut good = (good_tx, good_link);
        let mut stalled = 0;
        while !(good.0.all_acked() && coll.conn_complete(ConnId(2))) {
            let moved = coll.pump().expect("no further errors after quarantine")
                + pump_sender(&mut good.0, &mut good.1).unwrap();
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "healthy connection starved by the quarantined one");
        }
        assert_eq!(store.stream_segments(StreamId(7)).unwrap().len(), 4);
    }

    #[test]
    fn dead_link_detaches_and_reattach_resumes() {
        let cfg = NetConfig::default();
        let (mut coll, connector, store) = make(cfg);
        let link = connector.connect(256);
        let mut tx = MuxSender::new(FixedCodec, 1, cfg);
        let mut link = link;
        for i in 0..6 {
            tx.try_send_segment(9, &seg(i)).unwrap();
        }
        // First exchange: some frames land.
        let _ = pump_sender(&mut tx, &mut link);
        coll.pump().unwrap();
        let before = store.total_segments();
        assert!(before > 0);
        // Kill the pipe mid-stream.
        link.sever();
        coll.pump().unwrap();
        assert_eq!(coll.detached(), vec![ConnId(1)], "dead link detaches, state retained");
        assert_eq!(coll.pump().unwrap(), 0, "detached connections pump nothing");
        // Fresh pipe, same connection: replay finishes the job.
        let (mut client, server) = MemoryLink::pair(256);
        assert!(coll.reattach(ConnId(1), server));
        tx.on_reconnect();
        tx.finish_stream(9).unwrap();
        let mut stalled = 0;
        while !(tx.all_acked() && coll.conn_complete(ConnId(1))) {
            let moved = coll.pump().unwrap() + pump_sender(&mut tx, &mut client).unwrap_or(0);
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "reconnect transfer deadlocked");
        }
        let log = store.stream_segments(StreamId(9)).unwrap();
        assert_eq!(log.len(), 6, "no loss, no duplication across the reconnect");
        assert!(coll.stats().dup_drops > 0, "the replay was partially duplicate");
        assert!(!coll.reattach(ConnId(99), MemoryLink::pair(8).0), "unknown conn refused");
    }

    fn make_sessions(
        cfg: NetConfig,
        sess: crate::session::SessionConfig,
    ) -> (Collector<FixedCodec, MemoryAcceptor>, crate::listen::MemoryConnector, Arc<SegmentStore>)
    {
        let store = Arc::new(SegmentStore::new());
        let acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        (
            Collector::with_sessions(FixedCodec, 1, cfg, sess, acceptor, store.clone()),
            connector,
            store,
        )
    }

    fn frame_bytes(frame: &NetFrame) -> Vec<u8> {
        let mut buf = bytes::BytesMut::new();
        crate::frame::encode(frame, &mut buf);
        buf.to_vec()
    }

    /// Reads exactly one already-delivered frame off the client's end.
    fn read_frame(link: &mut MemoryLink) -> NetFrame {
        let mut dec = FrameDecoder::new(1 << 20);
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = dec.try_next().expect("clean frame stream") {
                return frame;
            }
            let n = link.try_read(&mut buf).expect("frame must already be staged");
            dec.extend(&buf[..n]);
        }
    }

    #[test]
    fn session_handshake_binds_with_a_token_and_applies_zero_rtt_data() {
        use crate::frame::PROTOCOL_VERSION;
        let cfg = NetConfig::default();
        let sess = crate::session::SessionConfig::default();
        let (mut coll, connector, store) = make_sessions(cfg, sess);
        let t0 = Instant::now();
        let mut client = connector.connect(4096);
        // Hello plus the whole session's data in one burst: the 0-RTT
        // path — bytes behind the Hello reach the bound receiver.
        client
            .try_write(&frame_bytes(&NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 }))
            .unwrap();
        let mut tx = MuxSender::new(FixedCodec, 1, cfg);
        tx.try_send_segment(3, &seg(0)).unwrap();
        tx.finish_stream(3).unwrap();
        client.try_write(&tx.outbox().take()).unwrap();
        coll.pump_at(t0).unwrap();
        let stats = coll.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.refused, 0);
        assert_eq!(coll.pending_handshakes(), 0);
        let cs = coll.conn_stats(ConnId(1)).unwrap();
        assert_ne!(cs.token, 0, "a bound session carries a nonzero token");
        match read_frame(&mut client) {
            NetFrame::HelloAck { version, token, cursors } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(token, cs.token);
                assert!(cursors.is_empty(), "a fresh session has no resume state");
            }
            other => panic!("expected HelloAck first, got {other:?}"),
        }
        assert_eq!(store.total_segments(), 1, "0-RTT data behind the Hello was applied");
    }

    #[test]
    fn version_mismatch_and_garbage_first_frames_are_typed_refusals() {
        use crate::frame::PROTOCOL_VERSION;
        use crate::session::HandshakeError;
        let cfg = NetConfig::default();
        let sess = crate::session::SessionConfig::default();
        let (mut coll, connector, _store) = make_sessions(cfg, sess);
        let t0 = Instant::now();

        // A peer speaking a future wire version.
        let mut wrong = connector.connect(4096);
        wrong
            .try_write(&frame_bytes(&NetFrame::Hello { version: PROTOCOL_VERSION + 1, token: 0 }))
            .unwrap();
        coll.pump_at(t0).unwrap();
        assert_eq!(coll.stats().connections, 0);
        assert_eq!(coll.stats().refused, 1);
        assert!(matches!(
            coll.last_refusal(),
            Some(NetError::Handshake(HandshakeError::VersionMismatch { ours, theirs }))
                if *ours == PROTOCOL_VERSION && *theirs == PROTOCOL_VERSION + 1
        ));
        // The refusal is *delivered*: HelloAck with token 0 and the
        // server's version, so the client fails typed instead of timing
        // out.
        match read_frame(&mut wrong) {
            NetFrame::HelloAck { version, token, .. } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(token, 0);
            }
            other => panic!("expected refusal HelloAck, got {other:?}"),
        }

        // A peer whose first bytes don't even frame-decode.
        let mut garbage = connector.connect(4096);
        garbage.try_write(&[1u8, 0, 0, 0, 99]).unwrap();
        coll.pump_at(t0).unwrap();
        assert_eq!(coll.stats().refused, 2);
        assert!(matches!(
            coll.last_refusal(),
            Some(NetError::Handshake(HandshakeError::Garbage(_)))
        ));

        // A valid frame that isn't a Hello.
        let mut eager = connector.connect(4096);
        eager.try_write(&frame_bytes(&NetFrame::Ack { stream: 1, through_seq: 1 })).unwrap();
        coll.pump_at(t0).unwrap();
        assert_eq!(coll.stats().refused, 3);
        assert!(matches!(
            coll.last_refusal(),
            Some(NetError::Handshake(HandshakeError::NotHello("Ack")))
        ));
        // No refusal ever minted a connection.
        assert_eq!(coll.stats().connections, 0);
    }

    #[test]
    fn token_resume_rebinds_the_same_connection_without_reattach() {
        use crate::frame::PROTOCOL_VERSION;
        let cfg = NetConfig::default();
        let sess = crate::session::SessionConfig::default();
        let (mut coll, connector, store) = make_sessions(cfg, sess);
        let t0 = Instant::now();

        let mut client = connector.connect(4096);
        client
            .try_write(&frame_bytes(&NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 }))
            .unwrap();
        let mut tx = MuxSender::new(FixedCodec, 1, cfg);
        for i in 0..3 {
            tx.try_send_segment(9, &seg(i)).unwrap();
        }
        client.try_write(&tx.outbox().take()).unwrap();
        coll.pump_at(t0).unwrap();
        let token = coll.conn_stats(ConnId(1)).unwrap().token;
        assert_ne!(token, 0);
        let before = store.total_segments();
        assert!(before > 0, "first link's frames landed");

        // The link dies mid-session.
        client.sever();
        coll.pump_at(t0).unwrap();
        assert_eq!(coll.detached(), vec![ConnId(1)], "dead link detaches, session retained");

        // A fresh link presents the token: same ConnId, no reattach call,
        // and the HelloAck carries resume cursors.
        let mut resumed = connector.connect(4096);
        resumed
            .try_write(&frame_bytes(&NetFrame::Hello { version: PROTOCOL_VERSION, token }))
            .unwrap();
        // 0-RTT replay right behind the resume Hello.
        tx.on_reconnect();
        tx.finish_stream(9).unwrap();
        resumed.try_write(&tx.outbox().take()).unwrap();
        coll.pump_at(t0).unwrap();
        let stats = coll.stats();
        assert_eq!(stats.connections, 1, "resume rebinds; it does not mint a second conn");
        assert_eq!(stats.refused, 0);
        assert!(coll.detached().is_empty());
        match read_frame(&mut resumed) {
            NetFrame::HelloAck { token: t2, cursors, .. } => {
                assert_eq!(t2, token);
                assert_eq!(cursors.len(), 1, "one cursor per known stream");
                assert_eq!(cursors[0].stream, 9);
                assert!(cursors[0].through_seq > 0, "the cursor reflects applied frames");
            }
            other => panic!("expected resume HelloAck, got {other:?}"),
        }
        let log = store.stream_segments(StreamId(9)).unwrap();
        assert_eq!(log.len(), 3, "no loss, no duplication across the resume");
        assert!(stats.dup_drops > 0, "the replay was partially duplicate");
    }

    #[test]
    fn liveness_lapse_detaches_and_session_ttl_evicts() {
        use crate::frame::PROTOCOL_VERSION;
        use crate::session::HandshakeError;
        let cfg = NetConfig::default();
        let sess = crate::session::SessionConfig::default();
        let (mut coll, connector, _store) = make_sessions(cfg, sess);
        let t0 = Instant::now();

        let mut client = connector.connect(4096);
        client
            .try_write(&frame_bytes(&NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 }))
            .unwrap();
        coll.pump_at(t0).unwrap();
        assert_eq!(coll.stats().attached, 1);
        let token = coll.conn_stats(ConnId(1)).unwrap().token;

        // The link wedges silently: no bytes, no error. The liveness
        // deadline detaches it.
        let lapse = t0 + sess.liveness_timeout;
        coll.pump_at(lapse).unwrap();
        assert_eq!(coll.detached(), vec![ConnId(1)], "silent link declared dead by deadline");

        // Unclaimed past the TTL: the session is evicted outright.
        let expiry = lapse + sess.session_ttl;
        coll.pump_at(expiry).unwrap();
        let stats = coll.stats();
        assert_eq!(stats.connections, 0, "evicted sessions drop their state");
        assert_eq!(stats.evicted, 1);

        // Resuming with the evicted token is a typed refusal.
        let mut late = connector.connect(4096);
        late.try_write(&frame_bytes(&NetFrame::Hello { version: PROTOCOL_VERSION, token }))
            .unwrap();
        coll.pump_at(expiry).unwrap();
        assert!(matches!(
            coll.last_refusal(),
            Some(NetError::Handshake(HandshakeError::UnknownToken(t))) if *t == token
        ));
    }

    #[test]
    fn session_sender_establishes_heartbeats_and_sees_echoes() {
        use crate::session::{MemoryRedial, SessionConfig, SessionSender};
        let cfg = NetConfig::default();
        let sess = SessionConfig::default();
        let (mut coll, connector, _store) = make_sessions(cfg, sess);
        let t0 = Instant::now();
        let mut client =
            SessionSender::new(FixedCodec, 1, cfg, sess, MemoryRedial::new(connector, 4096), t0);
        client.pump_at(t0); // dial + Hello
        coll.pump_at(t0).unwrap(); // bind + HelloAck
        client.pump_at(t0); // absorb the ack
        assert!(client.is_established());
        assert_eq!(client.token(), coll.conn_stats(ConnId(1)).unwrap().token);
        assert_eq!(client.stats().established, 1);

        // Idle past the heartbeat interval: a probe goes out, the
        // collector echoes it, the sender counts the echo — the link is
        // audibly alive despite carrying no data.
        let t1 = t0 + sess.heartbeat_interval;
        client.pump_at(t1);
        coll.pump_at(t1).unwrap();
        client.pump_at(t1);
        assert_eq!(client.stats().heartbeats_sent, 1);
        assert_eq!(client.stats().echoes_seen, 1);
        assert_eq!(coll.conn_stats(ConnId(1)).unwrap().receiver.heartbeats, 1);
        assert!(client.is_established(), "a probed link stays established");
    }

    #[test]
    fn session_sender_gets_a_typed_version_mismatch_refusal() {
        use crate::frame::PROTOCOL_VERSION;
        use crate::session::{HandshakeError, MemoryRedial, SessionConfig, SessionSender};
        let cfg = NetConfig::default();
        let sess = SessionConfig::default();
        let (mut coll, connector, _store) = make_sessions(cfg, sess);
        let t0 = Instant::now();
        let future = SessionConfig { version: PROTOCOL_VERSION + 1, ..sess };
        let mut client =
            SessionSender::new(FixedCodec, 1, cfg, future, MemoryRedial::new(connector, 4096), t0);
        client.pump_at(t0);
        coll.pump_at(t0).unwrap();
        client.pump_at(t0);
        assert!(!client.is_established());
        assert!(matches!(
            client.failure(),
            Some(NetError::Handshake(HandshakeError::VersionMismatch { ours, theirs }))
                if *ours == PROTOCOL_VERSION + 1 && *theirs == PROTOCOL_VERSION
        ));
        assert_eq!(client.pump_at(t0), 0, "a refused session is terminal; no redial storm");
    }

    #[test]
    fn silent_pending_sockets_are_dropped_at_the_handshake_deadline() {
        use crate::session::HandshakeError;
        let cfg = NetConfig::default();
        let sess = crate::session::SessionConfig::default();
        let (mut coll, connector, _store) = make_sessions(cfg, sess);
        let t0 = Instant::now();
        let _mute = connector.connect(4096);
        coll.pump_at(t0).unwrap();
        assert_eq!(coll.pending_handshakes(), 1, "accepted but not yet identified");
        assert_eq!(coll.stats().connections, 0, "no ConnId before the Hello");
        coll.pump_at(t0 + sess.handshake_timeout).unwrap();
        assert_eq!(coll.pending_handshakes(), 0);
        assert_eq!(coll.stats().refused, 1);
        assert!(matches!(coll.last_refusal(), Some(NetError::Handshake(HandshakeError::Timeout))));
    }

    /// The reactor is a wake-up strategy, never semantics: the whole
    /// async collector round must behave identically under the portable
    /// poll loop and (on Linux) epoll.
    fn on_both_reactors(f: impl Fn(runtime::ReactorKind)) {
        f(runtime::ReactorKind::PollLoop);
        #[cfg(target_os = "linux")]
        f(runtime::ReactorKind::Epoll);
    }

    #[test]
    fn async_driver_spawns_a_task_per_connection() {
        on_both_reactors(|kind| {
            let cfg = NetConfig::default();
            let (coll, connector, store) = make(cfg);
            let coll = Rc::new(RefCell::new(coll));
            const CONNS: u64 = 4;
            // Sender threads dial in and push concurrently — the memory
            // connector is Send, so this exercises real cross-thread
            // wakes.
            let senders: Vec<_> = (0..CONNS)
                .map(|c| {
                    let connector = connector.clone();
                    std::thread::spawn(move || {
                        let mut link = connector.connect(512);
                        let mut tx = MuxSender::new(FixedCodec, 1, cfg);
                        for i in 0..5 {
                            tx.try_send_segment(c, &seg(i)).unwrap();
                        }
                        tx.finish_stream(c).unwrap();
                        let mut stalled = 0;
                        while !tx.all_acked() {
                            match pump_sender(&mut tx, &mut link) {
                                Ok(0) => {
                                    stalled += 1;
                                    assert!(stalled < 4000, "sender starved");
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                }
                                Ok(_) => stalled = 0,
                                Err(e) => panic!("sender link failed: {e}"),
                            }
                        }
                    })
                })
                .collect();
            runtime::block_on_with(
                kind,
                drive_collector(coll.clone(), |c| c.stats().segments == CONNS * 5),
            )
            .expect("collector");
            for s in senders {
                s.join().unwrap();
            }
            let snap = store.snapshot();
            assert_eq!(snap.streams.len(), CONNS as usize);
            assert_eq!(snap.total_segments, CONNS * 5);
            assert_eq!(coll.borrow().stats().connections, CONNS as usize);
        });
    }

    /// The session-mode async driver under both reactors: handshakes
    /// arrive through the accept task, the wedge-proof `Timer` waits
    /// keep liveness ticking, and a mid-run redial rebinds by token.
    #[test]
    fn async_session_driver_handshakes_and_resumes_on_both_reactors() {
        on_both_reactors(|kind| {
            let cfg = NetConfig::default();
            let sess = crate::session::SessionConfig::default();
            let (coll, connector, store) = make_sessions(cfg, sess);
            let coll = Rc::new(RefCell::new(coll));
            let sender = std::thread::spawn(move || {
                let mut tx = crate::session::SessionSender::new(
                    FixedCodec,
                    1,
                    cfg,
                    sess,
                    crate::session::MemoryRedial::new(connector, 512),
                    Instant::now(),
                );
                for i in 0..4 {
                    tx.mux_mut().try_send_segment(7, &seg(i)).unwrap();
                }
                let mut severed = false;
                let mut finned = false;
                let mut stalled = 0;
                loop {
                    let moved = tx.pump();
                    if let Some(e) = tx.failure() {
                        panic!("session failed: {e}");
                    }
                    // Once established, kill the link once: the machine
                    // must redial and resume by token on its own.
                    if tx.is_established() && !severed {
                        tx.redial().last_link().expect("dialed").sever();
                        severed = true;
                        continue;
                    }
                    if severed && tx.is_established() && tx.mux().all_acked() && !finned {
                        tx.mux_mut().finish_stream(7).unwrap();
                        finned = true;
                    }
                    if finned && tx.mux().is_idle() {
                        break;
                    }
                    if moved == 0 {
                        stalled += 1;
                        assert!(stalled < 20_000, "session sender starved");
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    } else {
                        stalled = 0;
                    }
                }
                tx.redial().dials()
            });
            runtime::block_on_with(
                kind,
                drive_collector(coll.clone(), |c| {
                    c.stats().connections == 1 && c.conn_complete(ConnId(1))
                }),
            )
            .expect("collector");
            let dials = sender.join().unwrap();
            assert!(dials >= 2, "the sever must have forced a redial, got {dials}");
            let stats = coll.borrow().stats();
            assert_eq!(stats.connections, 1, "the resume rebound the same conn");
            assert_eq!(store.snapshot().total_segments, 4);
        });
    }
}
