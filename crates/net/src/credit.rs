//! Per-stream credit flow control, in *cumulative offsets*.
//!
//! Both counters only ever grow — the shape QUIC's `MAX_STREAM_DATA`
//! uses, and the property that makes reconnect trivial: a grant or a
//! reservation applied twice (a replayed control frame, a replayed
//! `Data` frame) is a no-op, so neither side needs to reconcile "how
//! much was in flight" after a connection dies.
//!
//! * The **sender** holds a [`CreditWindow`]: `used` payload bytes sent
//!   since stream birth versus the `granted` cumulative budget. A send
//!   that would cross the budget is refused — surfaced to callers as
//!   [`NetError::Backpressure`](crate::NetError::Backpressure).
//! * The **receiver** holds a [`ReceiveWindow`]: `delivered` payload
//!   bytes applied to the demultiplexer. It keeps the sender's budget
//!   topped up to `delivered + window`, re-granting once half the window
//!   is consumed (batching grants keeps the control-frame overhead at
//!   ~2 frames per window, not per data frame).

/// Sender-side credit accounting for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditWindow {
    granted: u64,
    used: u64,
}

impl CreditWindow {
    /// A window with `initial` bytes implicitly granted (the
    /// protocol-constant initial budget both sides agree on).
    pub fn new(initial: u64) -> Self {
        Self { granted: initial, used: 0 }
    }

    /// Bytes still available to send.
    pub fn available(&self) -> u64 {
        self.granted - self.used
    }

    /// Cumulative bytes reserved so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Reserves `n` bytes if the budget covers them.
    #[must_use]
    pub fn try_reserve(&mut self, n: u64) -> bool {
        if self.used + n <= self.granted {
            self.used += n;
            true
        } else {
            false
        }
    }

    /// Applies a cumulative grant. Monotonic: a stale or replayed grant
    /// (`total` ≤ current) changes nothing.
    pub fn grant_to(&mut self, total: u64) {
        self.granted = self.granted.max(total);
    }
}

/// Receiver-side grant scheduling for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiveWindow {
    delivered: u64,
    granted: u64,
    window: u64,
}

impl ReceiveWindow {
    /// A window matching a sender's `CreditWindow::new(window)`.
    pub fn new(window: u64) -> Self {
        Self { delivered: 0, granted: window, window }
    }

    /// Records `n` payload bytes applied to the application.
    pub fn on_delivered(&mut self, n: u64) {
        self.delivered += n;
    }

    /// Cumulative bytes delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The grant to announce now, if one is due (less than half the
    /// window still granted ahead of delivery). Returns the new
    /// cumulative total and records it as announced.
    pub fn due_grant(&mut self) -> Option<u64> {
        if self.granted - self.delivered < self.window / 2 {
            self.granted = self.delivered + self.window;
            Some(self.granted)
        } else {
            None
        }
    }

    /// The current cumulative grant — what a reconnect refresh
    /// re-announces regardless of [`due_grant`](Self::due_grant)'s
    /// batching.
    pub fn current_grant(&self) -> u64 {
        self.granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_within_budget_then_refuse() {
        let mut w = CreditWindow::new(10);
        assert!(w.try_reserve(6));
        assert!(w.try_reserve(4));
        assert_eq!(w.available(), 0);
        assert!(!w.try_reserve(1), "budget exhausted");
        w.grant_to(15);
        assert!(w.try_reserve(5));
        assert!(!w.try_reserve(1));
    }

    #[test]
    fn grants_are_monotonic_and_replay_safe() {
        let mut w = CreditWindow::new(10);
        w.grant_to(100);
        w.grant_to(40); // stale replay
        assert_eq!(w.available(), 100);
        w.grant_to(100); // exact replay
        assert_eq!(w.available(), 100);
    }

    #[test]
    fn receive_window_batches_grants() {
        let mut r = ReceiveWindow::new(100);
        assert_eq!(r.due_grant(), None, "nothing consumed yet");
        r.on_delivered(40);
        assert_eq!(r.due_grant(), None, "60 > half the window still granted");
        r.on_delivered(20);
        assert_eq!(r.due_grant(), Some(160), "40 < 50 → top up to delivered + window");
        assert_eq!(r.due_grant(), None, "grant announced once");
        assert_eq!(r.current_grant(), 160);
    }

    #[test]
    fn sender_and_receiver_windows_agree_end_to_end() {
        let mut tx = CreditWindow::new(100);
        let mut rx = ReceiveWindow::new(100);
        let mut sent_total = 0u64;
        for _ in 0..50 {
            // Send 30 bytes whenever credit allows; deliver and maybe
            // re-grant on the other side.
            if tx.try_reserve(30) {
                sent_total += 30;
                rx.on_delivered(30);
                if let Some(total) = rx.due_grant() {
                    tx.grant_to(total);
                }
            }
        }
        assert_eq!(sent_total, tx.used());
        assert_eq!(sent_total, rx.delivered());
        assert!(sent_total >= 30 * 40, "flow keeps moving: sent {sent_total}");
    }
}
