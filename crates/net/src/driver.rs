//! Pumps: moving bytes between the sans-I/O endpoints and a [`Link`].
//!
//! The synchronous [`pump_sender`]/[`pump_receiver`] functions do one
//! non-blocking round each — read everything available, write
//! everything staged — and report progress; they are what the
//! deterministic tests call directly, in whatever interleaving they
//! want to probe. The async [`drive_sender`]/[`drive_receiver`] wrap
//! those rounds in runtime tasks: pump, and when nothing moved, suspend
//! on [`runtime::io_ready`] — parked on the link's fd where it has one
//! (kernel-precise under the epoll reactor), at bounded poll cadence
//! otherwise.

use std::cell::RefCell;
use std::io;

use pla_transport::wire::Codec;

use crate::frame::Outbox;
use crate::link::Link;
use crate::mux::MuxSender;
use crate::receiver::NetReceiver;
use crate::runtime;
use crate::NetError;

/// What can go wrong while pumping: the link died (reconnectable) or
/// the protocol itself failed (fatal).
#[derive(Debug)]
pub enum DriveError {
    /// The link failed; the session layer may reconnect and resume.
    Io(io::Error),
    /// The byte stream violated the protocol; reconnecting cannot help.
    Net(NetError),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "link error: {e}"),
            Self::Net(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for DriveError {}

impl From<NetError> for DriveError {
    fn from(e: NetError) -> Self {
        Self::Net(e)
    }
}

impl From<io::Error> for DriveError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

const READ_CHUNK: usize = 4096;

/// Writes staged bytes until the outbox empties or the link pushes
/// back. Returns bytes written.
pub(crate) fn pump_out<L: Link>(out: &mut Outbox, link: &mut L) -> io::Result<usize> {
    let mut written = 0;
    while !out.is_empty() {
        match link.try_write(out.as_bytes()) {
            Ok(n) => {
                out.consume(n);
                written += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(written)
}

/// Reads until the link runs dry, handing each chunk to `feed`.
/// Returns bytes read. A clean EOF (`Ok(0)`) surfaces as
/// `UnexpectedEof`: these sessions close by protocol (`Fin` + acks),
/// never by one side hanging up first.
pub(crate) fn pump_in<L: Link>(
    link: &mut L,
    mut feed: impl FnMut(&[u8]) -> Result<(), NetError>,
) -> Result<usize, DriveError> {
    let mut buf = [0u8; READ_CHUNK];
    let mut read = 0;
    loop {
        match link.try_read(&mut buf) {
            Ok(0) => {
                return Err(DriveError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-session",
                )))
            }
            Ok(n) => {
                feed(&buf[..n])?;
                read += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(read),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DriveError::Io(e)),
        }
    }
}

/// One non-blocking pump round for the sender: absorb inbound
/// `Ack`/`Credit` bytes, then push staged frames. Returns total bytes
/// moved (0 = no progress; wait for the reactor).
pub fn pump_sender<C: Codec, L: Link>(
    tx: &mut MuxSender<C>,
    link: &mut L,
) -> Result<usize, DriveError> {
    let read = pump_in(link, |bytes| tx.on_bytes(bytes))?;
    let written = pump_out(tx.outbox(), link)?;
    Ok(read + written)
}

/// One non-blocking pump round for the receiver: absorb inbound frames,
/// flush the round's batched `Ack`/`Credit` control
/// ([`NetReceiver::flush_control`] — one cumulative frame per touched
/// stream, however many `Data` frames the round applied), then push the
/// staged bytes. Returns total bytes moved.
pub fn pump_receiver<C: Codec, L: Link>(
    rx: &mut NetReceiver<C>,
    link: &mut L,
) -> Result<usize, DriveError> {
    let (read, written) = pump_receiver_split(rx, link)?;
    Ok(read + written)
}

/// [`pump_receiver`] with the read/written counts kept separate — the
/// session-mode collector refreshes a connection's liveness deadline
/// only when bytes actually *arrived*, not when this side merely wrote.
pub(crate) fn pump_receiver_split<C: Codec, L: Link>(
    rx: &mut NetReceiver<C>,
    link: &mut L,
) -> Result<(usize, usize), DriveError> {
    let read = pump_in(link, |bytes| rx.on_bytes(bytes))?;
    rx.flush_control();
    let written = pump_out(rx.outbox(), link)?;
    Ok((read, written))
}

/// The readiness to wait for after a round that moved nothing: always
/// reads; adds write interest only while bytes are actually staged (a
/// socket is almost always writable, so unconditional write interest
/// would turn an epoll sleep into a busy loop).
pub(crate) fn stall_interest(staged: usize) -> runtime::Interest {
    if staged > 0 {
        runtime::Interest::ReadWrite
    } else {
        runtime::Interest::Read
    }
}

/// Pumps the sender as an async task until `done(tx)` says the session
/// is over (typically: everything fed, finished, and
/// [`MuxSender::is_idle`]). A round that moves no bytes suspends on the
/// link's readiness source (kernel-precise under the epoll reactor;
/// bounded poll cadence otherwise).
pub async fn drive_sender<C: Codec, L: Link>(
    tx: &RefCell<MuxSender<C>>,
    link: &RefCell<L>,
    mut done: impl FnMut(&MuxSender<C>) -> bool,
) -> Result<(), DriveError> {
    loop {
        let moved = pump_sender(&mut tx.borrow_mut(), &mut *link.borrow_mut())?;
        if done(&tx.borrow()) {
            return Ok(());
        }
        if moved == 0 {
            let source = link.borrow().event_source();
            let interest = stall_interest(tx.borrow().staged_bytes());
            runtime::io_ready(source, interest).await;
        } else {
            runtime::yield_now().await;
        }
    }
}

/// Pumps the receiver as an async task until `done(rx)` says the
/// session is over (typically: every expected stream finished and
/// nothing staged).
pub async fn drive_receiver<C: Codec, L: Link>(
    rx: &RefCell<NetReceiver<C>>,
    link: &RefCell<L>,
    mut done: impl FnMut(&NetReceiver<C>) -> bool,
) -> Result<(), DriveError> {
    loop {
        let moved = pump_receiver(&mut rx.borrow_mut(), &mut *link.borrow_mut())?;
        if done(&rx.borrow()) {
            return Ok(());
        }
        if moved == 0 {
            let source = link.borrow().event_source();
            let interest = stall_interest(rx.borrow().staged_bytes());
            runtime::io_ready(source, interest).await;
        } else {
            runtime::yield_now().await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::MemoryLink;
    use crate::NetConfig;
    use pla_core::Segment;
    use pla_transport::wire::FixedCodec;

    fn seg(i: usize) -> Segment {
        let t = i as f64 * 10.0;
        Segment {
            t_start: t,
            x_start: [t].into(),
            t_end: t + 5.0,
            x_end: [t + 1.0].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    /// Sync pumps over a tiny-capacity link: partial writes everywhere,
    /// and the transfer still completes.
    #[test]
    fn sync_pumps_complete_over_a_tiny_pipe() {
        let (mut la, mut lb) = MemoryLink::pair(7);
        let cfg = NetConfig::default();
        let mut tx = MuxSender::new(FixedCodec, 1, cfg);
        let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
        for s in 0..4u64 {
            for i in 0..5 {
                tx.try_send_segment(s, &seg(i)).unwrap();
            }
            tx.finish_stream(s).unwrap();
        }
        let mut stalled = 0;
        while !(tx.is_idle() && rx.finished_streams().count() == 4 && rx.staged_bytes() == 0) {
            let moved =
                pump_sender(&mut tx, &mut la).unwrap() + pump_receiver(&mut rx, &mut lb).unwrap();
            stalled = if moved == 0 { stalled + 1 } else { 0 };
            assert!(stalled < 10, "transfer deadlocked");
        }
        let logs = rx.into_demux().into_segment_logs();
        assert_eq!(logs.len(), 4);
        for log in logs.values() {
            assert_eq!(log.len(), 5);
        }
    }

    /// The async drivers move the same session over the runtime.
    #[test]
    fn async_drivers_complete_a_session() {
        use std::rc::Rc;

        let (la, lb) = MemoryLink::pair(64);
        let cfg = NetConfig::default();
        let tx = Rc::new(RefCell::new(MuxSender::new(FixedCodec, 1, cfg)));
        {
            let mut tx = tx.borrow_mut();
            for s in 0..3u64 {
                for i in 0..4 {
                    tx.try_send_segment(s, &seg(i)).unwrap();
                }
            }
            tx.finish_all();
        }
        let logs = runtime::block_on({
            let tx = tx.clone();
            async move {
                let spawner = runtime::spawner();
                let la = Rc::new(RefCell::new(la));
                let lb = RefCell::new(lb);
                spawner.spawn(async move {
                    drive_sender(&tx, &la, |t| t.is_idle()).await.expect("sender");
                });
                // The receiver lives entirely in the root task.
                let rx = RefCell::new(NetReceiver::new(FixedCodec, 1, cfg));
                drive_receiver(&rx, &lb, |r| {
                    r.finished_streams().count() == 3 && r.staged_bytes() == 0
                })
                .await
                .expect("receiver");
                // Let the sender task observe its final acks.
                for _ in 0..50 {
                    runtime::yield_now().await;
                }
                rx.into_inner().into_demux().into_segment_logs()
            }
        });
        assert_eq!(logs.len(), 3);
        for log in logs.values() {
            assert_eq!(log.len(), 4);
        }
        assert!(tx.borrow().all_acked());
    }
}
