//! Length-delimited net frames.
//!
//! The byte stream between the two endpoints is a sequence of frames,
//! each `[u32 len LE][u8 kind][fields…]` where `len` counts everything
//! after the length prefix. Eleven kinds exist:
//!
//! | Kind | Direction | Carries |
//! |---|---|---|
//! | [`NetFrame::Data`] | sender → receiver | one stream's `pla-transport` codec bytes (led by that stream's `StreamFrame` header) plus a per-stream sequence number |
//! | [`NetFrame::Ack`] | receiver → sender | cumulative highest applied sequence number per stream |
//! | [`NetFrame::Credit`] | receiver → sender | cumulative payload-byte grant per stream (flow control) |
//! | [`NetFrame::Fin`] | sender → receiver | end of one stream, with its final sequence number |
//! | [`NetFrame::Hello`] | sender → receiver | protocol version + session token (0 = new session); **must** be the first frame of a session-mode connection |
//! | [`NetFrame::HelloAck`] | receiver → sender | protocol version + issued/confirmed token (0 = refused) + one [`ResumeCursor`] per known stream |
//! | [`NetFrame::Heartbeat`] | either | liveness probe with a sequence number; the receiver echoes it back |
//! | [`NetFrame::QueryReq`] | reader → query server | one query, opaque `pla-query` wire bytes, tagged with a client-chosen `req_id` |
//! | [`NetFrame::QueryResp`] | query server → reader | the matching result (or typed error), echoing the request's `req_id` |
//! | [`NetFrame::EpochsReq`] | reader → query server | cache-validation probe for the store's per-shard epochs |
//! | [`NetFrame::EpochsResp`] | query server → reader | the store's per-shard epoch counters, echoing the probe's `req_id` |
//!
//! Frames never split messages: a `Data` frame's payload is a
//! self-contained codec unit (the sender resets its codec per frame), so
//! a replayed frame decodes identically whenever it arrives — the
//! property the reconnect protocol rests on. The session frames keep
//! the same idempotence discipline: a duplicated `Hello` or `Heartbeat`
//! is harmless, and a replayed `HelloAck` carrying the same token is a
//! no-op at the sender.

use bytes::{BufMut, Bytes, BytesMut};

/// The wire-protocol version this build speaks. Carried by every
/// [`NetFrame::Hello`]/[`NetFrame::HelloAck`]; the receiver refuses any
/// other value with a typed
/// [`HandshakeError::VersionMismatch`](crate::session::HandshakeError::VersionMismatch)
/// instead of guessing at frame semantics it was never built for.
///
/// History: 1 = ingest frames only (Data/Ack/Credit/Fin + session);
/// 2 = adds the query frames (`QueryReq`/`QueryResp`/`EpochsReq`/
/// `EpochsResp`). A version-1 speaker cannot decode kind bytes 8–11,
/// so the bump makes old and new builds refuse each other cleanly at
/// the handshake instead of failing mid-stream.
pub const PROTOCOL_VERSION: u16 = 2;

/// One stream's resume position, carried by [`NetFrame::HelloAck`]: the
/// receiver's cumulative ack point and cumulative credit grant, i.e.
/// everything a replaying sender needs to trim its replay buffer and
/// resume sending — the role `ResumeCursor` plays in the rt-protocol
/// forwarder handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeCursor {
    /// The stream the cursor describes.
    pub stream: u64,
    /// Highest `Data` sequence number durably applied (cumulative ack).
    pub through_seq: u64,
    /// Cumulative payload-byte credit grant for the stream.
    pub granted_total: u64,
}

/// One frame of the multiplexed connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFrame {
    /// A chunk of one stream's wire messages.
    Data {
        /// The stream the payload belongs to.
        stream: u64,
        /// Per-stream sequence number, starting at 1.
        seq: u64,
        /// `pla-transport` codec bytes, beginning with the stream's own
        /// `StreamFrame` header.
        payload: Bytes,
    },
    /// Cumulative acknowledgement: every `Data` frame of `stream` with
    /// `seq <= through_seq` has been applied.
    Ack {
        /// The acknowledged stream.
        stream: u64,
        /// Highest applied sequence number.
        through_seq: u64,
    },
    /// Cumulative flow-control grant: the sender may have sent at most
    /// `granted_total` payload bytes on `stream` since stream birth.
    Credit {
        /// The granted stream.
        stream: u64,
        /// Absolute cumulative byte budget (monotonically increasing).
        granted_total: u64,
    },
    /// The stream is complete; no `Data` frame with `seq > final_seq`
    /// will ever exist.
    Fin {
        /// The finished stream.
        stream: u64,
        /// Sequence number of its last `Data` frame (0 if none).
        final_seq: u64,
    },
    /// Session open/resume request. Must be the first frame a
    /// session-mode connection carries; anything else is a handshake
    /// violation that quarantines only that connection.
    Hello {
        /// The sender's wire-protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// Session token from a previous [`NetFrame::HelloAck`], or 0
        /// to request a fresh session.
        token: u64,
    },
    /// Handshake reply: the session is bound (nonzero `token`) or
    /// refused (`token == 0`), with the receiver's resume cursors so a
    /// resuming sender can trim its replay buffer before retransmitting.
    HelloAck {
        /// The receiver's wire-protocol version.
        version: u16,
        /// Issued or confirmed session token; 0 means refused.
        token: u64,
        /// One cursor per stream the receiver has state for (empty for
        /// a fresh session).
        cursors: Vec<ResumeCursor>,
    },
    /// Liveness probe. The receiver echoes each heartbeat back with the
    /// same sequence number; either side treats a quiet link as dead
    /// once its liveness deadline passes.
    Heartbeat {
        /// Sender-chosen sequence number, echoed verbatim.
        seq: u64,
    },
    /// One query from a remote reader. The body is opaque at this layer
    /// (`pla-query`'s wire codec owns it) so the frame format never
    /// changes when the query language grows.
    QueryReq {
        /// Client-chosen correlation id; the server echoes it verbatim
        /// on the matching [`NetFrame::QueryResp`]. Responses may be
        /// reordered or duplicated across redials — the id, not arrival
        /// order, pairs request with response.
        req_id: u64,
        /// `pla-query` wire-codec bytes describing the query.
        body: Bytes,
    },
    /// The server's answer to one [`NetFrame::QueryReq`]. Carries a
    /// result *or* a typed query error — both ride the opaque body; a
    /// well-formed request never kills the connection.
    QueryResp {
        /// The `req_id` of the request being answered.
        req_id: u64,
        /// `pla-query` wire-codec bytes describing the result or error.
        body: Bytes,
    },
    /// Cache-validation probe: asks the server for its store's
    /// per-shard epoch counters so the client can invalidate exactly
    /// the shards that moved.
    EpochsReq {
        /// Client-chosen correlation id, echoed on the response.
        req_id: u64,
    },
    /// The store's per-shard epochs. Each counter is monotone under a
    /// fixed server; a client observing any epoch *decrease* must drop
    /// its whole cache (the server was replaced).
    EpochsResp {
        /// The `req_id` of the probe being answered.
        req_id: u64,
        /// One monotone append counter per store shard.
        epochs: Vec<u64>,
    },
}

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_CREDIT: u8 = 3;
const KIND_FIN: u8 = 4;
const KIND_HELLO: u8 = 5;
const KIND_HELLO_ACK: u8 = 6;
const KIND_HEARTBEAT: u8 = 7;
const KIND_QUERY_REQ: u8 = 8;
const KIND_QUERY_RESP: u8 = 9;
const KIND_EPOCHS_REQ: u8 = 10;
const KIND_EPOCHS_RESP: u8 = 11;

/// Bytes per [`ResumeCursor`] in a `HelloAck` body.
const CURSOR_BYTES: usize = 24;

/// Framing-layer errors. Any of these is fatal for the connection (the
/// byte stream is no longer trustworthy); the session layer reconnects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Unknown kind byte.
    BadKind(u8),
    /// The length prefix exceeds the configured maximum — a corrupt
    /// stream or a hostile peer; decoding must not buffer it.
    Oversized {
        /// Declared frame length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// The declared length does not match the kind's field layout.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadKind(k) => write!(f, "unknown frame kind {k}"),
            Self::Oversized { len, max } => write!(f, "frame length {len} exceeds maximum {max}"),
            Self::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn put_u32_le(out: &mut BytesMut, n: u32) {
    out.put_slice(&n.to_le_bytes());
}

/// Encodes `frame` onto `out`, returning the encoded length.
pub fn encode(frame: &NetFrame, out: &mut BytesMut) -> usize {
    let before = out.len();
    match frame {
        NetFrame::Data { stream, seq, payload } => {
            put_u32_le(out, (1 + 16 + payload.len()) as u32);
            out.put_u8(KIND_DATA);
            out.put_u64_le(*stream);
            out.put_u64_le(*seq);
            out.put_slice(payload);
        }
        NetFrame::Ack { stream, through_seq } => {
            put_u32_le(out, 1 + 16);
            out.put_u8(KIND_ACK);
            out.put_u64_le(*stream);
            out.put_u64_le(*through_seq);
        }
        NetFrame::Credit { stream, granted_total } => {
            put_u32_le(out, 1 + 16);
            out.put_u8(KIND_CREDIT);
            out.put_u64_le(*stream);
            out.put_u64_le(*granted_total);
        }
        NetFrame::Fin { stream, final_seq } => {
            put_u32_le(out, 1 + 16);
            out.put_u8(KIND_FIN);
            out.put_u64_le(*stream);
            out.put_u64_le(*final_seq);
        }
        NetFrame::Hello { version, token } => {
            put_u32_le(out, 1 + 2 + 8);
            out.put_u8(KIND_HELLO);
            out.put_slice(&version.to_le_bytes());
            out.put_u64_le(*token);
        }
        NetFrame::HelloAck { version, token, cursors } => {
            put_u32_le(out, (1 + 2 + 8 + 4 + cursors.len() * CURSOR_BYTES) as u32);
            out.put_u8(KIND_HELLO_ACK);
            out.put_slice(&version.to_le_bytes());
            out.put_u64_le(*token);
            put_u32_le(out, cursors.len() as u32);
            for c in cursors {
                out.put_u64_le(c.stream);
                out.put_u64_le(c.through_seq);
                out.put_u64_le(c.granted_total);
            }
        }
        NetFrame::Heartbeat { seq } => {
            put_u32_le(out, 1 + 8);
            out.put_u8(KIND_HEARTBEAT);
            out.put_u64_le(*seq);
        }
        NetFrame::QueryReq { req_id, body } => {
            put_u32_le(out, (1 + 8 + body.len()) as u32);
            out.put_u8(KIND_QUERY_REQ);
            out.put_u64_le(*req_id);
            out.put_slice(body);
        }
        NetFrame::QueryResp { req_id, body } => {
            put_u32_le(out, (1 + 8 + body.len()) as u32);
            out.put_u8(KIND_QUERY_RESP);
            out.put_u64_le(*req_id);
            out.put_slice(body);
        }
        NetFrame::EpochsReq { req_id } => {
            put_u32_le(out, 1 + 8);
            out.put_u8(KIND_EPOCHS_REQ);
            out.put_u64_le(*req_id);
        }
        NetFrame::EpochsResp { req_id, epochs } => {
            put_u32_le(out, (1 + 8 + 4 + epochs.len() * 8) as u32);
            out.put_u8(KIND_EPOCHS_RESP);
            out.put_u64_le(*req_id);
            put_u32_le(out, epochs.len() as u32);
            for e in epochs {
                out.put_u64_le(*e);
            }
        }
    }
    out.len() - before
}

/// Incremental frame decoder: feed arbitrary byte chunks, pull complete
/// frames. Bytes of a partial frame wait in the accumulator until the
/// rest arrives.
///
/// Deliberately no `Default`: a decoder needs a real `max_frame` bound
/// (a zero bound would reject every frame as oversized).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max_frame: u32,
}

impl FrameDecoder {
    /// Creates a decoder enforcing `max_frame` as the largest accepted
    /// length prefix.
    pub fn new(max_frame: u32) -> Self {
        Self { buf: Vec::new(), pos: 0, max_frame }
    }

    /// Appends raw link bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim consumed prefix once it dominates.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decodable into a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Discards any partially received frame — called when a connection
    /// dies mid-frame and a fresh link will restart the byte stream.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// Hands back every buffered-but-undecoded byte and empties the
    /// accumulator. The session handshake uses this to forward bytes
    /// that followed a `Hello` in the same read to the connection's own
    /// receiver once the session is bound.
    pub fn take_remaining(&mut self) -> Vec<u8> {
        let rest = self.buf.split_off(self.pos.min(self.buf.len()));
        self.buf.clear();
        self.pos = 0;
        rest
    }

    fn read_u64(body: &[u8], at: usize) -> u64 {
        u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"))
    }

    /// Decodes the next complete frame, if a whole one is buffered.
    pub fn try_next(&mut self) -> Result<Option<NetFrame>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes"));
        if len > self.max_frame {
            return Err(FrameError::Oversized { len, max: self.max_frame });
        }
        if len < 1 {
            return Err(FrameError::Malformed("zero-length frame"));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let body = &avail[4..total];
        let kind = body[0];
        let frame = match kind {
            KIND_DATA => {
                if body.len() < 17 {
                    return Err(FrameError::Malformed("Data frame shorter than its header"));
                }
                NetFrame::Data {
                    stream: Self::read_u64(body, 1),
                    seq: Self::read_u64(body, 9),
                    payload: Bytes::from(body[17..].to_vec()),
                }
            }
            KIND_ACK | KIND_CREDIT | KIND_FIN => {
                if body.len() != 17 {
                    return Err(FrameError::Malformed("control frame must be exactly 17 bytes"));
                }
                let stream = Self::read_u64(body, 1);
                let value = Self::read_u64(body, 9);
                match kind {
                    KIND_ACK => NetFrame::Ack { stream, through_seq: value },
                    KIND_CREDIT => NetFrame::Credit { stream, granted_total: value },
                    _ => NetFrame::Fin { stream, final_seq: value },
                }
            }
            KIND_HELLO => {
                if body.len() != 11 {
                    return Err(FrameError::Malformed("Hello frame must be exactly 11 bytes"));
                }
                NetFrame::Hello {
                    version: u16::from_le_bytes(body[1..3].try_into().expect("2 bytes")),
                    token: Self::read_u64(body, 3),
                }
            }
            KIND_HELLO_ACK => {
                if body.len() < 15 {
                    return Err(FrameError::Malformed("HelloAck frame shorter than its header"));
                }
                let version = u16::from_le_bytes(body[1..3].try_into().expect("2 bytes"));
                let token = Self::read_u64(body, 3);
                let n = u32::from_le_bytes(body[11..15].try_into().expect("4 bytes")) as usize;
                if body.len() != 15 + n * CURSOR_BYTES {
                    return Err(FrameError::Malformed(
                        "HelloAck cursor count disagrees with length",
                    ));
                }
                let cursors = (0..n)
                    .map(|i| {
                        let at = 15 + i * CURSOR_BYTES;
                        ResumeCursor {
                            stream: Self::read_u64(body, at),
                            through_seq: Self::read_u64(body, at + 8),
                            granted_total: Self::read_u64(body, at + 16),
                        }
                    })
                    .collect();
                NetFrame::HelloAck { version, token, cursors }
            }
            KIND_HEARTBEAT => {
                if body.len() != 9 {
                    return Err(FrameError::Malformed("Heartbeat frame must be exactly 9 bytes"));
                }
                NetFrame::Heartbeat { seq: Self::read_u64(body, 1) }
            }
            KIND_QUERY_REQ | KIND_QUERY_RESP => {
                if body.len() < 9 {
                    return Err(FrameError::Malformed("query frame shorter than its header"));
                }
                let req_id = Self::read_u64(body, 1);
                let payload = Bytes::from(body[9..].to_vec());
                if kind == KIND_QUERY_REQ {
                    NetFrame::QueryReq { req_id, body: payload }
                } else {
                    NetFrame::QueryResp { req_id, body: payload }
                }
            }
            KIND_EPOCHS_REQ => {
                if body.len() != 9 {
                    return Err(FrameError::Malformed("EpochsReq frame must be exactly 9 bytes"));
                }
                NetFrame::EpochsReq { req_id: Self::read_u64(body, 1) }
            }
            KIND_EPOCHS_RESP => {
                if body.len() < 13 {
                    return Err(FrameError::Malformed("EpochsResp frame shorter than its header"));
                }
                let req_id = Self::read_u64(body, 1);
                let n = u32::from_le_bytes(body[9..13].try_into().expect("4 bytes")) as usize;
                if body.len() != 13 + n * 8 {
                    return Err(FrameError::Malformed(
                        "EpochsResp shard count disagrees with length",
                    ));
                }
                let epochs = (0..n).map(|i| Self::read_u64(body, 13 + i * 8)).collect();
                NetFrame::EpochsResp { req_id, epochs }
            }
            other => return Err(FrameError::BadKind(other)),
        };
        self.pos += total;
        Ok(Some(frame))
    }
}

/// Staged outbound bytes: whole frames are appended, the link drains
/// from the front (partial writes allowed). The same offset-compaction
/// scheme as [`FrameDecoder`].
///
/// Frame boundaries are tracked so callers can tell when the write
/// position sits *inside* a frame — once a frame's prefix has entered
/// the wire, its remaining bytes must go out before any other frame or
/// the peer's decoder desyncs mid-frame.
#[derive(Debug, Default)]
pub struct Outbox {
    buf: Vec<u8>,
    pos: usize,
    /// Lengths of the staged units not yet fully written; the head may
    /// be partially consumed by `head_written` bytes.
    frame_lens: std::collections::VecDeque<usize>,
    head_written: usize,
}

impl Outbox {
    /// Appends encoded frame bytes (one whole frame per call).
    pub fn stage(&mut self, bytes: &[u8]) {
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        self.frame_lens.push_back(bytes.len());
    }

    /// Bytes not yet handed to the link.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything staged has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// The unwritten bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Marks `n` leading bytes as written.
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.pending());
        self.pos += n;
        self.head_written += n;
        while let Some(&len) = self.frame_lens.front() {
            if self.head_written >= len {
                self.head_written -= len;
                self.frame_lens.pop_front();
            } else {
                break;
            }
        }
    }

    /// The unwritten remainder of a frame whose prefix already entered
    /// the wire, if the write position sits mid-frame. Any rebuild of
    /// this outbox must emit these bytes first to keep the peer's
    /// decoder framed.
    pub fn partial_head(&self) -> Option<&[u8]> {
        if self.head_written == 0 {
            return None;
        }
        let remaining =
            self.frame_lens.front().expect("written bytes imply a head frame") - self.head_written;
        Some(&self.buf[self.pos..self.pos + remaining])
    }

    /// Takes every pending byte at once (manual pumping, tests).
    pub fn take(&mut self) -> Vec<u8> {
        let out = self.buf.split_off(self.pos.min(self.buf.len()));
        self.buf.clear();
        self.pos = 0;
        self.frame_lens.clear();
        self.head_written = 0;
        out
    }

    /// Discards everything staged (a dead link will never receive it;
    /// the reconnect path restages what still matters).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.frame_lens.clear();
        self.head_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<NetFrame> {
        vec![
            NetFrame::Data { stream: 7, seq: 1, payload: Bytes::from(vec![9, 8, 7]) },
            NetFrame::Ack { stream: 7, through_seq: 1 },
            NetFrame::Credit { stream: 7, granted_total: 65536 },
            NetFrame::Data { stream: u64::MAX, seq: 2, payload: Bytes::from(vec![]) },
            NetFrame::Fin { stream: 7, final_seq: 2 },
            NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 },
            NetFrame::Hello { version: 9, token: u64::MAX },
            NetFrame::HelloAck { version: PROTOCOL_VERSION, token: 0, cursors: vec![] },
            NetFrame::HelloAck {
                version: PROTOCOL_VERSION,
                token: 0xDEAD_BEEF,
                cursors: vec![
                    ResumeCursor { stream: 3, through_seq: 12, granted_total: 4096 },
                    ResumeCursor { stream: u64::MAX, through_seq: 0, granted_total: 0 },
                ],
            },
            NetFrame::Heartbeat { seq: 41 },
            NetFrame::QueryReq { req_id: 1, body: Bytes::from(vec![1, 2, 3, 4]) },
            NetFrame::QueryReq { req_id: u64::MAX, body: Bytes::from(vec![]) },
            NetFrame::QueryResp { req_id: 1, body: Bytes::from(vec![0xFF; 32]) },
            NetFrame::EpochsReq { req_id: 9 },
            NetFrame::EpochsResp { req_id: 9, epochs: vec![] },
            NetFrame::EpochsResp { req_id: 10, epochs: vec![0, 3, u64::MAX] },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = BytesMut::new();
        for f in sample_frames() {
            encode(&f, &mut buf);
        }
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&buf);
        for want in sample_frames() {
            assert_eq!(dec.try_next().unwrap().unwrap(), want);
        }
        assert_eq!(dec.try_next().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Ack { stream: 3, through_seq: 9 }, &mut buf);
        let mut dec = FrameDecoder::new(1024);
        for (i, &b) in buf.iter().enumerate() {
            dec.extend(&[b]);
            let got = dec.try_next().unwrap();
            if i + 1 < buf.len() {
                assert_eq!(got, None, "byte {i} must not complete the frame");
            } else {
                assert_eq!(got, Some(NetFrame::Ack { stream: 3, through_seq: 9 }));
            }
        }
    }

    #[test]
    fn oversized_and_bad_kind_are_typed_errors() {
        let mut dec = FrameDecoder::new(16);
        dec.extend(&100u32.to_le_bytes());
        assert_eq!(dec.try_next(), Err(FrameError::Oversized { len: 100, max: 16 }));

        let mut dec = FrameDecoder::new(1024);
        dec.extend(&1u32.to_le_bytes());
        dec.extend(&[99u8]);
        assert_eq!(dec.try_next(), Err(FrameError::BadKind(99)));
    }

    #[test]
    fn malformed_control_length_is_rejected() {
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&2u32.to_le_bytes());
        dec.extend(&[super::KIND_ACK, 0]);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn malformed_session_frames_are_rejected() {
        // Hello with a truncated token.
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&5u32.to_le_bytes());
        dec.extend(&[super::KIND_HELLO, 1, 0, 0, 0]);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));

        // HelloAck whose cursor count promises more cursors than the
        // frame carries.
        let mut dec = FrameDecoder::new(1024);
        let mut body = vec![super::KIND_HELLO_ACK, 1, 0];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&3u32.to_le_bytes()); // claims 3 cursors, has 0
        dec.extend(&(body.len() as u32).to_le_bytes());
        dec.extend(&body);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));

        // Heartbeat with extra trailing bytes.
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&10u32.to_le_bytes());
        dec.extend(&[super::KIND_HEARTBEAT, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn malformed_query_frames_are_rejected() {
        // QueryReq with a truncated req_id.
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&5u32.to_le_bytes());
        dec.extend(&[super::KIND_QUERY_REQ, 1, 2, 3, 4]);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));

        // EpochsReq with trailing bytes.
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&10u32.to_le_bytes());
        dec.extend(&[super::KIND_EPOCHS_REQ, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));

        // EpochsResp whose shard count promises more epochs than the
        // frame carries.
        let mut dec = FrameDecoder::new(1024);
        let mut body = vec![super::KIND_EPOCHS_RESP];
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&4u32.to_le_bytes()); // claims 4 epochs, has 0
        dec.extend(&(body.len() as u32).to_le_bytes());
        dec.extend(&body);
        assert!(matches!(dec.try_next(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn take_remaining_hands_back_undecoded_bytes() {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 }, &mut buf);
        let mark = buf.len();
        encode(&NetFrame::Data { stream: 1, seq: 1, payload: Bytes::from(vec![5, 6]) }, &mut buf);
        encode(&NetFrame::Ack { stream: 1, through_seq: 1 }, &mut buf);

        let mut dec = FrameDecoder::new(1024);
        dec.extend(&buf);
        assert!(matches!(dec.try_next().unwrap(), Some(NetFrame::Hello { .. })));
        // Everything after the decoded Hello comes back verbatim so the
        // handshake can forward it to the bound receiver.
        let rest = dec.take_remaining();
        assert_eq!(rest, &buf[mark..]);
        assert_eq!(dec.pending(), 0);

        // The leftovers decode cleanly through a fresh decoder.
        let mut rx = FrameDecoder::new(1024);
        rx.extend(&rest);
        assert!(matches!(rx.try_next().unwrap(), Some(NetFrame::Data { .. })));
        assert!(matches!(rx.try_next().unwrap(), Some(NetFrame::Ack { .. })));
        assert_eq!(rx.try_next().unwrap(), None);
    }

    #[test]
    fn reset_discards_partial_frames() {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Fin { stream: 1, final_seq: 4 }, &mut buf);
        let mut dec = FrameDecoder::new(1024);
        dec.extend(&buf[..buf.len() - 3]);
        assert_eq!(dec.try_next().unwrap(), None);
        assert!(dec.pending() > 0);
        dec.reset();
        assert_eq!(dec.pending(), 0);
        // A fresh, complete frame decodes cleanly after the reset.
        dec.extend(&buf);
        assert_eq!(dec.try_next().unwrap(), Some(NetFrame::Fin { stream: 1, final_seq: 4 }));
    }

    #[test]
    fn outbox_stages_consumes_and_compacts() {
        let mut out = Outbox::default();
        out.stage(b"abc");
        out.stage(b"def");
        assert_eq!(out.pending(), 6);
        assert_eq!(out.as_bytes(), b"abcdef");
        out.consume(4);
        assert_eq!(out.as_bytes(), b"ef");
        let rest = out.take();
        assert_eq!(rest, b"ef");
        assert!(out.is_empty());
        // Compaction keeps memory bounded under sustained traffic.
        for _ in 0..5000 {
            out.stage(&[7u8; 8]);
            out.consume(8);
        }
        assert!(out.is_empty());
        assert!(out.buf.len() < 16 * 1024, "outbox must compact, got {}", out.buf.len());
    }

    #[test]
    fn accumulator_compacts_without_losing_data() {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Credit { stream: 2, granted_total: 7 }, &mut buf);
        let mut dec = FrameDecoder::new(1024);
        for _ in 0..2000 {
            dec.extend(&buf);
            assert!(dec.try_next().unwrap().is_some());
        }
        assert_eq!(dec.pending(), 0);
        assert!(dec.buf.len() < 16 * 1024, "accumulator must compact, got {}", dec.buf.len());
    }
}
