//! # pla-net — async multiplexed transport for PLA segment streams
//!
//! The paper's transmitter/receiver model (§1–2) assumes one reliable
//! point-to-point link per stream. A deployment serving millions of
//! streams cannot afford that: many transmitters share few connections,
//! and the transport must multiplex them with explicit flow control and
//! recovery. This crate is that layer:
//!
//! * [`runtime`] — a minimal vendored-style futures runtime (same
//!   offline policy as `vendor/`): a single-threaded executor with a
//!   *poll-loop reactor* over non-blocking I/O, timers, and `block_on`.
//!   No external dependencies.
//! * [`link`] — the byte-pipe abstraction the transport runs over:
//!   [`MemoryLink`] (in-process, capacity-bounded, severable — the
//!   deterministic test substrate) and [`TcpLink`] (non-blocking
//!   `std::net::TcpStream`).
//! * [`frame`] — length-delimited net frames (`Data`/`Ack`/`Credit`/
//!   `Fin`) wrapping `pla-transport`'s wire encoding; each `Data` frame
//!   carries one stream's messages behind its `StreamFrame` header, plus
//!   a per-stream sequence number.
//! * [`credit`] — cumulative-offset per-stream flow control (the QUIC
//!   `MAX_STREAM_DATA` shape): the receiver grants an absolute byte
//!   budget per stream, the sender never exceeds it, and a saturated
//!   stream surfaces [`NetError::Backpressure`] to the caller — the same
//!   contract as `pla_ingest::IngestHandle::try_push`.
//! * [`MuxSender`] / [`NetReceiver`] — the two connection endpoints as
//!   *sans-I/O* state machines: bytes in, bytes out, no sockets inside,
//!   so every protocol path is unit-testable deterministically. The
//!   receiver feeds `pla_transport::StreamDemux`, which rebuilds one
//!   segment log per stream.
//! * Reconnect — both endpoints survive losing their link: the sender
//!   retains un-acknowledged frames and replays them on
//!   [`MuxSender::on_reconnect`]; the receiver drops replayed duplicates
//!   by sequence number ([`StreamDemux::consume_sequenced`](pla_transport::StreamDemux::consume_sequenced)) and
//!   re-announces its ack/credit state, so the reconstruction is
//!   byte-identical to an uninterrupted run.
//! * [`uplink`] — the `pla-ingest` integration: an engine's live segment
//!   tap flows straight out over one multiplexed connection.
//!
//! ```
//! use bytes::BytesMut;
//! use pla_core::Segment;
//! use pla_net::{MuxSender, NetConfig, NetReceiver};
//! use pla_transport::wire::FixedCodec;
//!
//! let cfg = NetConfig::default();
//! let mut tx = MuxSender::new(FixedCodec, 1, cfg);
//! let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
//! let seg = Segment {
//!     t_start: 0.0,
//!     x_start: [1.0].into(),
//!     t_end: 4.0,
//!     x_end: [5.0].into(),
//!     connected: false,
//!     n_points: 5,
//!     new_recordings: 2,
//! };
//! tx.try_send_segment(7, &seg).unwrap();
//! tx.finish_stream(7).unwrap();
//! // A lossless in-memory hop: sender bytes → receiver, acks back.
//! rx.on_bytes(&tx.take_staged()).unwrap();
//! tx.on_bytes(&rx.take_staged()).unwrap();
//! assert!(tx.all_acked());
//! assert_eq!(rx.finished_streams().count(), 1);
//! assert_eq!(rx.into_demux().into_segment_logs()[&7].len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod collector;
pub mod credit;
pub mod driver;
pub mod frame;
pub mod link;
pub mod listen;
mod mux;
mod receiver;
pub mod runtime;
pub mod session;
#[cfg(feature = "test-util")]
pub mod testutil;
pub mod uplink;

pub use collector::{drive_collector, Collector, CollectorStats, ConnId, ConnStats};
pub use link::{Link, MemoryLink, TcpLink};
pub use listen::{Acceptor, MemoryAcceptor, MemoryConnector, TcpAcceptor};
pub use mux::{MuxSender, SendStreamStats};
pub use receiver::{NetReceiver, ReceiverStats};
pub use session::{HandshakeError, MemoryRedial, Redial, SessionConfig, SessionSender, TcpRedial};

use crate::frame::FrameError;
use pla_transport::ReceiveError;

/// Connection-level configuration shared by both endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Initial (and steady-state) per-stream credit window in payload
    /// bytes. Both sides must agree on it: the sender starts with this
    /// budget implicitly granted, and the receiver keeps topping the
    /// grant up to `delivered + window` as it consumes.
    pub window: u64,
    /// Maximum accepted frame length in bytes (guards the decoder
    /// against a corrupt or hostile length prefix).
    pub max_frame: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { window: 64 * 1024, max_frame: 1024 * 1024 }
    }
}

/// Errors surfaced by the transport endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The stream's credit window cannot cover this payload right now;
    /// retry after the receiver grants more (or shed load), exactly like
    /// `pla_ingest::IngestError::Backpressure`.
    Backpressure,
    /// The stream was already finished with
    /// [`MuxSender::finish_stream`]; no more payload may follow.
    Finished(u64),
    /// The peer sent a frame kind this endpoint never accepts (e.g.
    /// `Data` arriving at the sender).
    UnexpectedFrame(&'static str),
    /// A `Fin` arrived before every one of the stream's `Data` frames
    /// was applied — impossible on an ordered connection unless frames
    /// were lost.
    IncompleteFin {
        /// The stream being finished.
        stream: u64,
        /// The sender's declared final sequence number.
        final_seq: u64,
        /// The highest sequence number actually applied.
        applied: u64,
    },
    /// Framing-layer failure (bad kind byte, oversized length prefix).
    Frame(FrameError),
    /// Demultiplexer failure (wire decode, protocol order, sequence
    /// gap).
    Receive(ReceiveError),
    /// Session handshake failure — version mismatch, a first frame that
    /// was not a valid `Hello`, or an unknown/quarantined session token.
    /// Quarantines only the offending connection.
    Handshake(HandshakeError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Backpressure => write!(f, "stream credit exhausted; retry or shed load"),
            Self::Finished(s) => write!(f, "stream#{s} is finished; no more payload may follow"),
            Self::UnexpectedFrame(what) => write!(f, "unexpected frame at this endpoint: {what}"),
            Self::IncompleteFin { stream, final_seq, applied } => write!(
                f,
                "stream#{stream}: Fin declares final seq {final_seq} but only {applied} applied"
            ),
            Self::Frame(e) => write!(f, "framing error: {e}"),
            Self::Receive(e) => write!(f, "receive error: {e}"),
            Self::Handshake(e) => write!(f, "handshake error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

impl From<HandshakeError> for NetError {
    fn from(e: HandshakeError) -> Self {
        Self::Handshake(e)
    }
}

impl From<ReceiveError> for NetError {
    fn from(e: ReceiveError) -> Self {
        Self::Receive(e)
    }
}
