//! The byte-pipe abstraction the multiplexed transport runs over.
//!
//! A [`Link`] is one direction-agnostic non-blocking byte stream — the
//! only thing the protocol endpoints ever see of the outside world. Two
//! implementations ship:
//!
//! * [`MemoryLink`] — an in-process pair of capacity-bounded pipes. The
//!   bounded capacity makes partial writes and `WouldBlock` *routine*
//!   rather than rare, so the deterministic tests exercise exactly the
//!   paths a real socket exercises; [`MemoryLink::sever`] kills the
//!   connection from either end, which is how the reconnect tests force
//!   a mid-stream disconnect.
//! * [`TcpLink`] — a non-blocking `std::net::TcpStream`.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use crate::runtime::EventSource;

/// A non-blocking, connection-oriented byte stream.
///
/// Both methods follow `std::io` conventions: `WouldBlock` means "try
/// again later" (the runtime's [`io_op`](crate::runtime::io_op) turns it
/// into a suspension point); any other error means the connection is
/// dead and the session layer should reconnect.
pub trait Link {
    /// Writes some prefix of `buf`, returning how many bytes were
    /// accepted. `Err(WouldBlock)` when the pipe is full.
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Reads into `buf`. `Ok(0)` is a clean end-of-stream (the peer
    /// finished and closed); `Err(WouldBlock)` when no bytes are
    /// available yet.
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// The OS-level readiness source (raw fd) backing this link, if it
    /// has one. Drivers pass it to
    /// [`runtime::io_ready`](crate::runtime::io_ready) so the epoll
    /// reactor can sleep until the kernel reports the link ready;
    /// in-process links return `None` and fall back to the bounded
    /// poll-loop cadence under either reactor.
    fn event_source(&self) -> Option<EventSource> {
        None
    }

    /// Tears the connection down from this side. The session layer
    /// calls it when a liveness deadline expires: the link looks alive
    /// at the I/O level but the peer has stopped responding, so this
    /// side abandons it before redialing. Default: no-op (dropping the
    /// link is the teardown).
    fn shutdown(&mut self) {}
}

// ---------------------------------------------------------------------------

/// One direction of a memory pipe.
#[derive(Debug)]
struct PipeBuf {
    data: VecDeque<u8>,
    capacity: usize,
    /// Set by [`MemoryLink::sever`]: the connection failed mid-flight;
    /// both ends see `ConnectionReset` from now on.
    severed: bool,
}

impl PipeBuf {
    fn new(capacity: usize) -> Self {
        Self { data: VecDeque::new(), capacity, severed: false }
    }
}

/// One end of an in-process, capacity-bounded duplex byte pipe.
///
/// ```
/// use pla_net::link::{Link, MemoryLink};
///
/// let (mut a, mut b) = MemoryLink::pair(8);
/// assert_eq!(a.try_write(b"hello").unwrap(), 5);
/// let mut buf = [0u8; 16];
/// assert_eq!(b.try_read(&mut buf).unwrap(), 5);
/// assert_eq!(&buf[..5], b"hello");
/// // An empty pipe reads WouldBlock, not EOF.
/// assert_eq!(b.try_read(&mut buf).unwrap_err().kind(), std::io::ErrorKind::WouldBlock);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryLink {
    /// Pipe this end writes into.
    out: Arc<Mutex<PipeBuf>>,
    /// Pipe this end reads from.
    inc: Arc<Mutex<PipeBuf>>,
}

impl MemoryLink {
    /// Creates a connected pair; each direction buffers at most
    /// `capacity` bytes before writers see `WouldBlock`.
    pub fn pair(capacity: usize) -> (Self, Self) {
        let ab = Arc::new(Mutex::new(PipeBuf::new(capacity)));
        let ba = Arc::new(Mutex::new(PipeBuf::new(capacity)));
        (Self { out: ab.clone(), inc: ba.clone() }, Self { out: ba, inc: ab })
    }

    /// Kills the connection: every subsequent read or write on either
    /// end fails with `ConnectionReset`, and bytes still buffered in
    /// flight are lost — the failure mode the reconnect protocol must
    /// survive.
    pub fn sever(&self) {
        for pipe in [&self.out, &self.inc] {
            let mut p = pipe.lock().expect("pipe");
            p.severed = true;
            p.data.clear();
        }
    }

    /// Whether [`sever`](Self::sever) was called on either end.
    pub fn is_severed(&self) -> bool {
        self.out.lock().expect("pipe").severed
    }
}

impl Link for MemoryLink {
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut pipe = self.out.lock().expect("pipe");
        if pipe.severed {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "link severed"));
        }
        let room = pipe.capacity.saturating_sub(pipe.data.len());
        if room == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "pipe full"));
        }
        let n = room.min(buf.len());
        pipe.data.extend(&buf[..n]);
        Ok(n)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut pipe = self.inc.lock().expect("pipe");
        if pipe.severed {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "link severed"));
        }
        if pipe.data.is_empty() {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "pipe empty"));
        }
        let n = buf.len().min(pipe.data.len());
        for slot in buf.iter_mut().take(n) {
            *slot = pipe.data.pop_front().expect("checked len");
        }
        Ok(n)
    }

    fn shutdown(&mut self) {
        self.sever();
    }
}

// ---------------------------------------------------------------------------

/// A non-blocking TCP connection.
#[derive(Debug)]
pub struct TcpLink {
    stream: TcpStream,
}

impl TcpLink {
    /// Connects and switches the stream to non-blocking mode.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Wraps an accepted stream, switching it to non-blocking mode and
    /// disabling Nagle (the transport already batches into frames; an
    /// extra 40 ms delayed-ack dance per credit round trip would swamp
    /// the poll-loop reactor's latency).
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }
}

impl Link for TcpLink {
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(&mut self.stream, buf)
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(&mut self.stream, buf)
    }

    #[cfg(unix)]
    fn event_source(&self) -> Option<EventSource> {
        use std::os::unix::io::AsRawFd;
        Some(self.stream.as_raw_fd())
    }

    fn shutdown(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pair_round_trips_with_bounded_capacity() {
        let (mut a, mut b) = MemoryLink::pair(4);
        assert_eq!(a.try_write(b"abcdef").unwrap(), 4, "capacity-limited partial write");
        assert_eq!(a.try_write(b"ef").unwrap_err().kind(), io::ErrorKind::WouldBlock);
        let mut buf = [0u8; 8];
        assert_eq!(b.try_read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"abcd");
        assert_eq!(a.try_write(b"ef").unwrap(), 2);
        assert_eq!(b.try_read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
    }

    #[test]
    fn both_directions_are_independent() {
        let (mut a, mut b) = MemoryLink::pair(16);
        a.try_write(b"ping").unwrap();
        b.try_write(b"pong").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.try_read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(a.try_read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn sever_fails_both_ends_and_drops_in_flight_bytes() {
        let (mut a, mut b) = MemoryLink::pair(16);
        a.try_write(b"lost").unwrap();
        b.sever();
        assert!(a.is_severed());
        let mut buf = [0u8; 8];
        assert_eq!(b.try_read(&mut buf).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(a.try_write(b"x").unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(a.try_read(&mut buf).unwrap_err().kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn tcp_link_round_trips_on_loopback() {
        // Environments without loopback networking (heavily sandboxed CI)
        // skip rather than fail: the protocol itself is fully covered by
        // MemoryLink; this test covers only the TcpStream adapter.
        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => {
                eprintln!("skipping tcp_link test: cannot bind loopback ({e})");
                return;
            }
        };
        let addr = listener.local_addr().unwrap();
        let mut client = TcpLink::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let mut server = TcpLink::from_stream(server_stream).unwrap();
        let mut wrote = 0;
        while wrote < 4 {
            match client.try_write(&b"ping"[wrote..]) {
                Ok(n) => wrote += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("write failed: {e}"),
            }
        }
        let mut buf = [0u8; 8];
        let mut read = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while read < 4 {
            match server.try_read(&mut buf[read..]) {
                Ok(0) => panic!("unexpected EOF"),
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    assert!(std::time::Instant::now() < deadline, "timed out");
                    std::thread::yield_now();
                }
                Err(e) => panic!("read failed: {e}"),
            }
        }
        assert_eq!(&buf[..4], b"ping");
    }
}
