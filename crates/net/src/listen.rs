//! Accepting inbound links: the listening half of the collector tier.
//!
//! An [`Acceptor`] hands the [`Collector`](crate::Collector) new
//! [`Link`]s as remote senders connect. Two implementations ship,
//! mirroring the two links:
//!
//! * [`TcpAcceptor`] — a non-blocking `std::net::TcpListener`; every
//!   accepted socket becomes a [`TcpLink`].
//! * [`MemoryAcceptor`] — the deterministic test substrate: a
//!   [`MemoryConnector`] handle (cloneable, any thread) creates
//!   capacity-bounded [`MemoryLink`] pairs and queues the serve-side
//!   end for the acceptor, so tests decide exactly when each
//!   "connection" arrives.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use crate::link::{Link, MemoryLink, TcpLink};
use crate::runtime::EventSource;

/// A source of inbound connections.
pub trait Acceptor {
    /// The link type each accepted connection yields.
    type Link: Link;

    /// Accepts one pending connection if any is waiting. `Ok(None)`
    /// means nothing pending right now (the non-blocking analogue of
    /// `WouldBlock` — surfaced as a value because "no connection yet"
    /// is the common case, not an error). A real error means the
    /// listening endpoint itself failed.
    fn try_accept(&mut self) -> io::Result<Option<Self::Link>>;

    /// The OS readiness source of the *listening* endpoint, if any —
    /// lets an accept loop park on the epoll reactor until a connection
    /// actually arrives.
    fn event_source(&self) -> Option<EventSource> {
        None
    }
}

// ---------------------------------------------------------------------------

/// Shared queue between [`MemoryConnector`]s and their
/// [`MemoryAcceptor`].
type PendingLinks = Arc<Mutex<VecDeque<MemoryLink>>>;

/// The in-process acceptor: yields whatever links its connectors have
/// queued, in connection order.
///
/// ```
/// use pla_net::listen::{Acceptor, MemoryAcceptor};
/// use pla_net::Link;
///
/// let mut acceptor = MemoryAcceptor::new();
/// let connector = acceptor.connector();
/// assert!(acceptor.try_accept().unwrap().is_none(), "nothing queued yet");
/// let mut client = connector.connect(64);
/// let mut served = acceptor.try_accept().unwrap().expect("queued connection");
/// client.try_write(b"hi").unwrap();
/// let mut buf = [0u8; 4];
/// assert_eq!(served.try_read(&mut buf).unwrap(), 2);
/// ```
#[derive(Debug, Default)]
pub struct MemoryAcceptor {
    pending: PendingLinks,
}

impl MemoryAcceptor {
    /// An acceptor with no connections queued.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle remote "senders" use to connect. Cloneable and
    /// `Send`: a multi-threaded test can dial in from anywhere.
    pub fn connector(&self) -> MemoryConnector {
        MemoryConnector { pending: self.pending.clone() }
    }
}

impl Acceptor for MemoryAcceptor {
    type Link = MemoryLink;

    fn try_accept(&mut self) -> io::Result<Option<MemoryLink>> {
        Ok(self.pending.lock().expect("pending links").pop_front())
    }
}

/// The dialing half of a [`MemoryAcceptor`].
#[derive(Debug, Clone)]
pub struct MemoryConnector {
    pending: PendingLinks,
}

impl MemoryConnector {
    /// Creates a connected [`MemoryLink`] pair with the given per-
    /// direction byte capacity, queues the serve side for the acceptor,
    /// and returns the client side.
    pub fn connect(&self, capacity: usize) -> MemoryLink {
        let (client, server) = MemoryLink::pair(capacity);
        self.pending.lock().expect("pending links").push_back(server);
        client
    }
}

// ---------------------------------------------------------------------------

/// A non-blocking TCP listener yielding [`TcpLink`]s.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds and switches the listener to non-blocking mode.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener })
    }

    /// The bound local address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }
}

impl Acceptor for TcpAcceptor {
    type Link = TcpLink;

    fn try_accept(&mut self) -> io::Result<Option<TcpLink>> {
        match self.listener.accept() {
            Ok((stream, _)) => TcpLink::from_stream(stream).map(Some),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e),
        }
    }

    #[cfg(unix)]
    fn event_source(&self) -> Option<EventSource> {
        use std::os::unix::io::AsRawFd;
        Some(self.listener.as_raw_fd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_acceptor_yields_connections_in_dial_order() {
        let mut acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        let mut c1 = connector.connect(16);
        let mut c2 = connector.connect(16);
        c1.try_write(b"one").unwrap();
        c2.try_write(b"two").unwrap();
        let mut buf = [0u8; 8];
        let mut s1 = acceptor.try_accept().unwrap().expect("first connection");
        assert_eq!(s1.try_read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"one");
        let mut s2 = acceptor.try_accept().unwrap().expect("second connection");
        assert_eq!(s2.try_read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"two");
        assert!(acceptor.try_accept().unwrap().is_none());
    }

    #[test]
    fn connectors_work_cross_thread() {
        let mut acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        let dialer = std::thread::spawn(move || {
            let mut link = connector.connect(32);
            link.try_write(b"remote").unwrap();
        });
        dialer.join().unwrap();
        let mut served = acceptor.try_accept().unwrap().expect("dialed in");
        let mut buf = [0u8; 8];
        assert_eq!(served.try_read(&mut buf).unwrap(), 6);
        assert_eq!(&buf[..6], b"remote");
    }

    #[test]
    fn tcp_acceptor_accepts_nonblocking() {
        let mut acceptor = match TcpAcceptor::bind("127.0.0.1:0") {
            Ok(a) => a,
            Err(e) => {
                eprintln!("skipping tcp acceptor test: cannot bind loopback ({e})");
                return;
            }
        };
        assert!(acceptor.try_accept().unwrap().is_none(), "no one dialed yet");
        let addr = acceptor.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        // The handshake may take a beat to land in the accept queue.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let link = loop {
            if let Some(link) = acceptor.try_accept().unwrap() {
                break link;
            }
            assert!(std::time::Instant::now() < deadline, "accept timed out");
            std::thread::yield_now();
        };
        #[cfg(unix)]
        assert!(link.event_source().is_some(), "accepted TCP links carry their fd");
        #[cfg(unix)]
        assert!(acceptor.event_source().is_some());
        drop(client);
        let _ = link;
    }
}
