//! The sending endpoint: N logical streams multiplexed onto one framed
//! byte stream, with per-stream credit and replayable delivery.
//!
//! [`MuxSender`] is *sans-I/O*: segments go in
//! ([`try_send_segment`](MuxSender::try_send_segment)), framed bytes
//! come out ([`take_staged`](MuxSender::take_staged) or the pump
//! functions in [`driver`](crate::driver)), and inbound control bytes
//! are fed back with [`on_bytes`](MuxSender::on_bytes). Nothing here
//! touches a socket, so every protocol path — credit exhaustion, ack
//! processing, reconnect replay — is deterministically testable.

use std::collections::{BTreeMap, VecDeque};

use bytes::{Bytes, BytesMut};

use pla_core::{ProvisionalUpdate, Segment};
use pla_transport::wire::{provisional_message, segment_messages, Codec, Message};

use crate::credit::CreditWindow;
use crate::frame::{encode, FrameDecoder, NetFrame, Outbox, ResumeCursor};
use crate::{NetConfig, NetError};

/// Per-stream sender state.
struct SendStream {
    /// Sequence number of the last `Data` frame produced (0 = none yet).
    last_seq: u64,
    /// Highest cumulatively acknowledged sequence number.
    acked: u64,
    credit: CreditWindow,
    /// Encoded `Data` frames not yet acknowledged, oldest first —
    /// exactly what a reconnect replays.
    unacked: VecDeque<(u64, Bytes)>,
    finished: bool,
}

/// Point-in-time counters for one stream, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendStreamStats {
    /// `Data` frames produced so far.
    pub frames: u64,
    /// Highest acknowledged sequence number.
    pub acked: u64,
    /// Frames retained for possible replay.
    pub unacked: usize,
    /// Credit bytes currently available.
    pub credit_available: u64,
    /// Whether [`finish_stream`](MuxSender::finish_stream) was called.
    pub finished: bool,
}

/// The multiplexing sender. See the [crate docs](crate) for the
/// protocol and the module docs for the sans-I/O shape.
pub struct MuxSender<C: Codec> {
    codec: C,
    dims: usize,
    config: NetConfig,
    streams: BTreeMap<u64, SendStream>,
    out: Outbox,
    frames_in: FrameDecoder,
    scratch: BytesMut,
    frame_scratch: BytesMut,
}

impl<C: Codec> MuxSender<C> {
    /// Creates a sender for `dims`-dimensional streams.
    pub fn new(codec: C, dims: usize, config: NetConfig) -> Self {
        Self {
            codec,
            dims,
            config,
            streams: BTreeMap::new(),
            out: Outbox::default(),
            frames_in: FrameDecoder::new(config.max_frame),
            scratch: BytesMut::new(),
            frame_scratch: BytesMut::new(),
        }
    }

    fn stream_entry(&mut self, stream: u64) -> &mut SendStream {
        let window = self.config.window;
        self.streams.entry(stream).or_insert_with(|| SendStream {
            last_seq: 0,
            acked: 0,
            credit: CreditWindow::new(window),
            unacked: VecDeque::new(),
            finished: false,
        })
    }

    /// Encodes `msgs` as one sequenced `Data` frame for `stream`,
    /// stages it, and retains it for replay. The credit check happens
    /// *before* anything is staged, so a refused send leaves no trace.
    fn try_send_messages<'a>(
        &mut self,
        stream: u64,
        msgs: impl IntoIterator<Item = &'a Message>,
    ) -> Result<(), NetError> {
        if self.stream_entry(stream).finished {
            return Err(NetError::Finished(stream));
        }
        // Each frame is a self-contained codec unit (reset first), led
        // by the stream's own header — the contract
        // `StreamDemux::consume_sequenced` enforces.
        self.scratch.clear();
        self.codec.reset();
        self.codec.encode(&Message::StreamFrame { stream }, self.dims, &mut self.scratch);
        for m in msgs {
            self.codec.encode(m, self.dims, &mut self.scratch);
        }
        let payload_len = self.scratch.len() as u64;
        let entry = self.streams.get_mut(&stream).expect("registered above");
        if !entry.credit.try_reserve(payload_len) {
            return Err(NetError::Backpressure);
        }
        entry.last_seq += 1;
        let seq = entry.last_seq;
        let payload = self.scratch.split().freeze();
        self.frame_scratch.clear();
        encode(&NetFrame::Data { stream, seq, payload }, &mut self.frame_scratch);
        let frame_bytes = self.frame_scratch.split().freeze();
        self.out.stage(&frame_bytes);
        entry.unacked.push_back((seq, frame_bytes));
        Ok(())
    }

    /// Sends one finalized segment on `stream`.
    ///
    /// The segment→message mapping is
    /// [`wire::segment_messages`](pla_transport::wire::segment_messages)
    /// — the same one the point-to-point
    /// [`Transmitter`](pla_transport::Transmitter) uses — so the far
    /// side's reconstruction is identical to a direct single-stream
    /// link.
    ///
    /// # Errors
    ///
    /// [`NetError::Backpressure`] when the stream's credit window cannot
    /// cover the encoded payload: nothing is sent, and the caller
    /// retries after the receiver grants more (or sheds load). This is
    /// the same contract as `pla_ingest::IngestHandle::try_push`.
    pub fn try_send_segment(&mut self, stream: u64, seg: &Segment) -> Result<(), NetError> {
        // At most two messages per segment, staged on the stack — the
        // send path stays off the heap (beyond the payload buffer
        // itself), matching the workspace's hot-path discipline.
        let mut msgs: [Option<Message>; 2] = [None, None];
        let mut n = 0;
        segment_messages(seg, |m| {
            msgs[n] = Some(m);
            n += 1;
        });
        self.try_send_messages(stream, msgs.iter().flatten())
    }

    /// Sends a provisional (lag-bound) update on `stream`.
    pub fn try_send_provisional(
        &mut self,
        stream: u64,
        update: &ProvisionalUpdate,
    ) -> Result<(), NetError> {
        self.try_send_messages(stream, &[provisional_message(update)])
    }

    /// Marks `stream` complete and stages its `Fin` frame. Further
    /// sends on it fail with [`NetError::Finished`]; finishing twice is
    /// idempotent.
    pub fn finish_stream(&mut self, stream: u64) -> Result<(), NetError> {
        let entry = self.stream_entry(stream);
        if entry.finished {
            return Ok(());
        }
        entry.finished = true;
        let fin = NetFrame::Fin { stream, final_seq: entry.last_seq };
        self.frame_scratch.clear();
        encode(&fin, &mut self.frame_scratch);
        let bytes = self.frame_scratch.split().freeze();
        self.out.stage(&bytes);
        Ok(())
    }

    /// Finishes every stream that has sent anything.
    pub fn finish_all(&mut self) {
        let ids: Vec<u64> = self.streams.keys().copied().collect();
        for id in ids {
            self.finish_stream(id).expect("finish is idempotent");
        }
    }

    /// Feeds inbound link bytes (the receiver's `Ack`/`Credit` control
    /// frames).
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.frames_in.extend(bytes);
        while let Some(frame) = self.frames_in.try_next()? {
            self.on_frame(frame)?;
        }
        Ok(())
    }

    /// Applies one already-decoded inbound frame. The session layer
    /// decodes the link itself (it must intercept `HelloAck`) and
    /// forwards the control plane here frame by frame.
    pub(crate) fn on_frame(&mut self, frame: NetFrame) -> Result<(), NetError> {
        match frame {
            // Control frames naming a stream this sender never sent
            // on are dropped without materializing state: a corrupt
            // or hostile peer must not be able to conjure phantom
            // streams (which finish_all would then Fin).
            NetFrame::Ack { stream, through_seq } => {
                if let Some(entry) = self.streams.get_mut(&stream) {
                    entry.acked = entry.acked.max(through_seq);
                    while entry.unacked.front().is_some_and(|(seq, _)| *seq <= through_seq) {
                        entry.unacked.pop_front();
                    }
                }
            }
            NetFrame::Credit { stream, granted_total } => {
                if let Some(entry) = self.streams.get_mut(&stream) {
                    entry.credit.grant_to(granted_total);
                }
            }
            // Liveness probes and echoes carry no stream state; the
            // session layer tracks arrival times, the mux ignores them.
            NetFrame::Heartbeat { .. } => {}
            NetFrame::Data { .. } => return Err(NetError::UnexpectedFrame("Data at sender")),
            NetFrame::Fin { .. } => return Err(NetError::UnexpectedFrame("Fin at sender")),
            NetFrame::Hello { .. } => return Err(NetError::UnexpectedFrame("Hello at sender")),
            NetFrame::HelloAck { .. } => {
                return Err(NetError::UnexpectedFrame("HelloAck outside handshake"))
            }
            NetFrame::QueryReq { .. }
            | NetFrame::QueryResp { .. }
            | NetFrame::EpochsReq { .. }
            | NetFrame::EpochsResp { .. } => {
                return Err(NetError::UnexpectedFrame("query frame at ingest sender"))
            }
        }
        Ok(())
    }

    /// Applies the receiver's resume cursors from a `HelloAck`: acks
    /// trim the replay buffer, grants refresh the credit windows —
    /// exactly what the per-stream `Ack`+`Credit` refresh of a plain
    /// reconnect would do, but delivered atomically with the handshake.
    /// Cursors naming unknown streams are dropped (no phantom streams).
    pub fn apply_resume(&mut self, cursors: &[ResumeCursor]) {
        for c in cursors {
            if let Some(entry) = self.streams.get_mut(&c.stream) {
                entry.acked = entry.acked.max(c.through_seq);
                while entry.unacked.front().is_some_and(|(seq, _)| *seq <= c.through_seq) {
                    entry.unacked.pop_front();
                }
                entry.credit.grant_to(c.granted_total);
            }
        }
        // The replay staged by `on_reconnect` may now contain frames the
        // cursors just acknowledged; restage from the trimmed buffers so
        // the wire never carries a *whole* frame the receiver already
        // holds. But this runs on a live link: if the link accepted a
        // partial write, the frame it tore must complete first — the
        // receiver drops duplicate frames by sequence number, it cannot
        // survive a torn one.
        let torn: Option<Vec<u8>> = self.out.partial_head().map(<[u8]>::to_vec);
        self.out.clear();
        if let Some(tail) = torn {
            self.out.stage(&tail);
        }
        self.restage_unacked();
    }

    /// The connection died: drop everything staged for the dead link,
    /// forget its partial inbound frame, and restage every
    /// unacknowledged `Data` frame (in per-stream sequence order) plus
    /// the `Fin` of every finished stream. The receiver drops whatever
    /// it already applied by sequence number, so replaying is always
    /// safe.
    pub fn on_reconnect(&mut self) {
        self.out.clear();
        self.frames_in.reset();
        self.restage_unacked();
    }

    /// Stages every unacknowledged `Data` frame (in per-stream sequence
    /// order) plus the `Fin` of every finished stream.
    fn restage_unacked(&mut self) {
        let mut fin_scratch = BytesMut::new();
        for (&stream, entry) in &self.streams {
            for (_, frame_bytes) in &entry.unacked {
                self.out.stage(frame_bytes);
            }
            if entry.finished {
                fin_scratch.clear();
                encode(&NetFrame::Fin { stream, final_seq: entry.last_seq }, &mut fin_scratch);
                self.out.stage(&fin_scratch);
            }
        }
    }

    /// Whether every produced frame has been acknowledged and nothing
    /// is waiting for the link — the sender's "safe to stop pumping"
    /// condition (together with having called
    /// [`finish_all`](Self::finish_all)).
    pub fn is_idle(&self) -> bool {
        self.out.is_empty() && self.streams.values().all(|s| s.unacked.is_empty())
    }

    /// Whether every produced frame has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.streams.values().all(|s| s.unacked.is_empty())
    }

    /// Bytes staged for the link but not yet written.
    pub fn staged_bytes(&self) -> usize {
        self.out.pending()
    }

    /// Drains every staged byte (manual pumping; the
    /// [`driver`](crate::driver) pumps incrementally instead).
    pub fn take_staged(&mut self) -> Vec<u8> {
        self.out.take()
    }

    pub(crate) fn outbox(&mut self) -> &mut Outbox {
        &mut self.out
    }

    /// Streams this sender has touched, ascending.
    pub fn streams(&self) -> impl Iterator<Item = u64> + '_ {
        self.streams.keys().copied()
    }

    /// Counters for one stream (`None` if never sent on).
    pub fn stream_stats(&self, stream: u64) -> Option<SendStreamStats> {
        self.streams.get(&stream).map(|s| SendStreamStats {
            frames: s.last_seq,
            acked: s.acked,
            unacked: s.unacked.len(),
            credit_available: s.credit.available(),
            finished: s.finished,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_transport::wire::FixedCodec;

    fn seg(t0: f64, x0: f64, t1: f64, x1: f64) -> Segment {
        Segment {
            t_start: t0,
            x_start: [x0].into(),
            t_end: t1,
            x_end: [x1].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    fn sender() -> MuxSender<FixedCodec> {
        MuxSender::new(FixedCodec, 1, NetConfig::default())
    }

    /// `apply_resume` arrives on the *live* link; if the link tore a
    /// frame on a partial write, the rebuilt outbox must lead with that
    /// frame's remaining bytes or the peer's decoder desyncs.
    #[test]
    fn apply_resume_preserves_a_torn_frame() {
        let mut tx = MuxSender::new(FixedCodec, 1, NetConfig { window: 4096, max_frame: 1 << 20 });
        for i in 0..4 {
            tx.try_send_segment(5, &seg(i as f64 * 10.0, 0.0, i as f64 * 10.0 + 5.0, 1.0)).unwrap();
        }
        let staged = tx.outbox().as_bytes().to_vec();
        // Frame boundaries from the length prefixes; cut mid-frame-3.
        let mut bounds = vec![0usize];
        let mut off = 0;
        while off < staged.len() {
            off += 4 + u32::from_le_bytes(staged[off..off + 4].try_into().unwrap()) as usize;
            bounds.push(off);
        }
        let cut = bounds[2] + 3;
        tx.outbox().consume(cut);

        tx.apply_resume(&[crate::frame::ResumeCursor {
            stream: 5,
            through_seq: 1,
            granted_total: 1 << 20,
        }]);

        // The wire = what the link already accepted + what goes out now.
        let mut wire = staged[..cut].to_vec();
        wire.extend(tx.take_staged());
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&wire);
        let mut seqs = Vec::new();
        while let Some(f) = dec.try_next().expect("wire must stay framed") {
            match f {
                NetFrame::Data { stream: 5, seq, .. } => seqs.push(seq),
                other => panic!("unexpected frame on the wire: {other:?}"),
            }
        }
        assert_eq!(dec.pending(), 0, "no torn bytes left behind");
        // Frames 1-2 were fully written, the torn frame 3 completes,
        // then the trimmed replay (unacked 2..=4) follows; the receiver
        // dedups whole frames by seq.
        assert_eq!(seqs, vec![1, 2, 3, 2, 3, 4]);
    }

    #[test]
    fn segments_become_sequenced_data_frames() {
        let mut tx = sender();
        tx.try_send_segment(4, &seg(0.0, 1.0, 5.0, 2.0)).unwrap();
        tx.try_send_segment(4, &seg(6.0, 0.0, 9.0, 1.0)).unwrap();
        tx.try_send_segment(2, &seg(0.0, 0.0, 1.0, 1.0)).unwrap();
        let bytes = tx.take_staged();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&bytes);
        let mut seen = Vec::new();
        while let Some(f) = dec.try_next().unwrap() {
            match f {
                NetFrame::Data { stream, seq, .. } => seen.push((stream, seq)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![(4, 1), (4, 2), (2, 1)], "per-stream sequence numbers");
        let s4 = tx.stream_stats(4).unwrap();
        assert_eq!(s4.frames, 2);
        assert_eq!(s4.unacked, 2, "frames retained until acked");
    }

    #[test]
    fn credit_exhaustion_is_backpressure_and_leaves_no_trace() {
        let mut tx = MuxSender::new(FixedCodec, 1, NetConfig { window: 64, max_frame: 1 << 20 });
        // 1-D fixed-codec segment payload: header (9) + Start (17) + End (17) = 43 bytes.
        tx.try_send_segment(1, &seg(0.0, 1.0, 5.0, 2.0)).unwrap();
        let staged_before = tx.staged_bytes();
        let frames_before = tx.stream_stats(1).unwrap().frames;
        assert_eq!(tx.try_send_segment(1, &seg(6.0, 0.0, 9.0, 1.0)), Err(NetError::Backpressure));
        assert_eq!(tx.staged_bytes(), staged_before, "refused send stages nothing");
        assert_eq!(tx.stream_stats(1).unwrap().frames, frames_before, "no seq burned");
        // A credit grant unblocks it.
        let mut grant = BytesMut::new();
        encode(&NetFrame::Credit { stream: 1, granted_total: 1024 }, &mut grant);
        tx.on_bytes(&grant).unwrap();
        tx.try_send_segment(1, &seg(6.0, 0.0, 9.0, 1.0)).unwrap();
    }

    #[test]
    fn acks_release_unacked_frames() {
        let mut tx = sender();
        for i in 0..3 {
            tx.try_send_segment(9, &seg(i as f64 * 10.0, 0.0, i as f64 * 10.0 + 5.0, 1.0)).unwrap();
        }
        assert!(!tx.all_acked());
        let mut ack = BytesMut::new();
        encode(&NetFrame::Ack { stream: 9, through_seq: 2 }, &mut ack);
        tx.on_bytes(&ack).unwrap();
        assert_eq!(tx.stream_stats(9).unwrap().unacked, 1);
        // A stale (replayed) ack changes nothing.
        let mut stale = BytesMut::new();
        encode(&NetFrame::Ack { stream: 9, through_seq: 1 }, &mut stale);
        tx.on_bytes(&stale).unwrap();
        assert_eq!(tx.stream_stats(9).unwrap().unacked, 1);
        let mut last = BytesMut::new();
        encode(&NetFrame::Ack { stream: 9, through_seq: 3 }, &mut last);
        tx.on_bytes(&last).unwrap();
        assert!(tx.all_acked());
    }

    #[test]
    fn reconnect_replays_exactly_the_unacked_tail_and_fins() {
        let mut tx = sender();
        for i in 0..4 {
            tx.try_send_segment(5, &seg(i as f64 * 10.0, 0.0, i as f64 * 10.0 + 5.0, 1.0)).unwrap();
        }
        tx.finish_stream(5).unwrap();
        let _lost = tx.take_staged(); // written to a link that then died
        let mut ack = BytesMut::new();
        encode(&NetFrame::Ack { stream: 5, through_seq: 2 }, &mut ack);
        tx.on_bytes(&ack).unwrap();
        tx.on_reconnect();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&tx.take_staged());
        let mut replay = Vec::new();
        while let Some(f) = dec.try_next().unwrap() {
            replay.push(f);
        }
        assert_eq!(replay.len(), 3, "two unacked Data frames plus the Fin");
        assert!(matches!(replay[0], NetFrame::Data { stream: 5, seq: 3, .. }));
        assert!(matches!(replay[1], NetFrame::Data { stream: 5, seq: 4, .. }));
        assert_eq!(replay[2], NetFrame::Fin { stream: 5, final_seq: 4 });
    }

    #[test]
    fn apply_resume_trims_replay_and_regrants_credit() {
        let mut tx = MuxSender::new(FixedCodec, 1, NetConfig { window: 256, max_frame: 1 << 20 });
        for i in 0..4 {
            tx.try_send_segment(5, &seg(i as f64 * 10.0, 0.0, i as f64 * 10.0 + 5.0, 1.0)).unwrap();
        }
        tx.finish_stream(5).unwrap();
        let _lost = tx.take_staged();
        tx.on_reconnect(); // 0-RTT replay staged alongside the Hello
        tx.apply_resume(&[
            crate::frame::ResumeCursor { stream: 5, through_seq: 2, granted_total: 4096 },
            // Unknown stream: dropped, never materialized.
            crate::frame::ResumeCursor { stream: 99, through_seq: 7, granted_total: 1 << 40 },
        ]);
        assert_eq!(tx.stream_stats(99), None, "cursors must not conjure streams");
        assert_eq!(tx.stream_stats(5).unwrap().unacked, 2);
        assert!(tx.stream_stats(5).unwrap().credit_available > 0, "grant refreshed");
        // The staged replay was re-trimmed to match: seq 3, 4, then Fin.
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&tx.take_staged());
        let mut replay = Vec::new();
        while let Some(f) = dec.try_next().unwrap() {
            replay.push(f);
        }
        assert_eq!(replay.len(), 3, "acked frames must not be replayed, got {replay:?}");
        assert!(matches!(replay[0], NetFrame::Data { stream: 5, seq: 3, .. }));
        assert!(matches!(replay[1], NetFrame::Data { stream: 5, seq: 4, .. }));
        assert_eq!(replay[2], NetFrame::Fin { stream: 5, final_seq: 4 });
    }

    #[test]
    fn heartbeats_at_the_sender_are_ignored_and_session_frames_rejected() {
        let mut tx = sender();
        tx.try_send_segment(1, &seg(0.0, 0.0, 1.0, 1.0)).unwrap();
        let mut buf = BytesMut::new();
        encode(&NetFrame::Heartbeat { seq: 3 }, &mut buf);
        tx.on_bytes(&buf).unwrap();
        let mut hello = BytesMut::new();
        encode(&NetFrame::Hello { version: 1, token: 0 }, &mut hello);
        assert!(matches!(tx.on_bytes(&hello), Err(NetError::UnexpectedFrame(_))));
    }

    #[test]
    fn finished_streams_refuse_more_payload() {
        let mut tx = sender();
        tx.try_send_segment(1, &seg(0.0, 0.0, 1.0, 1.0)).unwrap();
        tx.finish_stream(1).unwrap();
        tx.finish_stream(1).unwrap(); // idempotent
        assert_eq!(tx.try_send_segment(1, &seg(2.0, 0.0, 3.0, 1.0)), Err(NetError::Finished(1)));
    }

    #[test]
    fn control_frames_for_unknown_streams_are_dropped_without_state() {
        let mut tx = sender();
        tx.try_send_segment(1, &seg(0.0, 0.0, 1.0, 1.0)).unwrap();
        let mut buf = BytesMut::new();
        encode(&NetFrame::Ack { stream: 999, through_seq: 3 }, &mut buf);
        encode(&NetFrame::Credit { stream: 999, granted_total: 1 << 40 }, &mut buf);
        tx.on_bytes(&buf).unwrap();
        assert_eq!(tx.stream_stats(999), None, "no phantom stream may be conjured");
        assert_eq!(tx.streams().collect::<Vec<_>>(), vec![1]);
        // finish_all therefore fins only real streams.
        tx.finish_all();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&tx.take_staged());
        let mut fins = 0;
        while let Some(f) = dec.try_next().unwrap() {
            if let NetFrame::Fin { stream, .. } = f {
                assert_eq!(stream, 1);
                fins += 1;
            }
        }
        assert_eq!(fins, 1);
    }

    #[test]
    fn payload_frames_at_the_sender_are_protocol_errors() {
        let mut tx = sender();
        let mut buf = BytesMut::new();
        encode(&NetFrame::Data { stream: 1, seq: 1, payload: Bytes::from_static(b"x") }, &mut buf);
        assert!(matches!(tx.on_bytes(&buf), Err(NetError::UnexpectedFrame(_))));
    }
}
