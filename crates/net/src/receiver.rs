//! The receiving endpoint: framed bytes in, per-stream segment logs
//! out, acks and credit grants back.
//!
//! [`NetReceiver`] is the sans-I/O twin of
//! [`MuxSender`](crate::MuxSender): it owns the
//! [`FrameDecoder`](crate::frame::FrameDecoder), a
//! [`StreamDemux`] (which performs the actual segment reconstruction
//! and the sequence-number dedup that makes replay safe), and one
//! [`ReceiveWindow`](crate::credit::ReceiveWindow) per stream for
//! credit scheduling.
//!
//! # Batched acknowledgements
//!
//! Applying a `Data` frame records the stream as *ack-dirty* but stages
//! nothing. [`flush_control`](NetReceiver::flush_control) — called once
//! per pump round by the [`driver`](crate::driver) pumps and by
//! [`take_staged`](NetReceiver::take_staged) — then emits **one**
//! cumulative `Ack` (and at most one `Credit` top-up) per dirty stream,
//! however many of its frames the round applied. Cumulative counters
//! make the coalescing free: acking `through_seq = 7` acknowledges
//! frames 1–7 at once, and a replayed ack is a no-op at the sender.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::BytesMut;

use pla_transport::wire::Codec;
use pla_transport::{SeqOutcome, StreamDemux};

use crate::credit::ReceiveWindow;
use crate::frame::{encode, FrameDecoder, NetFrame, Outbox, ResumeCursor};
use crate::{NetConfig, NetError};

/// Heartbeats awaiting an echo are bounded: a peer that floods probes
/// faster than control flushes run only keeps the newest few echoed.
const HEARTBEAT_ECHO_CAP: usize = 32;

/// Point-in-time counters for one receiving endpoint, for the
/// collector's per-connection observability and for tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// `Data` frames applied to the demultiplexer.
    pub frames_applied: u64,
    /// `Data` frames dropped as duplicates (replays after reconnect) —
    /// shed load that must stay observable, mirroring
    /// `pla_ingest::ShardStats::backpressure`.
    pub dup_drops: u64,
    /// Streams seen on this connection.
    pub streams: usize,
    /// Streams whose `Fin` has arrived.
    pub finished_streams: usize,
    /// `Ack` frames staged (after batching).
    pub acks_staged: u64,
    /// `Credit` frames staged.
    pub credits_staged: u64,
    /// `Heartbeat` probes received (each is echoed on the next control
    /// flush).
    pub heartbeats: u64,
    /// In-session `Hello` frames ignored — a replayed handshake is
    /// idempotent, like a replayed `Fin`, but stays observable.
    pub stray_hellos: u64,
}

/// The multiplexed receiver. Feed it link bytes with
/// [`on_bytes`](Self::on_bytes); collect its outbound `Ack`/`Credit`
/// control frames from [`take_staged`](Self::take_staged) (or the
/// [`driver`](crate::driver) pumps); read the reconstruction from
/// [`demux`](Self::demux).
pub struct NetReceiver<C: Codec> {
    frames: FrameDecoder,
    demux: StreamDemux<C>,
    windows: BTreeMap<u64, ReceiveWindow>,
    /// Streams whose ack state advanced since the last
    /// [`flush_control`](Self::flush_control).
    ack_dirty: BTreeSet<u64>,
    /// Streams whose `Fin` arrived, with their final sequence number.
    finished: BTreeMap<u64, u64>,
    out: Outbox,
    config: NetConfig,
    scratch: BytesMut,
    /// Heartbeat sequence numbers to echo back on the next control
    /// flush (bounded by [`HEARTBEAT_ECHO_CAP`]).
    heartbeat_echoes: VecDeque<u64>,
    frames_applied: u64,
    dup_drops: u64,
    acks_staged: u64,
    credits_staged: u64,
    heartbeats: u64,
    stray_hellos: u64,
}

impl<C: Codec> NetReceiver<C> {
    /// Creates a receiver for `dims`-dimensional streams. `config` must
    /// match the sender's (the initial credit window is an implicit
    /// shared constant).
    pub fn new(codec: C, dims: usize, config: NetConfig) -> Self {
        Self {
            frames: FrameDecoder::new(config.max_frame),
            demux: StreamDemux::new(codec, dims),
            windows: BTreeMap::new(),
            ack_dirty: BTreeSet::new(),
            finished: BTreeMap::new(),
            out: Outbox::default(),
            config,
            scratch: BytesMut::new(),
            heartbeat_echoes: VecDeque::new(),
            frames_applied: 0,
            dup_drops: 0,
            acks_staged: 0,
            credits_staged: 0,
            heartbeats: 0,
            stray_hellos: 0,
        }
    }

    fn stage_frame(&mut self, frame: &NetFrame) {
        self.scratch.clear();
        encode(frame, &mut self.scratch);
        self.out.stage(&self.scratch);
    }

    /// Feeds inbound link bytes, applying every complete frame:
    ///
    /// * `Data` → [`StreamDemux::consume_sequenced`]; an applied frame
    ///   is counted against the stream's credit window, a duplicate
    ///   (replay after reconnect) is dropped — and either way the
    ///   stream is marked ack-dirty, so the next
    ///   [`flush_control`](Self::flush_control) re-announces its
    ///   cumulative ack (a sender whose acks were lost with the old
    ///   connection can still release its replay buffer).
    /// * `Fin` → the stream is complete; verified against the applied
    ///   sequence point.
    /// * `Ack`/`Credit` → protocol error at this endpoint.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.frames.extend(bytes);
        while let Some(frame) = self.frames.try_next()? {
            match frame {
                NetFrame::Data { stream, seq, payload } => {
                    let payload_len = payload.len() as u64;
                    match self.demux.consume_sequenced(stream, seq, payload)? {
                        SeqOutcome::Applied => {
                            self.frames_applied += 1;
                            self.windows
                                .entry(stream)
                                .or_insert_with(|| ReceiveWindow::new(self.config.window))
                                .on_delivered(payload_len);
                        }
                        SeqOutcome::Duplicate => self.dup_drops += 1,
                    }
                    self.ack_dirty.insert(stream);
                }
                NetFrame::Fin { stream, final_seq } => {
                    let applied = self.demux.ack_point(stream);
                    if applied != final_seq {
                        return Err(NetError::IncompleteFin { stream, final_seq, applied });
                    }
                    // Idempotent: a replayed Fin re-records the same fact.
                    self.finished.insert(stream, final_seq);
                }
                NetFrame::Heartbeat { seq } => {
                    self.heartbeats += 1;
                    if self.heartbeat_echoes.len() == HEARTBEAT_ECHO_CAP {
                        self.heartbeat_echoes.pop_front();
                    }
                    self.heartbeat_echoes.push_back(seq);
                }
                // A sender whose Hello was duplicated in flight (or
                // replayed by a faulty middlebox) must not lose the
                // session: like a replayed Fin, an in-session Hello
                // re-states a fact this side already acted on.
                NetFrame::Hello { .. } => self.stray_hellos += 1,
                NetFrame::Ack { .. } => return Err(NetError::UnexpectedFrame("Ack at receiver")),
                NetFrame::Credit { .. } => {
                    return Err(NetError::UnexpectedFrame("Credit at receiver"))
                }
                NetFrame::HelloAck { .. } => {
                    return Err(NetError::UnexpectedFrame("HelloAck at receiver"))
                }
                // The ingest plane never carries query traffic; a query
                // frame here means the peer confused the two servers.
                NetFrame::QueryReq { .. } | NetFrame::EpochsReq { .. } => {
                    return Err(NetError::UnexpectedFrame("query request at ingest receiver"))
                }
                NetFrame::QueryResp { .. } | NetFrame::EpochsResp { .. } => {
                    return Err(NetError::UnexpectedFrame("query response at ingest receiver"))
                }
            }
        }
        Ok(())
    }

    /// Stages the batched control traffic for everything applied since
    /// the last flush: per ack-dirty stream, one cumulative `Ack` and —
    /// only when the grant schedule says one is due — one `Credit`.
    ///
    /// The [`driver`](crate::driver) pumps call this once per round
    /// (and [`take_staged`](Self::take_staged) calls it for manual
    /// pumping), which is what turns per-frame control chatter into
    /// per-round batches: a round that applies 20 frames of one stream
    /// acks them with a single 21-byte frame.
    pub fn flush_control(&mut self) {
        while let Some(stream) = self.ack_dirty.pop_first() {
            let ack = self.demux.ack_point(stream);
            self.stage_frame(&NetFrame::Ack { stream, through_seq: ack });
            self.acks_staged += 1;
            let grant = self.windows.get_mut(&stream).and_then(|w| w.due_grant());
            if let Some(granted_total) = grant {
                self.stage_frame(&NetFrame::Credit { stream, granted_total });
                self.credits_staged += 1;
            }
        }
        while let Some(seq) = self.heartbeat_echoes.pop_front() {
            self.stage_frame(&NetFrame::Heartbeat { seq });
        }
    }

    /// The connection died: forget the dead link's partial inbound
    /// frame and its undelivered control bytes, then re-announce this
    /// side's cumulative state — an `Ack` and a `Credit` per known
    /// stream — so the reconnected sender can immediately trim its
    /// replay buffer and resume sending.
    pub fn on_reconnect(&mut self) {
        self.frames.reset();
        self.out.clear();
        self.ack_dirty.clear();
        let refresh: Vec<(u64, u64)> = self
            .demux
            .streams()
            .map(|s| (s, self.windows.get(&s).map_or(self.config.window, |w| w.current_grant())))
            .collect();
        for (stream, granted_total) in refresh {
            let ack = self.demux.ack_point(stream);
            self.stage_frame(&NetFrame::Ack { stream, through_seq: ack });
            self.stage_frame(&NetFrame::Credit { stream, granted_total });
            self.acks_staged += 1;
            self.credits_staged += 1;
        }
    }

    /// This side's cumulative resume state, one cursor per known
    /// stream — the payload of a session-resume `HelloAck`. Equivalent
    /// to what [`on_reconnect`](Self::on_reconnect) would announce as
    /// individual `Ack`/`Credit` frames, delivered atomically with the
    /// handshake instead.
    pub fn resume_cursors(&self) -> Vec<ResumeCursor> {
        self.demux
            .streams()
            .map(|stream| ResumeCursor {
                stream,
                through_seq: self.demux.ack_point(stream),
                granted_total: self
                    .windows
                    .get(&stream)
                    .map_or(self.config.window, |w| w.current_grant()),
            })
            .collect()
    }

    /// The link died but the session survives: forget the dead link's
    /// partial inbound frame, its undelivered control bytes, and any
    /// batched-but-unflushed acks — **without** staging anything. The
    /// session handshake announces this side's cumulative state through
    /// the `HelloAck` resume cursors instead, so the per-stream refresh
    /// of [`on_reconnect`](Self::on_reconnect) would be redundant bytes.
    pub fn reset_link(&mut self) {
        self.frames.reset();
        self.out.clear();
        self.ack_dirty.clear();
        self.heartbeat_echoes.clear();
    }

    /// Stages one session-layer frame (`HelloAck`, handshake-time
    /// heartbeats) ahead of whatever control traffic follows.
    pub(crate) fn stage_session(&mut self, frame: &NetFrame) {
        self.stage_frame(frame);
    }

    /// The reconstruction state: per-stream segment logs, coverage,
    /// counters.
    pub fn demux(&self) -> &StreamDemux<C> {
        &self.demux
    }

    /// Mutable access to the reconstruction state — the collector uses
    /// it to flush a finished stream's trailing hold segment
    /// ([`StreamDemux::flush_stream`]) before publishing.
    pub fn demux_mut(&mut self) -> &mut StreamDemux<C> {
        &mut self.demux
    }

    /// Consumes the receiver, handing back the demultiplexer (for
    /// [`StreamDemux::into_segment_logs`]).
    pub fn into_demux(self) -> StreamDemux<C> {
        self.demux
    }

    /// Streams whose `Fin` has arrived, ascending.
    pub fn finished_streams(&self) -> impl Iterator<Item = u64> + '_ {
        self.finished.keys().copied()
    }

    /// Whether `stream` is complete.
    pub fn is_finished(&self, stream: u64) -> bool {
        self.finished.contains_key(&stream)
    }

    /// Current endpoint counters (frames applied, duplicates dropped,
    /// control frames staged).
    pub fn stats(&self) -> ReceiverStats {
        ReceiverStats {
            frames_applied: self.frames_applied,
            dup_drops: self.dup_drops,
            streams: self.demux.streams().count(),
            finished_streams: self.finished.len(),
            acks_staged: self.acks_staged,
            credits_staged: self.credits_staged,
            heartbeats: self.heartbeats,
            stray_hellos: self.stray_hellos,
        }
    }

    /// Bytes staged for the link (acks, credit grants) but not yet
    /// written. Control for freshly applied frames is staged by
    /// [`flush_control`](Self::flush_control) — the driver pumps run it
    /// every round, so after a pump this is an exact "nothing left to
    /// send" test.
    pub fn staged_bytes(&self) -> usize {
        self.out.pending()
    }

    /// Whether an un-flushed batched ack is pending
    /// ([`flush_control`](Self::flush_control) would stage bytes).
    pub fn control_dirty(&self) -> bool {
        !self.ack_dirty.is_empty() || !self.heartbeat_echoes.is_empty()
    }

    /// Flushes batched control and drains every staged byte (manual
    /// pumping).
    pub fn take_staged(&mut self) -> Vec<u8> {
        self.flush_control();
        self.out.take()
    }

    pub(crate) fn outbox(&mut self) -> &mut Outbox {
        &mut self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pla_transport::wire::{FixedCodec, Message};

    fn payload(stream: u64, msgs: &[Message]) -> Bytes {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        codec.encode(&Message::StreamFrame { stream }, 1, &mut buf);
        for m in msgs {
            codec.encode(m, 1, &mut buf);
        }
        buf.freeze()
    }

    fn data_bytes(stream: u64, seq: u64, msgs: &[Message]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Data { stream, seq, payload: payload(stream, msgs) }, &mut buf);
        buf.to_vec()
    }

    fn control_frames(rx: &mut NetReceiver<FixedCodec>) -> Vec<NetFrame> {
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&rx.take_staged());
        let mut out = Vec::new();
        while let Some(f) = dec.try_next().unwrap() {
            out.push(f);
        }
        out
    }

    #[test]
    fn applied_data_is_acked_and_counted() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(3, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        assert!(rx.control_dirty());
        let ctl = control_frames(&mut rx);
        assert_eq!(ctl, vec![NetFrame::Ack { stream: 3, through_seq: 1 }]);
        assert_eq!(rx.demux().segments(3).unwrap().len(), 1);
        assert_eq!(rx.stats().frames_applied, 1);
        assert!(!rx.control_dirty());
    }

    #[test]
    fn acks_batch_to_one_frame_per_stream_per_flush() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        // Five frames for stream 3, two for stream 8, in one round.
        for seq in 1..=5 {
            let t = seq as f64;
            rx.on_bytes(&data_bytes(3, seq, &[Message::Point { t, x: vec![1.0] }])).unwrap();
        }
        for seq in 1..=2 {
            let t = seq as f64;
            rx.on_bytes(&data_bytes(8, seq, &[Message::Point { t, x: vec![2.0] }])).unwrap();
        }
        let ctl = control_frames(&mut rx);
        let acks: Vec<&NetFrame> =
            ctl.iter().filter(|f| matches!(f, NetFrame::Ack { .. })).collect();
        assert_eq!(
            acks,
            vec![
                &NetFrame::Ack { stream: 3, through_seq: 5 },
                &NetFrame::Ack { stream: 8, through_seq: 2 },
            ],
            "one cumulative ack per stream per round, not per frame"
        );
        assert_eq!(rx.stats().acks_staged, 2);
        // Nothing new ⇒ the next flush stages nothing.
        assert!(control_frames(&mut rx).is_empty());
    }

    #[test]
    fn duplicates_are_dropped_but_reacked() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        let frame = data_bytes(3, 1, &[Message::Point { t: 0.0, x: vec![1.0] }]);
        rx.on_bytes(&frame).unwrap();
        let _ = control_frames(&mut rx);
        rx.on_bytes(&frame).unwrap();
        let ctl = control_frames(&mut rx);
        assert_eq!(ctl, vec![NetFrame::Ack { stream: 3, through_seq: 1 }], "re-ack the replay");
        assert_eq!(rx.demux().segments(3).unwrap().len(), 1, "no duplicate segment");
        assert_eq!(rx.stats().dup_drops, 1, "the dropped replay is counted");
    }

    #[test]
    fn consumption_regrants_credit() {
        let cfg = NetConfig { window: 64, max_frame: 1 << 20 };
        let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
        // Each Point frame payload is 9 (header) + 17 = 26 bytes; two of
        // them cross half the 64-byte window.
        rx.on_bytes(&data_bytes(1, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        rx.on_bytes(&data_bytes(1, 2, &[Message::Point { t: 1.0, x: vec![2.0] }])).unwrap();
        let ctl = control_frames(&mut rx);
        assert!(
            ctl.contains(&NetFrame::Credit { stream: 1, granted_total: 52 + 64 }),
            "expected a top-up grant, got {ctl:?}"
        );
        assert_eq!(rx.stats().credits_staged, 1);
    }

    #[test]
    fn fin_requires_every_frame_applied() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(2, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let mut early_fin = BytesMut::new();
        encode(&NetFrame::Fin { stream: 2, final_seq: 5 }, &mut early_fin);
        assert_eq!(
            rx.on_bytes(&early_fin),
            Err(NetError::IncompleteFin { stream: 2, final_seq: 5, applied: 1 })
        );
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(2, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let mut fin = BytesMut::new();
        encode(&NetFrame::Fin { stream: 2, final_seq: 1 }, &mut fin);
        rx.on_bytes(&fin).unwrap();
        assert!(rx.is_finished(2));
        // A replayed Fin is idempotent.
        rx.on_bytes(&fin).unwrap();
        assert_eq!(rx.finished_streams().collect::<Vec<_>>(), vec![2]);
        assert_eq!(rx.stats().finished_streams, 1);
    }

    #[test]
    fn reconnect_reannounces_cumulative_state() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(7, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let _ = control_frames(&mut rx); // acks lost with the old link
        rx.on_reconnect();
        let ctl = control_frames(&mut rx);
        assert!(ctl.contains(&NetFrame::Ack { stream: 7, through_seq: 1 }));
        assert!(ctl.iter().any(|f| matches!(f, NetFrame::Credit { stream: 7, .. })));
    }

    #[test]
    fn reconnect_supersedes_pending_batched_acks() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(7, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        // Ack still batched (dirty) when the link dies: the reconnect
        // refresh must not double-stage it.
        assert!(rx.control_dirty());
        rx.on_reconnect();
        assert!(!rx.control_dirty());
        let ctl = control_frames(&mut rx);
        let acks = ctl.iter().filter(|f| matches!(f, NetFrame::Ack { .. })).count();
        assert_eq!(acks, 1, "exactly one ack after the refresh, got {ctl:?}");
    }

    #[test]
    fn heartbeats_are_echoed_on_the_next_flush() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        let mut buf = BytesMut::new();
        encode(&NetFrame::Heartbeat { seq: 11 }, &mut buf);
        encode(&NetFrame::Heartbeat { seq: 12 }, &mut buf);
        rx.on_bytes(&buf).unwrap();
        assert!(rx.control_dirty(), "pending echoes count as dirty control");
        let ctl = control_frames(&mut rx);
        assert_eq!(
            ctl,
            vec![NetFrame::Heartbeat { seq: 11 }, NetFrame::Heartbeat { seq: 12 }],
            "each probe echoed verbatim, in order"
        );
        assert_eq!(rx.stats().heartbeats, 2);
        // A probe flood keeps only the newest echoes.
        let mut flood = BytesMut::new();
        for seq in 0..100u64 {
            encode(&NetFrame::Heartbeat { seq }, &mut flood);
        }
        rx.on_bytes(&flood).unwrap();
        let ctl = control_frames(&mut rx);
        assert_eq!(ctl.len(), super::HEARTBEAT_ECHO_CAP);
        assert_eq!(*ctl.last().unwrap(), NetFrame::Heartbeat { seq: 99 });
    }

    #[test]
    fn in_session_hello_is_ignored_but_counted() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(3, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let mut buf = BytesMut::new();
        encode(&NetFrame::Hello { version: 1, token: 42 }, &mut buf);
        rx.on_bytes(&buf).unwrap();
        assert_eq!(rx.stats().stray_hellos, 1);
        // The session keeps working afterwards.
        rx.on_bytes(&data_bytes(3, 2, &[Message::Point { t: 1.0, x: vec![2.0] }])).unwrap();
        assert_eq!(rx.stats().frames_applied, 2);
        // But a HelloAck at the receiver is still a protocol error.
        let mut ack = BytesMut::new();
        encode(&NetFrame::HelloAck { version: 1, token: 1, cursors: vec![] }, &mut ack);
        assert!(matches!(rx.on_bytes(&ack), Err(NetError::UnexpectedFrame(_))));
    }

    #[test]
    fn resume_cursors_mirror_ack_and_grant_state() {
        let cfg = NetConfig { window: 64, max_frame: 1 << 20 };
        let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
        rx.on_bytes(&data_bytes(1, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        rx.on_bytes(&data_bytes(1, 2, &[Message::Point { t: 1.0, x: vec![2.0] }])).unwrap();
        rx.on_bytes(&data_bytes(4, 1, &[Message::Point { t: 0.0, x: vec![3.0] }])).unwrap();
        let cursors = rx.resume_cursors();
        assert_eq!(cursors.len(), 2);
        assert_eq!(cursors[0].stream, 1);
        assert_eq!(cursors[0].through_seq, 2);
        assert!(cursors[0].granted_total >= 64, "grant covers at least the initial window");
        assert_eq!(cursors[1].stream, 4);
        assert_eq!(cursors[1].through_seq, 1);
    }

    #[test]
    fn reset_link_clears_without_staging() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(7, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        assert!(rx.control_dirty());
        rx.reset_link();
        assert!(!rx.control_dirty());
        assert_eq!(rx.staged_bytes(), 0, "reset_link must not stage the refresh");
        // The cumulative state survives for the HelloAck cursors.
        assert_eq!(rx.resume_cursors()[0].through_seq, 1);
    }

    #[test]
    fn control_frames_at_the_receiver_are_protocol_errors() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        let mut buf = BytesMut::new();
        encode(&NetFrame::Ack { stream: 1, through_seq: 1 }, &mut buf);
        assert!(matches!(rx.on_bytes(&buf), Err(NetError::UnexpectedFrame(_))));
    }

    /// Batched control lives in `ack_dirty`/`heartbeat_echoes`, not in
    /// the outbox, until a flush — so `staged_bytes()` alone reads
    /// "drained" while an ack is still owed. Completion checks must
    /// pair it with `control_dirty()`, and `take_staged()` must flush
    /// the batch rather than hand back the empty outbox.
    #[test]
    fn take_staged_flushes_batched_acks_that_staged_bytes_misses() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(4, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        assert_eq!(rx.staged_bytes(), 0, "the batched ack is not in the outbox yet");
        assert!(rx.control_dirty(), "but the connection is not drained");
        let drained = rx.take_staged();
        assert!(!drained.is_empty(), "take_staged flushed the batch it was owed");
        assert!(!rx.control_dirty());
        assert_eq!(rx.staged_bytes(), 0);
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&drained);
        assert_eq!(dec.try_next().unwrap(), Some(NetFrame::Ack { stream: 4, through_seq: 1 }));
        assert_eq!(dec.try_next().unwrap(), None);

        // Same trap with a pending heartbeat echo: zero staged bytes,
        // dirty control.
        let mut probe = BytesMut::new();
        encode(&NetFrame::Heartbeat { seq: 9 }, &mut probe);
        rx.on_bytes(&probe).unwrap();
        assert_eq!(rx.staged_bytes(), 0);
        assert!(rx.control_dirty());
        let drained = rx.take_staged();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&drained);
        assert_eq!(dec.try_next().unwrap(), Some(NetFrame::Heartbeat { seq: 9 }));
        // Fully drained now: both signals agree.
        assert!(!rx.control_dirty());
        assert!(rx.take_staged().is_empty());
    }
}
