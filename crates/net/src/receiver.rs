//! The receiving endpoint: framed bytes in, per-stream segment logs
//! out, acks and credit grants back.
//!
//! [`NetReceiver`] is the sans-I/O twin of
//! [`MuxSender`](crate::MuxSender): it owns the
//! [`FrameDecoder`](crate::frame::FrameDecoder), a
//! [`StreamDemux`] (which performs the actual segment reconstruction
//! and the sequence-number dedup that makes replay safe), and one
//! [`ReceiveWindow`](crate::credit::ReceiveWindow) per stream for
//! credit scheduling.

use std::collections::BTreeMap;

use bytes::BytesMut;

use pla_transport::wire::Codec;
use pla_transport::{SeqOutcome, StreamDemux};

use crate::credit::ReceiveWindow;
use crate::frame::{encode, FrameDecoder, NetFrame, Outbox};
use crate::{NetConfig, NetError};

/// The multiplexed receiver. Feed it link bytes with
/// [`on_bytes`](Self::on_bytes); collect its outbound `Ack`/`Credit`
/// control frames from [`take_staged`](Self::take_staged) (or the
/// [`driver`](crate::driver) pumps); read the reconstruction from
/// [`demux`](Self::demux).
pub struct NetReceiver<C: Codec> {
    frames: FrameDecoder,
    demux: StreamDemux<C>,
    windows: BTreeMap<u64, ReceiveWindow>,
    /// Streams whose `Fin` arrived, with their final sequence number.
    finished: BTreeMap<u64, u64>,
    out: Outbox,
    config: NetConfig,
    scratch: BytesMut,
}

impl<C: Codec> NetReceiver<C> {
    /// Creates a receiver for `dims`-dimensional streams. `config` must
    /// match the sender's (the initial credit window is an implicit
    /// shared constant).
    pub fn new(codec: C, dims: usize, config: NetConfig) -> Self {
        Self {
            frames: FrameDecoder::new(config.max_frame),
            demux: StreamDemux::new(codec, dims),
            windows: BTreeMap::new(),
            finished: BTreeMap::new(),
            out: Outbox::default(),
            config,
            scratch: BytesMut::new(),
        }
    }

    fn stage_frame(&mut self, frame: &NetFrame) {
        self.scratch.clear();
        encode(frame, &mut self.scratch);
        self.out.stage(&self.scratch);
    }

    /// Feeds inbound link bytes, applying every complete frame:
    ///
    /// * `Data` → [`StreamDemux::consume_sequenced`]; an applied frame
    ///   is acknowledged and counted against the stream's credit
    ///   window (re-granting when half the window is consumed); a
    ///   duplicate (replay after reconnect) is dropped but *re-acked*,
    ///   so a sender whose acks were lost with the old connection can
    ///   still release its replay buffer.
    /// * `Fin` → the stream is complete; verified against the applied
    ///   sequence point.
    /// * `Ack`/`Credit` → protocol error at this endpoint.
    pub fn on_bytes(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.frames.extend(bytes);
        while let Some(frame) = self.frames.try_next()? {
            match frame {
                NetFrame::Data { stream, seq, payload } => {
                    let payload_len = payload.len() as u64;
                    match self.demux.consume_sequenced(stream, seq, payload)? {
                        SeqOutcome::Applied => {
                            let window = self
                                .windows
                                .entry(stream)
                                .or_insert_with(|| ReceiveWindow::new(self.config.window));
                            window.on_delivered(payload_len);
                            let grant = window.due_grant();
                            let ack = self.demux.ack_point(stream);
                            self.stage_frame(&NetFrame::Ack { stream, through_seq: ack });
                            if let Some(granted_total) = grant {
                                self.stage_frame(&NetFrame::Credit { stream, granted_total });
                            }
                        }
                        SeqOutcome::Duplicate => {
                            let ack = self.demux.ack_point(stream);
                            self.stage_frame(&NetFrame::Ack { stream, through_seq: ack });
                        }
                    }
                }
                NetFrame::Fin { stream, final_seq } => {
                    let applied = self.demux.ack_point(stream);
                    if applied != final_seq {
                        return Err(NetError::IncompleteFin { stream, final_seq, applied });
                    }
                    // Idempotent: a replayed Fin re-records the same fact.
                    self.finished.insert(stream, final_seq);
                }
                NetFrame::Ack { .. } => return Err(NetError::UnexpectedFrame("Ack at receiver")),
                NetFrame::Credit { .. } => {
                    return Err(NetError::UnexpectedFrame("Credit at receiver"))
                }
            }
        }
        Ok(())
    }

    /// The connection died: forget the dead link's partial inbound
    /// frame and its undelivered control bytes, then re-announce this
    /// side's cumulative state — an `Ack` and a `Credit` per known
    /// stream — so the reconnected sender can immediately trim its
    /// replay buffer and resume sending.
    pub fn on_reconnect(&mut self) {
        self.frames.reset();
        self.out.clear();
        let refresh: Vec<(u64, u64)> = self
            .demux
            .streams()
            .map(|s| (s, self.windows.get(&s).map_or(self.config.window, |w| w.current_grant())))
            .collect();
        for (stream, granted_total) in refresh {
            let ack = self.demux.ack_point(stream);
            self.stage_frame(&NetFrame::Ack { stream, through_seq: ack });
            self.stage_frame(&NetFrame::Credit { stream, granted_total });
        }
    }

    /// The reconstruction state: per-stream segment logs, coverage,
    /// counters.
    pub fn demux(&self) -> &StreamDemux<C> {
        &self.demux
    }

    /// Consumes the receiver, handing back the demultiplexer (for
    /// [`StreamDemux::into_segment_logs`]).
    pub fn into_demux(self) -> StreamDemux<C> {
        self.demux
    }

    /// Streams whose `Fin` has arrived, ascending.
    pub fn finished_streams(&self) -> impl Iterator<Item = u64> + '_ {
        self.finished.keys().copied()
    }

    /// Whether `stream` is complete.
    pub fn is_finished(&self, stream: u64) -> bool {
        self.finished.contains_key(&stream)
    }

    /// Bytes staged for the link (acks, credit grants) but not yet
    /// written.
    pub fn staged_bytes(&self) -> usize {
        self.out.pending()
    }

    /// Drains every staged control byte (manual pumping).
    pub fn take_staged(&mut self) -> Vec<u8> {
        self.out.take()
    }

    pub(crate) fn outbox(&mut self) -> &mut Outbox {
        &mut self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pla_transport::wire::{FixedCodec, Message};

    fn payload(stream: u64, msgs: &[Message]) -> Bytes {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        codec.encode(&Message::StreamFrame { stream }, 1, &mut buf);
        for m in msgs {
            codec.encode(m, 1, &mut buf);
        }
        buf.freeze()
    }

    fn data_bytes(stream: u64, seq: u64, msgs: &[Message]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Data { stream, seq, payload: payload(stream, msgs) }, &mut buf);
        buf.to_vec()
    }

    fn control_frames(rx: &mut NetReceiver<FixedCodec>) -> Vec<NetFrame> {
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&rx.take_staged());
        let mut out = Vec::new();
        while let Some(f) = dec.try_next().unwrap() {
            out.push(f);
        }
        out
    }

    #[test]
    fn applied_data_is_acked_and_counted() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(3, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let ctl = control_frames(&mut rx);
        assert_eq!(ctl, vec![NetFrame::Ack { stream: 3, through_seq: 1 }]);
        assert_eq!(rx.demux().segments(3).unwrap().len(), 1);
    }

    #[test]
    fn duplicates_are_dropped_but_reacked() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        let frame = data_bytes(3, 1, &[Message::Point { t: 0.0, x: vec![1.0] }]);
        rx.on_bytes(&frame).unwrap();
        let _ = control_frames(&mut rx);
        rx.on_bytes(&frame).unwrap();
        let ctl = control_frames(&mut rx);
        assert_eq!(ctl, vec![NetFrame::Ack { stream: 3, through_seq: 1 }], "re-ack the replay");
        assert_eq!(rx.demux().segments(3).unwrap().len(), 1, "no duplicate segment");
    }

    #[test]
    fn consumption_regrants_credit() {
        let cfg = NetConfig { window: 64, max_frame: 1 << 20 };
        let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
        // Each Point frame payload is 9 (header) + 17 = 26 bytes; two of
        // them cross half the 64-byte window.
        rx.on_bytes(&data_bytes(1, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        rx.on_bytes(&data_bytes(1, 2, &[Message::Point { t: 1.0, x: vec![2.0] }])).unwrap();
        let ctl = control_frames(&mut rx);
        assert!(
            ctl.contains(&NetFrame::Credit { stream: 1, granted_total: 52 + 64 }),
            "expected a top-up grant, got {ctl:?}"
        );
    }

    #[test]
    fn fin_requires_every_frame_applied() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(2, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let mut early_fin = BytesMut::new();
        encode(&NetFrame::Fin { stream: 2, final_seq: 5 }, &mut early_fin);
        assert_eq!(
            rx.on_bytes(&early_fin),
            Err(NetError::IncompleteFin { stream: 2, final_seq: 5, applied: 1 })
        );
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(2, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let mut fin = BytesMut::new();
        encode(&NetFrame::Fin { stream: 2, final_seq: 1 }, &mut fin);
        rx.on_bytes(&fin).unwrap();
        assert!(rx.is_finished(2));
        // A replayed Fin is idempotent.
        rx.on_bytes(&fin).unwrap();
        assert_eq!(rx.finished_streams().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn reconnect_reannounces_cumulative_state() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        rx.on_bytes(&data_bytes(7, 1, &[Message::Point { t: 0.0, x: vec![1.0] }])).unwrap();
        let _ = control_frames(&mut rx); // acks lost with the old link
        rx.on_reconnect();
        let ctl = control_frames(&mut rx);
        assert!(ctl.contains(&NetFrame::Ack { stream: 7, through_seq: 1 }));
        assert!(ctl.iter().any(|f| matches!(f, NetFrame::Credit { stream: 7, .. })));
    }

    #[test]
    fn control_frames_at_the_receiver_are_protocol_errors() {
        let mut rx = NetReceiver::new(FixedCodec, 1, NetConfig::default());
        let mut buf = BytesMut::new();
        encode(&NetFrame::Ack { stream: 1, through_seq: 1 }, &mut buf);
        assert!(matches!(rx.on_bytes(&buf), Err(NetError::UnexpectedFrame(_))));
    }
}
