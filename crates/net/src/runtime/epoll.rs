//! The Linux `epoll` reactor.
//!
//! Same offline policy as the rest of the runtime: no `libc` crate, no
//! `mio` — the four syscalls this file needs (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, plus `read`/`write`/`close` on
//! the wake fd) are declared directly against the C library `std`
//! already links.
//!
//! Shape:
//!
//! * Futures waiting on a real fd ([`Interest::Read`]/[`Write`]) are
//!   armed in the epoll set and sleep until the kernel reports that fd
//!   ready — no periodic polling, wake latency is the syscall's.
//! * Futures with no fd (a [`MemoryLink`](crate::MemoryLink), a bare
//!   [`io_op`](super::io_op)) keep PR 4's poll-loop semantics: while
//!   any exists, the `epoll_wait` timeout is clamped to the poll
//!   interval and they are all re-fired after each wait. Caveat:
//!   `epoll_wait` counts whole milliseconds, so the sub-millisecond
//!   poll interval rounds up to 1 ms here — sourceless futures poll
//!   ~5× less often than under the poll-loop reactor. Fd-backed and
//!   cross-thread wakes are unaffected (they interrupt the wait);
//!   latency-sensitive sourceless workloads should pick
//!   [`ReactorKind::PollLoop`](super::ReactorKind::PollLoop).
//! * Cross-thread wakes write an `eventfd` that lives permanently in
//!   the epoll set, so a remote [`Waker`] interrupts the wait instead
//!   of riding out its timeout.
//!
//! Registration is level-triggered and rebuilt lazily: each `wait`
//! syncs the epoll set to the union of current waiters' interests per
//! fd (`EPOLL_CTL_ADD`/`MOD`/`DEL`), which keeps the waiter bookkeeping
//! trivially correct across fds closing mid-session (a failed `ctl` on
//! a dead fd is ignored; its waiters fire on the next poll bound).

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_void};
use std::sync::Arc;
use std::task::Waker;
use std::time::Duration;

use super::reactor::{EventSource, Interest, POLL_INTERVAL};

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;

/// Mirror of the kernel's `struct epoll_event`. x86-64 is the one ABI
/// where it is packed; every other Linux target lays it out naturally.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    /// Kernel-opaque cookie; this reactor stores the fd itself.
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn interest_mask(interest: Interest) -> u32 {
    match interest {
        Interest::Read => EPOLLIN,
        Interest::Write => EPOLLOUT,
        Interest::ReadWrite => EPOLLIN | EPOLLOUT,
    }
}

/// The wake eventfd, shared between the reactor (which drains it) and
/// every cross-thread [`Notifier`](super::reactor::Notifier) clone
/// (which signals it). `Arc` ownership keeps the fd alive for as long
/// as any waker that might write it exists, so a late wake after
/// `block_on` returns hits a still-open (merely unread) eventfd rather
/// than a recycled descriptor.
pub(crate) struct WakeFd {
    fd: c_int,
}

// SAFETY: signalling/draining an eventfd is thread-safe by kernel
// contract; the struct holds nothing but the descriptor.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}

impl WakeFd {
    /// Makes the executor's next (or current) `epoll_wait` return.
    pub(crate) fn signal(&self) {
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) is already signalled — both
        // outcomes mean "the wait will wake"; nothing to handle.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// One parked fd-waiter.
struct FdWaiter {
    fd: EventSource,
    mask: u32,
    waker: Waker,
}

pub(crate) struct EpollReactor {
    epfd: c_int,
    wake: Arc<WakeFd>,
    /// Waiters with a readiness source, woken selectively.
    fd_waiters: RefCell<Vec<FdWaiter>>,
    /// Sourceless waiters, woken after every wait (poll-loop cadence).
    poll_waiters: RefCell<Vec<Waker>>,
    /// Event mask currently armed in the kernel, per fd.
    armed: RefCell<HashMap<EventSource, u32>>,
}

impl EpollReactor {
    pub(crate) fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wfd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if wfd < 0 {
            let err = io::Error::last_os_error();
            unsafe { close(epfd) };
            return Err(err);
        }
        let wake = Arc::new(WakeFd { fd: wfd });
        let mut ev = EpollEvent { events: EPOLLIN, data: wfd as u64 };
        if unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, wfd, &mut ev) } < 0 {
            let err = io::Error::last_os_error();
            unsafe { close(epfd) };
            return Err(err);
        }
        Ok(Self {
            epfd,
            wake,
            fd_waiters: RefCell::new(Vec::new()),
            poll_waiters: RefCell::new(Vec::new()),
            armed: RefCell::new(HashMap::new()),
        })
    }

    pub(crate) fn wake_handle(&self) -> Arc<WakeFd> {
        self.wake.clone()
    }

    pub(crate) fn register(&self, source: Option<(EventSource, Interest)>, waker: Waker) {
        match source {
            Some((fd, interest)) => self.fd_waiters.borrow_mut().push(FdWaiter {
                fd,
                mask: interest_mask(interest),
                waker,
            }),
            None => self.poll_waiters.borrow_mut().push(waker),
        }
    }

    /// Syncs the kernel's armed set to the union of waiter interests.
    fn sync_registrations(&self) {
        let waiters = self.fd_waiters.borrow();
        let mut desired: HashMap<EventSource, u32> = HashMap::new();
        for w in waiters.iter() {
            *desired.entry(w.fd).or_insert(0) |= w.mask;
        }
        let mut armed = self.armed.borrow_mut();
        armed.retain(|&fd, _| {
            if desired.contains_key(&fd) {
                true
            } else {
                // Ignore failures: the fd may already be closed, which
                // removed it from the set implicitly.
                unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
                false
            }
        });
        for (&fd, &mask) in &desired {
            let mut ev = EpollEvent { events: mask, data: fd as u64 };
            match armed.get(&fd) {
                Some(&cur) if cur == mask => {}
                Some(_) => {
                    if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) } == 0 {
                        armed.insert(fd, mask);
                    } else {
                        armed.remove(&fd);
                    }
                }
                None => {
                    if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) } == 0 {
                        armed.insert(fd, mask);
                    }
                    // A refused ADD (dead or unpollable fd) leaves the
                    // waiter to the poll bound below.
                }
            }
        }
        // Any waiter whose fd could not be armed must not sleep
        // unboundedly; the poll bound in wait() covers it.
    }

    /// Whether every fd-waiter is actually armed in the kernel (an
    /// unarmed waiter forces the poll-loop bound so it cannot be lost).
    fn fully_armed(&self) -> bool {
        let armed = self.armed.borrow();
        self.fd_waiters.borrow().iter().all(|w| armed.contains_key(&w.fd))
    }

    pub(crate) fn wait(&self, timeout: Duration) {
        self.sync_registrations();
        let poll_bound = !self.poll_waiters.borrow().is_empty() || !self.fully_armed();
        let timeout = if poll_bound { timeout.min(POLL_INTERVAL) } else { timeout };
        // epoll_wait counts in whole milliseconds; round a short
        // non-zero bound up so it stays a sleep, not a spin.
        let ms: c_int = if timeout.is_zero() {
            0
        } else {
            timeout.as_millis().clamp(1, c_int::MAX as u128) as c_int
        };
        let mut events = [EpollEvent { events: 0, data: 0 }; 64];
        let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as c_int, ms) };
        // EINTR or any other failure: treat as a timeout tick; the
        // executor loop re-enters and the poll bound guarantees
        // progress.
        for ev in events.iter().take(n.max(0) as usize) {
            let fd = ev.data as EventSource;
            if fd == self.wake.fd {
                self.wake.drain();
                continue;
            }
            let ready = ev.events
                | if ev.events & (EPOLLERR | EPOLLHUP) != 0 {
                    // Errors and hangups wake both directions: the waiter
                    // must observe the failure from its own try_read/write.
                    EPOLLIN | EPOLLOUT
                } else {
                    0
                };
            let mut due = Vec::new();
            self.fd_waiters.borrow_mut().retain(|w| {
                if w.fd == fd && w.mask & ready != 0 {
                    due.push(w.waker.clone());
                    false
                } else {
                    true
                }
            });
            for waker in due {
                waker.wake();
            }
        }
        for waker in self.poll_waiters.borrow_mut().drain(..) {
            waker.wake();
        }
    }
}

impl Drop for EpollReactor {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
        // self.wake closes via Arc<WakeFd> once the last notifier drops.
    }
}
