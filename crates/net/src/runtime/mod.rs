//! A minimal single-threaded futures runtime: executor, timers, and a
//! pluggable *reactor* over non-blocking I/O.
//!
//! The offline-build policy that vendors `rand`/`bytes`/`proptest`/
//! `criterion` as API stand-ins (see `vendor/README.md`) applies to the
//! async runtime too: no `tokio`, no `mio` — just `std` (plus, on
//! Linux, the handful of raw syscall declarations in the private
//! `epoll` module). The
//! design is the smallest thing that honestly drives this crate's
//! transport:
//!
//! * **Executor** — single-threaded, cooperative. Tasks are `!Send`
//!   futures boxed on the local heap; wakers carry a task id into a
//!   mutex-protected ready queue (wakers must be `Send`, the tasks never
//!   leave the thread). [`block_on`] runs a root future plus everything
//!   it [`spawn`](Spawner::spawn)s.
//! * **Reactor** — selected at construction ([`block_on_with`]), behind
//!   the [`io_op`]/[`io_ready`] seam:
//!   [`PollLoop`](ReactorKind::PollLoop) re-fires every parked I/O
//!   waker after a short bounded park (≤ 200 µs — portable, zero
//!   platform code, deterministic for tests), while epoll (Linux, the
//!   [`Default`](ReactorKind::default)) parks fd-backed waiters on
//!   `epoll_wait` so idle connections cost no polling at all. Futures
//!   without an OS readiness source (e.g. over a
//!   [`MemoryLink`](crate::MemoryLink)) keep poll-loop cadence under
//!   either reactor (rounded up to epoll's 1 ms timer granularity
//!   there).
//! * **Timers** — a deadline list consulted for the wait timeout;
//!   [`sleep`] and [`yield_now`] are the primitives the drivers use for
//!   backoff.
//!
//! ```
//! use pla_net::runtime;
//! use std::{cell::Cell, rc::Rc};
//!
//! let hits = Rc::new(Cell::new(0u32));
//! let h = hits.clone();
//! let out = runtime::block_on(async move {
//!     let spawner = runtime::spawner();
//!     let h2 = h.clone();
//!     spawner.spawn(async move { h2.set(h2.get() + 21) });
//!     // Turns are FIFO: the first yield queues this task's own wake
//!     // ahead of the child, so yield twice to see the child's effect.
//!     runtime::yield_now().await;
//!     runtime::yield_now().await;
//!     h.get() + 21
//! });
//! assert_eq!(out, 42);
//! ```

#[cfg(target_os = "linux")]
mod epoll;
mod reactor;

pub use reactor::{EventSource, Interest, ReactorKind};

use reactor::{Notifier, Reactor};

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::io;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Wakes the executor thread and marks one task runnable. This is the
/// only piece that crosses threads, hence the `Mutex` (uncontended in
/// the single-threaded common case).
struct TaskWaker {
    id: u64,
    ready: Arc<ReadyQueue>,
}

struct ReadyQueue {
    ids: Mutex<VecDeque<u64>>,
    notifier: Notifier,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        self.ids.lock().expect("ready queue").push_back(id);
        self.notifier.notify();
    }

    fn pop(&self) -> Option<u64> {
        self.ids.lock().expect("ready queue").pop_front()
    }
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// Reactor + spawner state shared between the executor and the futures
/// it polls, installed in a thread-local while the executor runs.
struct Shared {
    /// Tasks spawned from inside other tasks, picked up each turn.
    spawned: RefCell<Vec<LocalFuture>>,
    /// Wakes suspended I/O futures; see [`reactor`] for the two
    /// implementations.
    reactor: Reactor,
    /// Timer deadlines with their wakers.
    timers: RefCell<Vec<(Instant, Waker)>>,
}

impl Shared {
    fn new(kind: ReactorKind) -> Rc<Self> {
        Rc::new(Self {
            spawned: RefCell::new(Vec::new()),
            reactor: Reactor::new(kind),
            timers: RefCell::new(Vec::new()),
        })
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<Shared>>> = const { RefCell::new(None) };
}

fn with_shared<R>(f: impl FnOnce(&Shared) -> R) -> R {
    CURRENT.with(|cur| {
        let cur = cur.borrow();
        let shared = cur.as_ref().expect(
            "pla-net runtime primitive used outside runtime::block_on \
             (sleep/io_op/spawn need a running executor)",
        );
        f(shared)
    })
}

/// Resets the thread-local runtime slot when `block_on` unwinds.
struct CurrentGuard;

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|cur| *cur.borrow_mut() = None);
    }
}

/// Spawns tasks onto the running executor from inside a task.
#[derive(Clone)]
pub struct Spawner {
    shared: Rc<Shared>,
}

impl Spawner {
    /// Queues `fut` to run on the current executor. The task is polled
    /// starting with the executor's next turn.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.shared.spawned.borrow_mut().push(Box::pin(fut));
    }
}

/// A [`Spawner`] for the running executor.
///
/// # Panics
///
/// Panics outside [`block_on`].
pub fn spawner() -> Spawner {
    let shared = CURRENT.with(|cur| {
        cur.borrow()
            .as_ref()
            .expect(
                "pla-net runtime primitive used outside runtime::block_on \
                 (sleep/io_op/spawn need a running executor)",
            )
            .clone()
    });
    Spawner { shared }
}

/// The reactor implementation actually driving the current executor
/// (after any platform fallback).
///
/// # Panics
///
/// Panics outside [`block_on`].
pub fn active_reactor() -> ReactorKind {
    with_shared(|s| s.reactor.kind())
}

/// Runs `root` on the host's default reactor (epoll on Linux, the
/// portable poll loop elsewhere). See [`block_on_with`].
pub fn block_on<F: Future>(root: F) -> F::Output {
    block_on_with(ReactorKind::default(), root)
}

/// Runs `root` to completion on the current thread with the requested
/// [`ReactorKind`], driving every task it spawns. Spawned tasks still
/// pending when the root completes are dropped (structured teardown:
/// the root future owns the session).
pub fn block_on_with<F: Future>(kind: ReactorKind, root: F) -> F::Output {
    let shared = Shared::new(kind);
    CURRENT.with(|cur| {
        assert!(cur.borrow().is_none(), "nested runtime::block_on on one thread");
        *cur.borrow_mut() = Some(shared.clone());
    });
    let _guard = CurrentGuard;

    let ready = Arc::new(ReadyQueue {
        ids: Mutex::new(VecDeque::new()),
        notifier: shared.reactor.notifier(),
    });
    const ROOT_ID: u64 = 0;
    let mut next_id: u64 = 1;
    let mut tasks: HashMap<u64, LocalFuture> = HashMap::new();
    let mut root = Box::pin(root);
    ready.push(ROOT_ID);

    // Adopt tasks spawned since the last check: queueing them right
    // after the spawning task's poll keeps turns FIFO-fair (a task that
    // spawns then self-wakes cannot starve its children).
    let mut adopt = |tasks: &mut HashMap<u64, LocalFuture>| {
        for fut in shared.spawned.borrow_mut().drain(..) {
            let id = next_id;
            next_id += 1;
            tasks.insert(id, fut);
            ready.push(id);
        }
    };

    loop {
        adopt(&mut tasks);

        // Fire due timers.
        let now = Instant::now();
        shared.timers.borrow_mut().retain(|(deadline, waker)| {
            if *deadline <= now {
                waker.wake_by_ref();
                false
            } else {
                true
            }
        });

        // Poll everything runnable.
        let mut polled_any = false;
        while let Some(id) = ready.pop() {
            polled_any = true;
            let waker = Waker::from(Arc::new(TaskWaker { id, ready: ready.clone() }));
            let mut cx = Context::from_waker(&waker);
            if id == ROOT_ID {
                if let Poll::Ready(out) = root.as_mut().poll(&mut cx) {
                    return out;
                }
            } else if let Some(mut fut) = tasks.remove(&id) {
                if fut.as_mut().poll(&mut cx).is_pending() {
                    tasks.insert(id, fut);
                }
            }
            adopt(&mut tasks);
        }
        if polled_any {
            continue;
        }

        // Nothing runnable: the reactor turn. Sleep until I/O readiness
        // (epoll), the bounded poll park, a due timer, or a cross-thread
        // wake — whichever comes first — then fire the due wakers.
        let next_timer = shared.timers.borrow().iter().map(|(d, _)| *d).min();
        let timeout = match next_timer {
            Some(deadline) => deadline.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        shared.reactor.wait(timeout);
    }
}

/// Completes after the given duration (while other tasks keep running).
pub fn sleep(duration: Duration) -> impl Future<Output = ()> {
    let deadline = Instant::now() + duration;
    let mut registered = false;
    std::future::poll_fn(move |cx| {
        if Instant::now() >= deadline {
            Poll::Ready(())
        } else {
            if !registered {
                with_shared(|s| s.timers.borrow_mut().push((deadline, cx.waker().clone())));
                registered = true;
            }
            Poll::Pending
        }
    })
}

/// Yields once, letting every other runnable task take a turn.
pub fn yield_now() -> impl Future<Output = ()> {
    let mut yielded = false;
    std::future::poll_fn(move |cx| {
        if yielded {
            Poll::Ready(())
        } else {
            yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    })
}

/// Suspends until the reactor's next turn: resumes as soon as any waker
/// fires, or after at most one poll interval. This is the sourceless
/// "wait for I/O readiness" primitive — a pump loop over a link with no
/// OS readiness source ([`MemoryLink`](crate::MemoryLink)) awaits this
/// instead of spinning. Fd-backed links should use [`io_ready`], which
/// lets the epoll reactor sleep precisely.
pub fn reactor_tick() -> impl Future<Output = ()> {
    io_ready(None, Interest::ReadWrite)
}

/// Suspends until `source` is ready for `interest` (or, with no source,
/// until the reactor's next poll turn — identical to [`reactor_tick`]).
///
/// Under the epoll reactor a real `source` sleeps in the kernel until
/// its fd is actually readable/writable; under the poll-loop reactor
/// (and for sourceless waits under either) the future re-fires after at
/// most one poll interval. Either way this is a *hint*, not a
/// guarantee: callers re-try their non-blocking operation and re-await,
/// so a spurious wake costs one `WouldBlock`, never correctness.
pub fn io_ready(source: Option<EventSource>, interest: Interest) -> impl Future<Output = ()> {
    let mut registered = false;
    std::future::poll_fn(move |cx| {
        if registered {
            Poll::Ready(())
        } else {
            registered = true;
            with_shared(|s| {
                s.reactor.register(source.map(|fd| (fd, interest)), cx.waker().clone())
            });
            Poll::Pending
        }
    })
}

/// Adapts a non-blocking I/O operation into a future: runs `op`; on
/// [`WouldBlock`](io::ErrorKind::WouldBlock) registers with the
/// reactor and suspends, resolving once the operation
/// eventually returns ready or fails. [`Interrupted`](io::ErrorKind::Interrupted)
/// retries immediately.
///
/// This is the seam between the sans-I/O protocol endpoints and the
/// runtime: `op` typically borrows a [`Link`](crate::Link) through a
/// `RefCell` and attempts one `try_read`/`try_write`. The sourceless
/// form polls; [`io_op_on`] carries the fd so the epoll reactor can
/// sleep precisely.
pub fn io_op<T>(op: impl FnMut() -> io::Result<T>) -> impl Future<Output = io::Result<T>> {
    io_op_on(None, Interest::ReadWrite, op)
}

/// [`io_op`] with an explicit readiness source: on `WouldBlock` the
/// waker parks on `source` for `interest` (kernel-precise under epoll,
/// poll-interval cadence otherwise).
pub fn io_op_on<T>(
    source: Option<EventSource>,
    interest: Interest,
    mut op: impl FnMut() -> io::Result<T>,
) -> impl Future<Output = io::Result<T>> {
    std::future::poll_fn(move |cx| match op() {
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            with_shared(|s| {
                s.reactor.register(source.map(|fd| (fd, interest)), cx.waker().clone())
            });
            Poll::Pending
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            cx.waker().wake_by_ref();
            Poll::Pending
        }
        other => Poll::Ready(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn block_on_returns_root_value() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    #[test]
    fn default_reactor_is_epoll_on_linux() {
        let kind = block_on(async { active_reactor() });
        #[cfg(target_os = "linux")]
        assert_eq!(kind, ReactorKind::Epoll);
        #[cfg(not(target_os = "linux"))]
        assert_eq!(kind, ReactorKind::PollLoop);
    }

    #[test]
    fn poll_loop_reactor_is_always_selectable() {
        let kind = block_on_with(ReactorKind::PollLoop, async { active_reactor() });
        assert_eq!(kind, ReactorKind::PollLoop);
    }

    /// Runs a runtime test under both reactors: the reactor is a pure
    /// wake-up strategy and must never change semantics.
    fn on_both_reactors(f: impl Fn(ReactorKind)) {
        f(ReactorKind::PollLoop);
        #[cfg(target_os = "linux")]
        f(ReactorKind::Epoll);
    }

    #[test]
    fn spawned_tasks_run_and_interleave() {
        on_both_reactors(|kind| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let out = block_on_with(kind, {
                let log = log.clone();
                async move {
                    let spawner = spawner();
                    for id in 0..3 {
                        let log = log.clone();
                        spawner.spawn(async move {
                            log.borrow_mut().push(id);
                            yield_now().await;
                            log.borrow_mut().push(id + 10);
                        });
                    }
                    // Give the children two turns.
                    yield_now().await;
                    yield_now().await;
                    yield_now().await;
                    log.borrow().len()
                }
            });
            assert_eq!(out, 6, "all three tasks completed both halves");
            let log = log.borrow();
            // First halves all ran before any second half (cooperative turns).
            assert_eq!(&log[..3], &[0, 1, 2]);
        });
    }

    #[test]
    fn sleep_orders_by_deadline() {
        on_both_reactors(|kind| {
            let order = Rc::new(RefCell::new(Vec::new()));
            block_on_with(kind, {
                let order = order.clone();
                async move {
                    let spawner = spawner();
                    let o1 = order.clone();
                    spawner.spawn(async move {
                        sleep(Duration::from_millis(20)).await;
                        o1.borrow_mut().push("late");
                    });
                    let o2 = order.clone();
                    spawner.spawn(async move {
                        sleep(Duration::from_millis(1)).await;
                        o2.borrow_mut().push("early");
                    });
                    sleep(Duration::from_millis(40)).await;
                }
            });
            assert_eq!(*order.borrow(), vec!["early", "late"]);
        });
    }

    #[test]
    fn io_op_retries_would_block_until_ready() {
        on_both_reactors(|kind| {
            let attempts = Rc::new(Cell::new(0));
            let result = block_on_with(kind, {
                let attempts = attempts.clone();
                async move {
                    io_op(move || {
                        attempts.set(attempts.get() + 1);
                        if attempts.get() < 4 {
                            Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"))
                        } else {
                            Ok(99u32)
                        }
                    })
                    .await
                }
            });
            assert_eq!(result.unwrap(), 99);
            assert_eq!(attempts.get(), 4);
        });
    }

    #[test]
    fn io_op_propagates_real_errors() {
        on_both_reactors(|kind| {
            let result: io::Result<()> = block_on_with(kind, async {
                io_op(|| Err(io::Error::new(io::ErrorKind::ConnectionReset, "gone"))).await
            });
            assert_eq!(result.unwrap_err().kind(), io::ErrorKind::ConnectionReset);
        });
    }

    /// The epoll reactor against a real kernel object: a task blocked
    /// reading an empty TCP socket must wake when bytes arrive from
    /// another thread — a kernel-readiness wake, not a poll re-fire.
    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_wakes_on_real_socket_readiness() {
        use crate::link::{Link, TcpLink};
        use std::os::unix::io::AsRawFd;

        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => {
                eprintln!("skipping epoll socket test: cannot bind loopback ({e})");
                return;
            }
        };
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let fd = server_stream.as_raw_fd();
        let mut server = TcpLink::from_stream(server_stream).unwrap();

        // The writer fires from another thread after a delay; the
        // suspended reader is woken by fd readiness.
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            use std::io::Write;
            (&client).write_all(b"ping").unwrap();
            client
        });
        let got = block_on_with(ReactorKind::Epoll, async move {
            assert_eq!(active_reactor(), ReactorKind::Epoll);
            let mut buf = [0u8; 8];
            let n = io_op_on(Some(fd), Interest::Read, || server.try_read(&mut buf))
                .await
                .expect("read");
            buf[..n].to_vec()
        });
        assert_eq!(&got, b"ping");
        drop(writer.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "outside runtime::block_on")]
    fn primitives_outside_block_on_panic() {
        with_shared(|_| ());
    }
}
