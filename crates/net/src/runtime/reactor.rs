//! The reactor seam: how suspended I/O futures get woken.
//!
//! Two implementations stand behind one interface, selected when the
//! executor is constructed ([`block_on_with`](super::block_on_with)):
//!
//! * [`PollLoopReactor`] — the portable fallback (and the deterministic
//!   test substrate): wakers parked on I/O are *all* re-fired after a
//!   bounded park (≤ [`POLL_INTERVAL`]), trading a little latency and
//!   some spurious polls for zero platform code. This is PR 4's
//!   original design, unchanged.
//! * `EpollReactor` (Linux, [`epoll`](super::epoll)) — wakers that name
//!   an OS readiness source (a raw fd plus an [`Interest`]) sleep on
//!   `epoll_wait` and are woken only when their fd is actually ready;
//!   sourceless wakers (in-process [`MemoryLink`](crate::MemoryLink)s
//!   have no fd) keep the poll-loop cadence as an upper bound on the
//!   wait.
//!
//! The executor interacts with the reactor at exactly three points:
//! suspended futures [`register`](Reactor::register) a waker, the idle
//! executor [`wait`](Reactor::wait)s, and cross-thread wakes go through
//! the [`Notifier`] (which must be able to interrupt the wait).

use std::cell::RefCell;
use std::task::Waker;
use std::thread::Thread;
use std::time::Duration;

#[cfg(target_os = "linux")]
use super::epoll::EpollReactor;

/// How long the executor parks when pollable (sourceless) waiters are
/// pending and no timer is due sooner — the poll-loop cadence, and the
/// epoll reactor's upper bound while any sourceless waiter exists.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// An OS-level readiness source: a raw file descriptor on unix. The
/// alias keeps non-unix builds compiling (only the Linux epoll reactor
/// ever dereferences one).
#[cfg(unix)]
pub type EventSource = std::os::unix::io::RawFd;
/// An OS-level readiness source (unused placeholder off unix).
#[cfg(not(unix))]
pub type EventSource = i32;

/// Which readiness a suspended I/O future is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the source has bytes to read (or is at EOF/error).
    Read,
    /// Wake when the source can accept more bytes.
    Write,
    /// Wake on either direction.
    ReadWrite,
}

/// Which reactor implementation drives I/O wake-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorKind {
    /// Portable bounded-park polling (PR 4's original reactor); always
    /// available, and the deterministic choice for tests.
    PollLoop,
    /// `epoll`-backed readiness (Linux only). Construction falls back
    /// to [`ReactorKind::PollLoop`] if the kernel refuses the epoll or
    /// eventfd descriptors.
    #[cfg(target_os = "linux")]
    Epoll,
}

impl Default for ReactorKind {
    /// The host's best reactor: epoll on Linux, the poll loop elsewhere.
    fn default() -> Self {
        #[cfg(target_os = "linux")]
        {
            Self::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::PollLoop
        }
    }
}

/// Wakes the executor thread from another thread (the only cross-thread
/// edge in the runtime). The poll loop unparks the executor thread; the
/// epoll reactor additionally writes an eventfd so a wake interrupts
/// `epoll_wait` instead of waiting out its timeout.
#[derive(Clone)]
pub(crate) enum Notifier {
    /// Unpark the executor thread (poll-loop reactor).
    Thread(Thread),
    /// Write the wake eventfd, then unpark for good measure (epoll).
    #[cfg(target_os = "linux")]
    EventFd(std::sync::Arc<super::epoll::WakeFd>, Thread),
}

impl Notifier {
    pub(crate) fn notify(&self) {
        match self {
            Self::Thread(t) => t.unpark(),
            #[cfg(target_os = "linux")]
            Self::EventFd(fd, t) => {
                fd.signal();
                t.unpark();
            }
        }
    }
}

/// The reactor behind the running executor. Dispatch is a plain enum —
/// two variants do not justify a vtable.
pub(crate) enum Reactor {
    PollLoop(PollLoopReactor),
    #[cfg(target_os = "linux")]
    Epoll(EpollReactor),
}

impl Reactor {
    /// Builds the requested reactor, falling back to the poll loop when
    /// the platform refuses (e.g. `epoll_create1` failing under an
    /// exotic sandbox) — callers always get a working runtime.
    pub(crate) fn new(kind: ReactorKind) -> Self {
        match kind {
            ReactorKind::PollLoop => Self::PollLoop(PollLoopReactor::default()),
            #[cfg(target_os = "linux")]
            ReactorKind::Epoll => match EpollReactor::new() {
                Ok(ep) => Self::Epoll(ep),
                Err(_) => Self::PollLoop(PollLoopReactor::default()),
            },
        }
    }

    /// Which implementation actually runs (after any fallback).
    pub(crate) fn kind(&self) -> ReactorKind {
        match self {
            Self::PollLoop(_) => ReactorKind::PollLoop,
            #[cfg(target_os = "linux")]
            Self::Epoll(_) => ReactorKind::Epoll,
        }
    }

    /// The cross-thread wake handle for the ready queue.
    pub(crate) fn notifier(&self) -> Notifier {
        match self {
            Self::PollLoop(_) => Notifier::Thread(std::thread::current()),
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => Notifier::EventFd(ep.wake_handle(), std::thread::current()),
        }
    }

    /// Parks `waker` until `source` is ready (or until the next poll
    /// turn when the future has no OS-level source to wait on).
    pub(crate) fn register(&self, source: Option<(EventSource, Interest)>, waker: Waker) {
        match self {
            Self::PollLoop(p) => p.register(waker),
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => ep.register(source, waker),
        }
    }

    /// Blocks until something interesting happens (readiness, a
    /// notifier wake, or the deadline), then fires the wakers that are
    /// due. `timeout` is the timer-derived bound; the reactor tightens
    /// it to [`POLL_INTERVAL`] while pollable waiters exist.
    pub(crate) fn wait(&self, timeout: Duration) {
        match self {
            Self::PollLoop(p) => p.wait(timeout),
            #[cfg(target_os = "linux")]
            Self::Epoll(ep) => ep.wait(timeout),
        }
    }
}

/// The portable reactor: every registered waker re-fires after one
/// bounded park. See the module docs for the trade.
#[derive(Default)]
pub(crate) struct PollLoopReactor {
    waiters: RefCell<Vec<Waker>>,
}

impl PollLoopReactor {
    fn register(&self, waker: Waker) {
        self.waiters.borrow_mut().push(waker);
    }

    fn wait(&self, timeout: Duration) {
        let timeout =
            if self.waiters.borrow().is_empty() { timeout } else { timeout.min(POLL_INTERVAL) };
        if !timeout.is_zero() {
            std::thread::park_timeout(timeout);
        }
        for waker in self.waiters.borrow_mut().drain(..) {
            waker.wake();
        }
    }
}
