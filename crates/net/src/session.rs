//! Self-healing sessions: handshake, heartbeats, automatic redial.
//!
//! PR 5's collector survives a dead link only because an *operator*
//! calls [`Collector::reattach`](crate::Collector::reattach) with the
//! right `ConnId` — the wire has no session identity. This module gives
//! it one, following the shape of the rt-protocol forwarder handshake
//! (`ForwarderHello` / resume cursors / heartbeats):
//!
//! 1. The first frame of every session-mode connection is a
//!    [`Hello`](crate::frame::NetFrame::Hello) carrying the sender's
//!    wire version and either token 0 (new session) or a previously
//!    issued session token (resume).
//! 2. The collector answers with a
//!    [`HelloAck`](crate::frame::NetFrame::HelloAck): the issued or
//!    confirmed token plus one [`ResumeCursor`](crate::frame::ResumeCursor)
//!    per known stream, so the sender trims its replay buffer *before*
//!    retransmitting. Token 0 in the ack means refused (version
//!    mismatch, unknown token, or a quarantined session).
//! 3. Either side treats a link that has been silent past its liveness
//!    deadline as dead — [`Heartbeat`](crate::frame::NetFrame::Heartbeat)
//!    probes (echoed by the receiver) keep an idle-but-healthy link
//!    audibly alive, so a *silently wedged* link (writes vanish, reads
//!    never arrive) is detected instead of hanging forever.
//! 4. The sending side redials by itself through a [`Redial`] factory
//!    with capped exponential backoff — no operator in the loop.
//!
//! [`SessionSender`] composes all of that around a
//! [`MuxSender`], staying sans-I/O in spirit: all
//! time-dependent behavior takes an explicit `now` via
//! [`pump_at`](SessionSender::pump_at), so tests drive a synthetic
//! clock and every timeout path is deterministic.

use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use bytes::BytesMut;

use pla_transport::wire::Codec;

use crate::driver::{pump_in, pump_out, DriveError};
use crate::frame::{encode, FrameDecoder, FrameError, NetFrame, Outbox, PROTOCOL_VERSION};
use crate::link::{Link, MemoryLink, TcpLink};
use crate::listen::MemoryConnector;
use crate::mux::MuxSender;
use crate::{NetConfig, NetError};

/// splitmix64 — the workspace's standard inline PRNG (same seeding
/// discipline as `pla-signal`): advances `state` in place. Used for
/// session-token issuance (unique, nonzero identity — not secrecy) and
/// by the fault harness to scatter faults.
pub(crate) fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *state = z ^ (z >> 31);
}

/// Why a session handshake failed. Carried by
/// [`NetError::Handshake`]; every variant quarantines only the
/// connection that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// The two endpoints speak different wire versions.
    VersionMismatch {
        /// This side's version.
        ours: u16,
        /// The peer's claimed version.
        theirs: u16,
    },
    /// The first frame of the connection was a valid frame but not a
    /// `Hello`.
    NotHello(&'static str),
    /// The first bytes of the connection did not even frame-decode.
    Garbage(FrameError),
    /// The presented session token was never issued (or already
    /// evicted).
    UnknownToken(u64),
    /// The presented token names a session that was quarantined for a
    /// protocol violation; resuming it is refused.
    Quarantined(u64),
    /// The server refused the session without this side presenting a
    /// resume token (its `HelloAck` carried token 0).
    Refused {
        /// The version the server announced in its refusal.
        server_version: u16,
    },
    /// The handshake deadline passed without a `HelloAck`.
    Timeout,
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VersionMismatch { ours, theirs } => {
                write!(f, "wire version mismatch: ours {ours}, peer {theirs}")
            }
            Self::NotHello(what) => write!(f, "first frame was not Hello: {what}"),
            Self::Garbage(e) => write!(f, "first bytes did not frame-decode: {e}"),
            Self::UnknownToken(t) => write!(f, "session token {t:#x} unknown or evicted"),
            Self::Quarantined(t) => write!(f, "session token {t:#x} is quarantined"),
            Self::Refused { server_version } => {
                write!(f, "session refused by server (version {server_version})")
            }
            Self::Timeout => write!(f, "handshake deadline passed without HelloAck"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Session-layer timing and identity knobs, shared by the sender and
/// the session-mode collector. Deliberately separate from
/// [`NetConfig`]: the byte protocol does not change shape when the
/// session layer sits on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Wire version announced in `Hello`/`HelloAck`
    /// ([`PROTOCOL_VERSION`]).
    pub version: u16,
    /// How often an established, idle sender probes the link.
    pub heartbeat_interval: Duration,
    /// A link silent for this long is declared dead: the sender
    /// redials, the collector detaches the connection.
    pub liveness_timeout: Duration,
    /// How long either side waits mid-handshake before giving up on the
    /// link (the sender redials; the collector drops the pending
    /// socket).
    pub handshake_timeout: Duration,
    /// How long the collector retains a *detached* session's state for
    /// resumption before evicting it.
    pub session_ttl: Duration,
    /// First redial delay after a failed dial attempt.
    pub redial_initial: Duration,
    /// Backoff ceiling: delays double per consecutive failure up to
    /// this.
    pub redial_cap: Duration,
    /// Seed for the collector's token issuance (tokens must only be
    /// unique and nonzero, not secret — this is session identity, not
    /// authentication).
    pub token_seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            version: PROTOCOL_VERSION,
            heartbeat_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(3),
            handshake_timeout: Duration::from_secs(2),
            session_ttl: Duration::from_secs(60),
            redial_initial: Duration::from_millis(25),
            redial_cap: Duration::from_secs(2),
            token_seed: 0x5EED_0F5E_5510_0001,
        }
    }
}

/// A factory for fresh links to the same peer — the sender's redial
/// policy lives behind it so the session machine is substrate-agnostic.
pub trait Redial {
    /// The link type each dial attempt yields.
    type Link: Link;

    /// Attempts one connection. An `Err` is a *failed attempt* (the
    /// session machine backs off and retries), not a terminal failure.
    fn redial(&mut self) -> io::Result<Self::Link>;
}

/// Redials a TCP address.
#[derive(Debug, Clone)]
pub struct TcpRedial {
    addr: SocketAddr,
}

impl TcpRedial {
    /// Redials `addr` on demand.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }
}

impl Redial for TcpRedial {
    type Link = TcpLink;

    fn redial(&mut self) -> io::Result<TcpLink> {
        TcpLink::connect(self.addr)
    }
}

/// Deterministic in-process redialer: each attempt dials a fresh
/// [`MemoryLink`] through a [`MemoryConnector`] (queueing the serve
/// side for the acceptor). Tests can script dial failures and keep a
/// clone of the active link as a sever handle.
#[derive(Debug, Clone)]
pub struct MemoryRedial {
    connector: MemoryConnector,
    capacity: usize,
    /// Dial attempts that fail before one succeeds again.
    fail_next: usize,
    last: Option<MemoryLink>,
    dials: u64,
}

impl MemoryRedial {
    /// Redials through `connector` with `capacity`-byte pipes.
    pub fn new(connector: MemoryConnector, capacity: usize) -> Self {
        Self { connector, capacity, fail_next: 0, last: None, dials: 0 }
    }

    /// Makes the next `n` dial attempts fail with `ConnectionRefused` —
    /// the deterministic stand-in for a collector that is down, which
    /// is what exercises the exponential backoff path.
    pub fn fail_next(&mut self, n: usize) {
        self.fail_next = n;
    }

    /// A clone of the most recently dialed link (shares the same pipes)
    /// — the test's sever handle for the active connection.
    pub fn last_link(&self) -> Option<MemoryLink> {
        self.last.clone()
    }

    /// Total dial attempts, including scripted failures.
    pub fn dials(&self) -> u64 {
        self.dials
    }
}

impl Redial for MemoryRedial {
    type Link = MemoryLink;

    fn redial(&mut self) -> io::Result<MemoryLink> {
        self.dials += 1;
        if self.fail_next > 0 {
            self.fail_next -= 1;
            return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "scripted dial failure"));
        }
        let link = self.connector.connect(self.capacity);
        self.last = Some(link.clone());
        Ok(link)
    }
}

/// Where the session machine currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No live link; the next dial attempt fires once `now` reaches the
    /// deadline.
    Dialing { next_attempt: Instant },
    /// Link up, `Hello` staged/sent, waiting for the `HelloAck`.
    HelloSent { since: Instant },
    /// Session bound; data, control, and heartbeats flow.
    Established,
    /// Terminal protocol failure — redialing cannot help. See
    /// [`SessionSender::failure`].
    Failed,
}

/// Point-in-time session counters, for tests and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Dial attempts made (including failures).
    pub dials: u64,
    /// Handshakes completed (first establishment plus every resume).
    pub established: u64,
    /// Heartbeat probes sent.
    pub heartbeats_sent: u64,
    /// Heartbeat echoes received back.
    pub echoes_seen: u64,
}

/// A [`MuxSender`] wrapped in the self-healing session machine: it
/// dials, handshakes, replays, heartbeats, and redials on its own.
///
/// Drive it by calling [`pump_at`](Self::pump_at) (or
/// [`pump`](Self::pump), which stamps `Instant::now`) in a loop, the
/// way the sync tests drive `pump_sender`. The wrapped mux is reachable
/// through [`mux`](Self::mux)/[`mux_mut`](Self::mux_mut) for sending.
pub struct SessionSender<C: Codec, R: Redial> {
    mux: MuxSender<C>,
    redial: R,
    link: Option<R::Link>,
    phase: Phase,
    session: SessionConfig,
    /// Handshake/heartbeat frames, drained strictly before the mux
    /// outbox so a `Hello` always precedes the 0-RTT replay behind it.
    session_out: Outbox,
    /// The session machine decodes the link itself (it must intercept
    /// `HelloAck` before the mux sees bytes).
    dec: FrameDecoder,
    scratch: BytesMut,
    token: u64,
    backoff: Duration,
    last_recv: Instant,
    last_send: Instant,
    heartbeat_seq: u64,
    failed: Option<NetError>,
    stats: SessionStats,
}

impl<C: Codec, R: Redial> SessionSender<C, R> {
    /// Creates the session machine around a fresh mux. Nothing is
    /// dialed yet; the first [`pump_at`](Self::pump_at) dials
    /// immediately. `now` seeds the synthetic clock (tests pass their
    /// epoch; production passes `Instant::now()`).
    pub fn new(
        codec: C,
        dims: usize,
        config: NetConfig,
        session: SessionConfig,
        redial: R,
        now: Instant,
    ) -> Self {
        Self {
            mux: MuxSender::new(codec, dims, config),
            redial,
            link: None,
            phase: Phase::Dialing { next_attempt: now },
            session,
            session_out: Outbox::default(),
            dec: FrameDecoder::new(config.max_frame),
            scratch: BytesMut::new(),
            token: 0,
            backoff: session.redial_initial,
            last_recv: now,
            last_send: now,
            heartbeat_seq: 0,
            failed: None,
            stats: SessionStats::default(),
        }
    }

    /// The wrapped mux (stream stats, idle checks).
    pub fn mux(&self) -> &MuxSender<C> {
        &self.mux
    }

    /// Mutable access for sending segments and finishing streams.
    pub fn mux_mut(&mut self) -> &mut MuxSender<C> {
        &mut self.mux
    }

    /// Whether the session is currently bound to a live link.
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Established
    }

    /// The server-issued session token (0 until the first handshake
    /// completes).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The terminal protocol failure, if the session machine gave up.
    /// Redial-able I/O failures never land here — only protocol
    /// violations and handshake refusals.
    pub fn failure(&self) -> Option<&NetError> {
        self.failed.as_ref()
    }

    /// Session counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The redial factory — fault-injection tests reach their
    /// sever/wedge handles through it.
    pub fn redial(&self) -> &R {
        &self.redial
    }

    /// Mutable access to the redial factory (scripting dial failures).
    pub fn redial_mut(&mut self) -> &mut R {
        &mut self.redial
    }

    fn stage_session_frame(&mut self, frame: &NetFrame) {
        self.scratch.clear();
        encode(frame, &mut self.scratch);
        self.session_out.stage(&self.scratch);
    }

    fn fail(&mut self, err: NetError) {
        if let Some(mut link) = self.link.take() {
            link.shutdown();
        }
        self.phase = Phase::Failed;
        self.failed = Some(err);
    }

    /// Drops the current link (if any) and schedules the next dial
    /// attempt `self.backoff` out, doubling the backoff up to the cap.
    fn drop_link_and_backoff(&mut self, now: Instant) {
        if let Some(mut link) = self.link.take() {
            link.shutdown();
        }
        self.dec.reset();
        self.session_out.clear();
        self.phase = Phase::Dialing { next_attempt: now + self.backoff };
        self.backoff = (self.backoff * 2).min(self.session.redial_cap);
    }

    fn dial(&mut self, now: Instant) {
        self.stats.dials += 1;
        match self.redial.redial() {
            Ok(link) => {
                self.link = Some(link);
                self.dec.reset();
                self.session_out.clear();
                let hello = NetFrame::Hello { version: self.session.version, token: self.token };
                self.stage_session_frame(&hello);
                // 0-RTT replay: stage the unacked tail right behind the
                // Hello. If the HelloAck's cursors later show some of it
                // was already applied, `apply_resume` re-trims.
                self.mux.on_reconnect();
                self.phase = Phase::HelloSent { since: now };
                self.last_recv = now;
                self.last_send = now;
            }
            Err(_) => {
                self.phase = Phase::Dialing { next_attempt: now + self.backoff };
                self.backoff = (self.backoff * 2).min(self.session.redial_cap);
            }
        }
    }

    /// Applies one inbound frame. `Err` is terminal (protocol failure).
    fn on_frame(&mut self, frame: NetFrame) -> Result<(), NetError> {
        match frame {
            NetFrame::HelloAck { version, token, cursors } => {
                match self.phase {
                    Phase::HelloSent { .. } => {
                        if token == 0 {
                            // Refused. Typed by the most specific cause
                            // this side can see.
                            let err = if version != self.session.version {
                                HandshakeError::VersionMismatch {
                                    ours: self.session.version,
                                    theirs: version,
                                }
                            } else if self.token != 0 {
                                HandshakeError::UnknownToken(self.token)
                            } else {
                                HandshakeError::Refused { server_version: version }
                            };
                            return Err(NetError::Handshake(err));
                        }
                        self.token = token;
                        self.mux.apply_resume(&cursors);
                        self.phase = Phase::Established;
                        self.backoff = self.session.redial_initial;
                        self.stats.established += 1;
                    }
                    // A duplicated HelloAck for the session we already
                    // hold is replay noise; a *different* token
                    // mid-session means the byte stream is not what we
                    // think it is.
                    Phase::Established if token == self.token => {}
                    _ => return Err(NetError::UnexpectedFrame("HelloAck outside handshake")),
                }
                Ok(())
            }
            NetFrame::Heartbeat { .. } => {
                self.stats.echoes_seen += 1;
                Ok(())
            }
            other => self.mux.on_frame(other),
        }
    }

    /// One pump round at the given instant: dial when due, read and
    /// dispatch, enforce deadlines, heartbeat, write. Returns bytes
    /// moved (0 = no progress this round). Terminal protocol failures
    /// park the machine — see [`failure`](Self::failure); link deaths
    /// never surface, they schedule a redial.
    pub fn pump_at(&mut self, now: Instant) -> usize {
        if self.phase == Phase::Failed {
            return 0;
        }
        if let Phase::Dialing { next_attempt } = self.phase {
            if now < next_attempt {
                return 0;
            }
            self.dial(now);
        }
        let Some(mut link) = self.link.take() else {
            return 0;
        };
        let mut moved = 0;

        // Read and dispatch. Frames are pulled out of the decoder one at
        // a time so a terminal error mid-buffer doesn't lose its cause.
        let mut net_err: Option<NetError> = None;
        let read = {
            let dec = &mut self.dec;
            pump_in(&mut link, |bytes| {
                dec.extend(bytes);
                Ok(())
            })
        };
        match read {
            Ok(n) => {
                if n > 0 {
                    self.last_recv = now;
                    moved += n;
                }
            }
            Err(DriveError::Io(_)) => {
                self.link = Some(link);
                self.drop_link_and_backoff(now);
                return moved;
            }
            Err(DriveError::Net(_)) => unreachable!("feed closure never fails"),
        }
        loop {
            match self.dec.try_next() {
                Ok(Some(frame)) => {
                    if let Err(e) = self.on_frame(frame) {
                        net_err = Some(e);
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    net_err = Some(NetError::Frame(e));
                    break;
                }
            }
        }
        if let Some(e) = net_err {
            self.link = Some(link);
            self.fail(e);
            return moved;
        }

        // Deadlines.
        match self.phase {
            Phase::HelloSent { since }
                if now.duration_since(since) >= self.session.handshake_timeout =>
            {
                self.link = Some(link);
                self.drop_link_and_backoff(now);
                return moved;
            }
            Phase::Established => {
                if now.duration_since(self.last_recv) >= self.session.liveness_timeout {
                    // Silently wedged or half-dead link: abandon it.
                    self.link = Some(link);
                    self.drop_link_and_backoff(now);
                    return moved;
                }
                if now.duration_since(self.last_send) >= self.session.heartbeat_interval {
                    self.heartbeat_seq += 1;
                    let probe = NetFrame::Heartbeat { seq: self.heartbeat_seq };
                    self.stage_session_frame(&probe);
                    self.stats.heartbeats_sent += 1;
                }
            }
            _ => {}
        }

        // Write: session frames strictly first, then the mux outbox —
        // unless the link tore a mux frame on an earlier partial write,
        // in which case that frame must complete before any session
        // frame may enter the wire (heartbeat bytes injected mid-frame
        // would desync the peer's decoder). Heartbeats never starve
        // behind a busy mux queue: the peer refreshes liveness on any
        // inbound bytes, data included.
        let mux_first = self.mux.outbox().partial_head().is_some();
        let mut wrote_session = 0;
        let mut wrote_mux = 0;
        let write_err = if mux_first {
            match pump_out(self.mux.outbox(), &mut link) {
                Ok(n) => {
                    wrote_mux = n;
                    if self.mux.outbox().is_empty() {
                        match pump_out(&mut self.session_out, &mut link) {
                            Ok(n) => {
                                wrote_session = n;
                                false
                            }
                            Err(_) => true,
                        }
                    } else {
                        false
                    }
                }
                Err(_) => true,
            }
        } else {
            match pump_out(&mut self.session_out, &mut link) {
                Ok(n) => {
                    wrote_session = n;
                    if self.session_out.is_empty() {
                        match pump_out(self.mux.outbox(), &mut link) {
                            Ok(n) => {
                                wrote_mux = n;
                                false
                            }
                            Err(_) => true,
                        }
                    } else {
                        false
                    }
                }
                Err(_) => true,
            }
        };
        moved += wrote_session + wrote_mux;
        if write_err {
            self.link = Some(link);
            self.drop_link_and_backoff(now);
            return moved;
        }
        if wrote_session + wrote_mux > 0 {
            self.last_send = now;
        }
        self.link = Some(link);
        moved
    }

    /// [`pump_at`](Self::pump_at) stamped with the real clock.
    pub fn pump(&mut self) -> usize {
        self.pump_at(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap_and_resets_on_establishment() {
        let cfg = SessionConfig::default();
        assert_eq!(cfg.version, PROTOCOL_VERSION);
        assert!(cfg.redial_initial < cfg.redial_cap);
    }

    #[test]
    fn handshake_errors_display() {
        let cases: Vec<(HandshakeError, &str)> = vec![
            (HandshakeError::VersionMismatch { ours: 1, theirs: 2 }, "version mismatch"),
            (HandshakeError::NotHello("Data"), "not Hello"),
            (HandshakeError::UnknownToken(7), "unknown"),
            (HandshakeError::Quarantined(7), "quarantined"),
            (HandshakeError::Refused { server_version: 1 }, "refused"),
            (HandshakeError::Timeout, "deadline"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
