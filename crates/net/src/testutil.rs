//! Fault injection for chaos tests (the `test-util` feature).
//!
//! [`FaultLink`] wraps any [`Link`] and applies a deterministic,
//! seeded schedule of link pathologies to the traffic flowing through
//! it — severed connections, truncated frames, silent wedges, delayed
//! reads, duplicated deliveries. Faults are applied at **whole-frame
//! granularity** on the write side: the wrapper parses the
//! `[u32 len]`-prefixed frame boundaries, so a "duplicate" fault
//! duplicates a complete frame (absorbed by sequence dedup /
//! idempotent control), not an arbitrary byte range that would turn
//! the stream into garbage. Byte-level corruption is what `Truncate`
//! models — and it tears the link down, exactly like a mid-frame
//! connection loss.
//!
//! [`FaultRedial`] turns the wrapper into a [`Redial`] implementation:
//! each dial attempt draws the next [`FaultPlan`] from a queue (fault-
//! free once the queue runs dry, so every schedule converges), which
//! is how the chaos suites script an entire connection lifetime of
//! failures against a [`SessionSender`](crate::SessionSender) without
//! a single explicit `reattach`.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Mutex};

use crate::link::{Link, MemoryLink};
use crate::listen::MemoryConnector;
use crate::runtime::EventSource;
use crate::session::{splitmix64, Redial};

/// One scripted link pathology. Frame indices count complete frames
/// written through the wrapper, starting at 0 (the session `Hello` is
/// frame 0 of every connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver frame `frame` twice — a retransmitting middlebox. The
    /// receiver's dedup/idempotence must absorb it.
    Duplicate {
        /// Frame index to duplicate.
        frame: u64,
    },
    /// Deliver only the first `keep` bytes of frame `frame`, then tear
    /// the connection down — a mid-frame connection loss.
    Truncate {
        /// Frame index to truncate.
        frame: u64,
        /// Bytes of the frame that still get through.
        keep: usize,
    },
    /// Tear the connection down *before* delivering frame `frame`.
    Sever {
        /// Frame index that never gets through.
        frame: u64,
    },
    /// From frame `frame` on, go silently dead: writes are accepted
    /// and discarded, reads return `WouldBlock` forever. The failure
    /// mode only a liveness deadline can detect.
    Wedge {
        /// First frame silently swallowed.
        frame: u64,
    },
    /// Return `WouldBlock` for `rounds` read calls starting at read
    /// call `read_call` — transient latency, must never break anything.
    Delay {
        /// Read-call index at which the stall starts.
        read_call: u64,
        /// How many read calls stall.
        rounds: u64,
    },
}

/// A deterministic schedule of [`Fault`]s for one connection lifetime.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: a perfectly healthy link.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan with exactly these faults.
    pub fn new(faults: Vec<Fault>) -> Self {
        Self { faults }
    }

    /// A reproducible pseudo-random plan: 1–3 faults at frame indices
    /// up to `horizon`, drawn from seed via splitmix64. `Wedge` is
    /// excluded — random wedges belong to schedules that also drive
    /// the liveness clock; callers script them explicitly.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut s = seed;
        let horizon = horizon.max(1);
        splitmix64(&mut s);
        let count = 1 + (s % 3) as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            splitmix64(&mut s);
            let frame = s % horizon;
            splitmix64(&mut s);
            faults.push(match s % 4 {
                0 => Fault::Duplicate { frame },
                1 => {
                    splitmix64(&mut s);
                    Fault::Truncate { frame, keep: (s % 16) as usize }
                }
                2 => Fault::Sever { frame },
                _ => {
                    splitmix64(&mut s);
                    Fault::Delay { read_call: frame, rounds: 1 + s % 4 }
                }
            });
        }
        Self { faults }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

#[derive(Debug)]
struct FaultState {
    plan: Vec<Fault>,
    /// Bytes written through the wrapper, awaiting a complete frame
    /// boundary.
    parse: Vec<u8>,
    /// Whole-frame bytes cleared for delivery to the inner link.
    /// Unbounded by design: the wrapper absorbs backpressure so fault
    /// timing depends only on frame indices, not inner pipe capacity —
    /// acceptable for a test harness, never for production code.
    staged: VecDeque<u8>,
    frame_idx: u64,
    read_calls: u64,
    wedged: bool,
    severed: bool,
}

/// A [`Link`] wrapper injecting the faults of a [`FaultPlan`].
///
/// Faults apply to the **write** direction only (the wrapped side's
/// outbound traffic); reads pass through except for `Delay` stalls and
/// the total silence of a `Wedge`. Wrapping the *sender's* end of a
/// connection therefore faults the data path while leaving the
/// receiver's control path clean — the asymmetry real uplinks show.
///
/// Clones share both the inner link and the fault state, so a test can
/// keep a clone as a handle to wedge or sever the active connection.
#[derive(Debug)]
pub struct FaultLink<L: Link> {
    inner: L,
    state: Arc<Mutex<FaultState>>,
}

impl<L: Link + Clone> Clone for FaultLink<L> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone(), state: self.state.clone() }
    }
}

impl<L: Link> FaultLink<L> {
    /// Wraps `inner`, applying `plan` to the traffic written through.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        Self {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                plan: plan.faults,
                parse: Vec::new(),
                staged: VecDeque::new(),
                frame_idx: 0,
                read_calls: 0,
                wedged: false,
                severed: false,
            })),
        }
    }

    /// Silently wedges the connection from now on: writes vanish,
    /// reads stall forever. Only a liveness deadline can notice.
    pub fn wedge_now(&self) {
        self.state.lock().expect("fault state").wedged = true;
    }

    /// Whether the harness has torn the connection down.
    pub fn is_severed(&self) -> bool {
        self.state.lock().expect("fault state").severed
    }

    /// Whether the connection is silently wedged.
    pub fn is_wedged(&self) -> bool {
        self.state.lock().expect("fault state").wedged
    }

    /// Flushes staged whole-frame bytes into the inner link.
    fn flush_staged(&mut self, st: &mut FaultState) {
        while !st.staged.is_empty() {
            let (head, _) = st.staged.as_slices();
            match self.inner.try_write(head) {
                Ok(n) => {
                    st.staged.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    st.severed = true;
                    break;
                }
            }
        }
    }
}

impl<L: Link> Link for FaultLink<L> {
    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let state = self.state.clone();
        let mut st = state.lock().expect("fault state");
        if st.severed {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "faulted link severed"));
        }
        if st.wedged {
            // The silent failure mode: bytes accepted, never delivered.
            return Ok(buf.len());
        }
        st.parse.extend_from_slice(buf);
        // Cut completed frames off the parse buffer and apply faults
        // per frame index.
        while !st.severed && !st.wedged {
            if st.parse.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(st.parse[..4].try_into().expect("4 bytes")) as usize;
            let total = 4 + len;
            if st.parse.len() < total {
                break;
            }
            let frame: Vec<u8> = st.parse.drain(..total).collect();
            let idx = st.frame_idx;
            st.frame_idx += 1;
            let mut duplicate = false;
            let mut truncate: Option<usize> = None;
            let mut sever = false;
            let mut wedge = false;
            for f in &st.plan {
                match *f {
                    Fault::Duplicate { frame } if frame == idx => duplicate = true,
                    Fault::Truncate { frame, keep } if frame == idx => truncate = Some(keep),
                    Fault::Sever { frame } if frame == idx => sever = true,
                    Fault::Wedge { frame } if frame == idx => wedge = true,
                    _ => {}
                }
            }
            if wedge {
                st.wedged = true;
            } else if sever {
                st.severed = true;
            } else if let Some(keep) = truncate {
                st.staged.extend(&frame[..keep.min(frame.len())]);
                st.severed = true;
            } else {
                st.staged.extend(&frame);
                if duplicate {
                    st.staged.extend(&frame);
                }
            }
        }
        self.flush_staged(&mut st);
        if st.severed {
            // Deliver what was cleared, then kill the transport so both
            // ends observe the loss (in-flight bytes may die with it).
            self.inner.shutdown();
            return Ok(buf.len());
        }
        Ok(buf.len())
    }

    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let state = self.state.clone();
        let mut st = state.lock().expect("fault state");
        if st.wedged {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "wedged"));
        }
        if st.severed {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "faulted link severed"));
        }
        let call = st.read_calls;
        st.read_calls += 1;
        let delayed = st.plan.iter().any(|f| {
            matches!(*f, Fault::Delay { read_call, rounds }
                if read_call <= call && call < read_call + rounds)
        });
        if delayed {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "scripted delay"));
        }
        // Keep draining staged writes opportunistically: a tiny inner
        // pipe may have blocked the last flush, and the read side is
        // pumped even when the caller has nothing to write.
        self.flush_staged(&mut st);
        drop(st);
        self.inner.try_read(buf)
    }

    fn event_source(&self) -> Option<EventSource> {
        self.inner.event_source()
    }

    fn shutdown(&mut self) {
        self.state.lock().expect("fault state").severed = true;
        self.inner.shutdown();
    }
}

/// A [`Redial`] implementation whose every dial attempt yields a
/// [`FaultLink`]-wrapped [`MemoryLink`], with a queue of per-connection
/// [`FaultPlan`]s. Once the queue is empty, dials yield fault-free
/// links — so any scripted storm eventually converges.
#[derive(Debug)]
pub struct FaultRedial {
    connector: MemoryConnector,
    capacity: usize,
    plans: VecDeque<FaultPlan>,
    last: Option<FaultLink<MemoryLink>>,
    last_inner: Option<MemoryLink>,
    dials: u64,
}

impl FaultRedial {
    /// Dials through `connector` with `capacity`-byte pipes, drawing
    /// one plan per connection from `plans` (then fault-free).
    pub fn new(connector: MemoryConnector, capacity: usize, plans: Vec<FaultPlan>) -> Self {
        Self { connector, capacity, plans: plans.into(), last: None, last_inner: None, dials: 0 }
    }

    /// Appends another connection's fault plan to the queue.
    pub fn push_plan(&mut self, plan: FaultPlan) {
        self.plans.push_back(plan);
    }

    /// Handle to the active faulted link (shares state with the one the
    /// sender holds).
    pub fn last_link(&self) -> Option<FaultLink<MemoryLink>> {
        self.last.clone()
    }

    /// Severs the active connection outright (both ends see
    /// `ConnectionReset`).
    pub fn sever_active(&self) {
        if let Some(inner) = &self.last_inner {
            inner.sever();
        }
        if let Some(link) = &self.last {
            link.state.lock().expect("fault state").severed = true;
        }
    }

    /// Silently wedges the active connection — the heartbeat-detection
    /// path.
    pub fn wedge_active(&self) {
        if let Some(link) = &self.last {
            link.wedge_now();
        }
    }

    /// Total dial attempts.
    pub fn dials(&self) -> u64 {
        self.dials
    }
}

impl Redial for FaultRedial {
    type Link = FaultLink<MemoryLink>;

    fn redial(&mut self) -> io::Result<FaultLink<MemoryLink>> {
        self.dials += 1;
        let inner = self.connector.connect(self.capacity);
        let plan = self.plans.pop_front().unwrap_or_default();
        let link = FaultLink::new(inner.clone(), plan);
        self.last = Some(link.clone());
        self.last_inner = Some(inner);
        Ok(link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode, FrameDecoder, NetFrame};
    use bytes::BytesMut;

    fn frame_bytes(seq: u64) -> Vec<u8> {
        let mut buf = BytesMut::new();
        encode(&NetFrame::Heartbeat { seq }, &mut buf);
        buf.to_vec()
    }

    #[test]
    fn clean_plan_passes_frames_through_unchanged() {
        let (client, mut server) = MemoryLink::pair(1024);
        let mut faulted = FaultLink::new(client, FaultPlan::none());
        for seq in 0..4 {
            faulted.try_write(&frame_bytes(seq)).unwrap();
        }
        let mut buf = [0u8; 1024];
        let n = server.try_read(&mut buf).unwrap();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&buf[..n]);
        for seq in 0..4 {
            assert_eq!(dec.try_next().unwrap(), Some(NetFrame::Heartbeat { seq }));
        }
    }

    #[test]
    fn duplicate_fault_delivers_the_frame_twice() {
        let (client, mut server) = MemoryLink::pair(1024);
        let plan = FaultPlan::new(vec![Fault::Duplicate { frame: 1 }]);
        let mut faulted = FaultLink::new(client, plan);
        for seq in 0..3 {
            faulted.try_write(&frame_bytes(seq)).unwrap();
        }
        let mut buf = [0u8; 1024];
        let n = server.try_read(&mut buf).unwrap();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&buf[..n]);
        let mut seqs = Vec::new();
        while let Some(NetFrame::Heartbeat { seq }) = dec.try_next().unwrap() {
            seqs.push(seq);
        }
        assert_eq!(seqs, vec![0, 1, 1, 2], "frame 1 delivered twice, whole frames only");
    }

    #[test]
    fn truncate_fault_delivers_a_prefix_then_severs() {
        let (client, mut server) = MemoryLink::pair(1024);
        let plan = FaultPlan::new(vec![Fault::Truncate { frame: 1, keep: 5 }]);
        let mut faulted = FaultLink::new(client, plan);
        faulted.try_write(&frame_bytes(0)).unwrap();
        let whole = frame_bytes(0).len();
        // Frame 1 completes inside this write; 5 bytes get through and
        // the transport dies. MemoryLink::sever clears in-flight bytes,
        // so the observable outcome is ConnectionReset on both ends —
        // exactly a mid-frame connection loss.
        faulted.try_write(&frame_bytes(1)).unwrap();
        assert!(faulted.is_severed());
        let mut buf = [0u8; 1024];
        assert_eq!(
            server.try_read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset,
            "whole frame was {whole} bytes; the truncated link must be dead"
        );
        assert_eq!(
            faulted.try_write(&frame_bytes(2)).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
    }

    #[test]
    fn wedge_fault_goes_silent_without_erroring() {
        let (client, mut server) = MemoryLink::pair(1024);
        let plan = FaultPlan::new(vec![Fault::Wedge { frame: 1 }]);
        let mut faulted = FaultLink::new(client, plan);
        faulted.try_write(&frame_bytes(0)).unwrap();
        faulted.try_write(&frame_bytes(1)).unwrap(); // swallowed
        faulted.try_write(&frame_bytes(2)).unwrap(); // swallowed
        assert!(faulted.is_wedged());
        let mut buf = [0u8; 1024];
        let n = server.try_read(&mut buf).unwrap();
        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&buf[..n]);
        assert_eq!(dec.try_next().unwrap(), Some(NetFrame::Heartbeat { seq: 0 }));
        assert_eq!(dec.try_next().unwrap(), None, "frames 1 and 2 vanished silently");
        // Reads stall forever rather than erroring — undetectable
        // without a liveness deadline.
        assert_eq!(faulted.try_read(&mut buf).unwrap_err().kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn delay_fault_stalls_reads_then_recovers() {
        let (client, mut server) = MemoryLink::pair(1024);
        let plan = FaultPlan::new(vec![Fault::Delay { read_call: 0, rounds: 2 }]);
        let mut faulted = FaultLink::new(client, plan);
        server.try_write(b"pong").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(faulted.try_read(&mut buf).unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(faulted.try_read(&mut buf).unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(faulted.try_read(&mut buf).unwrap(), 4, "stall ends on schedule");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 16);
        let b = FaultPlan::seeded(42, 16);
        assert_eq!(a.faults(), b.faults());
        assert!(!a.faults().is_empty());
        let c = FaultPlan::seeded(43, 16);
        assert_ne!(a.faults(), c.faults(), "different seeds, different storms");
    }

    #[test]
    fn fault_redial_draws_one_plan_per_dial_then_goes_clean() {
        let acceptor = crate::listen::MemoryAcceptor::new();
        let mut redial = FaultRedial::new(
            acceptor.connector(),
            64,
            vec![FaultPlan::new(vec![Fault::Sever { frame: 0 }])],
        );
        let mut first = redial.redial().unwrap();
        // Frame 0 never gets through on the first connection…
        first.try_write(&frame_bytes(0)).unwrap();
        assert!(first.is_severed());
        // …but the second connection is fault-free.
        let mut second = redial.redial().unwrap();
        second.try_write(&frame_bytes(0)).unwrap();
        assert!(!second.is_severed());
        assert_eq!(redial.dials(), 2);
    }
}
