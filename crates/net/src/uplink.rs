//! The `pla-ingest` integration: an engine's shard fan-in flows
//! straight out over one multiplexed connection.
//!
//! [`IngestEngine::with_segment_tap`](pla_ingest::IngestEngine::with_segment_tap)
//! hands back a live channel of
//! `(StreamId, Segment)` in emission order; [`EngineUplink`] drains it
//! into a [`MuxSender`], honoring credit backpressure by parking the
//! head-of-line segment until the receiver grants more. The far end's
//! `StreamDemux` then rebuilds per-stream segment logs identical to
//! what a direct per-stream [`Transmitter`](pla_transport::Transmitter)
//! link would have produced — that identity is what the loopback
//! integration test pins.

use std::sync::mpsc;

use pla_core::Segment;
use pla_ingest::StreamId;
use pla_transport::wire::Codec;

use crate::mux::MuxSender;
use crate::NetError;

/// What one [`EngineUplink::pump`] round left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UplinkStatus {
    /// The tap had nothing new; everything drained is on the wire
    /// (engine still running).
    Idle,
    /// A segment is parked on credit backpressure; pump again once the
    /// sender has processed grants.
    Blocked,
    /// The engine finished and every tapped segment has been handed to
    /// the sender; the uplink is done (streams can be finned).
    Drained,
}

/// Couples an engine segment tap to a multiplexing sender.
pub struct EngineUplink {
    tap: mpsc::Receiver<(StreamId, Segment)>,
    /// Head-of-line segment refused for credit, retried first.
    parked: Option<(StreamId, Segment)>,
    engine_done: bool,
    forwarded: u64,
}

impl EngineUplink {
    /// Wraps the tap returned by `IngestEngine::with_segment_tap`.
    pub fn new(tap: mpsc::Receiver<(StreamId, Segment)>) -> Self {
        Self { tap, parked: None, engine_done: false, forwarded: 0 }
    }

    /// Segments handed to the sender so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Moves as many tapped segments as credit allows into `mux`.
    ///
    /// Segment order per stream is preserved: the tap delivers in
    /// emission order, and a credit-refused segment parks at the head
    /// of the line rather than being skipped.
    pub fn pump<C: Codec>(&mut self, mux: &mut MuxSender<C>) -> Result<UplinkStatus, NetError> {
        loop {
            let (stream, seg) = match self.parked.take() {
                Some(head) => head,
                None => match self.tap.try_recv() {
                    Ok(item) => item,
                    Err(mpsc::TryRecvError::Empty) => {
                        return Ok(if self.engine_done {
                            Self::drained()
                        } else {
                            UplinkStatus::Idle
                        })
                    }
                    Err(mpsc::TryRecvError::Disconnected) => {
                        self.engine_done = true;
                        return Ok(Self::drained());
                    }
                },
            };
            match mux.try_send_segment(stream.0, &seg) {
                Ok(()) => self.forwarded += 1,
                Err(NetError::Backpressure) => {
                    self.parked = Some((stream, seg));
                    return Ok(UplinkStatus::Blocked);
                }
                Err(other) => return Err(other),
            }
        }
    }

    fn drained() -> UplinkStatus {
        UplinkStatus::Drained
    }

    /// Whether the engine has finished and the tap is fully drained
    /// into the sender.
    pub fn is_drained(&self) -> bool {
        self.engine_done && self.parked.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetConfig, NetReceiver};
    use pla_core::filters::{FilterKind, FilterSpec};
    use pla_ingest::{IngestConfig, IngestEngine};
    use pla_transport::wire::FixedCodec;

    #[test]
    fn engine_tap_flows_through_the_mux_lossless() {
        let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
            shards: 2,
            queue_depth: 64,
            shard_log: false,
        });
        let h = engine.handle();
        for id in 0..8u64 {
            h.register(StreamId(id), FilterSpec::new(FilterKind::Swing, &[0.4])).unwrap();
        }
        for j in 0..400 {
            for id in 0..8u64 {
                h.push(StreamId(id), j as f64, &[(j as f64 * (0.15 + id as f64 * 0.04)).sin()])
                    .unwrap();
            }
        }
        let report = engine.finish();

        let cfg = NetConfig::default();
        let mut mux = MuxSender::new(FixedCodec, 1, cfg);
        let mut rx = NetReceiver::new(FixedCodec, 1, cfg);
        let mut uplink = EngineUplink::new(tap);
        loop {
            match uplink.pump(&mut mux).unwrap() {
                UplinkStatus::Drained => break,
                UplinkStatus::Blocked => {
                    // Lossless hop: let acks/credit flow back.
                    rx.on_bytes(&mux.take_staged()).unwrap();
                    mux.on_bytes(&rx.take_staged()).unwrap();
                }
                UplinkStatus::Idle => unreachable!("engine already finished"),
            }
        }
        mux.finish_all();
        rx.on_bytes(&mux.take_staged()).unwrap();
        mux.on_bytes(&rx.take_staged()).unwrap();
        assert!(mux.is_idle());
        assert_eq!(uplink.forwarded(), report.total_segments() as u64);
        assert_eq!(rx.finished_streams().count(), 8);

        // The wire reconstruction carries every stream's segments with
        // the filter's exact endpoints (FixedCodec is lossless).
        let logs = rx.into_demux().into_segment_logs();
        assert_eq!(logs.len(), 8);
        for (id, out) in &report.streams {
            let log = &logs[&id.0];
            assert_eq!(log.len(), out.segments.len(), "{id}");
            for (got, want) in log.iter().zip(&out.segments) {
                assert_eq!(got.t_start, want.t_start);
                assert_eq!(got.t_end, want.t_end);
                assert_eq!(got.x_end, want.x_end);
                assert_eq!(got.connected, want.connected);
            }
        }
    }
}
