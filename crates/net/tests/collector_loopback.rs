//! The collector acceptance test: 8 connections × 16 streams each — a
//! fleet of edge senders multiplexing into one shared `SegmentStore` —
//! with every link severed and reconnected mid-transfer, must leave the
//! store *byte-identical* to 128 dedicated point-to-point
//! transmitter/receiver links.
//!
//! Each sending side is the full production path: an `IngestEngine`
//! (the edge node's shard-per-core filtering) whose live segment tap
//! feeds an `EngineUplink` into a `MuxSender` over a deliberately tiny
//! `MemoryLink`, so partial writes and credit stalls are routine.

use std::collections::BTreeMap;
use std::sync::Arc;

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::{Segment, Signal};
use pla_ingest::{IngestConfig, IngestEngine, SegmentStore, StreamId};
use pla_net::driver::{pump_sender, DriveError};
use pla_net::listen::MemoryAcceptor;
use pla_net::uplink::{EngineUplink, UplinkStatus};
use pla_net::{Collector, ConnId, MemoryLink, MuxSender, NetConfig};
use pla_signal::{random_walk, WalkParams};
use pla_transport::wire::FixedCodec;
use pla_transport::{Receiver, Transmitter};

const CONNS: u64 = 8;
const STREAMS_PER_CONN: u64 = 16;
const SAMPLES: usize = 300;
const LINK_CAPACITY: usize = 211;

fn spec_for(id: u64) -> FilterSpec {
    let kind = match id % 3 {
        0 => FilterKind::Swing,
        1 => FilterKind::Slide,
        _ => FilterKind::Cache,
    };
    FilterSpec::new(kind, &[0.5])
}

fn signal_for(id: u64) -> Signal {
    random_walk(WalkParams {
        n: SAMPLES,
        p_decrease: 0.5,
        max_delta: 1.5,
        seed: 0xC011 ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    })
}

/// The reference: every stream over its own dedicated point-to-point
/// link, as the paper deploys it.
fn direct_reference() -> BTreeMap<u64, Vec<Segment>> {
    let mut out = BTreeMap::new();
    for id in 0..CONNS * STREAMS_PER_CONN {
        let filter = spec_for(id).build().expect("valid spec");
        let mut tx = Transmitter::new(filter, FixedCodec);
        let mut rx = Receiver::new(FixedCodec, 1);
        for (t, x) in signal_for(id).iter() {
            tx.push(t, x).expect("valid sample");
            rx.consume(tx.take_bytes()).expect("lossless link");
        }
        tx.finish().expect("flush");
        rx.consume(tx.take_bytes()).expect("lossless link");
        out.insert(id, rx.into_segments());
    }
    out
}

/// One edge node: engine-filtered segments multiplexed up a flaky link.
struct EdgeSender {
    tx: MuxSender<FixedCodec>,
    uplink: EngineUplink,
    link: MemoryLink,
    finned: bool,
    severed_once: bool,
    expected_segments: u64,
}

impl EdgeSender {
    /// Builds the node for connection `conn`, running its engine to
    /// completion up front (the tap buffers; the uplink then drains it
    /// under credit control).
    fn new(conn: u64, cfg: NetConfig, link: MemoryLink) -> Self {
        let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
            shards: 2,
            queue_depth: 128,
            shard_log: false,
        });
        let handle = engine.handle();
        let base = conn * STREAMS_PER_CONN;
        for s in 0..STREAMS_PER_CONN {
            let id = base + s;
            handle.register(StreamId(id), spec_for(id)).expect("register");
            let signal = signal_for(id);
            let samples: Vec<(f64, &[f64])> = signal.iter().collect();
            handle.push_batch(StreamId(id), &samples).expect("feed");
        }
        let report = engine.finish();
        assert_eq!(report.quarantined(), 0);
        Self {
            tx: MuxSender::new(FixedCodec, 1, cfg),
            uplink: EngineUplink::new(tap),
            link,
            finned: false,
            severed_once: false,
            expected_segments: report.total_segments() as u64,
        }
    }

    /// One sender round: drain the tap as credit allows, fin when
    /// drained, pump the link. Dead links report no progress (the test
    /// harness reconnects).
    fn round(&mut self) -> usize {
        let status = self.uplink.pump(&mut self.tx).expect("uplink");
        if status == UplinkStatus::Drained && !self.finned {
            self.tx.finish_all();
            self.finned = true;
        }
        match pump_sender(&mut self.tx, &mut self.link) {
            Ok(n) => n,
            Err(DriveError::Io(_)) => 0,
            Err(DriveError::Net(e)) => panic!("sender protocol error: {e}"),
        }
    }

    fn done(&self) -> bool {
        self.finned && self.tx.is_idle()
    }
}

#[test]
fn eight_connections_with_reconnects_match_direct_links_exactly() {
    let cfg = NetConfig { window: 512, max_frame: 1 << 20 };
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut collector = Collector::new(FixedCodec, 1, cfg, acceptor, store.clone());

    let mut edges: Vec<EdgeSender> =
        (0..CONNS).map(|c| EdgeSender::new(c, cfg, connector.connect(LINK_CAPACITY))).collect();
    let expected_total: u64 = edges.iter().map(|e| e.expected_segments).sum();

    let mut stalled = 0;
    loop {
        let mut moved = collector.pump().expect("collector");

        // Sever every connection once, staggered: connection c dies
        // when the store holds c+1 ninths of its expected traffic —
        // different links die at different phases of the transfer. The
        // cut lands *after* the collector staged its acks but before
        // the sender read them, so the freshly written acks die in the
        // pipe and the replay is partially duplicate — the worst case
        // the dedup must absorb.
        for (c, edge) in edges.iter_mut().enumerate() {
            let threshold = edge.expected_segments * (c as u64 + 1) / (CONNS + 1);
            let conn = ConnId(c as u64 + 1); // accept order follows dial order
            let published = store.watermark(conn.0).map_or(0, |w| w.segments);
            if !edge.severed_once && published >= threshold.max(1) {
                edge.link.sever();
                // Both sides observe the dead pipe...
                assert_eq!(edge.round(), 0);
                collector.pump().expect("collector survives dead links");
                assert!(
                    collector.detached().contains(&conn),
                    "{conn} must be detached after its link died"
                );
                // ...then a fresh pipe re-attaches the same session.
                let (client, server) = MemoryLink::pair(LINK_CAPACITY);
                assert!(collector.reattach(conn, server));
                edge.link = client;
                edge.tx.on_reconnect();
                edge.severed_once = true;
                moved += 1; // a reconnect is progress
            }
        }

        for edge in &mut edges {
            moved += edge.round();
        }

        if edges.iter().all(|e| e.done()) && (1..=CONNS).all(|c| collector.conn_complete(ConnId(c)))
        {
            break;
        }
        stalled = if moved == 0 { stalled + 1 } else { 0 };
        assert!(stalled < 64, "fan-in deadlocked");
    }
    assert!(edges.iter().all(|e| e.severed_once), "every link must have died once");

    // The store must be byte-identical to 128 dedicated links.
    let reference = direct_reference();
    let snap = store.snapshot();
    assert_eq!(snap.streams.len(), (CONNS * STREAMS_PER_CONN) as usize);
    assert_eq!(snap.total_segments, expected_total);
    for (id, want) in &reference {
        let got = &snap.streams[&StreamId(*id)];
        assert_eq!(
            got, want,
            "stream {id}: collector reconstruction must be byte-identical \
             to the dedicated point-to-point link"
        );
    }

    // Observability: replays were dropped and counted, per connection.
    let stats = collector.stats();
    assert_eq!(stats.connections, CONNS as usize);
    assert_eq!(stats.segments, expected_total);
    assert!(stats.dup_drops > 0, "staggered severs must have forced duplicate replays");
    for conn in &stats.conns {
        assert_eq!(conn.ack_points.len(), STREAMS_PER_CONN as usize);
        assert!(
            conn.ack_points.iter().all(|&(_, ack)| ack > 0),
            "{}: every stream fully acked",
            conn.conn
        );
        assert_eq!(conn.receiver.finished_streams, STREAMS_PER_CONN as usize);
    }
    // Per-connection watermarks cover the whole signal span.
    for c in 1..=CONNS {
        let mark = store.watermark(c).expect("every connection appended");
        assert!(mark.covered_through >= (SAMPLES - 1) as f64);
    }
}
