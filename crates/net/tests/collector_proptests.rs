//! Property tests for the many-connection collector: however the
//! connections' traffic interleaves — arrival order, pump order, even
//! connection death and replay at arbitrary points — the shared
//! `SegmentStore` must end up with *identical* per-stream logs and
//! watermarks. Arrival order across connections is scheduling noise;
//! the reconstruction is not allowed to depend on it.

use std::sync::Arc;

use proptest::prelude::*;

use pla_core::Segment;
use pla_ingest::{SegmentStore, StoreSnapshot};
use pla_net::driver::pump_sender;
use pla_net::listen::MemoryAcceptor;
use pla_net::{Collector, ConnId, MemoryLink, MuxSender, NetConfig};
use pla_transport::wire::FixedCodec;

const CONNS: usize = 3;
const STREAMS_PER_CONN: u64 = 2;
const LINK_CAPACITY: usize = 97;

/// Per-stream segment logs: monotone times, arbitrary values.
fn logs_strategy() -> impl Strategy<Value = Vec<Vec<Segment>>> {
    let seg_count = 1usize..5;
    let values = prop::collection::vec(-50.0f64..50.0, 2 * 4);
    (prop::collection::vec(seg_count, CONNS * STREAMS_PER_CONN as usize), values).prop_map(
        |(counts, values)| {
            counts
                .iter()
                .enumerate()
                .map(|(s, &n)| {
                    (0..n)
                        .map(|i| {
                            let t = i as f64 * 10.0;
                            let v = values[(s + i) % values.len()];
                            Segment {
                                t_start: t,
                                x_start: [v].into(),
                                t_end: t + 5.0,
                                x_end: [v + 1.0].into(),
                                connected: false,
                                n_points: 2,
                                new_recordings: 2,
                            }
                        })
                        .collect()
                })
                .collect()
        },
    )
}

/// Runs the full fan-in under a pump schedule (which connection moves
/// each turn) and optional per-connection sever rounds, returning the
/// store snapshot.
fn run_schedule(
    logs: &[Vec<Segment>],
    schedule: &[usize],
    sever_at: &[Option<usize>],
) -> StoreSnapshot {
    let cfg = NetConfig { window: 4096, max_frame: 1 << 20 };
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut collector = Collector::new(FixedCodec, 1, cfg, acceptor, store.clone());

    let mut senders: Vec<(MuxSender<FixedCodec>, MemoryLink, bool)> = (0..CONNS)
        .map(|c| {
            let link = connector.connect(LINK_CAPACITY);
            let mut tx = MuxSender::new(FixedCodec, 1, cfg);
            for s in 0..STREAMS_PER_CONN {
                let stream = c as u64 * STREAMS_PER_CONN + s;
                for seg in &logs[stream as usize] {
                    tx.try_send_segment(stream, seg).expect("roomy window");
                }
                tx.finish_stream(stream).expect("fin");
            }
            (tx, link, false)
        })
        .collect();
    // Adopt the connections up front so ConnId follows dial order.
    collector.poll_accept().expect("accept");

    let mut turn = 0usize;
    let mut schedule = schedule.iter().cycle();
    let mut stalled = 0;
    while !(0..CONNS)
        .all(|c| senders[c].0.all_acked() && collector.conn_complete(ConnId(c as u64 + 1)))
    {
        // A degenerate schedule (say, all zeros) would starve the other
        // connections forever; once the scheduled picks stop moving
        // bytes, fall back to round-robin picks so every schedule is
        // eventually fair — the *order* noise is what the property is
        // about, not liveness.
        let c =
            if stalled < CONNS { *schedule.next().expect("cycled") % CONNS } else { turn % CONNS };
        let conn = ConnId(c as u64 + 1);
        // Scheduled mid-transfer death: lose the pipe (and whatever it
        // carried), then immediately re-attach and replay.
        if sever_at[c] == Some(turn / CONNS) && !senders[c].2 {
            senders[c].1.sever();
            let _ = collector.pump_conn(conn);
            let (client, server) = MemoryLink::pair(LINK_CAPACITY);
            assert!(collector.reattach(conn, server));
            senders[c].1 = client;
            senders[c].0.on_reconnect();
            senders[c].2 = true;
        }
        let (tx, link, _) = &mut senders[c];
        let moved_tx = pump_sender(tx, link).unwrap_or(0);
        let moved_rx = collector.pump_conn(conn).expect("protocol holds");
        turn += 1;
        stalled = if moved_tx + moved_rx == 0 { stalled + 1 } else { 0 };
        assert!(stalled < 10 * CONNS, "transfer deadlocked");
    }
    store.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pure arrival-order noise: any pump schedule produces the exact
    /// same snapshot as canonical round-robin.
    #[test]
    fn arrival_order_does_not_change_the_snapshot(
        logs in logs_strategy(),
        schedule in prop::collection::vec(0usize..CONNS, 1..64),
    ) {
        let reference = run_schedule(&logs, &[0, 1, 2], &[None; CONNS]);
        let got = run_schedule(&logs, &schedule, &[None; CONNS]);
        prop_assert_eq!(got, reference, "snapshot depends on arrival order");
    }

    /// Arrival-order noise *plus* connection death and replay at
    /// arbitrary rounds: the snapshot still matches an undisturbed
    /// round-robin run exactly (dedup absorbs the replays).
    #[test]
    fn severs_and_replays_do_not_change_the_snapshot(
        logs in logs_strategy(),
        schedule in prop::collection::vec(0usize..CONNS, 1..64),
        // Round at which each connection dies; values past the useful
        // range mean "never" (the vendored proptest has no Option
        // strategy).
        sever_codes in prop::collection::vec(0usize..10, CONNS),
    ) {
        let sever_rounds: Vec<Option<usize>> =
            sever_codes.iter().map(|&r| if r < 6 { Some(r) } else { None }).collect();
        let reference = run_schedule(&logs, &[0, 1, 2], &[None; CONNS]);
        let got = run_schedule(&logs, &schedule, &sever_rounds);
        prop_assert_eq!(got, reference, "snapshot depends on sever/replay timing");
    }
}
