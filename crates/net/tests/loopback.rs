//! The tentpole acceptance test: 64 streams over one multiplexed
//! connection, with a forced mid-stream disconnect/reconnect, must
//! reconstruct per-stream segment logs *identical* to what a dedicated
//! point-to-point transmitter/receiver pair produces for each stream.
//!
//! The sending side is the real production path: an `IngestEngine`
//! (shard-per-core) whose live segment tap feeds the `EngineUplink`,
//! which multiplexes into a `MuxSender` under credit backpressure over
//! a deliberately tiny `MemoryLink`.

use std::collections::BTreeMap;

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::{Segment, Signal};
use pla_ingest::{IngestConfig, IngestEngine, StreamId};
use pla_net::driver::{pump_receiver, pump_sender, DriveError};
use pla_net::uplink::{EngineUplink, UplinkStatus};
use pla_net::{MemoryLink, MuxSender, NetConfig, NetReceiver};
use pla_signal::{random_walk, WalkParams};
use pla_transport::wire::{Codec, FixedCodec};
use pla_transport::{Receiver, Transmitter};

const STREAMS: u64 = 64;
const SAMPLES: usize = 400;

fn spec_for(id: u64) -> FilterSpec {
    // Mix filter families across the population.
    let kind = match id % 3 {
        0 => FilterKind::Swing,
        1 => FilterKind::Slide,
        _ => FilterKind::Cache,
    };
    FilterSpec::new(kind, &[0.5])
}

fn signal_for(id: u64) -> Signal {
    random_walk(WalkParams {
        n: SAMPLES,
        p_decrease: 0.5,
        max_delta: 1.5,
        seed: 0x7E72 ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    })
}

/// The reference: each stream over its own dedicated point-to-point
/// transport link, as the paper deploys it.
fn direct_reference<C: Codec + Clone>(codec: C) -> BTreeMap<u64, Vec<Segment>> {
    let mut out = BTreeMap::new();
    for id in 0..STREAMS {
        let filter = spec_for(id).build().expect("valid spec");
        let mut tx = Transmitter::new(filter, codec.clone());
        let mut rx = Receiver::new(codec.clone(), 1);
        for (t, x) in signal_for(id).iter() {
            tx.push(t, x).expect("valid sample");
            rx.consume(tx.take_bytes()).expect("lossless link");
        }
        tx.finish().expect("flush");
        rx.consume(tx.take_bytes()).expect("lossless link");
        out.insert(id, rx.into_segments());
    }
    out
}

/// Runs the full multiplexed pipeline, severing the connection once
/// mid-stream, and returns the demultiplexed per-stream logs.
fn multiplexed_run<C: Codec + Clone>(codec: C, cfg: NetConfig) -> BTreeMap<u64, Vec<Segment>> {
    // Production sending side: engine + tap.
    let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
        shards: 4,
        queue_depth: 256,
        shard_log: false,
    });
    let handle = engine.handle();
    for id in 0..STREAMS {
        handle.register(StreamId(id), spec_for(id)).expect("register");
    }
    for id in 0..STREAMS {
        let signal = signal_for(id);
        let samples: Vec<(f64, &[f64])> = signal.iter().collect();
        handle.push_batch(StreamId(id), &samples).expect("feed");
    }
    let report = engine.finish();
    assert_eq!(report.quarantined(), 0);
    let total_segments = report.total_segments() as u64;

    // One multiplexed connection over a deliberately tiny pipe, so
    // partial writes and credit stalls are routine, not rare.
    let mut tx = MuxSender::new(codec.clone(), 1, cfg);
    let mut rx = NetReceiver::new(codec, 1, cfg);
    let mut uplink = EngineUplink::new(tap);
    let (mut la, mut lb) = MemoryLink::pair(193);

    let mut severed_once = false;
    let mut finned = false;
    let mut stalled = 0;
    loop {
        let status = uplink.pump(&mut tx).expect("uplink");
        if status == UplinkStatus::Drained && !finned {
            tx.finish_all();
            finned = true;
        }
        let moved_tx = match pump_sender(&mut tx, &mut la) {
            Ok(n) => n,
            Err(DriveError::Io(_)) => 0, // dead link; reconnect below
            Err(DriveError::Net(e)) => panic!("sender protocol error: {e}"),
        };
        let moved_rx = match pump_receiver(&mut rx, &mut lb) {
            Ok(n) => n,
            Err(DriveError::Io(_)) => 0,
            Err(DriveError::Net(e)) => panic!("receiver protocol error: {e}"),
        };

        // Force the disconnect once the receiver has applied roughly
        // half the traffic: bytes in flight are lost, a frame may be
        // cut in half, staged acks vanish.
        if !severed_once && rx.demux().messages() >= total_segments / 2 {
            la.sever();
            // Both pumps must now surface the dead link as an I/O error.
            assert!(matches!(pump_sender(&mut tx, &mut la), Err(DriveError::Io(_))));
            assert!(matches!(pump_receiver(&mut rx, &mut lb), Err(DriveError::Io(_))));
            let (na, nb) = MemoryLink::pair(193);
            la = na;
            lb = nb;
            tx.on_reconnect();
            rx.on_reconnect();
            severed_once = true;
            continue;
        }

        let done = finned
            && tx.is_idle()
            && rx.finished_streams().count() as u64 == STREAMS
            && rx.staged_bytes() == 0;
        if done {
            break;
        }
        stalled = if moved_tx + moved_rx == 0 && status == UplinkStatus::Drained {
            stalled + 1
        } else {
            0
        };
        assert!(stalled < 64, "transfer deadlocked (severed_once={severed_once})");
    }
    assert!(severed_once, "the disconnect must actually have happened");
    assert_eq!(uplink.forwarded(), total_segments);
    rx.into_demux().into_segment_logs()
}

#[test]
fn sixty_four_streams_with_reconnect_match_direct_filtering_exactly() {
    let reference = direct_reference(FixedCodec);
    let logs = multiplexed_run(FixedCodec, NetConfig { window: 512, max_frame: 1 << 20 });
    assert_eq!(logs.len(), STREAMS as usize);
    for (id, want) in &reference {
        let got = &logs[id];
        assert_eq!(
            got, want,
            "stream {id}: multiplexed reconstruction must be byte-identical \
             to the dedicated point-to-point link"
        );
    }
}

#[test]
fn reconnect_run_survives_the_compact_codec_too() {
    // The compact codec's delta predictor is stateful; the per-frame
    // reset contract keeps replays decodable. Quantization is applied
    // per value, so the multiplexed logs still match a direct compact
    // link exactly.
    let make = || pla_transport::wire::CompactCodec::new(0.01, &[0.01]);
    let reference = direct_reference(make());
    let logs = multiplexed_run(make(), NetConfig { window: 384, max_frame: 1 << 20 });
    for (id, want) in &reference {
        let got = &logs[id];
        assert_eq!(got.len(), want.len(), "stream {id}: segment counts diverge");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.connected, w.connected, "stream {id}");
            assert!((g.t_start - w.t_start).abs() < 1e-9, "stream {id}");
            assert!((g.t_end - w.t_end).abs() < 1e-9, "stream {id}");
            for d in 0..1 {
                assert!((g.x_start[d] - w.x_start[d]).abs() < 1e-9, "stream {id}");
                assert!((g.x_end[d] - w.x_end[d]).abs() < 1e-9, "stream {id}");
            }
        }
    }
}
