//! The session-layer acceptance test: 8 connections × 16 streams, every
//! link disrupted **three times** at staggered phases — severed outright
//! or silently wedged (detectable only by the heartbeat liveness
//! deadline) — and every recovery performed *by the session machine
//! itself*: the sender redials through its `Redial` factory, presents
//! its session token, and the collector rebinds the same `ConnId` from
//! the resume cursors. There is no operator-style re-attach call
//! anywhere in this file. The store must end byte-identical to 128
//! dedicated fault-free point-to-point links, and a version-mismatched
//! client dialing into the same collector must be refused with a typed
//! error without disturbing the 8 healthy connections.
//!
//! Everything runs on a synthetic clock: both sides take explicit `now`
//! instants, so heartbeat intervals, liveness deadlines, and redial
//! backoff are deterministic, not wall-clock races.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::{Segment, Signal};
use pla_ingest::{IngestConfig, IngestEngine, SegmentStore, StreamId};
use pla_net::frame::PROTOCOL_VERSION;
use pla_net::listen::MemoryAcceptor;
use pla_net::testutil::{FaultPlan, FaultRedial};
use pla_net::uplink::{EngineUplink, UplinkStatus};
use pla_net::{
    Collector, ConnId, HandshakeError, MemoryRedial, NetConfig, NetError, SessionConfig,
    SessionSender,
};
use pla_signal::{random_walk, WalkParams};
use pla_transport::wire::FixedCodec;
use pla_transport::{Receiver, Transmitter};

const CONNS: u64 = 8;
const STREAMS_PER_CONN: u64 = 16;
const SAMPLES: usize = 300;
const LINK_CAPACITY: usize = 211;
const DISRUPTIONS_PER_CONN: u32 = 3;
/// Synthetic-clock step per pump round.
const TICK: Duration = Duration::from_millis(5);

fn spec_for(id: u64) -> FilterSpec {
    let kind = match id % 3 {
        0 => FilterKind::Swing,
        1 => FilterKind::Slide,
        _ => FilterKind::Cache,
    };
    FilterSpec::new(kind, &[0.5])
}

fn signal_for(id: u64) -> Signal {
    random_walk(WalkParams {
        n: SAMPLES,
        p_decrease: 0.5,
        max_delta: 1.5,
        seed: 0x5E55 ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    })
}

/// The reference: every stream over its own dedicated, fault-free
/// point-to-point link, as the paper deploys it.
fn direct_reference() -> BTreeMap<u64, Vec<Segment>> {
    let mut out = BTreeMap::new();
    for id in 0..CONNS * STREAMS_PER_CONN {
        let filter = spec_for(id).build().expect("valid spec");
        let mut tx = Transmitter::new(filter, FixedCodec);
        let mut rx = Receiver::new(FixedCodec, 1);
        for (t, x) in signal_for(id).iter() {
            tx.push(t, x).expect("valid sample");
            rx.consume(tx.take_bytes()).expect("lossless link");
        }
        tx.finish().expect("flush");
        rx.consume(tx.take_bytes()).expect("lossless link");
        out.insert(id, rx.into_segments());
    }
    out
}

/// Session timing tuned for a synthetic clock: short enough that wedge
/// detection takes tens of rounds, long enough that a busy healthy link
/// never trips its own deadline.
fn session_config() -> SessionConfig {
    SessionConfig {
        heartbeat_interval: Duration::from_millis(50),
        liveness_timeout: Duration::from_millis(250),
        handshake_timeout: Duration::from_millis(100),
        session_ttl: Duration::from_secs(600),
        redial_initial: Duration::from_millis(5),
        redial_cap: Duration::from_millis(40),
        ..SessionConfig::default()
    }
}

/// One edge node: engine-filtered segments flowing through a
/// self-healing session over fault-injected links.
struct Edge {
    sess: SessionSender<FixedCodec, FaultRedial>,
    uplink: EngineUplink,
    finned: bool,
    disruptions: u32,
    expected_segments: u64,
}

impl Edge {
    fn new(
        conn: u64,
        cfg: NetConfig,
        sess_cfg: SessionConfig,
        redial: FaultRedial,
        epoch: Instant,
    ) -> Self {
        let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
            shards: 2,
            queue_depth: 128,
            shard_log: false,
        });
        let handle = engine.handle();
        let base = conn * STREAMS_PER_CONN;
        for s in 0..STREAMS_PER_CONN {
            let id = base + s;
            handle.register(StreamId(id), spec_for(id)).expect("register");
            let signal = signal_for(id);
            let samples: Vec<(f64, &[f64])> = signal.iter().collect();
            handle.push_batch(StreamId(id), &samples).expect("feed");
        }
        let report = engine.finish();
        assert_eq!(report.quarantined(), 0);
        Self {
            sess: SessionSender::new(FixedCodec, 1, cfg, sess_cfg, redial, epoch),
            uplink: EngineUplink::new(tap),
            finned: false,
            disruptions: 0,
            expected_segments: report.total_segments() as u64,
        }
    }

    /// One sender round at `now`: drain the tap as credit allows, fin
    /// when drained, let the session machine do everything else (dial,
    /// handshake, replay, heartbeat, redial).
    fn round(&mut self, now: Instant) -> usize {
        let status = self.uplink.pump(self.sess.mux_mut()).expect("uplink");
        if status == UplinkStatus::Drained && !self.finned {
            self.sess.mux_mut().finish_all();
            self.finned = true;
        }
        if let Some(failure) = self.sess.failure() {
            panic!("session must never fail terminally here: {failure}");
        }
        self.sess.pump_at(now)
    }

    fn done(&self) -> bool {
        self.finned && self.sess.mux().is_idle()
    }
}

#[test]
fn eight_sessions_survive_staggered_severs_and_wedges_without_reattach_calls() {
    let cfg = NetConfig { window: 512, max_frame: 1 << 20 };
    let sess_cfg = session_config();
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut collector =
        Collector::with_sessions(FixedCodec, 1, cfg, sess_cfg, acceptor, store.clone());

    let epoch = Instant::now();
    let mut edges: Vec<Edge> = (0..CONNS)
        .map(|c| {
            let redial =
                FaultRedial::new(connector.clone(), LINK_CAPACITY, vec![FaultPlan::none()]);
            Edge::new(c, cfg, sess_cfg, redial, epoch)
        })
        .collect();
    let expected_total: u64 = edges.iter().map(|e| e.expected_segments).sum();

    // A client from the future dials the same collector. It must be
    // refused with a typed version mismatch — and nothing else may
    // notice.
    let future_cfg = SessionConfig { version: PROTOCOL_VERSION + 1, ..sess_cfg };
    let mut mismatched = SessionSender::new(
        FixedCodec,
        1,
        cfg,
        future_cfg,
        MemoryRedial::new(connector.clone(), LINK_CAPACITY),
        epoch,
    );

    // Make the edges dial (and write their Hellos) before the first
    // collector round so accept order follows edge order: edge c is
    // conn c+1.
    let mut now = epoch;
    for edge in &mut edges {
        edge.round(now);
    }
    mismatched.pump_at(now);

    let mut rounds = 0u64;
    loop {
        now += TICK;
        rounds += 1;
        collector.pump_at(now).expect("no protocol violations in this storm");
        mismatched.pump_at(now);

        // Disrupt each connection three times, staggered: connection c's
        // k-th disruption fires when the store holds its share of
        // published traffic. Disruption 2 of every even connection is a
        // *silent wedge* — writes vanish, reads stall, no error — which
        // only the heartbeat liveness deadline can detect. The rest are
        // hard severs.
        for (c, edge) in edges.iter_mut().enumerate() {
            if edge.disruptions >= DISRUPTIONS_PER_CONN {
                continue;
            }
            let k = edge.disruptions as u64;
            let phase = k * CONNS + c as u64 + 1;
            let threshold =
                (edge.expected_segments * phase / (DISRUPTIONS_PER_CONN as u64 * CONNS + 2)).max(1);
            let published = store.watermark(c as u64 + 1).map_or(0, |w| w.segments);
            if published >= threshold {
                if k == 1 && c % 2 == 0 {
                    edge.sess.redial().wedge_active();
                } else {
                    edge.sess.redial().sever_active();
                }
                edge.disruptions += 1;
            }
        }

        for edge in &mut edges {
            edge.round(now);
        }

        let all_disrupted = edges.iter().all(|e| e.disruptions == DISRUPTIONS_PER_CONN);
        if all_disrupted
            && edges.iter().all(|e| e.done())
            && (1..=CONNS).all(|c| collector.conn_complete(ConnId(c)))
        {
            break;
        }
        assert!(rounds < 200_000, "self-healing fan-in did not converge");
    }

    // Every connection died three times and healed itself: the initial
    // dial plus at least one redial per disruption.
    for (c, edge) in edges.iter().enumerate() {
        assert_eq!(edge.disruptions, DISRUPTIONS_PER_CONN);
        assert!(
            edge.sess.redial().dials() > DISRUPTIONS_PER_CONN as u64,
            "conn {c}: every disruption must have forced a redial, got {} dials",
            edge.sess.redial().dials()
        );
        assert!(edge.sess.is_established(), "conn {c} ends healthy");
        assert_eq!(edge.sess.stats().established, edge.sess.redial().dials());
        assert!(edge.sess.failure().is_none());
    }
    // Wedges are invisible to I/O errors — only the liveness deadline
    // detects them, and heartbeats are what keep that deadline honest.
    assert!(
        edges.iter().any(|e| e.sess.stats().heartbeats_sent > 0),
        "the wedge phases must have produced heartbeat probes"
    );

    // The store must be byte-identical to 128 dedicated fault-free links.
    let reference = direct_reference();
    let snap = store.snapshot();
    assert_eq!(snap.streams.len(), (CONNS * STREAMS_PER_CONN) as usize);
    assert_eq!(snap.total_segments, expected_total);
    for (id, want) in &reference {
        let got = &snap.streams[&StreamId(*id)];
        assert_eq!(
            got, want,
            "stream {id}: reconstruction across severs and wedges must be \
             byte-identical to the dedicated fault-free link"
        );
    }

    // Session bookkeeping: 8 connections, no extras minted by resumes,
    // every resume routed by token back to its original ConnId.
    let stats = collector.stats();
    assert_eq!(stats.connections, CONNS as usize, "resumes rebind; they never mint new conns");
    assert_eq!(stats.segments, expected_total);
    assert!(stats.dup_drops > 0, "staggered severs must have forced duplicate replays");
    assert_eq!(stats.evicted, 0);
    for conn in &stats.conns {
        assert_ne!(conn.token, 0, "{}: bound sessions carry tokens", conn.conn);
        assert_eq!(conn.receiver.finished_streams, STREAMS_PER_CONN as usize);
        assert!(conn.attached, "{} ends attached", conn.conn);
    }

    // The mismatched client was refused, typed, on both sides — and the
    // refusals are the only ones the collector saw.
    assert!(!mismatched.is_established());
    assert!(matches!(
        mismatched.failure(),
        Some(NetError::Handshake(HandshakeError::VersionMismatch { ours, theirs }))
            if *ours == PROTOCOL_VERSION + 1 && *theirs == PROTOCOL_VERSION
    ));
    assert!(stats.refused >= 1, "the version mismatch was counted");
    assert!(matches!(
        collector.last_refusal(),
        Some(NetError::Handshake(HandshakeError::VersionMismatch { .. }))
    ));
}
